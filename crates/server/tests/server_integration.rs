//! Socket-level integration suite: a real `TcpStream` client against a
//! real ephemeral-port server, covering the round-trips, the 4xx
//! robustness contract, queue backpressure, and graceful shutdown.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::num::NonZeroUsize;
use std::path::PathBuf;
use std::time::Duration;
use webreason_core::{DurableStore, FsyncPolicy, MaintenanceAlgorithm, ReasoningConfig};
use webreason_server::{Server, ServerConfig};

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("webreason-server-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn boot(name: &str, config: ServerConfig) -> Server {
    let store = DurableStore::create(
        tmpdir(name),
        ReasoningConfig::Saturation(MaintenanceAlgorithm::Counting),
        NonZeroUsize::MIN,
        FsyncPolicy::Never,
    )
    .expect("store creates");
    Server::start(store, config).expect("server boots")
}

fn ephemeral() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        threads: 2,
        ..Default::default()
    }
}

/// Sends raw bytes, reads to EOF, returns (status, whole response text).
fn raw_round_trip(addr: SocketAddr, raw: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout sets");
    stream.write_all(raw).expect("request writes");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("response reads");
    let status: u16 = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {text:?}"));
    (status, text)
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    let raw = format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    raw_round_trip(addr, raw.as_bytes())
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    let raw = format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    raw_round_trip(addr, raw.as_bytes())
}

const COUNT_MAMMALS: &str = "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x a ex:Mammal }";

#[test]
fn query_update_metrics_round_trip() {
    let server = boot("round-trip", ephemeral());
    let addr = server.local_addr();

    let (status, text) = get(addr, "/health");
    assert_eq!(status, 200, "{text}");

    // Empty store answers empty.
    let (status, text) = post(addr, "/query", COUNT_MAMMALS);
    assert_eq!(status, 200, "{text}");
    assert!(text.contains("\"rows\":[]"), "{text}");

    // Schema + instance through /update: entailment shows in /query.
    let (status, text) = post(
        addr,
        "/update",
        "# zoo\n\
         insert <http://ex/Cat> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://ex/Mammal> .\n\
         insert <http://ex/Tom> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Cat> .\n",
    );
    assert_eq!(status, 200, "{text}");
    assert!(text.contains("\"accepted\":2"), "{text}");

    let (status, text) = post(addr, "/query", COUNT_MAMMALS);
    assert_eq!(status, 200, "{text}");
    assert!(text.contains("<http://ex/Tom>"), "entailed answer: {text}");

    // Delete retracts the entailment.
    let (status, text) = post(
        addr,
        "/update",
        "delete <http://ex/Tom> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Cat> .\n",
    );
    assert_eq!(status, 200, "{text}");
    let (status, text) = post(addr, "/query", COUNT_MAMMALS);
    assert_eq!(status, 200);
    assert!(text.contains("\"rows\":[]"), "{text}");

    // Metrics reflect the traffic and stay machine-readable.
    let (status, text) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let body = text.split("\r\n\r\n").nth(1).expect("metrics body");
    obs::lint_prometheus_text(body).expect("prometheus output lints");
    assert!(
        body.contains("webreason_server_query_requests_total"),
        "{body}"
    );
    assert!(
        body.contains("webreason_server_update_applied_total"),
        "{body}"
    );
    assert!(
        body.contains("webreason_server_update_queue_capacity"),
        "{body}"
    );

    let store = server.shutdown();
    assert_eq!(store.stats().base_triples, 1, "schema triple remains");
}

#[test]
fn malformed_inputs_get_4xx_without_killing_workers() {
    let server = boot("malformed", ephemeral());
    let addr = server.local_addr();

    // Garbage request line.
    let (status, _) = raw_round_trip(addr, b"NONSENSE\r\n\r\n");
    assert_eq!(status, 400);
    // Smuggling attempt: both framings at once.
    let (status, _) = raw_round_trip(
        addr,
        b"POST /update HTTP/1.1\r\nContent-Length: 3\r\nTransfer-Encoding: chunked\r\n\r\n",
    );
    assert_eq!(status, 400);
    // Unknown path / wrong method.
    let (status, _) = get(addr, "/nope");
    assert_eq!(status, 404);
    let (status, _) = get(addr, "/query");
    assert_eq!(status, 405);
    // Malformed SPARQL and malformed update script.
    let (status, text) = post(addr, "/query", "SELECT WHERE garbage {{{");
    assert_eq!(status, 400, "{text}");
    let (status, text) = post(addr, "/update", "upsert <a> <b> <c> .");
    assert_eq!(status, 400, "{text}");
    assert!(text.contains("line 1"), "{text}");

    // After all of that the workers still serve.
    let (status, _) = get(addr, "/health");
    assert_eq!(status, 200);
    let (status, text) = post(addr, "/query", COUNT_MAMMALS);
    assert_eq!(status, 200, "{text}");

    drop(server.shutdown());
}

#[test]
fn oversized_bodies_are_rejected_not_buffered() {
    let mut config = ephemeral();
    config.limits.max_body_bytes = 256;
    let server = boot("oversized", config);
    let addr = server.local_addr();

    let big = "x".repeat(1024);
    let (status, _) = post(addr, "/query", &big);
    assert_eq!(status, 413);

    let (status, _) = get(addr, "/health");
    assert_eq!(status, 200, "server survives oversized bodies");
    drop(server.shutdown());
}

#[test]
fn full_update_queue_backpressures_with_429() {
    let mut config = ephemeral();
    config.threads = 4;
    config.update_queue = 1;
    config.retry_after_secs = 7;
    config.writer_delay = Some(Duration::from_millis(400));
    let server = boot("backpressure", config);
    let addr = server.local_addr();

    let insert = |i: usize| format!("insert <http://ex/s{i}> <http://ex/p> <http://ex/o> .\n");
    // A occupies the writer (sleeping in the delay hook); B fills the
    // one-slot queue. Both run on their own threads because they block
    // until applied.
    let a = {
        let body = insert(0);
        std::thread::spawn(move || post(addr, "/update", &body))
    };
    std::thread::sleep(Duration::from_millis(100));
    let b = {
        let body = insert(1);
        std::thread::spawn(move || post(addr, "/update", &body))
    };
    std::thread::sleep(Duration::from_millis(100));

    // C finds the queue full: 429 + Retry-After, immediately.
    let (status, text) = post(addr, "/update", &insert(2));
    assert_eq!(status, 429, "{text}");
    assert!(text.contains("Retry-After: 7"), "{text}");

    let (status, text) = a.join().expect("client A");
    assert_eq!(status, 200, "{text}");
    let (status, text) = b.join().expect("client B");
    assert_eq!(status, 200, "{text}");

    // Queue drained: the retried update now lands.
    let (status, text) = post(addr, "/update", &insert(2));
    assert_eq!(status, 200, "{text}");

    let store = server.shutdown();
    assert_eq!(store.stats().base_triples, 3, "A, B and the retried C");
}

#[test]
fn graceful_shutdown_serves_parsed_requests_and_503s_partial_ones() {
    let mut config = ephemeral();
    config.threads = 2;
    config.writer_delay = Some(Duration::from_millis(400));
    let server = boot("shutdown", config);
    let addr = server.local_addr();

    // P parks one worker on a forever-incomplete request.
    let mut partial = TcpStream::connect(addr).expect("connects");
    partial
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout sets");
    partial
        .write_all(b"POST /query HTTP/1.1\r\nContent-Length: 100\r\n\r\nonly-a-prefix")
        .expect("partial writes");
    std::thread::sleep(Duration::from_millis(50));

    // A's update is in flight: the other worker blocks on the writer.
    let a = std::thread::spawn(move || {
        post(
            addr,
            "/update",
            "insert <http://ex/s> <http://ex/p> <http://ex/o> .\n",
        )
    });
    std::thread::sleep(Duration::from_millis(100));

    // B's query is fully received but still waiting for a free worker.
    let b = std::thread::spawn(move || post(addr, "/query", COUNT_MAMMALS));
    std::thread::sleep(Duration::from_millis(100));

    // Shutdown begins while A is mid-apply, B is received-but-undispatched
    // and P is incomplete.
    let shut = std::thread::spawn(move || server.shutdown());

    // In-flight work completes: A's journaled update is acknowledged.
    let (status, text) = a.join().expect("client A");
    assert_eq!(status, 200, "in-flight update drains: {text}");
    // B's request was fully received before the flag — the drain contract
    // says *serve* it, not 503 it.
    let (status, text) = b.join().expect("client B");
    assert_eq!(status, 200, "fully-received request is served: {text}");
    assert!(text.contains("Connection: close"), "{text}");
    // The half-request can never complete: clean 503 + explicit close.
    let mut text = String::new();
    partial.read_to_string(&mut text).expect("partial reads");
    assert!(text.starts_with("HTTP/1.1 503"), "{text}");
    assert!(text.contains("Connection: close"), "{text}");

    let store = shut.join().expect("shutdown returns");
    assert_eq!(store.stats().base_triples, 1, "A's triple survived");
}

#[test]
fn http10_closes_by_default_and_keep_alive_opts_in() {
    let server = boot("http10", ephemeral());
    let addr = server.local_addr();

    // A 1.0 request without a Connection header must close after the
    // response (the client would otherwise hang waiting for EOF) and say
    // so explicitly.
    let (status, text) = raw_round_trip(addr, b"GET /health HTTP/1.0\r\nHost: t\r\n\r\n");
    assert_eq!(status, 200, "{text}");
    assert!(text.contains("Connection: close"), "{text}");
    assert_eq!(text.matches("HTTP/1.1 200").count(), 1, "{text}");

    // Explicit keep-alive persists: two 1.0 requests on one connection,
    // the second falling back to the close-by-default.
    let mut stream = TcpStream::connect(addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout sets");
    let keep = "GET /health HTTP/1.0\r\nHost: t\r\nConnection: keep-alive\r\n\r\n";
    let last = "GET /health HTTP/1.0\r\nHost: t\r\n\r\n";
    stream
        .write_all(format!("{keep}{last}").as_bytes())
        .expect("pipeline writes");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("responses read");
    assert_eq!(text.matches("HTTP/1.1 200 OK").count(), 2, "{text}");

    drop(server.shutdown());
}

#[test]
fn invalid_script_line_rejects_the_whole_batch_atomically() {
    let server = boot("atomic", ephemeral());
    let addr = server.local_addr();
    let dir = std::env::temp_dir().join(format!("webreason-server-atomic-{}", std::process::id()));
    let reader = server.reader();

    // Pre-state: one acknowledged triple.
    let (status, _) = post(
        addr,
        "/update",
        "insert <http://ex/pre> <http://ex/p> <http://ex/o> .\n",
    );
    assert_eq!(status, 200);
    let journal_before =
        std::fs::read(dir.join(webreason_core::durable::JOURNAL_FILE)).expect("journal reads");
    let epoch_before = reader.snapshot().epoch();

    // A script whose third line cannot decode: 400, and the valid prefix
    // must NOT apply — the batch is atomic.
    let (status, text) = post(
        addr,
        "/update",
        "insert <http://ex/part1> <http://ex/p> <http://ex/o> .\n\
         insert <http://ex/part2> <http://ex/p> <http://ex/o> .\n\
         frobnicate <http://ex/part3> <http://ex/p> <http://ex/o> .\n",
    );
    assert_eq!(status, 400, "{text}");
    assert!(text.contains("line 3"), "{text}");

    // No state change anywhere: the journal is bit-identical, no new
    // epoch was ever published, and a reader sees none of the script.
    let journal_after =
        std::fs::read(dir.join(webreason_core::durable::JOURNAL_FILE)).expect("journal reads");
    assert_eq!(journal_before, journal_after, "journal untouched");
    assert_eq!(reader.snapshot().epoch(), epoch_before, "no publish");
    let q = "PREFIX ex: <http://ex/> SELECT ?o WHERE { ex:part1 ex:p ?o }";
    let (sols, _, _) = reader.answer_sparql(q).expect("query answers");
    assert_eq!(sols.len(), 0, "rejected script is invisible to readers");

    // Recovery of the journal equals the pre-request state.
    let store = server.shutdown();
    assert_eq!(store.stats().base_triples, 1, "only the pre-state triple");
    let rec = webreason_core::Store::recover(&dir).expect("recovers");
    assert_eq!(rec.export_ntriples(), store.store().export_ntriples());
}

#[test]
fn keep_alive_and_pipelining_serve_multiple_requests_per_connection() {
    let server = boot("keepalive", ephemeral());
    let addr = server.local_addr();

    let mut stream = TcpStream::connect(addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout sets");
    // Two pipelined health checks, then a closing one.
    let one = "GET /health HTTP/1.1\r\nHost: t\r\n\r\n";
    let last = "GET /health HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";
    stream
        .write_all(format!("{one}{one}{last}").as_bytes())
        .expect("pipeline writes");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("responses read");
    assert_eq!(text.matches("HTTP/1.1 200 OK").count(), 3, "{text}");

    drop(server.shutdown());
}
