//! Union-aware evaluation of reformulated queries (`q_ref(G)`).
//!
//! A reformulated query is a union of up to thousands of conjunctive
//! branches that overlap heavily: most branches differ from their
//! neighbours in a single rewritten atom. [`evaluate`](crate::evaluate)
//! treats every branch as an independent query — it re-plans, re-scans and
//! re-joins the shared atoms once per branch. This module evaluates the
//! union *as a union*:
//!
//! 1. **Shared-prefix trie.** Every branch is planned (with the graph's
//!    distinct-value counts computed *once* for the whole union), and the
//!    planned pattern sequences are folded into a trie: branches whose
//!    planned orders start with the same patterns share one trie path, so
//!    the index scans and intermediate bindings for that prefix are
//!    computed once. A trie node where a branch ends carries a *leaf
//!    multiplicity* so duplicated branches keep SPARQL bag semantics
//!    (see `union_bag_and_set_semantics` in `eval.rs`).
//! 2. **Memoized scan cache.** Each worker keeps a `(resolved
//!    Pattern) → matches` cache with hit/miss counters. First-time probes
//!    are streamed straight off the indexes (no allocation); a probe is
//!    materialized only once it repeats. Prefix sharing removes repeats
//!    *within* a subtree; the cache removes repeats *across* subtrees
//!    (e.g. the same `(s, p, ?)` probe reached from different first
//!    atoms).
//! 3. **Parallel subtrees.** The sorted branch list is split into
//!    contiguous chunks (sorting co-locates shared prefixes), one trie per
//!    worker, evaluated across `std::thread::scope` workers. Rows are
//!    routed into hash-sharded buckets; the merge phase deduplicates each
//!    shard independently (disjoint writes, `Graph::merge_buckets` style),
//!    so `DISTINCT` costs one set per shard instead of one global lock.
//!
//! The answer set is exactly [`evaluate`](crate::evaluate)'s: sharing a
//! prefix never changes which bindings reach a leaf (the trie path *is*
//! the branch's planned pattern sequence), and leaf multiplicities keep
//! duplicate counts identical under bag semantics.

use crate::ast::{Query, TriplePattern};
use crate::eval::{bind_triple, passes_negation, resolve, Solutions};
use crate::plan::{plan_bgp_with, DistinctCounts};
use obs::CancelToken;
use rdf_model::{Graph, Pattern, TermId, Triple, WorkerPanicked};
use rustc_hash::{FxHashMap, FxHashSet, FxHasher};
use smallvec::SmallVec;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;
use std::time::Instant;
use webreason_failpoints::fail_point;

/// One projected answer row.
type Row = Vec<TermId>;

/// Why a cancellable union evaluation returned no answer.
#[derive(Debug)]
pub enum UnionEvalError {
    /// A parallel worker panicked (a bug, or an armed failpoint).
    Worker(WorkerPanicked),
    /// The request's [`CancelToken`] tripped — deadline exceeded or
    /// client gone. Every worker's partial state (row shards, scan
    /// caches) was discarded whole; no counters for the abandoned pass
    /// were published, so a re-run is bit-identical to a fresh run.
    Cancelled,
}

impl fmt::Display for UnionEvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnionEvalError::Worker(e) => write!(f, "{e}"),
            UnionEvalError::Cancelled => f.write_str("union evaluation cancelled"),
        }
    }
}

impl std::error::Error for UnionEvalError {}

impl From<WorkerPanicked> for UnionEvalError {
    fn from(e: WorkerPanicked) -> Self {
        UnionEvalError::Worker(e)
    }
}

/// Evaluation statistics of one union-aware evaluation, surfaced through
/// `Store::answer`, the `webreason query` CLI and the A-REF bench table.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize)]
pub struct EvalStats {
    /// Union branches in the query.
    pub branches_total: usize,
    /// Branches skipped because they do not bind every projected variable.
    pub branches_pruned: usize,
    /// Branches that shared at least their first planned pattern with an
    /// earlier branch (their prefix scans were reused from the trie).
    pub branches_shared: usize,
    /// Total planned patterns across evaluated branches.
    pub patterns_total: usize,
    /// Trie nodes actually built — `patterns_total - trie_nodes` index
    /// scans were saved by prefix sharing.
    pub trie_nodes: usize,
    /// Scan-cache hits (a probe answered from a worker's memo table).
    pub scan_cache_hits: u64,
    /// Scan-cache misses (a probe that went to the graph indexes).
    pub scan_cache_misses: u64,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock of the derive phase (planning + trie walks), µs.
    pub eval_us: u64,
    /// Wall-clock of the merge phase (shard dedup + concatenation), µs.
    pub merge_us: u64,
    /// Answer rows produced (after `DISTINCT`, before `finalize`).
    pub rows: usize,
    /// Range-scan atoms evaluated (interval strategy only; a range atom
    /// probes one hierarchy interval instead of one union branch per
    /// member).
    pub range_scans: u64,
    /// Union branches the interval rewriting collapsed into range scans
    /// (interval strategy only): `q_ref` branches minus interval branches.
    pub branches_collapsed: usize,
}

impl EvalStats {
    /// Index scans saved by prefix sharing in the trie.
    pub fn shared_prefix_scans(&self) -> usize {
        self.patterns_total.saturating_sub(self.trie_nodes)
    }

    /// One-line human-readable rendering for CLI / bench output.
    pub fn summary(&self) -> String {
        let mut line = format!(
            "{} branches ({} pruned, {} shared ≥1 prefix, {} scans saved), \
             scan cache {} hits / {} misses, {} worker(s), \
             eval {}µs + merge {}µs",
            self.branches_total,
            self.branches_pruned,
            self.branches_shared,
            self.shared_prefix_scans(),
            self.scan_cache_hits,
            self.scan_cache_misses,
            self.threads,
            self.eval_us,
            self.merge_us,
        );
        if self.range_scans > 0 || self.branches_collapsed > 0 {
            line.push_str(&format!(
                ", {} range scans ({} union branches collapsed)",
                self.range_scans, self.branches_collapsed,
            ));
        }
        line
    }
}

/// Mirrors a finished evaluation's [`EvalStats`] into the metrics
/// registry. The struct stays the caller-facing façade (CLI summary line,
/// bench tables); the registry gets the same numbers under the
/// `sparql.union.*` names so snapshots cover the subsystem.
fn publish_stats(reg: &obs::Registry, stats: &EvalStats) {
    if !reg.is_enabled() {
        return;
    }
    reg.add("sparql.union.queries", 1);
    reg.add("sparql.union.branches_total", stats.branches_total as u64);
    reg.add("sparql.union.branches_pruned", stats.branches_pruned as u64);
    reg.add("sparql.union.branches_shared", stats.branches_shared as u64);
    reg.add("sparql.union.patterns_total", stats.patterns_total as u64);
    reg.add("sparql.union.trie_nodes", stats.trie_nodes as u64);
    reg.add(
        "sparql.union.shared_prefix_scans",
        stats.shared_prefix_scans() as u64,
    );
    reg.add("sparql.union.scan_cache_hits", stats.scan_cache_hits);
    reg.add("sparql.union.scan_cache_misses", stats.scan_cache_misses);
    reg.add("sparql.union.rows", stats.rows as u64);
    reg.add("sparql.union.workers", stats.threads as u64);
}

/// One node of the shared-prefix trie: a planned pattern, the branches
/// ending exactly here (`leaf_mult`), and the continuations.
struct TrieNode {
    tp: TriplePattern,
    leaf_mult: usize,
    children: Vec<TrieNode>,
}

/// The trie for one worker's chunk of branches.
struct Trie {
    roots: Vec<TrieNode>,
    /// Branches with an empty pattern list (they emit one empty binding
    /// each, exactly like the per-branch evaluator's empty BGP).
    empty_mult: usize,
    nodes: usize,
    shared_branches: usize,
}

impl Trie {
    fn build(branches: &[Vec<TriplePattern>]) -> Trie {
        let mut trie = Trie {
            roots: Vec::new(),
            empty_mult: 0,
            nodes: 0,
            shared_branches: 0,
        };
        for seq in branches {
            if seq.is_empty() {
                trie.empty_mult += 1;
                continue;
            }
            let mut level = &mut trie.roots;
            let mut reused_any = false;
            for (depth, tp) in seq.iter().enumerate() {
                let pos = match level.iter().position(|n| n.tp == *tp) {
                    Some(pos) => {
                        if depth == 0 {
                            reused_any = true;
                        }
                        pos
                    }
                    None => {
                        level.push(TrieNode {
                            tp: *tp,
                            leaf_mult: 0,
                            children: Vec::new(),
                        });
                        trie.nodes += 1;
                        level.len() - 1
                    }
                };
                if depth + 1 == seq.len() {
                    level[pos].leaf_mult += 1;
                }
                level = &mut level[pos].children;
            }
            if reused_any {
                trie.shared_branches += 1;
            }
        }
        trie
    }
}

/// Per-worker memoized scan cache keyed on the *resolved* probe pattern
/// (constants plus already-bound variables), with hit/miss counters.
///
/// A probe seen for the first time is *streamed* straight off the graph
/// indexes (zero allocation, exactly the per-branch evaluator's inner
/// loop) and only remembered in a seen-set; a probe seen again is
/// materialized into the cache and every further repeat is a hit. One-shot
/// probes — the overwhelming majority in selective joins — therefore pay
/// one set insert instead of a `Vec` allocation and copy.
///
/// Both tables are bounded so pathological unions cannot hoard memory;
/// past the caps further probes go straight to the indexes (still counted
/// as misses).
struct ScanCache {
    map: FxHashMap<Pattern, Rc<[Triple]>>,
    seen: FxHashSet<Pattern>,
    cached_triples: usize,
    hits: u64,
    misses: u64,
}

/// Cap on triples retained across all cache entries of one worker
/// (~12 bytes each, so ≈24 MiB per worker at the cap).
const SCAN_CACHE_MAX_TRIPLES: usize = 2 << 20;

/// Cap on distinct probes tracked in the seen-set of one worker.
const SCAN_CACHE_MAX_PROBES: usize = 1 << 20;

impl ScanCache {
    fn new() -> ScanCache {
        ScanCache {
            map: FxHashMap::default(),
            seen: FxHashSet::default(),
            cached_triples: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// `Some(matches)` if the probe is (now) memoized, `None` if the
    /// caller should stream it off the indexes.
    fn lookup(&mut self, g: &Graph, probe: &Pattern) -> Option<Rc<[Triple]>> {
        if let Some(hit) = self.map.get(probe) {
            self.hits += 1;
            return Some(Rc::clone(hit));
        }
        self.misses += 1;
        if !self.seen.contains(probe) {
            if self.seen.len() < SCAN_CACHE_MAX_PROBES {
                self.seen.insert(*probe);
            }
            return None;
        }
        let matches: Rc<[Triple]> = g.matches(probe).into();
        if self.cached_triples + matches.len() <= SCAN_CACHE_MAX_TRIPLES {
            self.cached_triples += matches.len();
            self.map.insert(*probe, Rc::clone(&matches));
        }
        Some(matches)
    }
}

/// What one worker sends back: rows routed into shards, plus counters.
struct WorkerOutput {
    shards: Vec<Vec<Row>>,
    cache_hits: u64,
    cache_misses: u64,
    trie_nodes: usize,
    shared_branches: usize,
}

fn shard_of(row: &[TermId], mask: usize) -> usize {
    let mut h = FxHasher::default();
    row.hash(&mut h);
    (h.finish() as usize) & mask
}

/// Walks one trie node under the current binding: probe, bind, emit at
/// leaves (with multiplicity), recurse into continuations, unbind.
fn walk(
    g: &Graph,
    node: &TrieNode,
    binding: &mut Vec<Option<TermId>>,
    cache: &mut ScanCache,
    emit: &mut dyn FnMut(&[Option<TermId>], usize),
) {
    let probe = Pattern::new(
        resolve(node.tp.s, binding),
        resolve(node.tp.p, binding),
        resolve(node.tp.o, binding),
    );
    // A fully ground probe is an O(1) membership test on the indexes —
    // memoizing it can only add hashing and allocation on top.
    if probe.s.is_some() && probe.p.is_some() && probe.o.is_some() {
        g.for_each_match(&probe, |t| step(g, node, &t, binding, cache, emit));
        return;
    }
    match cache.lookup(g, &probe) {
        Some(scan) => {
            for t in scan.iter() {
                step(g, node, t, binding, cache, emit);
            }
        }
        None => g.for_each_match(&probe, |t| step(g, node, &t, binding, cache, emit)),
    }
}

/// Processes one matched triple of a trie node's probe.
#[inline]
fn step(
    g: &Graph,
    node: &TrieNode,
    t: &Triple,
    binding: &mut Vec<Option<TermId>>,
    cache: &mut ScanCache,
    emit: &mut dyn FnMut(&[Option<TermId>], usize),
) {
    let mut touched: SmallVec<[crate::ast::Variable; 3]> = SmallVec::new();
    if bind_triple(&node.tp, t, binding, &mut touched) {
        if node.leaf_mult > 0 {
            emit(binding, node.leaf_mult);
        }
        for child in &node.children {
            walk(g, child, binding, cache, emit);
        }
    }
    for v in touched {
        binding[v.index()] = None;
    }
}

/// Evaluates one chunk of branches: builds the chunk's trie, walks it with
/// a fresh scan cache, and routes projected rows into `shard_count`
/// hash-sharded buckets.
///
/// Cancellation is polled between trie roots — the branch boundary of
/// this worker's chunk. `None` means the token tripped: the partial
/// shards and the worker-private scan cache are dropped on return, so
/// nothing of the abandoned pass survives.
fn run_chunk(
    g: &Graph,
    q: &Query,
    branches: &[Vec<TriplePattern>],
    shard_count: usize,
    cancel: &CancelToken,
) -> Option<WorkerOutput> {
    let trie = Trie::build(branches);
    let mask = shard_count - 1;
    let mut shards: Vec<Vec<Row>> = (0..shard_count).map(|_| Vec::new()).collect();
    let mut cache = ScanCache::new();
    let mut binding: Vec<Option<TermId>> = vec![None; q.var_names.len()];
    // Under `DISTINCT` each worker deduplicates its own rows as they are
    // emitted (the per-branch evaluator's `seen` set), so the merge phase
    // only resolves duplicates *across* workers — with a single worker it
    // degenerates to a move.
    let mut seen: FxHashSet<Row> = FxHashSet::default();
    {
        let mut emit = |binding: &[Option<TermId>], mult: usize| {
            if !passes_negation(g, q, binding) {
                return;
            }
            let row: Row = q
                .projection
                .iter()
                .map(|v| binding[v.index()].expect("projected variable bound"))
                .collect();
            if q.distinct {
                if !seen.insert(row.clone()) {
                    return;
                }
                let shard = if mask == 0 { 0 } else { shard_of(&row, mask) };
                shards[shard].push(row);
            } else {
                // Under bag semantics a branch duplicated `mult` times
                // contributes `mult` copies (exactly like the per-branch
                // evaluator).
                let shard = if mask == 0 { 0 } else { shard_of(&row, mask) };
                for _ in 1..mult {
                    shards[shard].push(row.clone());
                }
                shards[shard].push(row);
            }
        };
        if trie.empty_mult > 0 {
            emit(&binding, trie.empty_mult);
        }
        for root in &trie.roots {
            if cancel.is_cancelled() {
                return None;
            }
            walk(g, root, &mut binding, &mut cache, &mut emit);
        }
    }
    Some(WorkerOutput {
        shards,
        cache_hits: cache.hits,
        cache_misses: cache.misses,
        trie_nodes: trie.nodes,
        shared_branches: trie.shared_branches,
    })
}

/// Merges one shard's per-worker row lists. Workers already deduplicated
/// their own rows, so `distinct` only has to resolve duplicates across
/// workers; identical rows hash to the same shard, so per-shard dedup is
/// globally complete.
fn merge_shard(mut parts: Vec<Vec<Row>>, distinct: bool) -> Vec<Row> {
    if parts.len() == 1 {
        return parts.pop().expect("one part");
    }
    if !distinct {
        return parts.into_iter().flatten().collect();
    }
    let mut seen: FxHashSet<Row> = FxHashSet::default();
    let mut out = Vec::new();
    for rows in parts {
        for row in rows {
            if seen.insert(row.clone()) {
                out.push(row);
            }
        }
    }
    out
}

/// Evaluates a union query with prefix sharing, scan memoization and up
/// to `threads` parallel workers. Returns the same answer multiset as
/// [`evaluate`](crate::evaluate) (set-equal under `DISTINCT`, bag-equal
/// otherwise), plus the [`EvalStats`] describing how it got there.
///
/// Panic isolation: a panic inside an evaluation or merge worker is
/// caught and the query is **re-run single-threaded**, which computes the
/// identical answer without spawning workers — callers that want the
/// panic surfaced instead use [`try_evaluate_union`].
pub fn evaluate_union(g: &Graph, q: &Query, threads: NonZeroUsize) -> (Solutions, EvalStats) {
    match try_evaluate_union(g, q, threads) {
        Ok(result) => result,
        Err(_) => try_evaluate_union(g, q, NonZeroUsize::MIN)
            .expect("single-threaded union evaluation spawns no workers"),
    }
}

/// [`evaluate_union`] that surfaces a worker panic as a structured
/// [`WorkerPanicked`] error instead of falling back. No partial answer
/// escapes: the routed row shards of a failed pass are dropped whole.
pub fn try_evaluate_union(
    g: &Graph,
    q: &Query,
    threads: NonZeroUsize,
) -> Result<(Solutions, EvalStats), WorkerPanicked> {
    match try_evaluate_union_cancel(g, q, threads, &CancelToken::none()) {
        Ok(r) => Ok(r),
        Err(UnionEvalError::Worker(w)) => Err(w),
        Err(UnionEvalError::Cancelled) => {
            unreachable!("a CancelToken::none() evaluation never cancels")
        }
    }
}

/// [`try_evaluate_union`] with cooperative cancellation: `cancel` is
/// polled at branch boundaries inside every worker (between trie roots),
/// between the planning, evaluation and merge phases, and between shard
/// merges. A tripped token aborts the query with
/// [`UnionEvalError::Cancelled`]; no partial rows escape and no
/// `sparql.union.*` counters for the abandoned pass are published
/// (except `sparql.union.cancelled` itself), so a subsequent identical
/// query behaves bit-identically to one that was never preceded by a
/// cancelled run.
pub fn try_evaluate_union_cancel(
    g: &Graph,
    q: &Query,
    threads: NonZeroUsize,
    cancel: &CancelToken,
) -> Result<(Solutions, EvalStats), UnionEvalError> {
    let reg = obs::global();
    let _total_span = reg.span("sparql.union.total");
    let eval_start = Instant::now();
    let mut stats = EvalStats {
        branches_total: q.bgps.len(),
        ..EvalStats::default()
    };

    // Plan every branch once, with one distinct-counts pass for the whole
    // union (the per-branch evaluator pays this walk per branch).
    let plan_span = reg.span("sparql.union.plan");
    let dc = DistinctCounts::of(g);
    let mut branches: Vec<Vec<TriplePattern>> = Vec::with_capacity(q.bgps.len());
    for bgp in &q.bgps {
        // Branch boundary: a deadline that expires while planning a
        // hundreds-of-branches union stops before evaluation starts.
        if cancel.is_cancelled() {
            reg.add("sparql.union.cancelled", 1);
            return Err(UnionEvalError::Cancelled);
        }
        let vars = bgp.variables();
        if !q.projection.iter().all(|v| vars.contains(v)) {
            stats.branches_pruned += 1;
            continue;
        }
        let plan = plan_bgp_with(g, &dc, bgp);
        let seq: Vec<TriplePattern> = plan.order.iter().map(|&i| bgp.patterns[i]).collect();
        stats.patterns_total += seq.len();
        branches.push(seq);
    }
    // Sorting makes shared prefixes contiguous, so chunking loses little
    // sharing, and duplicated branches always land in the same chunk.
    branches.sort();
    drop(plan_span);

    let workers = threads.get().min(branches.len()).max(1);
    stats.threads = workers;
    let shard_count = workers.next_power_of_two();

    let eval_span = reg.span("sparql.union.eval");
    let maybe_outputs: Vec<Option<WorkerOutput>> = if workers <= 1 {
        vec![run_chunk(g, q, &branches, shard_count, cancel)]
    } else {
        let per = branches.len().div_ceil(workers);
        std::thread::scope(|s| {
            let handles: Vec<_> = branches
                .chunks(per)
                .map(|chunk| {
                    s.spawn(move || {
                        // Panic isolation: a panicking worker (a bug, or
                        // an armed failpoint) is caught here so the scope
                        // joins cleanly and nothing shared is poisoned.
                        catch_unwind(AssertUnwindSafe(|| {
                            fail_point!("sparql.union.worker");
                            run_chunk(g, q, chunk, shard_count, cancel)
                        }))
                        .map_err(|payload| {
                            WorkerPanicked::from_payload("sparql.union.worker", payload)
                        })
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("caught-panic worker never unwinds"))
                .collect::<Result<Vec<_>, _>>()
        })?
    };
    // One cancelled worker cancels the query: every sibling's output is
    // discarded here, whether or not it finished its chunk first.
    let outputs: Vec<WorkerOutput> = match maybe_outputs.into_iter().collect() {
        Some(outputs) => outputs,
        None => {
            reg.add("sparql.union.cancelled", 1);
            return Err(UnionEvalError::Cancelled);
        }
    };

    // Transpose worker outputs into per-shard merge tasks.
    let mut shard_parts: Vec<Vec<Vec<Row>>> = (0..shard_count).map(|_| Vec::new()).collect();
    // Per-worker emitted-row spread — skew here means poor balance.
    // Recorded only once the whole query survives (below), so a pass
    // cancelled during the merge publishes nothing.
    let mut worker_rows: Vec<u64> = Vec::with_capacity(workers);
    for out in outputs {
        stats.scan_cache_hits += out.cache_hits;
        stats.scan_cache_misses += out.cache_misses;
        stats.trie_nodes += out.trie_nodes;
        stats.branches_shared += out.shared_branches;
        worker_rows.push(out.shards.iter().map(|s| s.len() as u64).sum());
        for (shard, rows) in out.shards.into_iter().enumerate() {
            shard_parts[shard].push(rows);
        }
    }
    stats.eval_us = eval_start.elapsed().as_micros() as u64;
    drop(eval_span);

    // Merge phase: each shard deduplicates independently (disjoint
    // writes), in parallel when several workers are available.
    let merge_span = reg.span("sparql.union.merge");
    let merge_start = Instant::now();
    let mut merged: Vec<Vec<Row>> = (0..shard_count).map(|_| Vec::new()).collect();
    if workers > 1 && shard_count > 1 {
        let mut tasks: Vec<Option<Vec<Vec<Row>>>> = shard_parts.into_iter().map(Some).collect();
        let per = shard_count.div_ceil(workers);
        std::thread::scope(|s| {
            let handles: Vec<_> = tasks
                .chunks_mut(per)
                .zip(merged.chunks_mut(per))
                .map(|(task_chunk, out_chunk)| {
                    s.spawn(move || {
                        catch_unwind(AssertUnwindSafe(|| {
                            fail_point!("sparql.union.worker");
                            for (task, out) in task_chunk.iter_mut().zip(out_chunk.iter_mut()) {
                                // Shard boundary: a tripped token stops
                                // the merge; the final poll below turns
                                // the partial merge into `Cancelled`.
                                if cancel.is_cancelled() {
                                    return;
                                }
                                *out = merge_shard(task.take().expect("merge task"), q.distinct);
                            }
                        }))
                        .map_err(|payload| {
                            WorkerPanicked::from_payload("sparql.union.worker", payload)
                        })
                    })
                })
                .collect();
            handles
                .into_iter()
                .try_for_each(|h| h.join().expect("caught-panic worker never unwinds"))
        })?;
    } else {
        for (parts, out) in shard_parts.into_iter().zip(merged.iter_mut()) {
            if cancel.is_cancelled() {
                break;
            }
            *out = merge_shard(parts, q.distinct);
        }
    }
    // A token tripped during the merge left `merged` partial — discard it.
    if cancel.is_cancelled() {
        reg.add("sparql.union.cancelled", 1);
        return Err(UnionEvalError::Cancelled);
    }
    let rows: Vec<Row> = merged.into_iter().flatten().collect();
    stats.merge_us = merge_start.elapsed().as_micros() as u64;
    stats.rows = rows.len();
    drop(merge_span);
    for rows in worker_rows {
        reg.record("sparql.union.worker_rows", rows);
    }
    publish_stats(reg, &stats);

    let var_names = q
        .projection
        .iter()
        .map(|&v| q.var_name(v).to_owned())
        .collect();
    Ok((Solutions { var_names, rows }, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use crate::parser::parse_query;
    use rdf_model::Dictionary;

    const DATA: &str = r#"
        @prefix ex: <http://ex/> .
        ex:anne ex:hasFriend ex:marie .
        ex:marie ex:hasFriend ex:paul .
        ex:paul ex:hasFriend ex:anne .
        ex:anne a ex:Person .
        ex:marie a ex:Person .
        ex:bob ex:knows ex:anne .
    "#;

    fn fixture(query: &str) -> (Graph, Query) {
        let mut dict = Dictionary::new();
        let mut g = Graph::new();
        rdf_io::parse_turtle(DATA, &mut dict, &mut g).expect("fixture parses");
        let q = parse_query(query, &mut dict).expect("query parses");
        (g, q)
    }

    fn threads(n: usize) -> NonZeroUsize {
        NonZeroUsize::new(n).unwrap()
    }

    #[test]
    fn agrees_with_per_branch_evaluator_on_unions() {
        let q = "PREFIX ex: <http://ex/> SELECT ?x WHERE \
                 { { ?x ex:hasFriend ?y } UNION { ?x a ex:Person } UNION { ?x ex:knows ?y } }";
        for distinct in [false, true] {
            let (g, mut query) = fixture(q);
            query.distinct = distinct;
            let legacy = evaluate(&g, &query);
            for t in [1usize, 2, 4] {
                let (got, stats) = evaluate_union(&g, &query, threads(t));
                assert_eq!(
                    got.sorted_rows(),
                    legacy.sorted_rows(),
                    "distinct={distinct} threads={t}"
                );
                assert_eq!(stats.branches_total, 3);
                assert_eq!(stats.rows, got.len());
            }
        }
    }

    #[test]
    fn shared_prefix_counts_scans_saved() {
        // Two branches sharing the same first planned atom must share a
        // trie node at a single worker.
        let q = "PREFIX ex: <http://ex/> SELECT ?x WHERE \
                 { { ?x ex:knows ?y . ?y ex:hasFriend ?z } \
                   UNION { ?x ex:knows ?y . ?y a ex:Person } }";
        let (g, query) = fixture(q);
        let (got, stats) = evaluate_union(&g, &query, threads(1));
        assert_eq!(got.sorted_rows(), evaluate(&g, &query).sorted_rows());
        assert_eq!(stats.patterns_total, 4);
        assert_eq!(
            stats.trie_nodes, 3,
            "the shared ?x ex:knows ?y prefix is one node"
        );
        assert_eq!(stats.shared_prefix_scans(), 1);
        assert_eq!(stats.branches_shared, 1);
    }

    #[test]
    fn scan_cache_hits_across_subtrees() {
        // Both branches end with the same disconnected probe
        // (`?a ex:hasFriend ?b`, always resolving to the same pattern)
        // after *different* first atoms, so the trie cannot share it —
        // but the scan cache answers the repeats.
        let q = "PREFIX ex: <http://ex/> SELECT ?x WHERE \
                 { { ?x ex:knows ?k . ?a ex:hasFriend ?b } \
                   UNION { ?x a ex:Person . ?a ex:hasFriend ?b } }";
        let (g, query) = fixture(q);
        let (got, stats) = evaluate_union(&g, &query, threads(1));
        assert_eq!(got.sorted_rows(), evaluate(&g, &query).sorted_rows());
        assert!(
            stats.scan_cache_hits > 0,
            "repeated probes memoized: {stats:?}"
        );
    }

    #[test]
    fn duplicated_branches_keep_bag_multiplicity() {
        let q = "PREFIX ex: <http://ex/> SELECT ?x WHERE \
                 { { ?x a ex:Person } UNION { ?x a ex:Person } }";
        let (g, mut query) = fixture(q);
        assert!(!query.distinct);
        let legacy = evaluate(&g, &query);
        assert_eq!(legacy.len(), 4, "2 persons × 2 identical branches");
        for t in [1usize, 2] {
            let (got, stats) = evaluate_union(&g, &query, threads(t));
            assert_eq!(got.sorted_rows(), legacy.sorted_rows(), "threads={t}");
            assert_eq!(stats.branches_total, 2);
        }
        query.distinct = true;
        let (got, _) = evaluate_union(&g, &query, threads(1));
        assert_eq!(got.len(), 2, "DISTINCT collapses the duplicate branch");
    }

    #[test]
    fn branches_missing_projection_vars_are_pruned() {
        let q = "PREFIX ex: <http://ex/> SELECT ?x ?y WHERE \
                 { { ?x ex:hasFriend ?y } UNION { ?x a ex:Person } }";
        let (g, query) = fixture(q);
        let (got, stats) = evaluate_union(&g, &query, threads(2));
        assert_eq!(got.sorted_rows(), evaluate(&g, &query).sorted_rows());
        assert_eq!(stats.branches_pruned, 1, "the ?y-less branch is skipped");
    }

    #[test]
    fn empty_graph_and_empty_union() {
        let mut dict = Dictionary::new();
        let g = Graph::new();
        let q = parse_query(
            "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x a ex:Person }",
            &mut dict,
        )
        .unwrap();
        for t in [1usize, 4] {
            let (got, stats) = evaluate_union(&g, &q, threads(t));
            assert!(got.is_empty());
            assert_eq!(stats.rows, 0);
        }
    }

    #[test]
    fn stats_summary_renders() {
        let (g, query) = fixture(
            "PREFIX ex: <http://ex/> SELECT ?x WHERE \
             { { ?x ex:hasFriend ?y } UNION { ?x a ex:Person } }",
        );
        let (_, stats) = evaluate_union(&g, &query, threads(2));
        let line = stats.summary();
        assert!(line.contains("2 branches"), "{line}");
        assert!(line.contains("worker(s)"), "{line}");
    }
}
