//! Log2-bucketed histograms.
//!
//! Bucket `0` holds the value `0`; bucket `i ≥ 1` holds the half-open
//! power-of-two range `[2^(i-1), 2^i)`. 65 buckets therefore cover the
//! whole `u64` domain with no configuration and O(1) recording, which is
//! all a latency/size distribution needs for threshold arithmetic (means)
//! and Prometheus export (cumulative buckets).
//!
//! [`Histogram::merge`] is associative and commutative and conserves
//! per-bucket counts (property-tested), so per-worker histograms can be
//! folded together in any order.

/// Number of buckets: one for zero plus one per power of two up to 2^63.
pub const BUCKETS: usize = 65;

/// The bucket a value lands in.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// The inclusive value range `[lo, hi]` of bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < BUCKETS, "bucket index {i} out of range");
    if i == 0 {
        (0, 0)
    } else if i == 64 {
        (1u64 << 63, u64::MAX)
    } else {
        (1u64 << (i - 1), (1u64 << i) - 1)
    }
}

/// A fixed-shape log2 histogram: total count, total sum, per-bucket counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            count: 0,
            sum: 0,
            buckets: [0; BUCKETS],
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.buckets[bucket_index(value)] += 1;
    }

    /// Folds `other` into `self`. Associative and commutative; bucket
    /// counts are conserved (`merge(a, b).count() == a.count() + b.count()`
    /// bucket by bucket).
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean of the observations, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The raw per-bucket counts.
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Whether no observation was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_matches_bounds() {
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_index(lo), i, "lo of bucket {i}");
            assert_eq!(bucket_index(hi), i, "hi of bucket {i}");
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn record_tracks_count_sum_mean() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), None);
        for v in [0u64, 1, 5, 10] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 16);
        assert_eq!(h.mean(), Some(4.0));
        assert_eq!(h.buckets().iter().sum::<u64>(), h.count());
    }

    #[test]
    fn merge_is_addition() {
        let mut a = Histogram::new();
        a.record(3);
        a.record(100);
        let mut b = Histogram::new();
        b.record(3);
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab.count(), 3);
        assert_eq!(ab.sum(), 106);
        assert_eq!(ab.buckets()[bucket_index(3)], 2);
    }
}
