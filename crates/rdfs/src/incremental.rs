//! Incremental saturation maintenance.
//!
//! "While correct, such a technique raises performance issues when the data
//! is dynamic. First, if the base data changes, one has to update the set
//! of inferred facts […] the same applies in the case of changes to the set
//! of semantic constraints" (§I). This module provides the three
//! maintenance algorithms the paper's Fig. 3 thresholds compare:
//!
//! * [`RecomputeMaintainer`] — the baseline: re-saturate from scratch on
//!   every update;
//! * [`DRedMaintainer`] — *delete and re-derive*: deletions over-delete
//!   everything transitively derivable from the removed triple, then
//!   re-derive what is still supported; insertions run a semi-naive delta.
//!   This is the classical materialised-view maintenance approach used by
//!   OWLIM-class systems (§II-C) and works uniformly for instance *and*
//!   schema updates, including cyclic schemas;
//! * [`CountingMaintainer`] — truth maintenance à la Broekstra & Kampman
//!   (the paper's ref. \[11\]): every saturated triple carries the number
//!   of derivations supporting it, so instance deletions are
//!   decrement-and-drop. Schema updates re-close the (small) schema and
//!   adjust counts only for the base triples whose consequence sets could
//!   have changed.
//!
//! All three implement [`Maintainer`] and are property-tested equivalent
//! to recomputation under random update streams.

use crate::parallel::saturate_parallel;
use crate::rules::{consequences_of, one_step_derivable};
use crate::saturation::{derive_instance_consequences, saturate};
use crate::schema::Schema;
use rdf_model::{Graph, Triple, Vocab};
use rustc_hash::{FxHashMap, FxHashSet};
use std::num::NonZeroUsize;

/// What kind of update a triple insertion/deletion was classified as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateKind {
    /// An assertion (class or property) was added.
    InstanceInsert,
    /// An assertion was removed.
    InstanceDelete,
    /// An RDFS constraint was added.
    SchemaInsert,
    /// An RDFS constraint was removed.
    SchemaDelete,
    /// The update did not change the base graph (duplicate insert /
    /// missing delete).
    Noop,
    /// A batch of updates (possibly mixed instance/schema).
    Batch,
}

/// Outcome of one maintenance operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateStats {
    /// How the update was classified.
    pub kind: UpdateKind,
    /// Net triples added to the saturation.
    pub added: usize,
    /// Net triples removed from the saturation.
    pub removed: usize,
    /// Derivation steps examined — an implementation-cost proxy used by
    /// the cost model alongside wall-clock time.
    pub work: usize,
}

impl UpdateStats {
    fn noop() -> Self {
        UpdateStats {
            kind: UpdateKind::Noop,
            added: 0,
            removed: 0,
            work: 0,
        }
    }
}

/// A saturation maintained under updates.
///
/// Invariant, checked by the test suite: after any sequence of operations,
/// `self.saturated()` equals `saturate(self.base())`.
pub trait Maintainer {
    /// The base (explicit) graph `G`.
    fn base(&self) -> &Graph;
    /// The maintained saturation `G∞`.
    fn saturated(&self) -> &Graph;
    /// Inserts a triple into the base graph and maintains the saturation.
    fn insert(&mut self, t: Triple) -> UpdateStats;
    /// Removes a triple from the base graph and maintains the saturation.
    fn delete(&mut self, t: &Triple) -> UpdateStats;
    /// The algorithm's display name.
    fn algorithm(&self) -> MaintenanceAlgorithm;

    /// Inserts a batch, maintaining as the implementation sees fit
    /// (default: one at a time). Bulk loads should prefer this. Reports
    /// [`UpdateKind::Noop`] when nothing in the batch changed the base.
    fn insert_batch(&mut self, triples: &[Triple]) -> UpdateStats {
        let mut total = UpdateStats {
            kind: UpdateKind::Noop,
            added: 0,
            removed: 0,
            work: 0,
        };
        for &t in triples {
            let s = self.insert(t);
            if s.kind != UpdateKind::Noop {
                total.kind = UpdateKind::Batch;
            }
            total.added += s.added;
            total.removed += s.removed;
            total.work += s.work;
        }
        total
    }

    /// Deletes a batch (default: one at a time). Reports
    /// [`UpdateKind::Noop`] when nothing in the batch changed the base.
    fn delete_batch(&mut self, triples: &[Triple]) -> UpdateStats {
        let mut total = UpdateStats {
            kind: UpdateKind::Noop,
            added: 0,
            removed: 0,
            work: 0,
        };
        for t in triples {
            let s = self.delete(t);
            if s.kind != UpdateKind::Noop {
                total.kind = UpdateKind::Batch;
            }
            total.added += s.added;
            total.removed += s.removed;
            total.work += s.work;
        }
        total
    }

    /// Turns recording of the *entailed* delta on or off. While on, every
    /// triple that enters or leaves the saturation is appended to a buffer
    /// drained by [`Maintainer::take_entailed_delta`]. Off by default; the
    /// default implementation ignores the request (see
    /// [`Maintainer::supports_delta_tracking`]).
    fn set_delta_tracking(&mut self, _on: bool) {}

    /// Drains the entailed delta recorded since the last drain: `(t, true)`
    /// when `t` entered `G∞`, `(t, false)` when it left. Within one drain a
    /// triple appears at most once per direction net of cancellation only
    /// if the maintainer guarantees it — consumers must consolidate.
    fn take_entailed_delta(&mut self) -> Vec<(Triple, bool)> {
        Vec::new()
    }

    /// True when this maintainer actually records entailed deltas.
    fn supports_delta_tracking(&self) -> bool {
        false
    }
}

/// Selector for the three maintenance algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MaintenanceAlgorithm {
    /// Re-saturate from scratch on every update.
    Recompute,
    /// Delete-and-rederive.
    DRed,
    /// Derivation counting.
    Counting,
}

impl MaintenanceAlgorithm {
    /// All algorithms, for sweeps.
    pub const ALL: [MaintenanceAlgorithm; 3] = [
        MaintenanceAlgorithm::Recompute,
        MaintenanceAlgorithm::DRed,
        MaintenanceAlgorithm::Counting,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            MaintenanceAlgorithm::Recompute => "recompute",
            MaintenanceAlgorithm::DRed => "dred",
            MaintenanceAlgorithm::Counting => "counting",
        }
    }

    /// Builds a maintainer over `base` using this algorithm.
    pub fn build(self, base: Graph, vocab: Vocab) -> Box<dyn Maintainer + Send> {
        self.build_with_threads(base, vocab, NonZeroUsize::MIN)
    }

    /// Like [`MaintenanceAlgorithm::build`], with a thread count for the
    /// saturation passes. Only [`MaintenanceAlgorithm::Recompute`]
    /// saturates from scratch, so only it uses the parallel engine; the
    /// delta-based maintainers ignore the knob.
    pub fn build_with_threads(
        self,
        base: Graph,
        vocab: Vocab,
        threads: NonZeroUsize,
    ) -> Box<dyn Maintainer + Send> {
        match self {
            MaintenanceAlgorithm::Recompute => {
                Box::new(RecomputeMaintainer::new_with_threads(base, vocab, threads))
            }
            MaintenanceAlgorithm::DRed => Box::new(DRedMaintainer::new(base, vocab)),
            MaintenanceAlgorithm::Counting => Box::new(CountingMaintainer::new(base, vocab)),
        }
    }
}

fn classify(t: &Triple, vocab: &Vocab, insert: bool) -> UpdateKind {
    match (vocab.is_schema_property(t.p), insert) {
        (true, true) => UpdateKind::SchemaInsert,
        (true, false) => UpdateKind::SchemaDelete,
        (false, true) => UpdateKind::InstanceInsert,
        (false, false) => UpdateKind::InstanceDelete,
    }
}

/// Semi-naive forward closure from `frontier` (already inserted in `sat`).
/// Returns `(new_triples, work)`.
fn seminaive_extend(
    sat: &mut Graph,
    mut frontier: Vec<Triple>,
    vocab: &Vocab,
    mut delta: Option<&mut Vec<(Triple, bool)>>,
) -> (usize, usize) {
    // Crash site for the fault-injection suite: the base graph is already
    // updated but the saturation delta has not been applied yet — exactly
    // the state a recovery must be able to reconverge from.
    webreason_failpoints::fail_point!("store.maintain.incremental");
    let mut added = 0;
    let mut work = 0;
    let mut buf: Vec<Triple> = Vec::new();
    while !frontier.is_empty() {
        buf.clear();
        for t in &frontier {
            consequences_of(t, sat, vocab, |_, c| buf.push(c));
        }
        work += buf.len();
        frontier.clear();
        for &c in &buf {
            if sat.insert(c) {
                added += 1;
                frontier.push(c);
                if let Some(d) = delta.as_deref_mut() {
                    d.push((c, true));
                }
            }
        }
    }
    (added, work)
}

// ---------------------------------------------------------------------------
// Recompute
// ---------------------------------------------------------------------------

/// The baseline maintainer: every update re-saturates the base graph,
/// using the sharded parallel engine when built with more than one thread.
#[derive(Debug, Clone)]
pub struct RecomputeMaintainer {
    vocab: Vocab,
    base: Graph,
    sat: Graph,
    threads: NonZeroUsize,
    delta: Option<Vec<(Triple, bool)>>,
}

impl RecomputeMaintainer {
    /// Builds the maintainer and computes the initial saturation
    /// (single-threaded).
    pub fn new(base: Graph, vocab: Vocab) -> Self {
        Self::new_with_threads(base, vocab, NonZeroUsize::MIN)
    }

    /// Builds the maintainer, saturating with `threads` worker threads on
    /// construction and on every recomputation.
    pub fn new_with_threads(base: Graph, vocab: Vocab, threads: NonZeroUsize) -> Self {
        let sat = Self::saturate_base(&base, &vocab, threads);
        RecomputeMaintainer {
            vocab,
            base,
            sat,
            threads,
            delta: None,
        }
    }

    fn saturate_base(base: &Graph, vocab: &Vocab, threads: NonZeroUsize) -> Graph {
        if threads.get() > 1 {
            saturate_parallel(base, vocab, threads).graph
        } else {
            saturate(base, vocab).graph
        }
    }

    fn recompute(&mut self, kind: UpdateKind) -> UpdateStats {
        let old_len = self.sat.len();
        let graph = Self::saturate_base(&self.base, &self.vocab, self.threads);
        let work = graph.len();
        let new_len = graph.len();
        if let Some(buf) = &mut self.delta {
            // Recomputation gives no per-triple trail, so diff wholesale.
            for t in self.sat.iter() {
                if !graph.contains(&t) {
                    buf.push((t, false));
                }
            }
            for t in graph.iter() {
                if !self.sat.contains(&t) {
                    buf.push((t, true));
                }
            }
        }
        self.sat = graph;
        UpdateStats {
            kind,
            added: new_len.saturating_sub(old_len),
            removed: old_len.saturating_sub(new_len),
            work,
        }
    }
}

impl Maintainer for RecomputeMaintainer {
    fn base(&self) -> &Graph {
        &self.base
    }
    fn saturated(&self) -> &Graph {
        &self.sat
    }
    fn insert(&mut self, t: Triple) -> UpdateStats {
        if !self.base.insert(t) {
            return UpdateStats::noop();
        }
        self.recompute(classify(&t, &self.vocab, true))
    }
    fn delete(&mut self, t: &Triple) -> UpdateStats {
        if !self.base.remove(t) {
            return UpdateStats::noop();
        }
        self.recompute(classify(t, &self.vocab, false))
    }
    fn algorithm(&self) -> MaintenanceAlgorithm {
        MaintenanceAlgorithm::Recompute
    }

    fn set_delta_tracking(&mut self, on: bool) {
        match (on, self.delta.is_some()) {
            (true, false) => self.delta = Some(Vec::new()),
            (false, _) => self.delta = None,
            _ => {}
        }
    }
    fn take_entailed_delta(&mut self) -> Vec<(Triple, bool)> {
        self.delta.as_mut().map(std::mem::take).unwrap_or_default()
    }
    fn supports_delta_tracking(&self) -> bool {
        true
    }

    /// Batches pay a single recomputation — the whole point of batching
    /// under this algorithm.
    fn insert_batch(&mut self, triples: &[Triple]) -> UpdateStats {
        let changed = triples.iter().filter(|&&t| self.base.insert(t)).count();
        if changed == 0 {
            return UpdateStats::noop();
        }
        self.recompute(UpdateKind::Batch)
    }

    fn delete_batch(&mut self, triples: &[Triple]) -> UpdateStats {
        let changed = triples.iter().filter(|t| self.base.remove(t)).count();
        if changed == 0 {
            return UpdateStats::noop();
        }
        self.recompute(UpdateKind::Batch)
    }
}

// ---------------------------------------------------------------------------
// DRed
// ---------------------------------------------------------------------------

/// Delete-and-rederive maintenance over the saturated graph.
#[derive(Debug, Clone)]
pub struct DRedMaintainer {
    vocab: Vocab,
    base: Graph,
    sat: Graph,
    delta: Option<Vec<(Triple, bool)>>,
}

impl DRedMaintainer {
    /// Builds the maintainer and computes the initial saturation.
    pub fn new(base: Graph, vocab: Vocab) -> Self {
        let sat = saturate(&base, &vocab).graph;
        DRedMaintainer {
            vocab,
            base,
            sat,
            delta: None,
        }
    }
}

impl Maintainer for DRedMaintainer {
    fn base(&self) -> &Graph {
        &self.base
    }
    fn saturated(&self) -> &Graph {
        &self.sat
    }

    fn insert(&mut self, t: Triple) -> UpdateStats {
        if !self.base.insert(t) {
            return UpdateStats::noop();
        }
        let kind = classify(&t, &self.vocab, true);
        if !self.sat.insert(t) {
            // Already derived: saturation unchanged.
            return UpdateStats {
                kind,
                added: 0,
                removed: 0,
                work: 0,
            };
        }
        if let Some(buf) = &mut self.delta {
            buf.push((t, true));
        }
        let (added, work) =
            seminaive_extend(&mut self.sat, vec![t], &self.vocab, self.delta.as_mut());
        UpdateStats {
            kind,
            added: added + 1,
            removed: 0,
            work,
        }
    }

    fn delete(&mut self, t: &Triple) -> UpdateStats {
        if !self.base.remove(t) {
            return UpdateStats::noop();
        }
        let kind = classify(t, &self.vocab, false);
        let (removed, work) = self.dred_delete(vec![*t]);
        UpdateStats {
            kind,
            added: 0,
            removed,
            work,
        }
    }

    fn algorithm(&self) -> MaintenanceAlgorithm {
        MaintenanceAlgorithm::DRed
    }

    fn set_delta_tracking(&mut self, on: bool) {
        match (on, self.delta.is_some()) {
            (true, false) => self.delta = Some(Vec::new()),
            (false, _) => self.delta = None,
            _ => {}
        }
    }
    fn take_entailed_delta(&mut self) -> Vec<(Triple, bool)> {
        self.delta.as_mut().map(std::mem::take).unwrap_or_default()
    }
    fn supports_delta_tracking(&self) -> bool {
        true
    }

    /// A batch insertion runs one semi-naive pass from all new triples.
    fn insert_batch(&mut self, triples: &[Triple]) -> UpdateStats {
        let mut seeds = Vec::new();
        for &t in triples {
            if self.base.insert(t) && self.sat.insert(t) {
                seeds.push(t);
            }
        }
        if seeds.is_empty() {
            return UpdateStats::noop();
        }
        if let Some(buf) = &mut self.delta {
            buf.extend(seeds.iter().map(|&t| (t, true)));
        }
        let n_seeds = seeds.len();
        let (added, work) =
            seminaive_extend(&mut self.sat, seeds, &self.vocab, self.delta.as_mut());
        UpdateStats {
            kind: UpdateKind::Batch,
            added: added + n_seeds,
            removed: 0,
            work,
        }
    }

    /// A batch deletion over-deletes and re-derives **once** for the whole
    /// batch, instead of paying the re-derivation per triple.
    fn delete_batch(&mut self, triples: &[Triple]) -> UpdateStats {
        let removed: Vec<Triple> = triples
            .iter()
            .copied()
            .filter(|t| self.base.remove(t))
            .collect();
        if removed.is_empty() {
            return UpdateStats::noop();
        }
        let (removed, work) = self.dred_delete(removed);
        UpdateStats {
            kind: UpdateKind::Batch,
            added: 0,
            removed,
            work,
        }
    }
}

impl DRedMaintainer {
    /// The DRed core: over-delete everything transitively derivable from
    /// the seeds (already removed from the base), then re-derive what is
    /// still supported. Returns `(net_removed, work)`.
    fn dred_delete(&mut self, seeds: Vec<Triple>) -> (usize, usize) {
        webreason_failpoints::fail_point!("store.maintain.incremental");
        let mut work = 0;

        // 1. Over-delete: everything transitively derivable from the seeds.
        let mut over: FxHashSet<Triple> = seeds.iter().copied().collect();
        let mut frontier = seeds;
        while let Some(d) = frontier.pop() {
            consequences_of(&d, &self.sat, &self.vocab, |_, c| {
                work += 1;
                if self.sat.contains(&c) && over.insert(c) {
                    frontier.push(c);
                }
            });
        }
        for d in &over {
            self.sat.remove(d);
        }

        // 2. Re-derive: over-deleted triples still in the base or derivable
        //    in one step from the surviving saturation come back…
        let mut rederive = Vec::new();
        for d in &over {
            work += 1;
            if self.base.contains(d) || one_step_derivable(d, &self.sat, &self.vocab) {
                self.sat.insert(*d);
                rederive.push(*d);
            }
        }
        // …and their consequences with them. Re-derived triples were all
        // present before the over-deletion, so no additions are recorded.
        let (_readded, w2) = seminaive_extend(&mut self.sat, rederive, &self.vocab, None);
        work += w2;

        // Everything re-derived was previously present, so the net effect is
        // pure removal.
        let removed = over.iter().filter(|d| !self.sat.contains(d)).count();
        if let Some(buf) = &mut self.delta {
            buf.extend(
                over.iter()
                    .filter(|d| !self.sat.contains(d))
                    .map(|&d| (d, false)),
            );
        }
        (removed, work)
    }
}

// ---------------------------------------------------------------------------
// Counting
// ---------------------------------------------------------------------------

/// Derivation-counting maintenance (Broekstra & Kampman, ref. \[11\]).
///
/// Every instance-level triple in the saturation carries
/// `count = [t ∈ base] + |{base triples whose consequence set contains t}|`.
/// Because the schema is closed up front, each base triple's consequence
/// set is computed in one lookup pass (`derive_instance_consequences`),
/// making counts exact — including under cyclic schemas. The (small)
/// schema-closure part of the saturation is re-derived wholesale on schema
/// updates and diffed.
pub struct CountingMaintainer {
    vocab: Vocab,
    base: Graph,
    sat: Graph,
    counts: FxHashMap<Triple, u32>,
    schema: Schema,
    closed_schema: FxHashSet<Triple>,
    delta: Option<Vec<(Triple, bool)>>,
}

impl CountingMaintainer {
    /// Builds the maintainer, computing the initial saturation and counts.
    pub fn new(base: Graph, vocab: Vocab) -> Self {
        let schema = Schema::extract(&base, &vocab);
        let mut m = CountingMaintainer {
            vocab,
            sat: base.clone(),
            base,
            counts: FxHashMap::default(),
            schema,
            closed_schema: FxHashSet::default(),
            delta: None,
        };
        m.closed_schema = m.schema.closed_triples(&m.vocab).into_iter().collect();
        for &t in &m.closed_schema {
            m.sat.insert(t);
        }
        let mut cons = FxHashSet::default();
        for t in m.base.iter() {
            *m.counts.entry(t).or_insert(0) += 1;
            cons.clear();
            derive_instance_consequences(&t, &m.vocab, &m.schema, |_, c| {
                cons.insert(c);
            });
            for &c in &cons {
                *m.counts.entry(c).or_insert(0) += 1;
                m.sat.insert(c);
            }
        }
        m
    }

    /// The derivation count of a saturated triple (0 if absent) — exposed
    /// for tests and diagnostics.
    pub fn count_of(&self, t: &Triple) -> u32 {
        self.counts.get(t).copied().unwrap_or(0)
    }

    fn cons_set(t: &Triple, vocab: &Vocab, schema: &Schema) -> FxHashSet<Triple> {
        let mut out = FxHashSet::default();
        derive_instance_consequences(t, vocab, schema, |_, c| {
            out.insert(c);
        });
        out
    }

    fn inc(&mut self, d: Triple) -> bool {
        let c = self.counts.entry(d).or_insert(0);
        *c += 1;
        if *c == 1 {
            // The saturation only changes when `d` was not already present
            // via the schema closure — only then is a delta recorded.
            if self.sat.insert(d) {
                if let Some(buf) = &mut self.delta {
                    buf.push((d, true));
                }
            }
            true
        } else {
            false
        }
    }

    fn dec(&mut self, d: &Triple) -> bool {
        match self.counts.get_mut(d) {
            Some(c) if *c > 1 => {
                *c -= 1;
                false
            }
            Some(_) => {
                self.counts.remove(d);
                // A schema-closure triple stays even at count 0 (its
                // membership is governed by the closure set).
                if !self.closed_schema.contains(d) {
                    if self.sat.remove(d) {
                        if let Some(buf) = &mut self.delta {
                            buf.push((*d, false));
                        }
                    }
                    true
                } else {
                    false
                }
            }
            None => false,
        }
    }

    fn instance_insert(&mut self, t: Triple) -> UpdateStats {
        let mut added = 0;
        if self.inc(t) {
            added += 1;
        }
        let cons = Self::cons_set(&t, &self.vocab, &self.schema);
        let work = cons.len();
        for d in cons {
            if self.inc(d) {
                added += 1;
            }
        }
        UpdateStats {
            kind: UpdateKind::InstanceInsert,
            added,
            removed: 0,
            work,
        }
    }

    fn instance_delete(&mut self, t: &Triple) -> UpdateStats {
        let mut removed = 0;
        if self.dec(t) {
            removed += 1;
        }
        let cons = Self::cons_set(t, &self.vocab, &self.schema);
        let work = cons.len();
        for d in cons {
            if self.dec(&d) {
                removed += 1;
            }
        }
        UpdateStats {
            kind: UpdateKind::InstanceDelete,
            added: 0,
            removed,
            work,
        }
    }

    /// Handles a schema triple insertion or deletion (the base graph has
    /// already been updated). Re-closes the schema and adjusts counts for
    /// the base triples whose consequence sets may have changed.
    fn schema_update(&mut self, kind: UpdateKind) -> UpdateStats {
        let old_schema = std::mem::take(&mut self.schema);
        let new_schema = Schema::extract(&self.base, &self.vocab);
        let (classes, props) = old_schema.diff_affected(&new_schema);
        let mut work = 0;
        let mut added = 0;
        let mut removed = 0;

        // Collect the affected base triples first (cannot mutate while
        // iterating the index).
        let mut affected: Vec<Triple> = Vec::new();
        for &c in &classes {
            if let Some(ss) = self.base.subjects_with(self.vocab.rdf_type, c) {
                affected.extend(ss.iter().map(|&s| Triple::new(s, self.vocab.rdf_type, c)));
            }
        }
        for &p in &props {
            if self.vocab.is_schema_property(p) || p == self.vocab.rdf_type {
                continue; // fragment: built-ins are not data properties
            }
            affected.extend(
                self.base
                    .pairs_with_property(p)
                    .map(|(s, o)| Triple::new(s, p, o)),
            );
        }

        for t in affected {
            let old_cons = Self::cons_set(&t, &self.vocab, &old_schema);
            let new_cons = Self::cons_set(&t, &self.vocab, &new_schema);
            work += old_cons.len() + new_cons.len();
            for &d in new_cons.difference(&old_cons) {
                if self.inc(d) {
                    added += 1;
                }
            }
            for d in old_cons.difference(&new_cons) {
                if self.dec(d) {
                    removed += 1;
                }
            }
        }

        // Swap the schema-closure part of the saturation.
        let new_closed: FxHashSet<Triple> =
            new_schema.closed_triples(&self.vocab).into_iter().collect();
        for d in self.closed_schema.difference(&new_closed) {
            // Gone from the closure and not independently counted → drop.
            if self.counts.get(d).copied().unwrap_or(0) == 0 && self.sat.remove(d) {
                removed += 1;
                if let Some(buf) = &mut self.delta {
                    buf.push((*d, false));
                }
            }
        }
        for &d in new_closed.difference(&self.closed_schema) {
            if self.sat.insert(d) {
                added += 1;
                if let Some(buf) = &mut self.delta {
                    buf.push((d, true));
                }
            }
        }
        self.closed_schema = new_closed;
        self.schema = new_schema;
        UpdateStats {
            kind,
            added,
            removed,
            work,
        }
    }
}

impl Maintainer for CountingMaintainer {
    fn base(&self) -> &Graph {
        &self.base
    }
    fn saturated(&self) -> &Graph {
        &self.sat
    }

    fn insert(&mut self, t: Triple) -> UpdateStats {
        if !self.base.insert(t) {
            return UpdateStats::noop();
        }
        if self.vocab.is_schema_property(t.p) {
            // The inserted constraint itself is a base triple: count it so
            // a later delete keeps it while it remains in the closure.
            self.inc(t);
            self.schema_update(UpdateKind::SchemaInsert)
        } else {
            self.instance_insert(t)
        }
    }

    fn delete(&mut self, t: &Triple) -> UpdateStats {
        if !self.base.remove(t) {
            return UpdateStats::noop();
        }
        if self.vocab.is_schema_property(t.p) {
            self.dec(t);
            self.schema_update(UpdateKind::SchemaDelete)
        } else {
            self.instance_delete(t)
        }
    }

    fn algorithm(&self) -> MaintenanceAlgorithm {
        MaintenanceAlgorithm::Counting
    }

    fn set_delta_tracking(&mut self, on: bool) {
        match (on, self.delta.is_some()) {
            (true, false) => self.delta = Some(Vec::new()),
            (false, _) => self.delta = None,
            _ => {}
        }
    }
    fn take_entailed_delta(&mut self) -> Vec<(Triple, bool)> {
        self.delta.as_mut().map(std::mem::take).unwrap_or_default()
    }
    fn supports_delta_tracking(&self) -> bool {
        true
    }
}

// The saturation invariant `saturated() == saturate(base())` is what the
// tests below check after every operation.
#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::{Dictionary, TermId};

    struct Fx {
        dict: Dictionary,
        vocab: Vocab,
        g: Graph,
    }

    impl Fx {
        fn new() -> Self {
            let mut dict = Dictionary::new();
            let vocab = Vocab::intern(&mut dict);
            Fx {
                dict,
                vocab,
                g: Graph::new(),
            }
        }
        fn id(&mut self, n: &str) -> TermId {
            self.dict.encode_iri(&format!("http://ex/{n}"))
        }
        fn add(&mut self, s: TermId, p: TermId, o: TermId) {
            self.g.insert(Triple::new(s, p, o));
        }
    }

    fn check_invariant(m: &dyn Maintainer, vocab: &Vocab) {
        let expect = saturate(m.base(), vocab).graph;
        assert_eq!(
            m.saturated(),
            &expect,
            "{:?}: maintained saturation diverged from recomputation",
            m.algorithm()
        );
    }

    fn university_base() -> (Fx, Vec<Triple>) {
        let mut f = Fx::new();
        let (student, person, takes, attends, course, anne, bob, db) = (
            f.id("Student"),
            f.id("Person"),
            f.id("takes"),
            f.id("attends"),
            f.id("Course"),
            f.id("Anne"),
            f.id("Bob"),
            f.id("DB"),
        );
        let v = f.vocab;
        f.add(student, v.sub_class_of, person);
        f.add(takes, v.sub_property_of, attends);
        f.add(takes, v.domain, student);
        f.add(takes, v.range, course);
        f.add(anne, takes, db);
        f.add(bob, v.rdf_type, student);
        let extra = vec![
            Triple::new(bob, takes, db),
            Triple::new(anne, v.rdf_type, student),
            Triple::new(course, v.sub_class_of, person), // schema insert
            Triple::new(attends, v.domain, person),      // schema insert
        ];
        (f, extra)
    }

    #[test]
    fn all_algorithms_maintain_through_mixed_updates() {
        for algo in MaintenanceAlgorithm::ALL {
            let (f, extra) = university_base();
            let mut m = algo.build(f.g.clone(), f.vocab);
            check_invariant(m.as_ref(), &f.vocab);
            // inserts
            for &t in &extra {
                m.insert(t);
                check_invariant(m.as_ref(), &f.vocab);
            }
            // deletes (reverse order), including schema deletions
            for t in extra.iter().rev() {
                m.delete(t);
                check_invariant(m.as_ref(), &f.vocab);
            }
            // delete original base triples too
            let base_triples: Vec<Triple> = f.g.iter().collect();
            for t in base_triples {
                m.delete(&t);
                check_invariant(m.as_ref(), &f.vocab);
            }
            assert!(m.base().is_empty());
            assert!(m.saturated().is_empty());
        }
    }

    #[test]
    fn threaded_recompute_matches_single_threaded() {
        let (f, extra) = university_base();
        for threads in [2usize, 4] {
            let threads = NonZeroUsize::new(threads).unwrap();
            let mut par = RecomputeMaintainer::new_with_threads(f.g.clone(), f.vocab, threads);
            let mut seq = RecomputeMaintainer::new(f.g.clone(), f.vocab);
            assert_eq!(par.saturated(), seq.saturated());
            for &t in &extra {
                par.insert(t);
                seq.insert(t);
                assert_eq!(par.saturated(), seq.saturated(), "{threads} threads");
                check_invariant(&par, &f.vocab);
            }
        }
    }

    #[test]
    fn duplicate_insert_and_missing_delete_are_noops() {
        let (f, _) = university_base();
        for algo in MaintenanceAlgorithm::ALL {
            let mut m = algo.build(f.g.clone(), f.vocab);
            let existing = f.g.iter().next().unwrap();
            assert_eq!(m.insert(existing).kind, UpdateKind::Noop);
            let absent = Triple::new(existing.s, existing.p, existing.s);
            assert_eq!(m.delete(&absent).kind, UpdateKind::Noop);
            check_invariant(m.as_ref(), &f.vocab);
        }
    }

    #[test]
    fn derived_triple_survives_while_alternative_support_exists() {
        // Two facts each entail (anne type Person); deleting one keeps it.
        let mut f = Fx::new();
        let (hf, knows, person, anne, m1, m2) = (
            f.id("hasFriend"),
            f.id("knows"),
            f.id("Person"),
            f.id("Anne"),
            f.id("Marie"),
            f.id("Max"),
        );
        let v = f.vocab;
        f.add(hf, v.domain, person);
        f.add(knows, v.domain, person);
        f.add(anne, hf, m1);
        f.add(anne, knows, m2);
        let derived = Triple::new(anne, v.rdf_type, person);

        for algo in MaintenanceAlgorithm::ALL {
            let mut m = algo.build(f.g.clone(), f.vocab);
            assert!(m.saturated().contains(&derived));
            m.delete(&Triple::new(anne, hf, m1));
            assert!(
                m.saturated().contains(&derived),
                "{:?}: alternative support",
                algo.name()
            );
            m.delete(&Triple::new(anne, knows, m2));
            assert!(
                !m.saturated().contains(&derived),
                "{:?}: no support left",
                algo.name()
            );
            check_invariant(m.as_ref(), &f.vocab);
        }
    }

    #[test]
    fn explicit_triple_survives_deletion_of_its_derivation() {
        // (anne type Person) both asserted and derived: deleting the
        // deriving fact must keep the assertion.
        let mut f = Fx::new();
        let (hf, person, anne, marie) = (
            f.id("hasFriend"),
            f.id("Person"),
            f.id("Anne"),
            f.id("Marie"),
        );
        let v = f.vocab;
        f.add(hf, v.domain, person);
        f.add(anne, hf, marie);
        f.add(anne, v.rdf_type, person);
        for algo in MaintenanceAlgorithm::ALL {
            let mut m = algo.build(f.g.clone(), f.vocab);
            m.delete(&Triple::new(anne, hf, marie));
            assert!(
                m.saturated()
                    .contains(&Triple::new(anne, v.rdf_type, person)),
                "{}",
                algo.name()
            );
            check_invariant(m.as_ref(), &f.vocab);
        }
    }

    #[test]
    fn schema_insert_types_existing_instances() {
        let mut f = Fx::new();
        let (hf, person, anne, marie) = (
            f.id("hasFriend"),
            f.id("Person"),
            f.id("Anne"),
            f.id("Marie"),
        );
        let v = f.vocab;
        f.add(anne, hf, marie);
        for algo in MaintenanceAlgorithm::ALL {
            let mut m = algo.build(f.g.clone(), f.vocab);
            assert!(!m
                .saturated()
                .contains(&Triple::new(anne, v.rdf_type, person)));
            let stats = m.insert(Triple::new(hf, v.domain, person));
            assert_eq!(stats.kind, UpdateKind::SchemaInsert);
            assert!(
                m.saturated()
                    .contains(&Triple::new(anne, v.rdf_type, person)),
                "{}",
                algo.name()
            );
            check_invariant(m.as_ref(), &f.vocab);
        }
    }

    #[test]
    fn schema_delete_retracts_derived_types() {
        let mut f = Fx::new();
        let (cat, mammal, tom) = (f.id("Cat"), f.id("Mammal"), f.id("Tom"));
        let v = f.vocab;
        f.add(cat, v.sub_class_of, mammal);
        f.add(tom, v.rdf_type, cat);
        let derived = Triple::new(tom, v.rdf_type, mammal);
        for algo in MaintenanceAlgorithm::ALL {
            let mut m = algo.build(f.g.clone(), f.vocab);
            assert!(m.saturated().contains(&derived));
            let stats = m.delete(&Triple::new(cat, v.sub_class_of, mammal));
            assert_eq!(stats.kind, UpdateKind::SchemaDelete);
            assert!(!m.saturated().contains(&derived), "{}", algo.name());
            check_invariant(m.as_ref(), &f.vocab);
        }
    }

    #[test]
    fn redundant_schema_edge_deletion_keeps_closure() {
        // A ⊑ B, B ⊑ C, A ⊑ C (redundant). Deleting the redundant edge
        // keeps (A sc C) in the saturation via transitivity.
        let mut f = Fx::new();
        let (a, b, c) = (f.id("A"), f.id("B"), f.id("C"));
        let v = f.vocab;
        f.add(a, v.sub_class_of, b);
        f.add(b, v.sub_class_of, c);
        f.add(a, v.sub_class_of, c);
        for algo in MaintenanceAlgorithm::ALL {
            let mut m = algo.build(f.g.clone(), f.vocab);
            m.delete(&Triple::new(a, v.sub_class_of, c));
            assert!(
                m.saturated().contains(&Triple::new(a, v.sub_class_of, c)),
                "{}",
                algo.name()
            );
            check_invariant(m.as_ref(), &f.vocab);
        }
    }

    #[test]
    fn cyclic_schema_deletion() {
        let mut f = Fx::new();
        let (a, b, x) = (f.id("A"), f.id("B"), f.id("x"));
        let v = f.vocab;
        f.add(a, v.sub_class_of, b);
        f.add(b, v.sub_class_of, a);
        f.add(x, v.rdf_type, a);
        for algo in MaintenanceAlgorithm::ALL {
            let mut m = algo.build(f.g.clone(), f.vocab);
            assert!(m.saturated().contains(&Triple::new(x, v.rdf_type, b)));
            m.delete(&Triple::new(b, v.sub_class_of, a));
            check_invariant(m.as_ref(), &f.vocab);
            m.delete(&Triple::new(a, v.sub_class_of, b));
            assert!(
                !m.saturated().contains(&Triple::new(x, v.rdf_type, b)),
                "{}",
                algo.name()
            );
            check_invariant(m.as_ref(), &f.vocab);
        }
    }

    #[test]
    fn counting_counts_are_exact() {
        let mut f = Fx::new();
        let (hf, knows, person, anne, m1, m2) = (
            f.id("hasFriend"),
            f.id("knows"),
            f.id("Person"),
            f.id("Anne"),
            f.id("Marie"),
            f.id("Max"),
        );
        let v = f.vocab;
        f.add(hf, v.domain, person);
        f.add(knows, v.domain, person);
        f.add(anne, hf, m1);
        f.add(anne, knows, m2);
        let m = CountingMaintainer::new(f.g.clone(), f.vocab);
        // (anne type Person) is derived twice (once per fact), asserted 0 times.
        assert_eq!(m.count_of(&Triple::new(anne, v.rdf_type, person)), 2);
        // Base facts have the assertion count.
        assert_eq!(m.count_of(&Triple::new(anne, hf, m1)), 1);
        // Unrelated triples have count 0.
        assert_eq!(m.count_of(&Triple::new(m1, hf, anne)), 0);
    }

    #[test]
    fn update_stats_report_change() {
        let mut f = Fx::new();
        let (cat, mammal, tom) = (f.id("Cat"), f.id("Mammal"), f.id("Tom"));
        let v = f.vocab;
        f.add(cat, v.sub_class_of, mammal);
        for algo in MaintenanceAlgorithm::ALL {
            let mut m = algo.build(f.g.clone(), f.vocab);
            let stats = m.insert(Triple::new(tom, v.rdf_type, cat));
            assert_eq!(stats.kind, UpdateKind::InstanceInsert);
            assert_eq!(stats.added, 2, "{}: tom:Cat + tom:Mammal", algo.name());
            let stats = m.delete(&Triple::new(tom, v.rdf_type, cat));
            assert_eq!(stats.kind, UpdateKind::InstanceDelete);
            assert_eq!(stats.removed, 2, "{}", algo.name());
        }
    }

    #[test]
    fn batch_updates_match_sequential() {
        let (f, extra) = university_base();
        let base_triples: Vec<Triple> = f.g.iter().collect();
        for algo in MaintenanceAlgorithm::ALL {
            // batch insert the extras, batch delete half the base + extras
            let mut batch = algo.build(f.g.clone(), f.vocab);
            let stats = batch.insert_batch(&extra);
            assert_eq!(stats.kind, UpdateKind::Batch, "{}", algo.name());
            assert!(stats.added > 0);
            let victims: Vec<Triple> = base_triples
                .iter()
                .step_by(2)
                .chain(extra.iter())
                .copied()
                .collect();
            let stats = batch.delete_batch(&victims);
            assert!(stats.removed > 0, "{}", algo.name());

            let mut seq = algo.build(f.g.clone(), f.vocab);
            for &t in &extra {
                seq.insert(t);
            }
            for t in &victims {
                seq.delete(t);
            }
            assert_eq!(batch.base(), seq.base(), "{}", algo.name());
            assert_eq!(batch.saturated(), seq.saturated(), "{}", algo.name());
            check_invariant(batch.as_ref(), &f.vocab);
        }
    }

    #[test]
    fn empty_and_noop_batches() {
        let (f, _) = university_base();
        for algo in MaintenanceAlgorithm::ALL {
            let mut m = algo.build(f.g.clone(), f.vocab);
            assert_eq!(
                m.insert_batch(&[]).kind,
                UpdateKind::Noop,
                "{}",
                algo.name()
            );
            let existing: Vec<Triple> = f.g.iter().take(3).collect();
            assert_eq!(
                m.insert_batch(&existing).kind,
                UpdateKind::Noop,
                "all duplicates"
            );
            let absent = vec![Triple::new(existing[0].s, existing[0].p, existing[0].s)];
            assert_eq!(
                m.delete_batch(&absent).kind,
                UpdateKind::Noop,
                "{}",
                algo.name()
            );
            check_invariant(m.as_ref(), &f.vocab);
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        #[derive(Debug, Clone)]
        enum Op {
            Insert(u8, u8, u8),
            Delete(u8, u8, u8),
            InsertSchema(u8, u8, u8),
            DeleteSchema(u8, u8, u8),
        }

        fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
            proptest::collection::vec(
                prop_oneof![
                    (0u8..8, 0u8..5, 0u8..8).prop_map(|(s, p, o)| Op::Insert(s, p, o)),
                    (0u8..8, 0u8..5, 0u8..8).prop_map(|(s, p, o)| Op::Delete(s, p, o)),
                    (0u8..4, 0u8..6, 0u8..6).prop_map(|(k, a, b)| Op::InsertSchema(k, a, b)),
                    (0u8..4, 0u8..6, 0u8..6).prop_map(|(k, a, b)| Op::DeleteSchema(k, a, b)),
                ],
                0..40,
            )
        }

        fn materialise(op: &Op, dict: &mut Dictionary, vocab: &Vocab) -> (Triple, bool) {
            let class = |d: &mut Dictionary, i: u8| d.encode_iri(&format!("http://ex/C{i}"));
            let prop = |d: &mut Dictionary, i: u8| d.encode_iri(&format!("http://ex/p{i}"));
            let node = |d: &mut Dictionary, i: u8| d.encode_iri(&format!("http://ex/n{i}"));
            match *op {
                Op::Insert(s, p, o) | Op::Delete(s, p, o) => {
                    let t = if p == 0 {
                        // use p=0 as rdf:type with a class object
                        Triple::new(node(dict, s), vocab.rdf_type, class(dict, o % 6))
                    } else {
                        Triple::new(node(dict, s), prop(dict, p), node(dict, o))
                    };
                    (t, matches!(op, Op::Insert(..)))
                }
                Op::InsertSchema(k, a, b) | Op::DeleteSchema(k, a, b) => {
                    let t = match k % 4 {
                        0 => Triple::new(class(dict, a), vocab.sub_class_of, class(dict, b)),
                        1 => Triple::new(
                            prop(dict, 1 + a % 4),
                            vocab.sub_property_of,
                            prop(dict, 1 + b % 4),
                        ),
                        2 => Triple::new(prop(dict, 1 + a % 4), vocab.domain, class(dict, b)),
                        _ => Triple::new(prop(dict, 1 + a % 4), vocab.range, class(dict, b)),
                    };
                    (t, matches!(op, Op::InsertSchema(..)))
                }
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            /// Every maintainer stays equal to recompute-from-scratch under
            /// arbitrary interleavings of instance and schema updates.
            #[test]
            fn maintainers_equal_recompute(ops in arb_ops()) {
                let mut dict = Dictionary::new();
                let vocab = Vocab::intern(&mut dict);
                let mut dred = DRedMaintainer::new(Graph::new(), vocab);
                let mut counting = CountingMaintainer::new(Graph::new(), vocab);
                let mut base = Graph::new();
                for op in &ops {
                    let (t, insert) = materialise(op, &mut dict, &vocab);
                    if insert {
                        base.insert(t);
                        dred.insert(t);
                        counting.insert(t);
                    } else {
                        base.remove(&t);
                        dred.delete(&t);
                        counting.delete(&t);
                    }
                }
                let expect = saturate(&base, &vocab).graph;
                prop_assert_eq!(dred.saturated(), &expect, "DRed diverged");
                prop_assert_eq!(counting.saturated(), &expect, "Counting diverged");
                prop_assert_eq!(dred.base(), &base);
                prop_assert_eq!(counting.base(), &base);
            }

            /// Replaying the entailed delta drained after each update onto a
            /// shadow copy of the saturation keeps the shadow equal to the
            /// maintained saturation — the contract the subscription layer
            /// relies on.
            #[test]
            fn entailed_delta_replays_saturation(ops in arb_ops()) {
                let mut dict = Dictionary::new();
                let vocab = Vocab::intern(&mut dict);
                let mut maintainers: Vec<Box<dyn Maintainer + Send>> = vec![
                    Box::new(RecomputeMaintainer::new(Graph::new(), vocab)),
                    Box::new(DRedMaintainer::new(Graph::new(), vocab)),
                    Box::new(CountingMaintainer::new(Graph::new(), vocab)),
                ];
                for m in &mut maintainers {
                    prop_assert!(m.supports_delta_tracking());
                    m.set_delta_tracking(true);
                }
                let mut shadows = [Graph::new(), Graph::new(), Graph::new()];
                for op in &ops {
                    let (t, insert) = materialise(op, &mut dict, &vocab);
                    for (m, shadow) in maintainers.iter_mut().zip(shadows.iter_mut()) {
                        if insert {
                            m.insert(t);
                        } else {
                            m.delete(&t);
                        }
                        for (d, add) in m.take_entailed_delta() {
                            if add {
                                prop_assert!(
                                    shadow.insert(d),
                                    "{:?}: duplicate add in delta", m.algorithm()
                                );
                            } else {
                                prop_assert!(
                                    shadow.remove(&d),
                                    "{:?}: removal of absent triple in delta", m.algorithm()
                                );
                            }
                        }
                        prop_assert_eq!(
                            shadow as &Graph,
                            m.saturated(),
                            "{:?}: delta replay diverged", m.algorithm()
                        );
                    }
                }
            }
        }
    }
}
