//! Interval reformulation: rewriting a query against the hierarchy
//! intervals of an [`IntervalDict`] instead of into a union of BGPs.
//!
//! Classical reformulation ([`crate::reformulate`]) applies the RDFS
//! rules backwards until fixpoint, producing one union branch per derived
//! atom. With a LiteMat interval encoding the same rule set collapses
//! into *per-atom alternatives* over interval sets, because the closed
//! schema maps make every backward chain a single step:
//!
//! | atom | union branches | interval alternatives |
//! |------|----------------|----------------------|
//! | `x rdf:type C` | one per subclass (rdfs9) | one range atom over `coverage(C)` in the object position |
//! |                | one per domain property (rdfs2 ∘ rdfs7) | one range atom over all properties whose closed domain contains `C`, with a fresh object |
//! |                | one per range property (rdfs3 ∘ rdfs7) | symmetric, with a fresh subject |
//! | `x P y` | one per subproperty (rdfs7) | one range atom over `coverage(P)` in the property position |
//!
//! The closed [`Schema`] maps guarantee single-step completeness:
//! `properties_with_domain(C)` already contains every subproperty of a
//! property whose declared domain is any subclass of `C` (domains are
//! lifted up the class hierarchy and inherited down the property
//! hierarchy), so no fixpoint iteration is needed. The cross product of
//! the per-atom alternative lists gives at most 3^|atoms| interval
//! branches — versus the O(hierarchy^|atoms|) union branches — and the
//! union branches each alternative replaces partition the matching
//! triples by their concrete term, so the produced bag of answers equals
//! the union evaluator's.

use crate::{check_dialect, ReformulationError};
use rdf_model::{IntervalDict, IntervalSet, TermId, Vocab};
use rdfs::Schema;
use rustc_hash::FxHashMap;
use sparql::{IntervalQuery, QTerm, Query, RTerm, RangeAtom, RangeBgp, Variable};
use std::sync::Arc;

/// Interns interval sets so identical ranges share one table slot.
struct RangeTable {
    sets: Vec<IntervalSet>,
    index: FxHashMap<IntervalSet, u16>,
}

impl RangeTable {
    fn new() -> Self {
        RangeTable {
            sets: Vec::new(),
            index: FxHashMap::default(),
        }
    }

    fn intern(&mut self, set: IntervalSet) -> u16 {
        if let Some(&i) = self.index.get(&set) {
            return i;
        }
        let i = self.sets.len() as u16;
        self.index.insert(set.clone(), i);
        self.sets.push(set);
        i
    }
}

fn rterm(t: QTerm) -> RTerm {
    match t {
        QTerm::Var(v) => RTerm::Var(v),
        QTerm::Const(c) => RTerm::Const(c),
    }
}

/// Rewrites `q` into an [`IntervalQuery`] over `idict`, the interval
/// sidecar of `schema`. Accepts exactly the dialect [`crate::reformulate`]
/// accepts and produces the same answers (`q_int(G) = q_ref(G) = q(G∞)`),
/// with hierarchy unions replaced by range-scan atoms.
pub fn reformulate_intervals(
    q: &Query,
    schema: &Schema,
    vocab: &Vocab,
    idict: Arc<IntervalDict>,
) -> Result<IntervalQuery, ReformulationError> {
    if !q.not_exists.is_empty() {
        return Err(ReformulationError::Negation);
    }
    for bgp in &q.bgps {
        check_dialect(bgp, vocab)?;
    }

    let mut var_names = q.var_names.clone();
    let fresh = |var_names: &mut Vec<String>| -> Variable {
        let v = Variable(var_names.len() as u16);
        var_names.push(format!("_i{}", var_names.len() - q.var_names.len()));
        v
    };
    let mut table = RangeTable::new();
    let mut branches: Vec<RangeBgp> = Vec::new();
    let mut union_branches: usize = 0;

    for bgp in &q.bgps {
        // Per-atom alternative lists; the branch set is their cross
        // product. `union_count` tracks how many branches the classical
        // union reformulation would hold for this BGP (the raw per-atom
        // rewriting product, before core minimisation).
        let mut alts_per_atom: Vec<Vec<RangeAtom>> = Vec::new();
        let mut union_count: usize = 1;
        for tp in &bgp.patterns {
            let s = rterm(tp.s);
            let o = rterm(tp.o);
            let mut alts: Vec<RangeAtom> = Vec::new();
            let mut atom_unions = 0usize;
            match tp.p {
                QTerm::Const(p) if p == vocab.rdf_type => {
                    let class = tp.o.as_const().expect("dialect check admits const classes");
                    // rdfs9 collapsed: C ∪ subclasses as one object range.
                    let obj = match idict.coverage(class) {
                        Some(cov) if cov.len() > 1 => {
                            atom_unions += cov.len();
                            RTerm::Range(table.intern(cov.clone()))
                        }
                        _ => {
                            atom_unions += 1;
                            RTerm::Const(class)
                        }
                    };
                    alts.push(RangeAtom {
                        s,
                        p: RTerm::Const(p),
                        o: obj,
                    });
                    // rdfs2 ∘ rdfs7 collapsed: all properties whose closed
                    // domain contains C, as one property range with a
                    // fresh object. One fresh variable serves both the
                    // domain and range alternative of this atom (they are
                    // never in the same branch... they are — see below —
                    // but each alternative binds it at most once).
                    let mut fresh_var: Option<Variable> = None;
                    let prop_range = |props: &rustc_hash::FxHashSet<TermId>,
                                      table: &mut RangeTable,
                                      atom_unions: &mut usize|
                     -> Option<RTerm> {
                        if props.is_empty() {
                            return None;
                        }
                        *atom_unions += props.len();
                        let ids: Vec<u32> = props
                            .iter()
                            .filter_map(|&pp| idict.interval_id(pp))
                            .collect();
                        debug_assert_eq!(
                            ids.len(),
                            props.len(),
                            "every schema property is interval-encoded"
                        );
                        Some(RTerm::Range(table.intern(IntervalSet::from_ids(ids))))
                    };
                    if let Some(pr) = prop_range(
                        schema.properties_with_domain(class),
                        &mut table,
                        &mut atom_unions,
                    ) {
                        let y = *fresh_var.get_or_insert_with(|| fresh(&mut var_names));
                        alts.push(RangeAtom {
                            s,
                            p: pr,
                            o: RTerm::Var(y),
                        });
                    }
                    // rdfs3 ∘ rdfs7 collapsed: symmetric, fresh subject.
                    if let Some(pr) = prop_range(
                        schema.properties_with_range(class),
                        &mut table,
                        &mut atom_unions,
                    ) {
                        let y = *fresh_var.get_or_insert_with(|| fresh(&mut var_names));
                        alts.push(RangeAtom {
                            s: RTerm::Var(y),
                            p: pr,
                            o: s,
                        });
                    }
                }
                QTerm::Const(p) => {
                    // rdfs7 collapsed: P ∪ subproperties as one property range.
                    let prop = match idict.coverage(p) {
                        Some(cov) if cov.len() > 1 => {
                            atom_unions += cov.len();
                            RTerm::Range(table.intern(cov.clone()))
                        }
                        _ => {
                            atom_unions += 1;
                            RTerm::Const(p)
                        }
                    };
                    alts.push(RangeAtom { s, p: prop, o });
                }
                QTerm::Var(_) => unreachable!("dialect check rejects variable properties"),
            }
            union_count = union_count.saturating_mul(atom_unions.max(1));
            alts_per_atom.push(alts);
        }
        union_branches = union_branches.saturating_add(union_count);

        // Cross product of the alternatives (≤ 3^|atoms| branches).
        let mut combos: Vec<Vec<RangeAtom>> = vec![Vec::new()];
        for alts in &alts_per_atom {
            let mut next = Vec::with_capacity(combos.len() * alts.len());
            for combo in &combos {
                for &alt in alts {
                    let mut c = combo.clone();
                    c.push(alt);
                    next.push(c);
                }
            }
            combos = next;
        }
        branches.extend(combos.into_iter().map(|atoms| RangeBgp { atoms }));
    }

    // Canonical dedup (a union input query can repeat branches, and the
    // evaluator's bag semantics counts each branch once).
    let mut keyed: Vec<(Vec<RangeAtom>, RangeBgp)> = branches
        .into_iter()
        .map(|b| {
            let mut key = b.atoms.clone();
            key.sort();
            (key, b)
        })
        .collect();
    keyed.sort_by(|a, b| a.0.cmp(&b.0));
    keyed.dedup_by(|a, b| a.0 == b.0);
    let branches: Vec<RangeBgp> = keyed.into_iter().map(|(_, b)| b).collect();

    let branches_collapsed = union_branches.saturating_sub(branches.len());
    let query = Query {
        var_names,
        projection: q.projection.clone(),
        distinct: true,
        bgps: q.bgps.clone(),
        filters: q.filters.clone(),
        not_exists: Vec::new(),
        modifiers: q.modifiers.clone(),
        aggregate: q.aggregate.clone(),
    };
    Ok(IntervalQuery {
        query,
        branches,
        ranges: table.sets,
        union_branches,
        branches_collapsed,
        dict: idict,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reformulate;
    use rdf_io::parse_turtle;
    use rdf_model::{Dictionary, Graph};
    use rdfs::saturate;
    use sparql::{evaluate, evaluate_interval, evaluate_union, parse_query};
    use std::num::NonZeroUsize;

    struct Fx {
        dict: Dictionary,
        vocab: Vocab,
        g: Graph,
    }

    fn setup(data: &str) -> Fx {
        let mut dict = Dictionary::new();
        let vocab = Vocab::intern(&mut dict);
        let mut g = Graph::new();
        parse_turtle(data, &mut dict, &mut g).expect("fixture parses");
        Fx { dict, vocab, g }
    }

    /// The three-way contract: q_int(G) = q_ref(G) = q(G∞) (answer sets),
    /// and q_int(G) bag-equals q_ref(G) under the union evaluator.
    fn assert_three_way(f: &mut Fx, query: &str) -> IntervalQuery {
        let q = parse_query(query, &mut f.dict).expect("query parses");
        let schema = Schema::extract(&f.g, &f.vocab);
        let idict = Arc::new(schema.interval_dict());
        let iq = reformulate_intervals(&q, &schema, &f.vocab, idict).expect("rewrites");
        let r = reformulate(&q, &schema, &f.vocab).expect("reformulates");
        let sat = saturate(&f.g, &f.vocab).graph;
        let want = evaluate(&sat, &q).as_set();
        for t in [1usize, 2, 4] {
            let (got, _) = evaluate_interval(&f.g, &iq, NonZeroUsize::new(t).unwrap());
            assert_eq!(
                got.as_set(),
                want,
                "q_int(G) != q(G∞) for {query} at {t} threads"
            );
        }
        let (union_sols, _) = evaluate_union(&f.g, &r.query, NonZeroUsize::MIN);
        let (int_sols, _) = evaluate_interval(&f.g, &iq, NonZeroUsize::MIN);
        assert_eq!(
            int_sols.sorted_rows(),
            union_sols.sorted_rows(),
            "interval bag != union bag for {query}"
        );
        iq
    }

    const ZOO: &str = r#"
        @prefix ex: <http://ex/> .
        @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
        ex:Cat rdfs:subClassOf ex:Mammal .
        ex:Dog rdfs:subClassOf ex:Mammal .
        ex:Mammal rdfs:subClassOf ex:Animal .
        ex:Tom a ex:Cat .
        ex:Rex a ex:Dog .
        ex:Daffy a ex:Animal .
    "#;

    const UNIVERSITY: &str = r#"
        @prefix ex: <http://ex/> .
        @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
        ex:teaches rdfs:subPropertyOf ex:worksFor .
        ex:worksFor rdfs:domain ex:Employee .
        ex:worksFor rdfs:range ex:Org .
        ex:Employee rdfs:subClassOf ex:Person .
        ex:Professor rdfs:subClassOf ex:Employee .
        ex:bob ex:teaches ex:uni1 .
        ex:carol ex:worksFor ex:uni2 .
        ex:dan a ex:Professor .
        ex:eve a ex:Person .
    "#;

    #[test]
    fn mammal_subtree_collapses_to_one_branch() {
        let mut f = setup(ZOO);
        let iq = assert_three_way(
            &mut f,
            "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x a ex:Mammal }",
        );
        assert_eq!(iq.branches.len(), 1, "Mammal ∪ Cat ∪ Dog is one range");
        assert_eq!(iq.union_branches, 3);
        assert_eq!(iq.branches_collapsed, 2);
    }

    #[test]
    fn domain_and_range_alternatives() {
        let mut f = setup(UNIVERSITY);
        // Person: subtree range + domain-property range (worksFor ∪ teaches).
        let iq = assert_three_way(
            &mut f,
            "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x a ex:Person }",
        );
        assert_eq!(iq.branches.len(), 2, "type range + property range");
        assert_eq!(iq.union_branches, 5);
        // Org: subtree is a single class, plus range properties.
        let iq = assert_three_way(
            &mut f,
            "PREFIX ex: <http://ex/> SELECT ?y WHERE { ?y a ex:Org }",
        );
        assert_eq!(iq.branches.len(), 2);
        assert_eq!(iq.union_branches, 3);
    }

    #[test]
    fn property_atom_collapses_subproperties() {
        let mut f = setup(UNIVERSITY);
        let iq = assert_three_way(
            &mut f,
            "PREFIX ex: <http://ex/> SELECT ?x ?y WHERE { ?x ex:worksFor ?y }",
        );
        assert_eq!(iq.branches.len(), 1, "worksFor ∪ teaches is one range");
        assert_eq!(iq.branches_collapsed, 1);
    }

    #[test]
    fn join_query_cross_product_stays_small() {
        let mut f = setup(UNIVERSITY);
        let iq = assert_three_way(
            &mut f,
            "PREFIX ex: <http://ex/> SELECT ?x ?y WHERE { ?x ex:worksFor ?y . ?x a ex:Person }",
        );
        assert!(
            iq.branches.len() <= 2,
            "2 worksFor alts × (1 type + 1 domain) = {} branches",
            iq.branches.len()
        );
        assert!(iq.union_branches >= 10, "raw union product");
    }

    #[test]
    fn cyclic_schema_is_handled() {
        let mut f = setup(
            r#"
            @prefix ex: <http://ex/> .
            @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
            ex:A rdfs:subClassOf ex:B .
            ex:B rdfs:subClassOf ex:A .
            ex:x a ex:A .
            ex:y a ex:B .
        "#,
        );
        let iq = assert_three_way(
            &mut f,
            "PREFIX ex: <http://ex/> SELECT ?s WHERE { ?s a ex:B }",
        );
        assert_eq!(iq.branches.len(), 1, "the cycle is one shared coverage");
    }

    #[test]
    fn no_schema_means_identity() {
        let mut f = setup("@prefix ex: <http://ex/> .\nex:a ex:p ex:b .");
        let iq = assert_three_way(
            &mut f,
            "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x ex:p ?y }",
        );
        assert_eq!(iq.branches.len(), 1);
        assert_eq!(iq.branches_collapsed, 0);
        assert!(iq.ranges.is_empty(), "plain constants, no ranges");
    }

    #[test]
    fn same_dialect_rejections_as_reformulate() {
        let mut f = setup(ZOO);
        let schema = Schema::extract(&f.g, &f.vocab);
        let idict = Arc::new(schema.interval_dict());
        for src in [
            "SELECT ?p WHERE { <http://s> ?p <http://o> }",
            "SELECT ?c WHERE { <http://s> a ?c }",
            "PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#> SELECT ?c WHERE { ?c rdfs:subClassOf ?d }",
        ] {
            let q = parse_query(src, &mut f.dict).unwrap();
            let int_err = reformulate_intervals(&q, &schema, &f.vocab, Arc::clone(&idict))
                .expect_err("rejected");
            let ref_err = reformulate(&q, &schema, &f.vocab).expect_err("rejected");
            assert_eq!(int_err, ref_err, "{src}");
        }
    }
}
