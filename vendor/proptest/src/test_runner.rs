//! Test configuration and the deterministic per-case RNG.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Runner configuration; only `cases` is honoured by this vendored shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream proptest's default.
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic RNG, seeded from the test path and case index so a
/// failing case reproduces across runs without a persistence file.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// The RNG for case number `case` of the named test.
    pub fn for_case(test_path: &str, case: u32) -> Self {
        // FNV-1a over the test path, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        let seed = h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
