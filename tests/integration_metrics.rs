//! Integration tests for the observability layer: the golden metrics
//! snapshot, the instrumentation-overhead guard, per-answer `EvalStats`
//! isolation, and the observed-cost threshold arithmetic.
//!
//! Every test here manipulates the process-global [`obs::Registry`]
//! (clock swaps, resets, enable toggles), so they serialise on one lock —
//! the registry is shared across threads within this test binary.

use std::num::NonZeroUsize;
use std::sync::{Arc, Mutex, MutexGuard};

use obs::{Clock, MonotonicClock};
use rdf_model::Triple;
use webreason_core::{
    observed_thresholds, MaintenanceAlgorithm, ObservedCosts, ReasoningConfig, Store,
};
use workload::lubm::{generate, queries, LubmConfig};

static REGISTRY_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    REGISTRY_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn one() -> NonZeroUsize {
    NonZeroUsize::new(1).expect("non-zero")
}

/// An instance (non-schema) triple from the dataset, for net-zero
/// maintenance rounds.
fn instance_triple(ds: &workload::Dataset) -> Triple {
    ds.graph
        .iter()
        .find(|t| !ds.vocab.is_schema_property(t.p))
        .expect("LUBM has instance triples")
}

// ---------------------------------------------------------------------------
// Golden snapshot: LUBM Q1 through saturation and reformulation under a
// ManualClock. Counter values and span/histogram *counts* are
// deterministic (seeded generator, 1 thread, frozen clock); timings are
// excluded. Regenerate with
// `WEBREASON_BLESS=1 cargo test -p webreason-core --test integration_metrics`.
// ---------------------------------------------------------------------------

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/metrics_lubm.txt")
}

fn render_snapshot(snap: &obs::MetricsSnapshot) -> String {
    let mut out = String::from(
        "# Metrics snapshot: LUBM Q1 (LubmConfig::tiny) answered over G∞ and via\n\
         # q_ref(G) (DRed maintainer), plus one net-zero instance update,\n\
         # 1 thread, ManualClock.\n\
         # Counter values and span/histogram counts only — no timings.\n\
         # Regenerate with WEBREASON_BLESS=1; review diffs like code.\n",
    );
    for c in &snap.counters {
        out.push_str(&format!("counter {} = {}\n", c.name, c.value));
    }
    for h in &snap.histograms {
        out.push_str(&format!("histogram {} count={}\n", h.name, h.count));
    }
    for s in &snap.spans {
        out.push_str(&format!(
            "span {} parent={} count={}\n",
            s.name,
            s.parent.as_deref().unwrap_or("-"),
            s.count
        ));
    }
    out
}

#[test]
fn lubm_q1_metrics_snapshot_matches_golden_file() {
    let _guard = lock();
    let reg = obs::global();
    let _clock = reg.install_manual_clock();
    reg.reset();

    let mut ds = generate(&LubmConfig::tiny());
    let named = queries(&mut ds);
    let mut q1 = named[0].query.clone();
    q1.distinct = true;

    // Saturate + answer over G∞ …
    let mut sat = Store::from_parts_with_threads(
        ds.dict.clone(),
        ds.vocab,
        ds.graph.clone(),
        ReasoningConfig::Saturation(MaintenanceAlgorithm::DRed),
        one(),
    );
    sat.answer(&q1).expect("Q1 over G∞");
    // … the same query through the reformulated path …
    let refo = Store::from_parts_with_threads(
        ds.dict.clone(),
        ds.vocab,
        ds.graph.clone(),
        ReasoningConfig::Reformulation,
        one(),
    );
    refo.answer(&q1).expect("Q1 via q_ref");
    // … and one net-zero maintenance round.
    let t = instance_triple(&ds);
    sat.delete(&t);
    sat.insert(t);

    let snapshot = render_snapshot(&reg.snapshot());
    reg.set_clock(Arc::new(MonotonicClock::new()) as Arc<dyn Clock>);

    let path = golden_path();
    if std::env::var("WEBREASON_BLESS").is_ok_and(|v| !v.is_empty() && v != "0") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &snapshot).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with WEBREASON_BLESS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        snapshot,
        want,
        "metric names/counts diverged from {}; if intentional, regenerate \
         with WEBREASON_BLESS=1 and commit the diff",
        path.display()
    );
}

// ---------------------------------------------------------------------------
// Overhead guard: instrumentation must be observation, not behaviour.
// ---------------------------------------------------------------------------

#[test]
fn disabling_instrumentation_changes_no_results() {
    let _guard = lock();
    let reg = obs::global();
    reg.reset();
    reg.set_enabled(true);

    let ds = generate(&LubmConfig::tiny());
    let on = rdfs::saturate(&ds.graph, &ds.vocab);
    let on_parallel = rdfs::saturate_parallel(
        &ds.graph,
        &ds.vocab,
        NonZeroUsize::new(2).expect("non-zero"),
    );

    reg.set_enabled(false);
    let off = rdfs::saturate(&ds.graph, &ds.vocab);
    let off_parallel = rdfs::saturate_parallel(
        &ds.graph,
        &ds.vocab,
        NonZeroUsize::new(2).expect("non-zero"),
    );
    reg.set_enabled(true);

    assert_eq!(on.graph, off.graph, "G∞ must not depend on instrumentation");
    assert_eq!(
        on.stats.rule_firings, off.stats.rule_firings,
        "rule firings must not depend on instrumentation"
    );
    assert_eq!(on_parallel.graph, off_parallel.graph);
    assert_eq!(on_parallel.stats.inferred, off_parallel.stats.inferred);
}

#[test]
fn a_disabled_registry_is_inert() {
    // No global state: a local disabled registry hands out no-op handles.
    let reg = obs::Registry::disabled();
    let c = reg.counter("rdfs.saturate.runs");
    c.add(41);
    c.incr();
    assert_eq!(c.get(), 0, "disabled counter reads 0");
    assert_eq!(reg.counter_value("rdfs.saturate.runs"), 0);
    reg.record("core.maintain.noop_us", 7);
    {
        let _span = reg.span("core.answer.query");
    }
    assert!(
        reg.snapshot().is_empty(),
        "nothing is recorded while disabled"
    );
}

// ---------------------------------------------------------------------------
// EvalStats isolation: scan-cache hit/miss counters are per-answer, not
// accumulated across consecutive `Store::answer` calls.
// ---------------------------------------------------------------------------

#[test]
fn eval_stats_do_not_accumulate_across_answers() {
    let _guard = lock();
    let mut ds = generate(&LubmConfig::tiny());
    let named = queries(&mut ds);
    // Q2 ("all persons") has a wide reformulation — plenty of cache traffic.
    let mut q = named[1].query.clone();
    q.distinct = true;
    let store = Store::from_parts_with_threads(
        ds.dict.clone(),
        ds.vocab,
        ds.graph.clone(),
        ReasoningConfig::Reformulation,
        one(),
    );

    store.answer(&q).expect("first answer");
    let first = store.last_eval_stats().expect("union path ran").clone();
    assert!(
        first.scan_cache_hits + first.scan_cache_misses > 0,
        "the scan cache saw traffic: {first:?}"
    );
    for _ in 0..3 {
        store.answer(&q).expect("repeat answer");
        let again = store.last_eval_stats().expect("union path ran");
        assert_eq!(
            again.scan_cache_hits, first.scan_cache_hits,
            "hits reset per answer"
        );
        assert_eq!(
            again.scan_cache_misses, first.scan_cache_misses,
            "misses reset per answer"
        );
        assert_eq!(again.rows, first.rows);
        assert_eq!(again.branches_total, first.branches_total);
    }
}

// ---------------------------------------------------------------------------
// Observed-cost thresholds: run a real workload, snapshot it, and check
// the derived thresholds against ratios recomputed by hand from the same
// snapshot's raw span totals and histogram means.
// ---------------------------------------------------------------------------

#[test]
fn observed_thresholds_match_hand_computed_ratios_from_a_real_workload() {
    let _guard = lock();
    let reg = obs::global();
    reg.set_clock(Arc::new(MonotonicClock::new()) as Arc<dyn Clock>);
    reg.reset();

    let mut ds = generate(&LubmConfig::tiny());
    let named = queries(&mut ds);
    let mut sat = Store::from_parts_with_threads(
        ds.dict.clone(),
        ds.vocab,
        ds.graph.clone(),
        ReasoningConfig::Saturation(MaintenanceAlgorithm::DRed),
        one(),
    );
    let refo = Store::from_parts_with_threads(
        ds.dict.clone(),
        ds.vocab,
        ds.graph.clone(),
        ReasoningConfig::Reformulation,
        one(),
    );
    for nq in named.iter().take(3) {
        let mut q = nq.query.clone();
        q.distinct = true;
        sat.answer(&q).expect("saturated path");
        refo.answer(&q).expect("reformulated path");
    }
    let t = instance_triple(&ds);
    for _ in 0..3 {
        sat.delete(&t);
        sat.insert(t);
    }

    let snap = reg.snapshot();
    let costs = ObservedCosts::from_snapshot(&snap);
    assert!(costs.covers_both_paths(), "workload drove both paths");
    assert_eq!(costs.eval_reformulated_runs, 3);
    assert_eq!(costs.eval_saturated_runs, 3);
    assert!(costs.saturation_runs >= 1);
    assert!(costs.updates_observed >= 6);
    let derived = observed_thresholds(&costs).expect("both paths covered");

    // Recompute every input from the snapshot's raw numbers.
    let us = 1e6;
    let sat_runs = snap.span_count("rdfs.saturate.run") + snap.span_count("rdfs.parallel.run");
    let sat_cost = (snap.span_total_us("rdfs.saturate.run")
        + snap.span_total_us("rdfs.parallel.run")) as f64
        / sat_runs as f64
        / us;
    let union = snap
        .span("sparql.union.total", Some("core.answer.query"))
        .expect("union ran under answer");
    let rewrite_us = snap
        .span("core.answer.reformulate", Some("core.answer.query"))
        .map(|s| s.total_us)
        .unwrap_or(0);
    let answers = snap.span_count("core.answer.query");
    let eval_sat = snap
        .span_total_us("core.answer.query")
        .saturating_sub(union.total_us)
        .saturating_sub(rewrite_us) as f64
        / (answers - union.count) as f64
        / us;
    let eval_ref = snap.span_total_us("sparql.union.total") as f64
        / snap.span_count("sparql.union.total") as f64
        / us;
    let hist_mean =
        |name: &str| -> f64 { snap.histogram(name).and_then(|h| h.mean()).unwrap_or(0.0) / us };

    assert_eq!(costs.saturation, sat_cost);
    assert_eq!(costs.eval_saturated, eval_sat);
    assert_eq!(costs.eval_reformulated, eval_ref);
    assert_eq!(
        costs.maintenance.instance_insert,
        hist_mean("core.maintain.instance_insert_us")
    );
    assert_eq!(
        costs.maintenance.instance_delete,
        hist_mean("core.maintain.instance_delete_us")
    );

    // Hand-apply the Fig. 3 amortisation rule to each fixed cost.
    let by_hand = |fixed: f64| -> Option<u64> {
        let gain = eval_ref - eval_sat;
        (gain > 0.0).then(|| (fixed / gain).ceil().max(1.0) as u64)
    };
    assert_eq!(derived.saturation.runs(), by_hand(sat_cost));
    assert_eq!(
        derived.instance_insert.runs(),
        by_hand(hist_mean("core.maintain.instance_insert_us"))
    );
    assert_eq!(
        derived.instance_delete.runs(),
        by_hand(hist_mean("core.maintain.instance_delete_us"))
    );
    assert_eq!(
        derived.schema_insert.runs(),
        by_hand(hist_mean("core.maintain.schema_insert_us"))
    );
    assert_eq!(
        derived.schema_delete.runs(),
        by_hand(hist_mean("core.maintain.schema_delete_us"))
    );
}
