//! Cancellation correctness: a query abandoned mid-union-evaluation must
//! leave *nothing* behind — no partial rows, no published `sparql.union.*`
//! workload counters, no poisoned caches — so that a subsequent identical
//! query on the same store behaves bit-identically to one that was never
//! preceded by a cancelled run. The deterministic
//! [`CancelToken::trip_after_checks`] mode walks the trip point across
//! every poll site (entry, per-branch planning, per-trie-root evaluation,
//! per-shard merge) without sleeps; the proptest half samples random trip
//! points × thread counts on top.

use obs::CancelToken;
use proptest::prelude::*;
use std::num::NonZeroUsize;
use std::sync::Mutex;
use std::time::Duration;
use webreason_core::{AnswerError, ReasoningConfig, Store};

/// The obs registry is process-global, so tests that assert counter
/// deltas must not interleave with other answer-running tests.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// A reformulation store whose `?x a ex:Thing` query expands to a
/// 60-branch union with instances in every branch — wide enough that
/// every poll site (planning, evaluation, merge) is actually reached.
fn fixture_store(threads: usize) -> Store {
    let mut ttl = String::from(
        "@prefix ex: <http://ex/> .\n\
         @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n",
    );
    for c in 0..60 {
        ttl.push_str(&format!("ex:C{c} rdfs:subClassOf ex:Thing .\n"));
        for i in 0..5 {
            ttl.push_str(&format!("ex:i{c}x{i} a ex:C{c} .\n"));
        }
    }
    let mut store = Store::new_with_threads(
        ReasoningConfig::Reformulation,
        NonZeroUsize::new(threads).expect("threads >= 1"),
    );
    store.load_turtle(&ttl).expect("fixture parses");
    store
}

const QUERY: &str = "SELECT ?x WHERE { ?x a <http://ex/Thing> }";

#[test]
fn cancelled_union_rerun_is_bit_identical_across_threads() {
    let _guard = serial();
    let reg = obs::global();
    for threads in [1usize, 2, 4] {
        let store = fixture_store(threads);
        let reader = store.reader();
        let q = store.prepare(QUERY).expect("query parses");
        let (baseline, _, _) = reader.answer(&q).expect("uncancelled run answers");
        let baseline = baseline.sorted_rows();
        assert_eq!(baseline.len(), 300, "60 classes x 5 instances");

        let mut cancelled_at_least_once = false;
        // Trip points 1..=40 sweep the entry poll, the per-branch
        // planning polls, and (with enough checks surviving) into the
        // evaluation/merge polls; large values land after completion.
        for trip in 1u64..=40 {
            let queries_before = reg.counter_value("sparql.union.queries");
            let rows_before = reg.counter_value("sparql.union.rows");
            let cancels_before = reg.counter_value("core.answer.cancelled");
            let token = CancelToken::trip_after_checks(trip);
            match reader.answer_cancel(&q, &token) {
                Ok((sols, _, _)) => {
                    // The token tripped too late (or not at all): the
                    // full answer must be exactly the baseline.
                    assert_eq!(
                        sols.sorted_rows(),
                        baseline,
                        "late-trip answer diverged (threads {threads}, trip {trip})"
                    );
                }
                Err(AnswerError::Cancelled) => {
                    cancelled_at_least_once = true;
                    // The abandoned pass published none of the workload
                    // counters a finished union publishes...
                    assert_eq!(
                        reg.counter_value("sparql.union.queries"),
                        queries_before,
                        "cancelled pass published union counters (trip {trip})"
                    );
                    assert_eq!(
                        reg.counter_value("sparql.union.rows"),
                        rows_before,
                        "cancelled pass published row counts (trip {trip})"
                    );
                    // ...except the cancellation tally itself.
                    assert_eq!(
                        reg.counter_value("core.answer.cancelled"),
                        cancels_before + 1,
                        "cancellation not counted (trip {trip})"
                    );
                    // Rerunning the identical query immediately must
                    // reproduce the baseline bit-for-bit.
                    let (sols, _, _) = reader.answer(&q).expect("rerun answers");
                    assert_eq!(
                        sols.sorted_rows(),
                        baseline,
                        "post-cancel rerun diverged (threads {threads}, trip {trip})"
                    );
                }
                Err(other) => panic!("unexpected error (threads {threads}, trip {trip}): {other}"),
            }
        }
        assert!(
            cancelled_at_least_once,
            "no trip point cancelled at {threads} threads — poll sites missing?"
        );
    }
}

#[test]
fn expired_deadline_cancels_before_evaluation() {
    let _guard = serial();
    let store = fixture_store(2);
    let reader = store.reader();
    let q = store.prepare(QUERY).expect("query parses");
    let token = CancelToken::with_deadline(Duration::ZERO);
    match reader.answer_cancel(&q, &token) {
        Err(AnswerError::Cancelled) => {}
        other => panic!("expired deadline should cancel, got {other:?}"),
    }
    // The store still answers normally afterwards.
    let (sols, _, _) = reader.answer(&q).expect("store still answers");
    assert_eq!(sols.len(), 300);
}

#[test]
fn none_token_is_equivalent_to_plain_answer() {
    let _guard = serial();
    let store = fixture_store(4);
    let reader = store.reader();
    let q = store.prepare(QUERY).expect("query parses");
    let (plain, _, _) = reader.answer(&q).expect("plain");
    let (with_token, _, _) = reader
        .answer_cancel(&q, &CancelToken::none())
        .expect("none token");
    assert_eq!(plain.sorted_rows(), with_token.sorted_rows());
}

/// Case-count knob, mirroring `integration_equivalence.rs`.
fn env_cases(default: u32) -> u32 {
    std::env::var("WEBREASON_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(env_cases(24)))]

    /// Random (thread count, trip point) pairs: the cancelled attempt
    /// either completes with the exact baseline answer or cancels
    /// cleanly, and the rerun is always bit-identical to the baseline.
    #[test]
    fn random_cancel_points_never_corrupt_state(
        threads in 1usize..=4,
        trip in 1u64..600,
    ) {
        let _guard = serial();
        let store = fixture_store(threads);
        let reader = store.reader();
        let q = store.prepare(QUERY).expect("query parses");
        let (baseline, _, _) = reader.answer(&q).expect("baseline answers");
        let baseline = baseline.sorted_rows();

        let token = CancelToken::trip_after_checks(trip);
        match reader.answer_cancel(&q, &token) {
            Ok((sols, _, _)) => prop_assert_eq!(sols.sorted_rows(), baseline.clone()),
            Err(AnswerError::Cancelled) => {}
            Err(other) => prop_assert!(false, "unexpected error: {}", other),
        }
        let (rerun, _, _) = reader.answer(&q).expect("rerun answers");
        prop_assert_eq!(rerun.sorted_rows(), baseline);
    }
}
