//! Regenerates the paper's definitional figures:
//!
//! * **Fig. 1** — RDF & RDFS statements with their relational notation /
//!   OWA interpretation, each illustrated by a statement from the LUBM
//!   workload actually present in the generated graph;
//! * **Fig. 2** — the immediate entailment rules, with the number of new
//!   triples each rule contributed when saturating the LUBM graph
//!   (demonstrating every rule fires on the workload).
//!
//! ```sh
//! cargo run --release -p bench --bin figures            # both
//! cargo run --release -p bench --bin figures -- --fig2
//! ```

use bench::{render_table, Scale};
use rdfs::rules::Rule;
use rdfs::saturate_naive;
use workload::lubm::generate;

fn fig1() {
    println!("== Figure 1: RDF (top) & RDFS (bottom) statements ==");
    let assertion_rows = vec![
        vec![
            "Class assertion".into(),
            "s rdf:type o".into(),
            "o(s)".into(),
            "u0/d0/prof0 rdf:type ub:FullProfessor".into(),
        ],
        vec![
            "Property assertion".into(),
            "s p o".into(),
            "p(s, o)".into(),
            "u0/d0/student0 ub:takesCourse u0/d0/course2".into(),
        ],
    ];
    println!(
        "{}",
        render_table(
            &[
                "Assertion",
                "Triple",
                "Relational notation",
                "LUBM instance"
            ],
            &assertion_rows
        )
    );
    let constraint_rows = vec![
        vec![
            "Subclass".into(),
            "s rdfs:subClassOf o".into(),
            "s ⊆ o".into(),
            "ub:FullProfessor ⊑ ub:Professor".into(),
        ],
        vec![
            "Subproperty".into(),
            "s rdfs:subPropertyOf o".into(),
            "s ⊆ o".into(),
            "ub:headOf ⊑ ub:worksFor".into(),
        ],
        vec![
            "Domain typing".into(),
            "s rdfs:domain o".into(),
            "Π_domain(s) ⊆ o".into(),
            "ub:takesCourse domain ub:Student".into(),
        ],
        vec![
            "Range typing".into(),
            "s rdfs:range o".into(),
            "Π_range(s) ⊆ o".into(),
            "ub:takesCourse range ub:Course".into(),
        ],
    ];
    println!(
        "{}",
        render_table(
            &[
                "Constraint",
                "Triple",
                "OWA interpretation",
                "LUBM instance"
            ],
            &constraint_rows
        )
    );
}

fn fig2() {
    println!("== Figure 2: immediate entailment rules, with LUBM firing counts ==");
    let ds = generate(&Scale::Small.config());
    let sat = saturate_naive(&ds.graph, &ds.vocab);
    let rows: Vec<Vec<String>> = Rule::ALL
        .iter()
        .map(|r| {
            let fired = sat.stats.rule_firings.get(r.name()).copied().unwrap_or(0);
            vec![
                r.name().to_owned(),
                if r.in_figure2() {
                    "Fig. 2".into()
                } else {
                    "schema closure".into()
                },
                r.statement().to_owned(),
                fired.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["rule", "origin", "statement", "new triples on LUBM"],
            &rows
        )
    );
    println!(
        "saturation: {} base → {} triples in {} fix-point passes\n",
        sat.stats.input_triples, sat.stats.output_triples, sat.stats.passes
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let only_fig1 = args.iter().any(|a| a == "--fig1");
    let only_fig2 = args.iter().any(|a| a == "--fig2");
    if only_fig1 || !only_fig2 {
        fig1();
    }
    if only_fig2 || !only_fig1 {
        fig2();
    }
}
