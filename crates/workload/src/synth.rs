//! Parametric random ontologies and instance data.
//!
//! Used by the reformulation-size sweep (experiment T-REF): the number of
//! union branches `q_ref` contains is governed by the class tree's depth ×
//! fan-out and by how many properties have a domain/range inside the tree,
//! so this generator exposes exactly those knobs.

use crate::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdf_model::{Dictionary, Graph, TermId, Triple, Vocab};
use sparql::{parse_query, Query};

/// Namespace for synthetic ontologies.
pub const NS_SYNTH: &str = "http://webreason.example/synth#";

/// Configuration of the synthetic generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthConfig {
    /// Depth of the class tree (root at depth 0).
    pub class_depth: usize,
    /// Children per class node.
    pub class_fanout: usize,
    /// Number of property chains (`p0 ⊑ p1 ⊑ …`).
    pub property_chains: usize,
    /// Length of each subproperty chain.
    pub chain_length: usize,
    /// Probability that a property gets a domain (and range) constraint
    /// pointing at a random class.
    pub domain_range_density: f64,
    /// Number of individuals.
    pub individuals: usize,
    /// Instance property edges.
    pub edges: usize,
    /// Explicit (leaf-class) type assertions.
    pub typings: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            class_depth: 3,
            class_fanout: 3,
            property_chains: 4,
            chain_length: 3,
            domain_range_density: 0.5,
            individuals: 500,
            edges: 2_000,
            typings: 500,
            seed: 42,
        }
    }
}

/// A generated synthetic workload: the dataset plus handles for building
/// queries against it.
#[derive(Debug, Clone)]
pub struct SynthWorkload {
    /// The dataset (schema + instances).
    pub dataset: Dataset,
    /// The root class of the tree (worst-case type query target).
    pub root_class: TermId,
    /// All classes, breadth-first from the root.
    pub classes: Vec<TermId>,
    /// The top property of each chain.
    pub top_properties: Vec<TermId>,
}

/// Generates a synthetic workload.
pub fn generate(cfg: &SynthConfig) -> SynthWorkload {
    let mut dict = Dictionary::new();
    let vocab = Vocab::intern(&mut dict);
    let mut g = Graph::new();
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Class tree, breadth-first.
    let class_iri = |i: usize| format!("{NS_SYNTH}C{i}");
    let mut classes: Vec<TermId> = vec![dict.encode_iri(&class_iri(0))];
    let mut frontier = vec![0usize];
    let mut next_id = 1usize;
    for _ in 0..cfg.class_depth {
        let mut next_frontier = Vec::new();
        for &parent in &frontier {
            for _ in 0..cfg.class_fanout {
                let id = next_id;
                next_id += 1;
                let c = dict.encode_iri(&class_iri(id));
                classes.push(c);
                g.insert(Triple::new(c, vocab.sub_class_of, classes[parent]));
                next_frontier.push(id);
            }
        }
        frontier = next_frontier;
    }
    let leaf_start = classes.len() - frontier.len();

    // Property chains with optional domain/range constraints.
    let mut top_properties = Vec::new();
    let mut all_properties = Vec::new();
    for chain in 0..cfg.property_chains {
        let mut upper: Option<TermId> = None;
        for link in 0..cfg.chain_length {
            let p = dict.encode_iri(&format!("{NS_SYNTH}p{chain}_{link}"));
            all_properties.push(p);
            if let Some(sup) = upper {
                g.insert(Triple::new(p, vocab.sub_property_of, sup));
            } else {
                top_properties.push(p);
            }
            if rng.gen_bool(cfg.domain_range_density) {
                let dom = classes[rng.gen_range(0..classes.len())];
                g.insert(Triple::new(p, vocab.domain, dom));
            }
            if rng.gen_bool(cfg.domain_range_density) {
                let ran = classes[rng.gen_range(0..classes.len())];
                g.insert(Triple::new(p, vocab.range, ran));
            }
            upper = Some(p);
        }
    }

    // Individuals, edges, typings.
    let individuals: Vec<TermId> = (0..cfg.individuals)
        .map(|i| dict.encode_iri(&format!("{NS_SYNTH}i{i}")))
        .collect();
    if !individuals.is_empty() && !all_properties.is_empty() {
        for _ in 0..cfg.edges {
            let s = individuals[rng.gen_range(0..individuals.len())];
            let p = all_properties[rng.gen_range(0..all_properties.len())];
            let o = individuals[rng.gen_range(0..individuals.len())];
            g.insert(Triple::new(s, p, o));
        }
        for _ in 0..cfg.typings {
            let s = individuals[rng.gen_range(0..individuals.len())];
            // type at a leaf class so mid-tree queries need reasoning
            let c = classes[rng.gen_range(leaf_start..classes.len())];
            g.insert(Triple::new(s, vocab.rdf_type, c));
        }
    }

    SynthWorkload {
        dataset: Dataset {
            dict,
            vocab,
            graph: g,
        },
        root_class: classes[0],
        classes,
        top_properties,
    }
}

impl SynthWorkload {
    /// `SELECT ?x WHERE { ?x rdf:type <class> }` — reformulation size grows
    /// with the subtree under `class`.
    pub fn type_query(&mut self, class: TermId) -> Query {
        let iri = self
            .dataset
            .dict
            .decode(class)
            .and_then(|t| t.as_iri())
            .expect("class is an IRI")
            .to_owned();
        parse_query(
            &format!("SELECT ?x WHERE {{ ?x a <{iri}> }}"),
            &mut self.dataset.dict,
        )
        .expect("type query parses")
    }

    /// `SELECT ?x ?y WHERE { ?x <p> ?y }` for a top property — reformulation
    /// size grows with the chain below it.
    pub fn property_query(&mut self, p: TermId) -> Query {
        let iri = self
            .dataset
            .dict
            .decode(p)
            .and_then(|t| t.as_iri())
            .expect("property is an IRI")
            .to_owned();
        parse_query(
            &format!("SELECT ?x ?y WHERE {{ ?x <{iri}> ?y }}"),
            &mut self.dataset.dict,
        )
        .expect("property query parses")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdfs::Schema;

    #[test]
    fn deterministic_given_seed() {
        let cfg = SynthConfig {
            individuals: 50,
            edges: 100,
            typings: 50,
            ..Default::default()
        };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.dataset.graph, b.dataset.graph);
    }

    #[test]
    fn class_tree_size_matches_depth_and_fanout() {
        let cfg = SynthConfig {
            class_depth: 3,
            class_fanout: 2,
            ..Default::default()
        };
        let w = generate(&cfg);
        // 1 + 2 + 4 + 8 = 15
        assert_eq!(w.classes.len(), 15);
        let schema = Schema::extract(&w.dataset.graph, &w.dataset.vocab);
        assert_eq!(
            schema.sub_classes(w.root_class).len(),
            14,
            "every class is under the root"
        );
    }

    #[test]
    fn property_chains_close_transitively() {
        let cfg = SynthConfig {
            property_chains: 2,
            chain_length: 4,
            domain_range_density: 0.0,
            ..Default::default()
        };
        let w = generate(&cfg);
        let schema = Schema::extract(&w.dataset.graph, &w.dataset.vocab);
        for &top in &w.top_properties {
            assert_eq!(
                schema.sub_properties(top).len(),
                3,
                "3 links below each top"
            );
        }
    }

    #[test]
    fn queries_build_and_reference_real_entities() {
        let mut w = generate(&SynthConfig {
            individuals: 20,
            edges: 50,
            typings: 20,
            ..Default::default()
        });
        let root = w.root_class;
        let q = w.type_query(root);
        assert_eq!(q.bgps[0].patterns.len(), 1);
        let tops = w.top_properties.clone();
        let q = w.property_query(tops[0]);
        assert_eq!(q.projection.len(), 2);
    }

    #[test]
    fn zero_depth_tree_is_one_class() {
        let cfg = SynthConfig {
            class_depth: 0,
            ..Default::default()
        };
        let w = generate(&cfg);
        assert_eq!(w.classes.len(), 1);
    }
}
