//! Vendored minimal benchmark harness with a criterion-compatible API
//! surface (the container has no network access to crates.io). Supports
//! the subset this workspace uses: `Criterion::bench_function`,
//! `benchmark_group` with `sample_size` / `bench_with_input` / `finish`,
//! `BenchmarkId`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: per sample, run the closure in a batch sized so a
//! batch takes ≳1ms, then report the median over `sample_size` samples.
//! No statistics beyond that — this is a smoke-and-ballpark harness, not
//! a replacement for criterion's analysis.

use std::fmt;
use std::time::{Duration, Instant};

/// Identifier for one benchmark within a group: `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just `parameter` (for groups that bench a single function).
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher {
    samples: usize,
    /// Median ns/iter of the last `iter` call, for the caller to report.
    last_ns: f64,
}

impl Bencher {
    /// Times `routine`, storing the median ns/iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate a batch size aiming at ≥1ms per sample so timer
        // resolution doesn't dominate fast routines.
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let batch =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as usize;

        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            per_iter.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        self.last_ns = per_iter[per_iter.len() / 2];
    }
}

fn report(group: &str, id: &str, ns: f64) {
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let (value, unit) = if ns >= 1e9 {
        (ns / 1e9, "s")
    } else if ns >= 1e6 {
        (ns / 1e6, "ms")
    } else if ns >= 1e3 {
        (ns / 1e3, "µs")
    } else {
        (ns, "ns")
    };
    println!("{label:<60} time: {value:>10.3} {unit}/iter");
}

/// A named set of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Benches `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.samples,
            last_ns: 0.0,
        };
        f(&mut b);
        report(&self.name, &id.to_string(), b.last_ns);
        self
    }

    /// Benches `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.samples,
            last_ns: 0.0,
        };
        f(&mut b, input);
        report(&self.name, &id.id, b.last_ns);
        self
    }

    /// Ends the group (a no-op here; criterion-compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 20,
            _criterion: self,
        }
    }

    /// Benches a standalone function.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: 20,
            last_ns: 0.0,
        };
        f(&mut b);
        report("", id, b.last_ns);
        self
    }
}

/// Collects benchmark functions into a runnable group, like criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups, like criterion's.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("sat", 4).to_string(), "sat/4");
        assert_eq!(BenchmarkId::from_parameter("tiny").to_string(), "tiny");
    }

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(5);
        let mut ran = false;
        g.bench_function("noop", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran = true;
        });
        g.finish();
        assert!(ran);
    }
}
