//! Shared helpers for the bench harness: standard datasets, query prep,
//! plain-text table rendering and JSON result emission.
//!
//! The binaries (`fig3`, `tables`, `figures`) regenerate every figure and
//! table of the paper (see DESIGN.md §3 for the experiment index); the
//! Criterion benches under `benches/` measure the same operations with
//! statistical rigour.

use rdf_model::Graph;
use serde::Serialize;
use sparql::Query;
use std::fmt::Write as _;
use std::path::PathBuf;
use workload::lubm::{generate, queries, LubmConfig};
use workload::Dataset;

/// Standard dataset scales used across the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// ≈250 triples — unit-test sized.
    Tiny,
    /// ≈4k triples — criterion bench sized.
    Small,
    /// ≈50k triples — the headline figure scale.
    Default,
    /// ≈150k triples (3 universities).
    Large,
}

impl Scale {
    /// Parses a scale name.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "default" => Some(Scale::Default),
            "large" => Some(Scale::Large),
            _ => None,
        }
    }

    /// The LUBM config for this scale.
    pub fn config(self) -> LubmConfig {
        match self {
            Scale::Tiny => LubmConfig::tiny(),
            Scale::Small => LubmConfig {
                departments: 4,
                students_per_department: 60,
                ..LubmConfig::default()
            },
            Scale::Default => LubmConfig::default(),
            Scale::Large => LubmConfig::scaled(3),
        }
    }
}

/// Generates the LUBM dataset and the Q1–Q10 workload at a scale, with
/// every query set to `DISTINCT` (answer-set semantics on both techniques).
pub fn lubm_workload(scale: Scale) -> (Dataset, Vec<(String, Query)>) {
    let mut ds = generate(&scale.config());
    let named = queries(&mut ds);
    let qs = named
        .iter()
        .map(|nq| {
            let mut q = nq.query.clone();
            q.distinct = true;
            (nq.name.to_owned(), q)
        })
        .collect();
    (ds, qs)
}

/// Renders an aligned plain-text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], out: &mut String| {
        for (i, cell) in cells.iter().enumerate() {
            let pad = widths.get(i).copied().unwrap_or(0);
            let _ = write!(out, "{cell:<pad$}  ");
        }
        out.pop();
        out.pop();
        out.push('\n');
    };
    render_row(
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        &mut out,
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        render_row(row, &mut out);
    }
    out
}

/// Renders a horizontal log-scale ASCII bar for a value (None = ∞).
pub fn log_bar(value: Option<u64>, max_width: usize) -> String {
    match value {
        None => format!("{} ∞", "█".repeat(max_width)),
        Some(0) => String::new(),
        Some(v) => {
            // one block per order of magnitude, interpolated
            let magnitude = (v as f64).log10();
            let blocks = ((magnitude / 7.0) * max_width as f64).round() as usize;
            format!("{} {v}", "█".repeat(blocks.clamp(1, max_width)))
        }
    }
}

/// Writes `value` as pretty JSON under `bench_results/<name>.json`
/// (relative to the workspace root) and returns the path.
pub fn write_json<T: Serialize>(name: &str, value: &T) -> std::io::Result<PathBuf> {
    let dir = workspace_root().join("bench_results");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| std::io::Error::other(format!("report is not serialisable: {e}")))?;
    std::fs::write(&path, json)?;
    Ok(path)
}

/// [`write_json`] for the harness binaries: prints the path on success or
/// a readable message on failure, and returns whether the write landed so
/// `main` can exit non-zero instead of silently dropping the report.
pub fn emit_json<T: Serialize>(name: &str, value: &T) -> bool {
    match write_json(name, value) {
        Ok(path) => {
            eprintln!("wrote {}", path.display());
            true
        }
        Err(e) => {
            eprintln!("error: could not write bench_results/{name}.json: {e}");
            false
        }
    }
}

/// Measures the write-ahead-journal overhead a durable store adds to one
/// update: the per-append cost of journaling a representative one-triple
/// `InsertBatch` (a few fresh terms ride along, as they do in real
/// workloads). Returns seconds per append, or an error when the
/// filesystem refuses (the caller reports, it does not panic).
pub fn journal_append_cost(
    fsync: durability::FsyncPolicy,
    appends: usize,
) -> Result<f64, durability::DurabilityError> {
    use rdf_model::{Term, TermId, Triple};
    let dir = std::env::temp_dir().join(format!("webreason-bench-wal-{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(durability::DurabilityError::Io)?;
    let path = dir.join(format!("overhead-{}.wal", fsync.name()));
    let _ = std::fs::remove_file(&path);
    let mut journal = durability::Journal::open(&path, fsync)?;
    let t = |i| TermId::from_index(i);
    let start = std::time::Instant::now();
    for i in 0..appends.max(1) {
        journal.append(&durability::JournalRecord::InsertBatch {
            new_terms: vec![
                Term::iri(format!("http://bench/subject-{i}")),
                Term::literal("payload"),
            ],
            triples: vec![Triple::new(t(i), t(1), t(2))],
        })?;
    }
    let per_append = start.elapsed().as_secs_f64() / appends.max(1) as f64;
    let _ = std::fs::remove_file(&path);
    Ok(per_append)
}

/// The workspace root (two levels above this crate's manifest).
pub fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."))
}

/// Times a closure, returning (result, seconds).
pub fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = std::time::Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

/// Formats seconds as an adaptive human unit.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

/// Sanity helper used by several experiments: the answer sets of two
/// evaluation strategies must agree.
pub fn assert_same_answers(a: &sparql::Solutions, b: &sparql::Solutions, context: &str) {
    assert_eq!(a.as_set(), b.as_set(), "strategies disagree on {context}");
}

/// Convenience: saturated graph of a dataset.
pub fn saturated(ds: &Dataset) -> Graph {
    rdfs::saturate(&ds.graph, &ds.vocab).graph
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_parse_and_generate() {
        for (name, scale) in [
            ("tiny", Scale::Tiny),
            ("small", Scale::Small),
            ("default", Scale::Default),
        ] {
            assert_eq!(Scale::parse(name), Some(scale));
        }
        assert_eq!(Scale::parse("bogus"), None);
        let (ds, qs) = lubm_workload(Scale::Tiny);
        assert_eq!(qs.len(), 10);
        assert!(ds.graph.len() > 200);
        assert!(qs.iter().all(|(_, q)| q.distinct));
    }

    #[test]
    fn table_renderer_aligns() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "222".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a "));
    }

    #[test]
    fn log_bar_shapes() {
        assert!(log_bar(None, 10).contains('∞'));
        assert!(!log_bar(Some(1), 10).is_empty());
        let small = log_bar(Some(10), 20).chars().filter(|&c| c == '█').count();
        let big = log_bar(Some(10_000_000), 20)
            .chars()
            .filter(|&c| c == '█')
            .count();
        assert!(big > small);
    }

    #[test]
    fn fmt_secs_units() {
        assert_eq!(fmt_secs(2.5), "2.50 s");
        assert_eq!(fmt_secs(0.0025), "2.50 ms");
        assert_eq!(fmt_secs(0.0000025), "2.5 µs");
    }
}
