//! LUBM-style university workload: ontology, instance generator, queries.

use crate::{Dataset, NamedQuery};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdf_model::{Dictionary, Graph, TermId, Triple, Vocab};
use sparql::parse_query;

/// Namespace of the Univ-Bench-style ontology vocabulary.
pub const NS_UB: &str = "http://webreason.example/univ-bench#";
/// Namespace of generated instance data.
pub const NS_DATA: &str = "http://webreason.example/data/";

/// Generator configuration. Defaults give ≈50k triples per university.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LubmConfig {
    /// Number of universities.
    pub universities: usize,
    /// Departments per university.
    pub departments: usize,
    /// Undergraduate students per department (graduates are a quarter of
    /// this).
    pub students_per_department: usize,
    /// Faculty members per department, split across professor ranks and
    /// lecturers.
    pub faculty_per_department: usize,
    /// Courses per department.
    pub courses_per_department: usize,
    /// Publications per faculty member.
    pub publications_per_faculty: usize,
    /// RNG seed; generation is deterministic given the full config.
    pub seed: u64,
}

impl Default for LubmConfig {
    fn default() -> Self {
        LubmConfig {
            universities: 1,
            departments: 20,
            students_per_department: 300,
            faculty_per_department: 30,
            courses_per_department: 40,
            publications_per_faculty: 10,
            seed: 42,
        }
    }
}

impl LubmConfig {
    /// A small configuration for unit tests (≈2k triples).
    pub fn tiny() -> Self {
        LubmConfig {
            universities: 1,
            departments: 2,
            students_per_department: 12,
            faculty_per_department: 4,
            courses_per_department: 5,
            publications_per_faculty: 2,
            seed: 7,
        }
    }

    /// Scales every per-container count by `factor` (≥ 1 universities).
    pub fn scaled(universities: usize) -> Self {
        LubmConfig {
            universities,
            ..Default::default()
        }
    }
}

/// The ontology's class and property ids, exposed so benches and tests can
/// build queries without string lookups.
#[derive(Debug, Clone, Copy)]
#[allow(missing_docs)] // field names mirror the ontology 1:1
pub struct UbVocab {
    pub person: TermId,
    pub employee: TermId,
    pub faculty: TermId,
    pub professor: TermId,
    pub full_professor: TermId,
    pub associate_professor: TermId,
    pub assistant_professor: TermId,
    pub lecturer: TermId,
    pub student: TermId,
    pub undergraduate_student: TermId,
    pub graduate_student: TermId,
    pub course: TermId,
    pub graduate_course: TermId,
    pub organization: TermId,
    pub university: TermId,
    pub department: TermId,
    pub publication: TermId,
    pub member_of: TermId,
    pub works_for: TermId,
    pub head_of: TermId,
    pub teacher_of: TermId,
    pub takes_course: TermId,
    pub advisor: TermId,
    pub publication_author: TermId,
    pub sub_organization_of: TermId,
    pub degree_from: TermId,
    pub undergraduate_degree_from: TermId,
    pub doctoral_degree_from: TermId,
}

impl UbVocab {
    /// Interns the ontology vocabulary.
    pub fn intern(dict: &mut Dictionary) -> Self {
        let mut enc = |n: &str| dict.encode_iri(&format!("{NS_UB}{n}"));
        UbVocab {
            person: enc("Person"),
            employee: enc("Employee"),
            faculty: enc("Faculty"),
            professor: enc("Professor"),
            full_professor: enc("FullProfessor"),
            associate_professor: enc("AssociateProfessor"),
            assistant_professor: enc("AssistantProfessor"),
            lecturer: enc("Lecturer"),
            student: enc("Student"),
            undergraduate_student: enc("UndergraduateStudent"),
            graduate_student: enc("GraduateStudent"),
            course: enc("Course"),
            graduate_course: enc("GraduateCourse"),
            organization: enc("Organization"),
            university: enc("University"),
            department: enc("Department"),
            publication: enc("Publication"),
            member_of: enc("memberOf"),
            works_for: enc("worksFor"),
            head_of: enc("headOf"),
            teacher_of: enc("teacherOf"),
            takes_course: enc("takesCourse"),
            advisor: enc("advisor"),
            publication_author: enc("publicationAuthor"),
            sub_organization_of: enc("subOrganizationOf"),
            degree_from: enc("degreeFrom"),
            undergraduate_degree_from: enc("undergraduateDegreeFrom"),
            doctoral_degree_from: enc("doctoralDegreeFrom"),
        }
    }
}

/// Emits the ontology (schema triples) into `g`.
fn emit_schema(g: &mut Graph, v: &Vocab, ub: &UbVocab) {
    let mut sc = |a: TermId, b: TermId| {
        g.insert(Triple::new(a, v.sub_class_of, b));
    };
    sc(ub.employee, ub.person);
    sc(ub.faculty, ub.employee);
    sc(ub.professor, ub.faculty);
    sc(ub.full_professor, ub.professor);
    sc(ub.associate_professor, ub.professor);
    sc(ub.assistant_professor, ub.professor);
    sc(ub.lecturer, ub.faculty);
    sc(ub.student, ub.person);
    sc(ub.undergraduate_student, ub.student);
    sc(ub.graduate_student, ub.student);
    sc(ub.graduate_course, ub.course);
    sc(ub.university, ub.organization);
    sc(ub.department, ub.organization);

    let mut sp = |a: TermId, b: TermId| {
        g.insert(Triple::new(a, v.sub_property_of, b));
    };
    sp(ub.works_for, ub.member_of);
    sp(ub.head_of, ub.works_for);
    sp(ub.undergraduate_degree_from, ub.degree_from);
    sp(ub.doctoral_degree_from, ub.degree_from);

    let mut dom_rng = |p: TermId, d: TermId, r: TermId| {
        g.insert(Triple::new(p, v.domain, d));
        g.insert(Triple::new(p, v.range, r));
    };
    dom_rng(ub.member_of, ub.person, ub.organization);
    dom_rng(ub.teacher_of, ub.faculty, ub.course);
    dom_rng(ub.takes_course, ub.student, ub.course);
    dom_rng(ub.advisor, ub.student, ub.professor);
    dom_rng(ub.publication_author, ub.publication, ub.person);
    dom_rng(ub.sub_organization_of, ub.organization, ub.organization);
    dom_rng(ub.degree_from, ub.person, ub.university);
}

/// Generates a dataset per `cfg`. Instance IRIs are deterministic
/// (`…/u{u}`, `…/u{u}/d{d}`, `…/u{u}/d{d}/prof{i}` …), so queries can
/// reference specific entities.
pub fn generate(cfg: &LubmConfig) -> Dataset {
    let mut dict = Dictionary::new();
    let vocab = Vocab::intern(&mut dict);
    let ub = UbVocab::intern(&mut dict);
    let mut g = Graph::new();
    emit_schema(&mut g, &vocab, &ub);
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    for u in 0..cfg.universities {
        let uni = dict.encode_iri(&format!("{NS_DATA}u{u}"));
        g.insert(Triple::new(uni, vocab.rdf_type, ub.university));

        for d in 0..cfg.departments {
            let dept = dict.encode_iri(&format!("{NS_DATA}u{u}/d{d}"));
            g.insert(Triple::new(dept, vocab.rdf_type, ub.department));
            g.insert(Triple::new(dept, ub.sub_organization_of, uni));

            // --- courses ------------------------------------------------
            let mut courses = Vec::with_capacity(cfg.courses_per_department);
            for c in 0..cfg.courses_per_department {
                let course = dict.encode_iri(&format!("{NS_DATA}u{u}/d{d}/course{c}"));
                // Every third course is a graduate course (leaf-typed).
                let class = if c % 3 == 0 {
                    ub.graduate_course
                } else {
                    ub.course
                };
                g.insert(Triple::new(course, vocab.rdf_type, class));
                courses.push(course);
            }

            // --- faculty ------------------------------------------------
            let ranks = [
                ub.full_professor,
                ub.associate_professor,
                ub.assistant_professor,
                ub.lecturer,
            ];
            let mut faculty = Vec::with_capacity(cfg.faculty_per_department);
            let mut professors = Vec::new();
            for i in 0..cfg.faculty_per_department {
                let person = dict.encode_iri(&format!("{NS_DATA}u{u}/d{d}/prof{i}"));
                let rank = ranks[i % ranks.len()];
                g.insert(Triple::new(person, vocab.rdf_type, rank));
                g.insert(Triple::new(person, ub.works_for, dept));
                g.insert(Triple::new(
                    person,
                    ub.doctoral_degree_from,
                    dict.encode_iri(&format!("{NS_DATA}u{}", rng.gen_range(0..cfg.universities))),
                ));
                // every faculty member teaches 1–3 courses
                for _ in 0..rng.gen_range(1..=3usize) {
                    let course = courses[rng.gen_range(0..courses.len())];
                    g.insert(Triple::new(person, ub.teacher_of, course));
                }
                if rank != ub.lecturer {
                    professors.push(person);
                }
                faculty.push(person);
            }
            // The department head: headOf (⊑ worksFor ⊑ memberOf).
            g.insert(Triple::new(faculty[0], ub.head_of, dept));

            // --- publications -------------------------------------------
            for (i, &author) in faculty.iter().enumerate() {
                for p in 0..cfg.publications_per_faculty {
                    let publ = dict.encode_iri(&format!("{NS_DATA}u{u}/d{d}/pub{i}_{p}"));
                    // NOTE: publications carry no explicit type — their
                    // membership in Publication is derivable from the
                    // domain of publicationAuthor only (LUBM-style
                    // incompleteness driving the reasoning need).
                    g.insert(Triple::new(publ, ub.publication_author, author));
                    // occasional co-author from the same department
                    if rng.gen_bool(0.3) {
                        let co = faculty[rng.gen_range(0..faculty.len())];
                        g.insert(Triple::new(publ, ub.publication_author, co));
                    }
                }
            }

            // --- students -----------------------------------------------
            let undergrads = cfg.students_per_department;
            let grads = cfg.students_per_department / 4;
            for s in 0..undergrads + grads {
                let student = dict.encode_iri(&format!("{NS_DATA}u{u}/d{d}/student{s}"));
                let grad = s >= undergrads;
                let class = if grad {
                    ub.graduate_student
                } else {
                    ub.undergraduate_student
                };
                g.insert(Triple::new(student, vocab.rdf_type, class));
                g.insert(Triple::new(student, ub.member_of, dept));
                for _ in 0..rng.gen_range(2..=4usize) {
                    let course = courses[rng.gen_range(0..courses.len())];
                    g.insert(Triple::new(student, ub.takes_course, course));
                }
                if grad && !professors.is_empty() {
                    let prof = professors[rng.gen_range(0..professors.len())];
                    g.insert(Triple::new(student, ub.advisor, prof));
                    g.insert(Triple::new(
                        student,
                        ub.undergraduate_degree_from,
                        dict.encode_iri(&format!(
                            "{NS_DATA}u{}",
                            rng.gen_range(0..cfg.universities)
                        )),
                    ));
                }
            }
        }
    }
    Dataset {
        dict,
        vocab,
        graph: g,
    }
}

/// The ten-query workload. Reformulation sizes range from 1 branch (Q1) to
/// dozens (Q2, Q9), giving the per-query threshold spread of Fig. 3.
pub fn queries(ds: &mut Dataset) -> Vec<NamedQuery> {
    let prologue = format!("PREFIX ub: <{NS_UB}> PREFIX d: <{NS_DATA}>\n");
    let mut make = |name: &'static str, description: &'static str, body: &str| NamedQuery {
        name,
        description,
        query: parse_query(&format!("{prologue}{body}"), &mut ds.dict)
            .unwrap_or_else(|e| panic!("workload query {name} must parse: {e}")),
    };
    vec![
        make(
            "Q1",
            "students taking a specific course (no reasoning needed)",
            "SELECT ?x WHERE { ?x ub:takesCourse <http://webreason.example/data/u0/d0/course1> }",
        ),
        make(
            "Q2",
            "all persons (deep subclass + domain/range reformulation)",
            "SELECT ?x WHERE { ?x a ub:Person }",
        ),
        make(
            "Q3",
            "publications of a specific professor (domain reasoning types the publication)",
            "SELECT ?p WHERE { ?p a ub:Publication . ?p ub:publicationAuthor <http://webreason.example/data/u0/d0/prof0> }",
        ),
        make(
            "Q4",
            "professors working for a specific department (rank subclasses + worksFor subproperties)",
            "SELECT ?x WHERE { ?x a ub:Professor . ?x ub:worksFor <http://webreason.example/data/u0/d0> }",
        ),
        make(
            "Q5",
            "members of a specific department (memberOf ⊒ worksFor ⊒ headOf)",
            "SELECT ?x WHERE { ?x ub:memberOf <http://webreason.example/data/u0/d0> }",
        ),
        make(
            "Q6",
            "all students (subclasses ∪ domain of takesCourse/advisor)",
            "SELECT ?x WHERE { ?x a ub:Student }",
        ),
        make(
            "Q7",
            "students taking a course taught by a specific professor",
            "SELECT ?x ?y WHERE { ?x a ub:Student . ?x ub:takesCourse ?y . <http://webreason.example/data/u0/d0/prof0> ub:teacherOf ?y }",
        ),
        make(
            "Q8",
            "students who are members of a sub-organization of a specific university",
            "SELECT ?x ?d WHERE { ?x a ub:Student . ?x ub:memberOf ?d . ?d ub:subOrganizationOf <http://webreason.example/data/u0> }",
        ),
        make(
            "Q9",
            "advisor triangle: student advised by the teacher of a course they take",
            "SELECT ?x ?y ?z WHERE { ?x a ub:Student . ?y a ub:Faculty . ?x ub:advisor ?y . ?y ub:teacherOf ?z . ?x ub:takesCourse ?z }",
        ),
        make(
            "Q10",
            "graduate students and where they got their degree (degreeFrom subproperties)",
            "SELECT ?x ?u WHERE { ?x a ub:GraduateStudent . ?x ub:degreeFrom ?u }",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdfs::{saturate, Schema};
    use sparql::evaluate;

    #[test]
    fn generation_is_deterministic() {
        let cfg = LubmConfig::tiny();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.graph.len(), b.graph.len());
        let c = generate(&LubmConfig { seed: 8, ..cfg });
        assert_ne!(a.graph, c.graph, "different seed, different data");
    }

    #[test]
    fn scale_grows_linearly_with_universities() {
        let one = generate(&LubmConfig {
            universities: 1,
            ..LubmConfig::tiny()
        });
        let two = generate(&LubmConfig {
            universities: 2,
            ..LubmConfig::tiny()
        });
        let ratio = two.graph.len() as f64 / one.graph.len() as f64;
        assert!((1.7..2.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn schema_shape() {
        let ds = generate(&LubmConfig::tiny());
        let schema = Schema::extract(&ds.graph, &ds.vocab);
        let mut dict = ds.dict.clone();
        let ub = UbVocab::intern(&mut dict);
        // FullProfessor ⊑* Person (4 hops)
        assert!(schema.super_classes(ub.full_professor).contains(&ub.person));
        // headOf ⊑* memberOf
        assert!(schema.super_properties(ub.head_of).contains(&ub.member_of));
        // takesCourse domain lifts to Person
        assert!(schema.domains(ub.takes_course).contains(&ub.person));
    }

    #[test]
    fn leaf_typing_requires_reasoning() {
        let mut ds = generate(&LubmConfig::tiny());
        let qs = queries(&mut ds);
        let q2 = &qs[1].query; // all persons
        let plain = evaluate(&ds.graph, q2);
        assert!(plain.is_empty(), "no explicit ub:Person assertions");
        let sat = saturate(&ds.graph, &ds.vocab).graph;
        let reasoned = evaluate(&sat, q2);
        assert!(!reasoned.is_empty(), "reasoning reveals the persons");
    }

    #[test]
    fn all_queries_have_answers_under_reasoning() {
        let mut ds = generate(&LubmConfig::tiny());
        let sat = saturate(&ds.graph, &ds.vocab).graph;
        for nq in queries(&mut ds) {
            let sols = evaluate(&sat, &nq.query);
            assert!(
                !sols.is_empty(),
                "{} should have answers: {}",
                nq.name,
                nq.description
            );
        }
    }

    #[test]
    fn saturation_blowup_is_significant() {
        let ds = generate(&LubmConfig::tiny());
        let sat = saturate(&ds.graph, &ds.vocab);
        let blowup = sat.stats.output_triples as f64 / sat.stats.input_triples as f64;
        assert!(
            blowup > 1.3,
            "LUBM-style data inflates under RDFS: {blowup}"
        );
    }

    #[test]
    fn default_scale_is_substantial() {
        let ds = generate(&LubmConfig::default());
        assert!(ds.graph.len() > 40_000, "got {}", ds.graph.len());
    }
}
