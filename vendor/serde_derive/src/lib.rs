//! Vendored minimal `#[derive(Serialize)]` proc macro (the container has no
//! network access to crates.io, so upstream serde_derive with its syn/quote
//! dependency tree is unavailable). Parses the token stream by hand and
//! supports exactly the shapes this workspace derives on:
//!
//! * structs with named fields (including lifetime generics);
//! * enums with unit and newtype (single unnamed field) variants.
//!
//! The generated code targets the vendored `serde::Serialize` trait, which
//! writes JSON directly.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip attributes (`#[...]`, including doc comments) and visibility.
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) if id.to_string() == "struct" => "struct",
        TokenTree::Ident(id) if id.to_string() == "enum" => "enum",
        other => panic!("derive(Serialize): expected struct or enum, found {other}"),
    };
    i += 1;

    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("derive(Serialize): expected type name, found {other}"),
    };
    i += 1;

    // Generics: collect `<...>` verbatim (lifetimes only in this workspace).
    let mut generics = String::new();
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        let mut depth = 0;
        let mut collected: Vec<TokenTree> = Vec::new();
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == '<' {
                    depth += 1;
                } else if p.as_char() == '>' {
                    depth -= 1;
                }
            }
            collected.push(tokens[i].clone());
            i += 1;
            if depth == 0 {
                break;
            }
        }
        generics = TokenStream::from_iter(collected).to_string();
    }

    // Skip a where clause if present (none in this workspace).
    while i < tokens.len()
        && !matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Brace)
    {
        i += 1;
    }
    let body = match &tokens[i] {
        TokenTree::Group(g) => g.stream(),
        other => panic!("derive(Serialize): expected braced body, found {other}"),
    };

    let write_fn = if kind == "struct" {
        struct_body(&parse_named_fields(body))
    } else {
        enum_body(&name, &parse_variants(body))
    };

    let out = format!(
        "impl {generics} ::serde::Serialize for {name} {generics} {{\n\
             fn write_json(&self, out: &mut ::std::string::String) {{\n{write_fn}\n}}\n\
         }}"
    );
    out.parse()
        .expect("derive(Serialize): generated impl parses")
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // `pub(crate)` etc.
                }
            }
            _ => return,
        }
    }
}

/// Field names of a named-field struct body.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1;
        // Skip `: Type` up to the next top-level comma; commas inside
        // angle brackets (e.g. `HashMap<String, f64>`) don't split.
        let mut angle: i32 = 0;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// `(name, is_newtype)` of each enum variant.
fn parse_variants(body: TokenStream) -> Vec<(String, bool)> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let newtype = matches!(
            tokens.get(i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        );
        if newtype {
            i += 1;
        }
        if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace) {
            panic!(
                "derive(Serialize): struct enum variants are not supported by the vendored shim"
            );
        }
        variants.push((name, newtype));
        // Skip to past the next comma.
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
    }
    variants
}

fn struct_body(fields: &[String]) -> String {
    let mut out = String::from("out.push('{');\n");
    for (idx, f) in fields.iter().enumerate() {
        let comma = if idx > 0 { "," } else { "" };
        out.push_str(&format!(
            "out.push_str(\"{comma}\\\"{f}\\\":\");\n\
             ::serde::Serialize::write_json(&self.{f}, out);\n"
        ));
    }
    out.push_str("out.push('}');");
    out
}

fn enum_body(name: &str, variants: &[(String, bool)]) -> String {
    let mut arms = String::new();
    for (v, newtype) in variants {
        if *newtype {
            arms.push_str(&format!(
                "{name}::{v}(__value) => {{\n\
                     out.push_str(\"{{\\\"{v}\\\":\");\n\
                     ::serde::Serialize::write_json(__value, out);\n\
                     out.push('}}');\n\
                 }}\n"
            ));
        } else {
            arms.push_str(&format!("{name}::{v} => out.push_str(\"\\\"{v}\\\"\"),\n"));
        }
    }
    format!("match self {{\n{arms}}}")
}
