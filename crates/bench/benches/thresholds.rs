//! End-to-end Fig. 3 pipeline bench: how long the whole
//! profile-then-compute-thresholds step takes (the cost of the advisor's
//! quantitative analysis itself).

use bench::{lubm_workload, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use webreason_core::cost::profile;
use webreason_core::threshold::compute_thresholds;
use webreason_core::MaintenanceAlgorithm;

fn bench_threshold_pipeline(c: &mut Criterion) {
    let (ds, qs) = lubm_workload(Scale::Tiny);
    let mut group = c.benchmark_group("thresholds");
    group.sample_size(10);
    group.bench_function("profile+compute_tiny", |b| {
        b.iter(|| {
            let p = profile(&ds.graph, &ds.vocab, &qs, MaintenanceAlgorithm::Counting, 1);
            black_box(compute_thresholds(&p))
        })
    });
    let prof = profile(&ds.graph, &ds.vocab, &qs, MaintenanceAlgorithm::Counting, 2);
    group.bench_function("compute_only", |b| {
        b.iter(|| black_box(compute_thresholds(&prof)))
    });
    group.finish();
}

criterion_group!(benches, bench_threshold_pipeline);
criterion_main!(benches);
