//! # rdf-io — RDF concrete syntaxes
//!
//! Readers and writers for the two plain-text RDF serialisations used by
//! the examples, tests and workload fixtures of this reproduction:
//!
//! * **N-Triples** ([`parse_ntriples`], [`write_ntriples`]) — the
//!   line-oriented exchange syntax; fully supported including string
//!   escapes, language tags, datatype IRIs and `\u`/`\U` escapes.
//! * **Turtle** ([`parse_turtle`]) — a practical subset: `@prefix` /
//!   `PREFIX` directives, prefixed names, the `a` keyword, predicate lists
//!   (`;`), object lists (`,`), numeric / boolean shorthand literals and
//!   labelled blank nodes. Collections `( … )` and anonymous nodes `[ … ]`
//!   are outside the subset and rejected with a clear error. The matching
//!   writer ([`write_turtle`]) produces grouped, prefix-compacted,
//!   deterministic output that round-trips through the parser.
//!
//! Both parsers intern terms in a caller-supplied [`rdf_model::Dictionary`]
//! and insert encoded triples into a caller-supplied [`rdf_model::Graph`],
//! so parsing large files never materialises an intermediate triple list.
//!
//! ```
//! use rdf_model::{Dictionary, Graph};
//! use rdf_io::{parse_turtle, write_ntriples};
//!
//! let mut dict = Dictionary::new();
//! let mut g = Graph::new();
//! parse_turtle(r#"
//!     @prefix ex: <http://example.org/> .
//!     ex:Anne ex:hasFriend ex:Marie ; a ex:Person .
//! "#, &mut dict, &mut g).unwrap();
//! assert_eq!(g.len(), 2);
//! let nt = write_ntriples(&g, &dict);
//! assert!(nt.contains("<http://example.org/Anne>"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod ntriples;
mod turtle;
mod writer;

pub use error::ParseError;
pub use ntriples::{parse_ntriples, write_ntriples, write_ntriples_sorted};
pub use turtle::parse_turtle;
pub use writer::{write_turtle, PrefixMap};
