//! RDFS schema extraction and closure.
//!
//! The paper's Fig. 1 splits an RDF graph into *assertions* (class and
//! property assertions) and *constraints* (the four RDFS schema statements).
//! [`Schema`] materialises the constraint part, closed under the
//! schema-level entailment rules:
//!
//! * rdfs11 — `subClassOf` is transitive;
//! * rdfs5 — `subPropertyOf` is transitive;
//! * domain/range propagation — if `p ⊑ p'` then `p` inherits the
//!   domains/ranges of `p'`, and a domain/range class propagates up the
//!   class hierarchy.
//!
//! These schema-level rules do not change which *instance* triples are
//! entailed (each is subsumed by a chain of rdfs7/rdfs2/rdfs3/rdfs9
//! applications), but closing the schema once up front lets saturation run
//! in a single pass over the instance triples and gives reformulation the
//! inverse maps it needs. This mirrors the "database fragment of RDF" of
//! Goasdoué et al. (EDBT 2013), the paper's ref. \[12\].

use rdf_model::{Graph, Pattern, TermId, Triple, Vocab};
use rustc_hash::{FxHashMap, FxHashSet};

type IdSetMap = FxHashMap<TermId, FxHashSet<TermId>>;

/// The RDFS constraints of a graph, closed under schema-level entailment.
///
/// All accessors return *strict* relationships (a class is not its own
/// superclass) unless stated otherwise; reformulation adds reflexivity
/// where the semantics requires it.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    /// Direct (asserted) constraints, prior to closure.
    direct_sub_class: IdSetMap,
    direct_sub_property: IdSetMap,
    direct_domain: IdSetMap,
    direct_range: IdSetMap,
    /// Closed maps.
    super_classes: IdSetMap,
    sub_classes: IdSetMap,
    super_properties: IdSetMap,
    sub_properties: IdSetMap,
    domains: IdSetMap,
    ranges: IdSetMap,
    /// Inverse closed maps: class -> properties having it as domain/range.
    props_with_domain: IdSetMap,
    props_with_range: IdSetMap,
}

/// Transitive closure (strict) of a direct successor map, cycle-tolerant.
fn transitive_closure(direct: &IdSetMap) -> IdSetMap {
    let mut closed: IdSetMap = FxHashMap::default();
    for &start in direct.keys() {
        let mut reach: FxHashSet<TermId> = FxHashSet::default();
        let mut stack: Vec<TermId> = direct[&start].iter().copied().collect();
        while let Some(n) = stack.pop() {
            if reach.insert(n) {
                if let Some(next) = direct.get(&n) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        // Strictness: a node reachable from itself through a cycle stays in
        // its own closure (the cycle makes the classes equivalent), which is
        // what RDFS entailment prescribes: `c1 sc c2` and `c2 sc c1` entail
        // `c1 sc c1` via rdfs11.
        closed.insert(start, reach);
    }
    closed
}

fn invert(map: &IdSetMap) -> IdSetMap {
    let mut inv: IdSetMap = FxHashMap::default();
    for (&k, vs) in map {
        for &v in vs {
            inv.entry(v).or_default().insert(k);
        }
    }
    inv
}

static EMPTY: once_empty::Empty = once_empty::Empty::new();

/// A tiny shim giving us a `&'static FxHashSet<TermId>` empty set to return
/// from accessors without allocating.
mod once_empty {
    use rdf_model::TermId;
    use rustc_hash::FxHashSet;
    use std::sync::OnceLock;

    pub struct Empty(OnceLock<FxHashSet<TermId>>);

    impl Empty {
        pub const fn new() -> Self {
            Empty(OnceLock::new())
        }
        pub fn get(&self) -> &FxHashSet<TermId> {
            self.0.get_or_init(FxHashSet::default)
        }
    }
}

impl Schema {
    /// Extracts and closes the schema of `graph`.
    pub fn extract(graph: &Graph, vocab: &Vocab) -> Self {
        let mut s = Schema::default();
        let collect = |prop: TermId, into: &mut IdSetMap| {
            graph.for_each_match(&Pattern::new(None, Some(prop), None), |t| {
                into.entry(t.s).or_default().insert(t.o);
            });
        };
        collect(vocab.sub_class_of, &mut s.direct_sub_class);
        collect(vocab.sub_property_of, &mut s.direct_sub_property);
        collect(vocab.domain, &mut s.direct_domain);
        collect(vocab.range, &mut s.direct_range);
        s.close();
        s
    }

    /// Builds a schema from explicit constraint lists (used by the workload
    /// generator and tests). Each slice holds `(subject, object)` pairs.
    pub fn from_constraints(
        sub_class: &[(TermId, TermId)],
        sub_property: &[(TermId, TermId)],
        domain: &[(TermId, TermId)],
        range: &[(TermId, TermId)],
    ) -> Self {
        let mut s = Schema::default();
        let fill = |pairs: &[(TermId, TermId)], into: &mut IdSetMap| {
            for &(a, b) in pairs {
                into.entry(a).or_default().insert(b);
            }
        };
        fill(sub_class, &mut s.direct_sub_class);
        fill(sub_property, &mut s.direct_sub_property);
        fill(domain, &mut s.direct_domain);
        fill(range, &mut s.direct_range);
        s.close();
        s
    }

    /// (Re)computes all closed maps from the direct maps.
    fn close(&mut self) {
        self.super_classes = transitive_closure(&self.direct_sub_class);
        self.super_properties = transitive_closure(&self.direct_sub_property);

        // Closed domains: p inherits domains from every (closed) superproperty,
        // and each domain class propagates to its (closed) superclasses.
        let lift = |direct: &IdSetMap, super_props: &IdSetMap, super_classes: &IdSetMap| {
            let mut out: IdSetMap = FxHashMap::default();
            // Every property that has a domain directly or via a superproperty.
            let mut props: FxHashSet<TermId> = direct.keys().copied().collect();
            props.extend(super_props.keys().copied());
            for &p in &props {
                let mut classes: FxHashSet<TermId> = FxHashSet::default();
                let add_from = |q: TermId, classes: &mut FxHashSet<TermId>| {
                    if let Some(cs) = direct.get(&q) {
                        for &c in cs {
                            classes.insert(c);
                            if let Some(sup) = super_classes.get(&c) {
                                classes.extend(sup.iter().copied());
                            }
                        }
                    }
                };
                add_from(p, &mut classes);
                if let Some(sups) = super_props.get(&p) {
                    for &q in sups {
                        add_from(q, &mut classes);
                    }
                }
                if !classes.is_empty() {
                    out.insert(p, classes);
                }
            }
            out
        };
        self.domains = lift(
            &self.direct_domain,
            &self.super_properties,
            &self.super_classes,
        );
        self.ranges = lift(
            &self.direct_range,
            &self.super_properties,
            &self.super_classes,
        );

        self.sub_classes = invert(&self.super_classes);
        self.sub_properties = invert(&self.super_properties);
        self.props_with_domain = invert(&self.domains);
        self.props_with_range = invert(&self.ranges);
    }

    /// All strict superclasses of `c` (transitive).
    pub fn super_classes(&self, c: TermId) -> &FxHashSet<TermId> {
        self.super_classes.get(&c).unwrap_or(EMPTY.get())
    }

    /// All strict subclasses of `c` (transitive) — the reformulation map.
    pub fn sub_classes(&self, c: TermId) -> &FxHashSet<TermId> {
        self.sub_classes.get(&c).unwrap_or(EMPTY.get())
    }

    /// All strict superproperties of `p` (transitive).
    pub fn super_properties(&self, p: TermId) -> &FxHashSet<TermId> {
        self.super_properties.get(&p).unwrap_or(EMPTY.get())
    }

    /// All strict subproperties of `p` (transitive) — the reformulation map.
    pub fn sub_properties(&self, p: TermId) -> &FxHashSet<TermId> {
        self.sub_properties.get(&p).unwrap_or(EMPTY.get())
    }

    /// The closed domain classes of `p`: every class `c` such that
    /// `s p o ⊢ s rdf:type c`.
    pub fn domains(&self, p: TermId) -> &FxHashSet<TermId> {
        self.domains.get(&p).unwrap_or(EMPTY.get())
    }

    /// The closed range classes of `p`: every class `c` such that
    /// `s p o ⊢ o rdf:type c`.
    pub fn ranges(&self, p: TermId) -> &FxHashSet<TermId> {
        self.ranges.get(&p).unwrap_or(EMPTY.get())
    }

    /// Properties whose closed domain includes `c` (inverse of [`Self::domains`]).
    pub fn properties_with_domain(&self, c: TermId) -> &FxHashSet<TermId> {
        self.props_with_domain.get(&c).unwrap_or(EMPTY.get())
    }

    /// Properties whose closed range includes `c` (inverse of [`Self::ranges`]).
    pub fn properties_with_range(&self, c: TermId) -> &FxHashSet<TermId> {
        self.props_with_range.get(&c).unwrap_or(EMPTY.get())
    }

    /// Emits the closed schema as triples (the schema part of `G∞`).
    pub fn closed_triples(&self, vocab: &Vocab) -> Vec<Triple> {
        let mut out = Vec::new();
        let emit = |map: &IdSetMap, prop: TermId, out: &mut Vec<Triple>| {
            for (&s, os) in map {
                for &o in os {
                    out.push(Triple::new(s, prop, o));
                }
            }
        };
        emit(&self.super_classes, vocab.sub_class_of, &mut out);
        emit(&self.super_properties, vocab.sub_property_of, &mut out);
        emit(&self.domains, vocab.domain, &mut out);
        emit(&self.ranges, vocab.range, &mut out);
        out
    }

    /// Number of direct (asserted) constraints.
    pub fn direct_len(&self) -> usize {
        let count = |m: &IdSetMap| m.values().map(FxHashSet::len).sum::<usize>();
        count(&self.direct_sub_class)
            + count(&self.direct_sub_property)
            + count(&self.direct_domain)
            + count(&self.direct_range)
    }

    /// Number of closed constraints.
    pub fn closed_len(&self) -> usize {
        let count = |m: &IdSetMap| m.values().map(FxHashSet::len).sum::<usize>();
        count(&self.super_classes)
            + count(&self.super_properties)
            + count(&self.domains)
            + count(&self.ranges)
    }

    /// All classes mentioned in a constraint (as sub/superclass or
    /// domain/range of some property).
    pub fn classes(&self) -> FxHashSet<TermId> {
        let mut out = FxHashSet::default();
        for (k, vs) in &self.direct_sub_class {
            out.insert(*k);
            out.extend(vs.iter().copied());
        }
        for vs in self
            .direct_domain
            .values()
            .chain(self.direct_range.values())
        {
            out.extend(vs.iter().copied());
        }
        out
    }

    /// All properties mentioned in a constraint.
    pub fn properties(&self) -> FxHashSet<TermId> {
        let mut out = FxHashSet::default();
        for (k, vs) in &self.direct_sub_property {
            out.insert(*k);
            out.extend(vs.iter().copied());
        }
        out.extend(self.direct_domain.keys().copied());
        out.extend(self.direct_range.keys().copied());
        out
    }

    /// Builds the LiteMat hierarchy-interval sidecar for this schema: one
    /// [`rdf_model::IntervalDict`] over the *direct* `subClassOf` and
    /// `subPropertyOf` edges (the class and property components are
    /// disjoint, so one numbering serves both), with every class or
    /// property mentioned only in a domain/range constraint included as a
    /// standalone node. Rebuilding this after a schema change is the
    /// interval strategy's maintenance cost.
    pub fn interval_dict(&self) -> rdf_model::IntervalDict {
        let mut edges: Vec<(TermId, TermId)> = Vec::new();
        for (&child, parents) in self
            .direct_sub_class
            .iter()
            .chain(self.direct_sub_property.iter())
        {
            edges.extend(parents.iter().map(|&p| (child, p)));
        }
        let extra: Vec<TermId> = self
            .classes()
            .into_iter()
            .chain(self.properties())
            .collect();
        rdf_model::IntervalDict::build(&edges, &extra)
    }

    /// Entities whose closed entries differ between `self` (the old schema)
    /// and `new`: returns `(affected_classes, affected_properties)`.
    ///
    /// A class is affected when its closed superclass set changed; a
    /// property when its closed superproperty, domain or range set changed.
    /// The counting maintainer uses this to touch only the base triples
    /// whose consequence sets can have changed after a schema update.
    pub fn diff_affected(&self, new: &Schema) -> (FxHashSet<TermId>, FxHashSet<TermId>) {
        fn keys_differing(a: &IdSetMap, b: &IdSetMap, out: &mut FxHashSet<TermId>) {
            for k in a.keys().chain(b.keys()) {
                if a.get(k) != b.get(k) {
                    out.insert(*k);
                }
            }
        }
        let mut classes = FxHashSet::default();
        keys_differing(&self.super_classes, &new.super_classes, &mut classes);
        let mut props = FxHashSet::default();
        keys_differing(&self.super_properties, &new.super_properties, &mut props);
        keys_differing(&self.domains, &new.domains, &mut props);
        keys_differing(&self.ranges, &new.ranges, &mut props);
        (classes, props)
    }

    /// True when the schema holds no constraint at all.
    pub fn is_empty(&self) -> bool {
        self.direct_sub_class.is_empty()
            && self.direct_sub_property.is_empty()
            && self.direct_domain.is_empty()
            && self.direct_range.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::Dictionary;

    struct Fixture {
        dict: Dictionary,
        vocab: Vocab,
    }

    impl Fixture {
        fn new() -> Self {
            let mut dict = Dictionary::new();
            let vocab = Vocab::intern(&mut dict);
            Fixture { dict, vocab }
        }
        fn id(&mut self, name: &str) -> TermId {
            self.dict.encode_iri(&format!("http://ex/{name}"))
        }
    }

    /// `Student ⊑ Person ⊑ Agent`, `enrolled ⊑ memberOf`,
    /// `memberOf domain Person`, `memberOf range Org`, `Org ⊑ Agent`.
    fn university(f: &mut Fixture) -> Schema {
        let student = f.id("Student");
        let person = f.id("Person");
        let agent = f.id("Agent");
        let org = f.id("Org");
        let enrolled = f.id("enrolled");
        let member = f.id("memberOf");
        Schema::from_constraints(
            &[(student, person), (person, agent), (org, agent)],
            &[(enrolled, member)],
            &[(member, person)],
            &[(member, org)],
        )
    }

    #[test]
    fn subclass_transitive_closure() {
        let mut f = Fixture::new();
        let s = university(&mut f);
        let (student, person, agent) = (f.id("Student"), f.id("Person"), f.id("Agent"));
        assert!(s.super_classes(student).contains(&person));
        assert!(
            s.super_classes(student).contains(&agent),
            "transitivity (rdfs11)"
        );
        assert!(!s.super_classes(student).contains(&student), "strict");
        assert!(s.sub_classes(agent).contains(&student));
        assert!(s.sub_classes(agent).contains(&person));
        assert_eq!(s.super_classes(agent).len(), 0);
    }

    #[test]
    fn subproperty_closure_and_inheritance() {
        let mut f = Fixture::new();
        let s = university(&mut f);
        let (enrolled, member) = (f.id("enrolled"), f.id("memberOf"));
        let (person, agent, org) = (f.id("Person"), f.id("Agent"), f.id("Org"));
        assert!(s.super_properties(enrolled).contains(&member));
        assert!(s.sub_properties(member).contains(&enrolled));
        // enrolled inherits memberOf's domain/range, lifted through subclass.
        assert!(s.domains(enrolled).contains(&person));
        assert!(
            s.domains(enrolled).contains(&agent),
            "domain lifted to superclass"
        );
        assert!(s.ranges(enrolled).contains(&org));
        assert!(
            s.ranges(enrolled).contains(&agent),
            "range lifted to superclass"
        );
    }

    #[test]
    fn inverse_domain_range_maps() {
        let mut f = Fixture::new();
        let s = university(&mut f);
        let (enrolled, member) = (f.id("enrolled"), f.id("memberOf"));
        let (person, agent) = (f.id("Person"), f.id("Agent"));
        assert!(s.properties_with_domain(person).contains(&member));
        assert!(s.properties_with_domain(person).contains(&enrolled));
        assert!(s.properties_with_domain(agent).contains(&member));
        assert!(s.properties_with_range(agent).contains(&member));
    }

    #[test]
    fn extract_from_graph_equals_from_constraints() {
        let mut f = Fixture::new();
        let want = university(&mut f);
        let (student, person, agent, org) =
            (f.id("Student"), f.id("Person"), f.id("Agent"), f.id("Org"));
        let (enrolled, member) = (f.id("enrolled"), f.id("memberOf"));
        let v = f.vocab;
        let mut g = Graph::new();
        g.insert(Triple::new(student, v.sub_class_of, person));
        g.insert(Triple::new(person, v.sub_class_of, agent));
        g.insert(Triple::new(org, v.sub_class_of, agent));
        g.insert(Triple::new(enrolled, v.sub_property_of, member));
        g.insert(Triple::new(member, v.domain, person));
        g.insert(Triple::new(member, v.range, org));
        // instance triples must be ignored by extraction
        let anne = f.id("Anne");
        g.insert(Triple::new(anne, enrolled, org));
        g.insert(Triple::new(anne, v.rdf_type, student));

        let got = Schema::extract(&g, &v);
        assert_eq!(got.direct_len(), want.direct_len());
        assert_eq!(got.closed_len(), want.closed_len());
        assert_eq!(got.super_classes(student), want.super_classes(student));
        assert_eq!(got.domains(enrolled), want.domains(enrolled));
    }

    #[test]
    fn cyclic_subclasses_are_handled() {
        let mut f = Fixture::new();
        let (a, b, c) = (f.id("A"), f.id("B"), f.id("C"));
        let s = Schema::from_constraints(&[(a, b), (b, a), (b, c)], &[], &[], &[]);
        // A and B are mutually subclasses; both reach C and themselves.
        assert!(s.super_classes(a).contains(&b));
        assert!(
            s.super_classes(a).contains(&a),
            "cycle entails self-superclass via rdfs11"
        );
        assert!(s.super_classes(b).contains(&a));
        assert!(s.super_classes(a).contains(&c));
        assert!(s.sub_classes(c).contains(&a));
    }

    #[test]
    fn closed_triples_emit_everything() {
        let mut f = Fixture::new();
        let s = university(&mut f);
        let v = f.vocab;
        let triples = s.closed_triples(&v);
        assert_eq!(triples.len(), s.closed_len());
        let (student, agent) = (f.id("Student"), f.id("Agent"));
        assert!(triples.contains(&Triple::new(student, v.sub_class_of, agent)));
        let (enrolled, person) = (f.id("enrolled"), f.id("Person"));
        assert!(triples.contains(&Triple::new(enrolled, v.domain, person)));
    }

    #[test]
    fn empty_schema() {
        let s = Schema::from_constraints(&[], &[], &[], &[]);
        assert!(s.is_empty());
        assert_eq!(s.closed_len(), 0);
        assert_eq!(s.direct_len(), 0);
        let mut f = Fixture::new();
        let x = f.id("X");
        assert!(s.super_classes(x).is_empty());
        assert!(s.domains(x).is_empty());
    }

    #[test]
    fn classes_and_properties_enumeration() {
        let mut f = Fixture::new();
        let s = university(&mut f);
        let classes = s.classes();
        assert!(classes.contains(&f.id("Student")));
        assert!(classes.contains(&f.id("Person")));
        assert!(classes.contains(&f.id("Org")), "range classes are classes");
        let props = s.properties();
        assert!(props.contains(&f.id("enrolled")));
        assert!(props.contains(&f.id("memberOf")));
    }

    #[test]
    fn interval_dict_mirrors_closed_hierarchy() {
        let mut f = Fixture::new();
        let s = university(&mut f);
        let d = s.interval_dict();
        // Every class/property is encoded.
        for c in s.classes().into_iter().chain(s.properties()) {
            assert!(d.coverage(c).is_some(), "term missing from IntervalDict");
        }
        // coverage(C) = {C} ∪ strict subclasses, as sets of terms.
        let person = f.id("Person");
        let cov: rustc_hash::FxHashSet<TermId> = d.members(d.coverage(person).unwrap()).collect();
        let mut expect = s.sub_classes(person).clone();
        expect.insert(person);
        assert_eq!(cov, expect);
        // Same for a property hierarchy root.
        let member_of = f.id("memberOf");
        let cov: rustc_hash::FxHashSet<TermId> =
            d.members(d.coverage(member_of).unwrap()).collect();
        let mut expect = s.sub_properties(member_of).clone();
        expect.insert(member_of);
        assert_eq!(cov, expect);
    }

    #[test]
    fn deep_chain_closure() {
        // c0 ⊑ c1 ⊑ ... ⊑ c49: closure of c0 has 49 superclasses.
        let mut f = Fixture::new();
        let ids: Vec<TermId> = (0..50).map(|i| f.id(&format!("c{i}"))).collect();
        let pairs: Vec<_> = ids.windows(2).map(|w| (w[0], w[1])).collect();
        let s = Schema::from_constraints(&pairs, &[], &[], &[]);
        assert_eq!(s.super_classes(ids[0]).len(), 49);
        assert_eq!(s.sub_classes(ids[49]).len(), 49);
        assert_eq!(s.super_classes(ids[25]).len(), 24);
    }
}
