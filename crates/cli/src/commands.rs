//! Command implementations. Each returns its stdout text so the tests can
//! assert on output without spawning processes.

use crate::args::{CliError, Command, Strategy};
use rdf_model::{Dictionary, Graph, Term, Vocab};
use rdfs::{saturate, saturate_parallel, Schema};
use reformulation::reformulate;
use std::fmt::Write as _;
use std::num::NonZeroUsize;
use webreason_core::durable::JOURNAL_FILE;
use webreason_core::{
    DurableStore, FsyncPolicy, MaintenanceAlgorithm, ReasoningConfig, Store, StoreStats,
};

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

fn read_file(path: &str) -> Result<String, CliError> {
    std::fs::read_to_string(path).map_err(|e| err(format!("cannot read {path}: {e}")))
}

/// Loads data files into a raw dictionary + graph.
fn load_graph(files: &[String]) -> Result<(Dictionary, Vocab, Graph), CliError> {
    let mut dict = Dictionary::new();
    let vocab = Vocab::intern(&mut dict);
    let mut g = Graph::new();
    for path in files {
        let text = read_file(path)?;
        let result = if path.ends_with(".ttl") {
            rdf_io::parse_turtle(&text, &mut dict, &mut g)
        } else {
            rdf_io::parse_ntriples(&text, &mut dict, &mut g)
        };
        result.map_err(|e| err(format!("{path}: {e}")))?;
    }
    Ok((dict, vocab, g))
}

fn store_config(strategy: Strategy) -> ReasoningConfig {
    match strategy {
        Strategy::None => ReasoningConfig::None,
        Strategy::Saturation => ReasoningConfig::Saturation(MaintenanceAlgorithm::Recompute),
        Strategy::DRed => ReasoningConfig::Saturation(MaintenanceAlgorithm::DRed),
        Strategy::Counting => ReasoningConfig::Saturation(MaintenanceAlgorithm::Counting),
        Strategy::Plus => ReasoningConfig::SaturationPlus,
        Strategy::Reformulation => ReasoningConfig::Reformulation,
        Strategy::Interval => ReasoningConfig::Interval,
        Strategy::Adaptive => ReasoningConfig::Adaptive,
        Strategy::Backward => ReasoningConfig::BackwardChaining,
        Strategy::Datalog => ReasoningConfig::Datalog,
    }
}

fn load_store(files: &[String], strategy: Strategy, threads: usize) -> Result<Store, CliError> {
    let (dict, vocab, g) = load_graph(files)?;
    let threads = NonZeroUsize::new(threads).ok_or_else(|| err("--threads must be at least 1"))?;
    Ok(Store::from_parts_with_threads(
        dict,
        vocab,
        g,
        store_config(strategy),
        threads,
    ))
}

/// Runs a parsed command, returning the text for stdout.
pub fn run_command(command: &Command) -> Result<String, CliError> {
    match command {
        Command::Help => Ok(crate::USAGE.to_owned()),
        Command::Query {
            files,
            sparql,
            strategy,
            limit_display,
            threads,
            journal,
            fsync,
        } => match journal {
            Some(dir) => query_journaled(
                files,
                sparql,
                *strategy,
                *limit_display,
                *threads,
                dir,
                *fsync,
            ),
            None => query(
                files,
                sparql,
                strategy.unwrap_or(Strategy::Counting),
                *limit_display,
                threads.unwrap_or(1),
            ),
        },
        Command::Serve {
            addr,
            threads,
            journal,
            fsync,
            queue,
            group_commit,
            duration_secs,
            backend,
            max_conns,
            idle_timeout_ms,
            default_deadline_ms,
            max_deadline_ms,
            max_subscriptions,
            strategy,
        } => serve_cmd(
            addr,
            *threads,
            journal,
            *fsync,
            *queue,
            *group_commit,
            *duration_secs,
            backend,
            *max_conns,
            *idle_timeout_ms,
            *default_deadline_ms,
            *max_deadline_ms,
            *max_subscriptions,
            *strategy,
        ),
        Command::Metrics { format, journal } => metrics_cmd(format, journal.as_deref()),
        Command::Checkpoint { dir } => checkpoint_cmd(dir),
        Command::Recover { dir } => recover_cmd(dir),
        Command::Saturate {
            files,
            parallel,
            format,
            full,
        } => saturate_cmd(files, *parallel, format, *full),
        Command::Reformulate { files, sparql } => reformulate_cmd(files, sparql),
        Command::Explain { files, triple } => explain_cmd(files, triple),
        Command::Stats { files } => stats_cmd(files),
        Command::Thresholds { files, queries } => thresholds_cmd(files, queries),
    }
}

/// Boots the embedded HTTP server over a journaled store and blocks.
///
/// A missing journal directory is created fresh (`--strategy`, default
/// counting maintenance, like `query --journal` on a new directory); an
/// existing one is recovered and served with its own strategy.
///
/// The listening line is printed (and flushed) immediately rather than
/// returned, because the command does not finish until the server stops —
/// scripts backgrounding `webreason serve` need the address right away.
/// With `--duration-secs N` the server shuts down gracefully after N
/// seconds, checkpoints, and reports the final state; without it the
/// process serves until killed (the journal keeps applied updates safe).
#[allow(clippy::too_many_arguments)] // mirrors the flag surface
fn serve_cmd(
    addr: &str,
    threads: usize,
    journal: &str,
    fsync: FsyncPolicy,
    queue: usize,
    group_commit: bool,
    duration_secs: Option<u64>,
    backend: &str,
    max_conns: usize,
    idle_timeout_ms: u64,
    default_deadline_ms: Option<u64>,
    max_deadline_ms: u64,
    max_subscriptions: usize,
    strategy: Option<Strategy>,
) -> Result<String, CliError> {
    use std::io::Write as _;

    let exists = std::path::Path::new(journal).join(JOURNAL_FILE).exists();
    let store = if exists {
        // An existing journal keeps the strategy it was created with;
        // `--strategy` only shapes a fresh store.
        DurableStore::open(journal, fsync)
    } else {
        DurableStore::create(
            journal,
            store_config(strategy.unwrap_or(Strategy::Counting)),
            NonZeroUsize::MIN,
            fsync,
        )
    }
    .map_err(|e| err(format!("{journal}: {e}")))?;
    let config = webreason_server::ServerConfig {
        addr: addr.to_owned(),
        threads,
        update_queue: queue,
        group_commit,
        backend: match backend {
            "threaded" => webreason_server::Backend::Threaded,
            _ => webreason_server::Backend::Reactor,
        },
        max_conns,
        idle_timeout: std::time::Duration::from_millis(idle_timeout_ms),
        default_deadline_ms,
        max_deadline_ms,
        max_subscriptions,
        ..Default::default()
    };
    let server =
        webreason_server::Server::start(store, config).map_err(|e| err(format!("{addr}: {e}")))?;
    let local = server.local_addr();
    println!(
        "webreason serve: listening on http://{local} (journal {journal}, {threads} workers, \
         {backend} backend, {max_conns} conns max)"
    );
    let _ = std::io::stdout().flush();

    let Some(secs) = duration_secs else {
        loop {
            std::thread::park(); // serve until the process is killed
        }
    };
    std::thread::sleep(std::time::Duration::from_secs(secs));
    let mut store = server.shutdown();
    let checkpoint = store
        .checkpoint()
        .map(|p| p.display().to_string())
        .unwrap_or_else(|e| format!("checkpoint failed: {e}"));
    let stats = store.stats();
    Ok(format!(
        "serve: shut down after {secs}s\n\
         final state: {} base triples, {} dictionary terms, journal seq {}\n\
         checkpoint: {checkpoint}\n",
        stats.base_triples,
        stats.dictionary_terms,
        store.seq(),
    ))
}

/// The built-in dataset for `webreason metrics`: a small schema plus
/// generated instances — enough for every instrumented subsystem to do
/// real work without shipping a benchmark file.
fn metrics_dataset() -> String {
    let mut ttl = String::from(
        "@prefix ex: <http://ex/> .\n\
         @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n\
         ex:Cat rdfs:subClassOf ex:Mammal .\n\
         ex:Mammal rdfs:subClassOf ex:Animal .\n\
         ex:hasPet rdfs:range ex:Animal .\n\
         ex:hasCat rdfs:subPropertyOf ex:hasPet .\n",
    );
    for i in 0..32 {
        let _ = writeln!(ttl, "ex:cat{i} a ex:Cat .");
        let _ = writeln!(ttl, "ex:owner{i} ex:hasCat ex:cat{i} .");
    }
    ttl
}

const METRICS_QUERY: &str = "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x a ex:Animal }";

/// Exercises saturation (sequential and parallel), reformulated and
/// saturated query answering, incremental maintenance, and the journal +
/// checkpoint path, so the snapshot covers every subsystem.
fn run_metrics_workload(journal: Option<&str>) -> Result<(), CliError> {
    let ttl = metrics_dataset();

    // rdfs.saturate + core: a saturating store answers queries and
    // absorbs instance updates through the maintenance path.
    let mut sat = Store::new(ReasoningConfig::Saturation(MaintenanceAlgorithm::Counting));
    sat.load_turtle(&ttl).map_err(|e| err(e.to_string()))?;
    sat.answer_sparql(METRICS_QUERY)
        .map_err(|e| err(e.to_string()))?;
    let (s, p, o) = (
        Term::iri("http://ex/extra"),
        Term::iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"),
        Term::iri("http://ex/Cat"),
    );
    sat.insert_terms(&s, &p, &o);
    sat.answer_sparql(METRICS_QUERY)
        .map_err(|e| err(e.to_string()))?;
    sat.delete_terms(&s, &p, &o);

    // rdfs.saturate + rdfs.parallel: one sequential and one multi-worker
    // saturation pass over the same data.
    let mut dict = Dictionary::new();
    let vocab = Vocab::intern(&mut dict);
    let mut g = Graph::new();
    rdf_io::parse_turtle(&ttl, &mut dict, &mut g).map_err(|e| err(e.to_string()))?;
    saturate(&g, &vocab);
    saturate_parallel(&g, &vocab, NonZeroUsize::new(2).expect("non-zero"));

    // sparql.union: the reformulated path with its shared-trie evaluator.
    let mut refo = Store::new(ReasoningConfig::Reformulation);
    refo.load_turtle(&ttl).map_err(|e| err(e.to_string()))?;
    refo.answer_sparql(METRICS_QUERY)
        .map_err(|e| err(e.to_string()))?;
    refo.answer_sparql(METRICS_QUERY)
        .map_err(|e| err(e.to_string()))?;

    // durability: journal appends and a checkpoint, in `--journal DIR` or
    // a scratch directory that is removed afterwards.
    let (dir, scratch) = match journal {
        Some(d) => (std::path::PathBuf::from(d), false),
        None => {
            let d = std::env::temp_dir().join(format!("webreason-metrics-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&d);
            (d, true)
        }
    };
    let durable = (|| {
        let exists = dir.join(JOURNAL_FILE).exists();
        let mut ds = if exists {
            DurableStore::open(&dir, FsyncPolicy::Always)
        } else {
            DurableStore::create(
                &dir,
                ReasoningConfig::Saturation(MaintenanceAlgorithm::Counting),
                NonZeroUsize::new(1).expect("non-zero"),
                FsyncPolicy::Always,
            )
        }
        .map_err(|e| err(format!("{}: {e}", dir.display())))?;
        ds.load_turtle(&ttl).map_err(|e| err(e.to_string()))?;
        ds.checkpoint()
            .map_err(|e| err(format!("{}: {e}", dir.display())))?;
        Ok(())
    })();
    if scratch {
        let _ = std::fs::remove_dir_all(&dir);
    }
    durable
}

/// `webreason metrics`: reset the global registry, run the built-in
/// workload, and print the snapshot as JSON or Prometheus text.
fn metrics_cmd(format: &str, journal: Option<&str>) -> Result<String, CliError> {
    let reg = obs::global();
    reg.reset();
    run_metrics_workload(journal)?;
    let snap = reg.snapshot();
    if format == "prometheus" {
        Ok(snap.to_prometheus())
    } else {
        let mut out = serde_json::to_string_pretty(&snap)
            .map_err(|e| err(format!("metrics serialisation failed: {e}")))?;
        out.push('\n');
        Ok(out)
    }
}

/// The Fig. 3 analysis on user data: measures the cost profile and prints
/// the five amortisation thresholds per query.
fn thresholds_cmd(files: &[String], queries_path: &str) -> Result<String, CliError> {
    use webreason_core::cost::profile;
    use webreason_core::threshold::{compute_thresholds, spread_orders_of_magnitude};

    let (mut dict, vocab, g) = load_graph(files)?;
    let text = read_file(queries_path)?;
    let mut queries = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, sparql) = match line.split_once('\t').or_else(|| line.split_once('|')) {
            Some((name, q)) => (name.trim().to_owned(), q.trim()),
            None => (format!("Q{}", queries.len() + 1), line),
        };
        let mut q = sparql::parse_query(sparql, &mut dict)
            .map_err(|e| err(format!("query {name}: {e}")))?;
        q.distinct = true;
        queries.push((name, q));
    }
    if queries.is_empty() {
        return Err(err(format!("{queries_path} contains no queries")));
    }
    let prof = profile(&g, &vocab, &queries, MaintenanceAlgorithm::Counting, 3);
    let thresholds = compute_thresholds(&prof);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "saturation: {} -> {} triples in {:.2} ms; maintenance (counting): \
         inst-ins {:.1} µs, inst-del {:.1} µs, schema-ins {:.1} µs, schema-del {:.1} µs",
        prof.base_triples,
        prof.saturated_triples,
        prof.saturation_time * 1e3,
        prof.maintenance.instance_insert * 1e6,
        prof.maintenance.instance_delete * 1e6,
        prof.maintenance.schema_insert * 1e6,
        prof.maintenance.schema_delete * 1e6,
    );
    let _ = writeln!(
        out,
        "{:<12} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "query", "saturation", "inst-ins", "inst-del", "schema-ins", "schema-del"
    );
    for qt in &thresholds {
        let _ = writeln!(
            out,
            "{:<12} {:>12} {:>12} {:>12} {:>12} {:>12}",
            qt.name,
            qt.saturation.to_string(),
            qt.instance_insert.to_string(),
            qt.instance_delete.to_string(),
            qt.schema_insert.to_string(),
            qt.schema_delete.to_string(),
        );
    }
    let _ = writeln!(
        out,
        "threshold spread: {:.1} orders of magnitude",
        spread_orders_of_magnitude(&thresholds)
    );
    Ok(out)
}

fn query(
    files: &[String],
    sparql: &str,
    strategy: Strategy,
    limit_display: usize,
    threads: usize,
) -> Result<String, CliError> {
    let store = load_store(files, strategy, threads)?;
    let sols = store
        .answer_sparql(sparql)
        .map_err(|e| err(e.to_string()))?;
    let mut out = String::new();
    let threads_note = if threads > 1 {
        format!(", {threads} threads")
    } else {
        String::new()
    };
    let _ = writeln!(
        out,
        "{} solution(s) [strategy: {}, {} base triples{}]",
        sols.len(),
        store.config().name(),
        store.base_graph().len(),
        threads_note
    );
    if let Some(stats) = store.last_eval_stats() {
        let _ = writeln!(out, "  eval: {}", stats.summary());
    }
    let lines = sols.to_strings(&store.dictionary());
    for line in lines.iter().take(limit_display) {
        let _ = writeln!(out, "  {line}");
    }
    if lines.len() > limit_display {
        let _ = writeln!(out, "  … and {} more", lines.len() - limit_display);
    }
    Ok(out)
}

/// `query --journal DIR`: recover (or create) a durable store in `dir`,
/// durably load any data files given on top, and answer. Strategy and
/// thread flags, when given, are journaled switches; when omitted the
/// store keeps whatever it had (a fresh store defaults to counting).
fn query_journaled(
    files: &[String],
    sparql: &str,
    strategy: Option<Strategy>,
    limit_display: usize,
    threads: Option<usize>,
    dir: &str,
    fsync: FsyncPolicy,
) -> Result<String, CliError> {
    let exists = std::path::Path::new(dir).join(JOURNAL_FILE).exists();
    let mut ds = if exists {
        DurableStore::open(dir, fsync)
    } else {
        DurableStore::create(
            dir,
            store_config(strategy.unwrap_or(Strategy::Counting)),
            NonZeroUsize::new(threads.unwrap_or(1)).expect("validated by the parser"),
            fsync,
        )
    }
    .map_err(|e| err(format!("{dir}: {e}")))?;
    if let Some(s) = strategy {
        ds.set_config(store_config(s))
            .map_err(|e| err(e.to_string()))?;
    }
    if let Some(n) = threads {
        ds.set_threads(NonZeroUsize::new(n).expect("validated by the parser"))
            .map_err(|e| err(e.to_string()))?;
    }
    for path in files {
        let text = read_file(path)?;
        let result = if path.ends_with(".ttl") {
            ds.load_turtle(&text)
        } else {
            ds.load_ntriples(&text)
        };
        result.map_err(|e| err(format!("{path}: {e}")))?;
    }
    let sols = ds.answer_sparql(sparql).map_err(|e| err(e.to_string()))?;
    let store = ds.store();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} solution(s) [strategy: {}, {} base triples, journal: {} record(s), fsync {}]",
        sols.len(),
        store.config().name(),
        store.base_graph().len(),
        ds.seq(),
        fsync.name(),
    );
    let lines = sols.to_strings(&store.dictionary());
    for line in lines.iter().take(limit_display) {
        let _ = writeln!(out, "  {line}");
    }
    if lines.len() > limit_display {
        let _ = writeln!(out, "  … and {} more", lines.len() - limit_display);
    }
    Ok(out)
}

fn render_store_stats(out: &mut String, stats: &StoreStats) {
    let _ = writeln!(out, "strategy:          {}", stats.strategy);
    let _ = writeln!(out, "threads:           {}", stats.threads);
    let _ = writeln!(out, "base triples:      {}", stats.base_triples);
    if let Some(n) = stats.saturated_triples {
        let _ = writeln!(out, "saturated triples: {n}");
    }
    let _ = writeln!(out, "dictionary terms:  {}", stats.dictionary_terms);
}

/// `webreason checkpoint <dir>`: snapshot the durable store so future
/// recoveries replay less journal.
fn checkpoint_cmd(dir: &str) -> Result<String, CliError> {
    let mut ds =
        DurableStore::open(dir, FsyncPolicy::Always).map_err(|e| err(format!("{dir}: {e}")))?;
    let path = ds.checkpoint().map_err(|e| err(format!("{dir}: {e}")))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "checkpoint written: {} (covers {} journal record(s))",
        path.display(),
        ds.seq().saturating_sub(1), // minus the checkpoint mark itself
    );
    render_store_stats(&mut out, &ds.stats());
    Ok(out)
}

/// `webreason recover <dir>`: rebuild the store read-only and summarise
/// what came back.
fn recover_cmd(dir: &str) -> Result<String, CliError> {
    let store = Store::recover(dir).map_err(|e| err(format!("{dir}: {e}")))?;
    let mut out = String::new();
    let _ = writeln!(out, "recovered store from {dir}");
    render_store_stats(&mut out, &store.stats());
    Ok(out)
}

fn saturate_cmd(
    files: &[String],
    parallel: Option<usize>,
    format: &str,
    full: bool,
) -> Result<String, CliError> {
    let (dict, vocab, g) = load_graph(files)?;
    let result = match (full, parallel) {
        (true, _) => rdfs::saturate_full(&g, &vocab),
        (false, Some(threads)) => {
            let threads =
                NonZeroUsize::new(threads).ok_or_else(|| err("--parallel must be at least 1"))?;
            saturate_parallel(&g, &vocab, threads)
        }
        (false, None) => saturate(&g, &vocab),
    };
    let mut out = String::new();
    if format == "ttl" {
        out.push_str(&rdf_io::write_turtle(
            &result.graph,
            &dict,
            &rdf_io::PrefixMap::common(),
        ));
    } else {
        out.push_str(&rdf_io::write_ntriples_sorted(&result.graph, &dict));
    }
    let _ = writeln!(
        out,
        "# {} base + {} inferred = {} triples",
        result.stats.input_triples, result.stats.inferred, result.stats.output_triples
    );
    Ok(out)
}

fn reformulate_cmd(files: &[String], sparql: &str) -> Result<String, CliError> {
    let (mut dict, vocab, g) = load_graph(files)?;
    let q = sparql::parse_query(sparql, &mut dict).map_err(|e| err(e.to_string()))?;
    let schema = Schema::extract(&g, &vocab);
    let r = reformulate(&q, &schema, &vocab).map_err(|e| err(e.to_string()))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "q_ref: {} union branch(es), {} atoms total, {} rewrite step(s)",
        r.branches,
        r.query.pattern_count(),
        r.rewrite_steps
    );
    let _ = writeln!(out, "{}", r.query.to_sparql(&dict));
    Ok(out)
}

fn explain_cmd(files: &[String], triple: &str) -> Result<String, CliError> {
    let store = load_store(files, Strategy::Counting, 1)?;
    // Parse the triple via the N-Triples reader into a scratch space.
    let mut scratch_dict = Dictionary::new();
    let mut scratch = Graph::new();
    rdf_io::parse_ntriples(&format!("{triple} .\n"), &mut scratch_dict, &mut scratch)
        .map_err(|e| err(format!("--triple must be three N-Triples terms: {e}")))?;
    let t = scratch
        .iter()
        .next()
        .ok_or_else(|| err("--triple parsed to nothing"))?;
    let decode = |id| -> Term { scratch_dict.decode(id).expect("just parsed").clone() };
    let (s, p, o) = (decode(t.s), decode(t.p), decode(t.o));
    match store.explain_terms(&s, &p, &o) {
        Some(explanation) => {
            let mut out = String::new();
            let _ = writeln!(
                out,
                "entailed ({} rule application(s), {} supporting assertion(s)):",
                explanation.depth(),
                explanation.support().len()
            );
            out.push_str(&explanation.render(&store.dictionary()));
            Ok(out)
        }
        None => Ok("not entailed: the triple is not in G∞\n".to_owned()),
    }
}

fn stats_cmd(files: &[String]) -> Result<String, CliError> {
    let (dict, vocab, g) = load_graph(files)?;
    let schema = Schema::extract(&g, &vocab);
    let sat = saturate(&g, &vocab);
    let mut out = String::new();
    let _ = writeln!(out, "triples:            {}", g.len());
    let _ = writeln!(out, "dictionary terms:   {}", dict.len());
    let _ = writeln!(out, "distinct subjects:  {}", g.subjects().count());
    let _ = writeln!(out, "distinct properties:{}", g.property_count());
    let _ = writeln!(out, "distinct objects:   {}", g.objects_iter().count());
    let _ = writeln!(
        out,
        "schema constraints: {} asserted, {} closed",
        schema.direct_len(),
        schema.closed_len()
    );
    let _ = writeln!(out, "classes:            {}", schema.classes().len());
    let _ = writeln!(out, "schema properties:  {}", schema.properties().len());
    let _ = writeln!(
        out,
        "saturation:         {} triples ({:+} inferred, ×{:.2})",
        sat.stats.output_triples,
        sat.stats.inferred,
        sat.stats.output_triples as f64 / g.len().max(1) as f64
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_args;

    /// Writes fixture files into a temp dir and returns their paths.
    struct Fixture {
        dir: std::path::PathBuf,
        files: Vec<String>,
    }

    impl Fixture {
        fn new(name: &str, contents: &[(&str, &str)]) -> Self {
            let dir = std::env::temp_dir()
                .join(format!("webreason-cli-test-{name}-{}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            let files = contents
                .iter()
                .map(|(file, text)| {
                    let path = dir.join(file);
                    std::fs::write(&path, text).unwrap();
                    path.to_string_lossy().into_owned()
                })
                .collect();
            Fixture { dir, files }
        }
    }

    impl Drop for Fixture {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.dir);
        }
    }

    const ZOO_TTL: &str = "\
@prefix ex: <http://ex/> .\n\
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n\
ex:Cat rdfs:subClassOf ex:Mammal .\n\
ex:Tom a ex:Cat .\n";

    /// Builds argv from a whitespace-split line; '_' inside a token stands
    /// for a space (so a SPARQL query can be one token).
    fn run_line(line: &str, files: &[String]) -> Result<String, CliError> {
        let mut argv: Vec<String> = Vec::new();
        let mut parts = line.split_whitespace().map(|t| t.replace('_', " "));
        argv.push(parts.next().unwrap());
        argv.extend(files.iter().cloned());
        argv.extend(parts);
        run_command(&parse_args(&argv)?)
    }

    #[test]
    fn query_across_strategies() {
        let fx = Fixture::new("query", &[("zoo.ttl", ZOO_TTL)]);
        for strategy in ["counting", "reformulation", "backward", "datalog", "plus"] {
            let out = run_line(
                &format!("query --sparql SELECT_?x_WHERE{{?x_a_<http://ex/Mammal>}} --strategy {strategy}"),
                &fx.files,
            )
            .unwrap();
            assert!(out.starts_with("1 solution(s)"), "{strategy}: {out}");
            assert!(out.contains("<http://ex/Tom>"), "{strategy}");
        }
        let out = run_line(
            "query --sparql SELECT_?x_WHERE{?x_a_<http://ex/Mammal>} --strategy none",
            &fx.files,
        )
        .unwrap();
        assert!(out.starts_with("0 solution(s)"));
    }

    #[test]
    fn query_reports_eval_stats_on_reformulation_path() {
        let fx = Fixture::new("query-stats", &[("zoo.ttl", ZOO_TTL)]);
        let out = run_line(
            "query --sparql SELECT_?x_WHERE{?x_a_<http://ex/Mammal>} --strategy reformulation --threads 2",
            &fx.files,
        )
        .unwrap();
        assert!(out.contains("eval: "), "{out}");
        assert!(out.contains("branches"), "{out}");
        assert!(out.contains("scan cache"), "{out}");
        // Saturation-based strategies never run the union evaluator.
        let out = run_line(
            "query --sparql SELECT_?x_WHERE{?x_a_<http://ex/Mammal>} --strategy counting",
            &fx.files,
        )
        .unwrap();
        assert!(!out.contains("eval: "), "{out}");
    }

    #[test]
    fn query_display_limit() {
        let data: String = (0..30)
            .map(|i| format!("<http://ex/s{i}> <http://ex/p> <http://ex/o> .\n"))
            .collect();
        let fx = Fixture::new("limit", &[("data.nt", &data)]);
        let out = run_line(
            "query --sparql SELECT_?x_WHERE{?x_<http://ex/p>_?y} --limit-display 3",
            &fx.files,
        )
        .unwrap();
        assert!(out.contains("30 solution(s)"));
        assert!(out.contains("… and 27 more"), "{out}");
    }

    #[test]
    fn saturate_formats() {
        let fx = Fixture::new("saturate", &[("zoo.ttl", ZOO_TTL)]);
        let nt = run_line("saturate", &fx.files).unwrap();
        assert!(nt.contains("<http://ex/Tom> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Mammal> ."));
        assert!(nt.contains("# 2 base + 1 inferred = 3 triples"));
        let ttl = run_line("saturate --format ttl --parallel 2", &fx.files).unwrap();
        assert!(ttl.contains("@prefix"), "{ttl}");
        assert!(ttl.contains("rdfs:subClassOf"), "{ttl}");
    }

    #[test]
    fn saturate_full_entailment() {
        let fx = Fixture::new("saturate-full", &[("zoo.ttl", ZOO_TTL)]);
        let fragment = run_line("saturate", &fx.files).unwrap();
        let full = run_line("saturate --entailment full", &fx.files).unwrap();
        assert!(
            full.lines().count() > fragment.lines().count(),
            "full closure is larger"
        );
        assert!(full.contains("rdf-syntax-ns#Property>"), "{full}");
        assert!(run_line("saturate --entailment bogus", &fx.files).is_err());
    }

    #[test]
    fn reformulate_prints_union() {
        let fx = Fixture::new("reformulate", &[("zoo.ttl", ZOO_TTL)]);
        let out = run_line(
            "reformulate --sparql SELECT_?x_WHERE{?x_a_<http://ex/Mammal>}",
            &fx.files,
        )
        .unwrap();
        assert!(out.contains("2 union branch(es)"), "{out}");
        assert!(out.contains("UNION"), "{out}");
    }

    #[test]
    fn explain_entailed_and_not() {
        let fx = Fixture::new("explain", &[("zoo.ttl", ZOO_TTL)]);
        let argv: Vec<String> = vec![
            "explain".into(),
            fx.files[0].clone(),
            "--triple".into(),
            "<http://ex/Tom> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Mammal>"
                .into(),
        ];
        let out = run_command(&parse_args(&argv).unwrap()).unwrap();
        assert!(out.contains("entailed (1 rule application(s)"), "{out}");
        assert!(out.contains("[rdfs9]"));
        assert!(out.contains("[asserted]"));

        let argv: Vec<String> = vec![
            "explain".into(),
            fx.files[0].clone(),
            "--triple".into(),
            "<http://ex/Tom> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Rocket>"
                .into(),
        ];
        let out = run_command(&parse_args(&argv).unwrap()).unwrap();
        assert!(out.contains("not entailed"));
    }

    #[test]
    fn stats_summary() {
        let fx = Fixture::new("stats", &[("zoo.ttl", ZOO_TTL)]);
        let out = run_line("stats", &fx.files).unwrap();
        assert!(out.contains("triples:            2"), "{out}");
        assert!(out.contains("schema constraints: 1 asserted"), "{out}");
        assert!(out.contains("+1 inferred"), "{out}");
    }

    #[test]
    fn thresholds_on_user_data() {
        let queries = "\
# comment lines are skipped
mammals|PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x a ex:Mammal }
PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x a ex:Cat }
";
        let fx = Fixture::new(
            "thresholds",
            &[("zoo.ttl", ZOO_TTL), ("queries.txt", queries)],
        );
        let argv: Vec<String> = vec![
            "thresholds".into(),
            fx.files[0].clone(),
            "--queries".into(),
            fx.files[1].clone(),
        ];
        let out = run_command(&parse_args(&argv).unwrap()).unwrap();
        assert!(out.contains("mammals"), "{out}");
        assert!(out.contains("Q2"), "unnamed query gets a number: {out}");
        assert!(out.contains("threshold spread:"), "{out}");
        assert!(out.contains("saturation: 2 -> 3 triples"), "{out}");
    }

    /// The metrics command resets the process-wide registry, so the two
    /// metrics tests must not overlap (other tests only ever add).
    static METRICS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn metrics_json_covers_the_instrumented_subsystems() {
        let _guard = METRICS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let out = run_line("metrics", &[]).unwrap();
        assert!(out.trim_start().starts_with('{'), "{out}");
        for needle in [
            "rdfs.saturate.runs",
            "rdfs.parallel.runs",
            "sparql.union.queries",
            "durability.journal.appends",
            "durability.checkpoint.writes",
            "core.answer.queries",
            "core.maintain.instance_insert_us",
        ] {
            assert!(out.contains(needle), "missing {needle}: {out}");
        }
    }

    #[test]
    fn metrics_prometheus_is_lintable_and_covers_four_subsystems() {
        let _guard = METRICS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let fx = Fixture::new("metrics-prom", &[]);
        let jdir = fx.dir.join("journal");
        let out = run_line(
            &format!("metrics --format prometheus --journal {}", jdir.display()),
            &[],
        )
        .unwrap();
        obs::lint_prometheus_text(&out).unwrap_or_else(|e| panic!("{e}\n{out}"));
        for needle in [
            "webreason_rdfs_",
            "webreason_sparql_",
            "webreason_durability_",
            "webreason_core_",
        ] {
            assert!(out.contains(needle), "missing {needle}: {out}");
        }
        // The journal directory was user-supplied, so it survives the run.
        assert!(jdir.join(JOURNAL_FILE).exists());
    }

    #[test]
    fn journaled_query_survives_across_runs() {
        let fx = Fixture::new("journal", &[("zoo.ttl", ZOO_TTL)]);
        let jdir = fx.dir.join("journal");
        let jflag = format!("--journal {}", jdir.display());
        // First run: create the store, load the data, answer.
        let out = run_line(
            &format!(
                "query --sparql SELECT_?x_WHERE{{?x_a_<http://ex/Mammal>}} --strategy dred {jflag}"
            ),
            &fx.files,
        )
        .unwrap();
        assert!(out.starts_with("1 solution(s)"), "{out}");
        assert!(out.contains("journal:"), "{out}");
        // Second run: NO data files — everything comes back from the journal.
        let out = run_line(
            &format!("query --sparql SELECT_?x_WHERE{{?x_a_<http://ex/Mammal>}} {jflag}"),
            &[],
        )
        .unwrap();
        assert!(out.starts_with("1 solution(s)"), "{out}");
        assert!(
            out.contains("strategy: saturation(dred)"),
            "journaled strategy survives: {out}"
        );
        // Checkpoint, then recover, both against the same directory.
        let out = run_line("checkpoint", &[jdir.display().to_string()]).unwrap();
        assert!(out.contains("checkpoint written:"), "{out}");
        let out = run_line("recover", &[jdir.display().to_string()]).unwrap();
        assert!(out.contains("recovered store"), "{out}");
        assert!(out.contains("base triples:      2"), "{out}");
        assert!(out.contains("saturation(dred)"), "{out}");
        // The third query run still opens the checkpointed store cleanly.
        let out = run_line(
            &format!(
                "query --sparql SELECT_?x_WHERE{{?x_a_<http://ex/Mammal>}} --fsync never {jflag}"
            ),
            &[],
        )
        .unwrap();
        assert!(out.starts_with("1 solution(s)"), "{out}");
    }

    #[test]
    fn recover_on_a_missing_directory_is_an_empty_store() {
        let fx = Fixture::new("recover-missing", &[("zoo.ttl", ZOO_TTL)]);
        let out = run_line(
            "recover",
            &[fx.dir.join("never-written").display().to_string()],
        )
        .unwrap();
        assert!(out.contains("base triples:      0"), "{out}");
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let e = run_line("stats", &["/nonexistent/data.ttl".into()]).unwrap_err();
        assert!(e.0.contains("cannot read"), "{e}");
    }

    #[test]
    fn multiple_files_combine() {
        let fx = Fixture::new(
            "multi",
            &[
                ("schema.ttl", "@prefix ex: <http://ex/> . @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\nex:Cat rdfs:subClassOf ex:Mammal .\n"),
                ("data.nt", "<http://ex/Tom> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Cat> .\n"),
            ],
        );
        let out = run_line(
            "query --sparql SELECT_?x_WHERE{?x_a_<http://ex/Mammal>}",
            &fx.files,
        )
        .unwrap();
        assert!(out.starts_with("1 solution(s)"), "{out}");
    }
}
