//! Golden-file test for the interval planner: the branch shapes, range
//! sets, join orders and cardinality estimates the interval (LiteMat)
//! strategy picks for LUBM Q1–Q10 are snapshotted in
//! `tests/golden/planner_interval.txt`. Any change to the interval
//! rewriter, the range cost model or the LUBM generator shows up as a
//! readable diff instead of a silent plan regression.
//!
//! To accept an intentional change, regenerate the snapshot with
//! `WEBREASON_BLESS=1 cargo test -p webreason-core --test
//! integration_planner_interval_golden` and review the diff like any
//! other code.

use rdfs::Schema;
use reformulation::reformulate_intervals;
use std::sync::Arc;
use workload::lubm::{generate, queries, LubmConfig};

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/planner_interval.txt")
}

#[test]
fn interval_plans_match_golden_file() {
    let mut ds = generate(&LubmConfig::tiny());
    let named = queries(&mut ds);
    let schema = Schema::extract(&ds.graph, &ds.vocab);
    let idict = Arc::new(schema.interval_dict());

    let mut snapshot = String::from(
        "# Interval-planner snapshot: LUBM Q1-Q10 under the LiteMat-style\n\
         # rewriting (LubmConfig::tiny) - union branches collapsed into range\n\
         # scans, then each branch's join order and estimates.\n\
         # Regenerate with WEBREASON_BLESS=1; review diffs.\n",
    );
    for nq in &named {
        let iq = reformulate_intervals(&nq.query, &schema, &ds.vocab, Arc::clone(&idict))
            .expect("LUBM queries are in the reformulation dialect");
        snapshot.push_str(&format!("\n{}: {}\n", nq.name, nq.description));
        snapshot.push_str(&iq.explain(&ds.graph, &ds.dict));
    }

    let path = golden_path();
    if std::env::var("WEBREASON_BLESS").is_ok_and(|v| !v.is_empty() && v != "0") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &snapshot).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with WEBREASON_BLESS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        snapshot,
        want,
        "interval plans diverged from {}; if the change is intentional, \
         regenerate with WEBREASON_BLESS=1 and commit the diff",
        path.display()
    );
}
