//! Wire protocol for the embedded server: the plain-text update-body
//! decoder and the JSON response shapes.
//!
//! An update body is a line-oriented script; each line is either blank,
//! a `#` comment, or
//!
//! ```text
//! insert <s> <p> <o> .
//! delete <s> <p> <o> .
//! ```
//!
//! where everything after the op keyword is one N-Triples statement,
//! parsed by the same `rdf-io` parser the loader uses — so literals,
//! typed literals and blank nodes behave identically to `webreason load`.
//! The decoder is pure (no store access) and total over arbitrary input,
//! which makes it a proptest target alongside the HTTP parser.

use rdf_model::{Dictionary, Graph};
use serde::Serialize;
use sparql::EvalStats;

/// One decoded update operation, term-level (ids are assigned by the
/// writer thread against the live dictionary, not here). This is the
/// core's script-op type: a decoded body feeds
/// [`DurableStore::apply_script`](webreason_core::DurableStore::apply_script)
/// verbatim, so the whole script commits as one atomic journal record.
pub use webreason_core::ScriptOp as UpdateOp;

/// Why an update body was rejected (maps to a 400 with the message in
/// the JSON error payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// 1-based line of the offending statement.
    pub line: usize,
    /// Human-readable reason.
    pub message: String,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for DecodeError {}

/// Decodes an update body into an ordered op list. Order is preserved —
/// `insert` then `delete` of the same triple nets to absent.
pub fn decode_update_body(body: &str) -> Result<Vec<UpdateOp>, DecodeError> {
    let mut ops = Vec::new();
    // Scratch interning space: ids from here never leak; ops carry Terms.
    let mut dict = Dictionary::new();
    for (idx, raw) in body.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (op, stmt) = match line.split_once(char::is_whitespace) {
            Some((word, rest)) if word.eq_ignore_ascii_case("insert") => (true, rest),
            Some((word, rest)) if word.eq_ignore_ascii_case("delete") => (false, rest),
            _ => {
                return Err(DecodeError {
                    line: line_no,
                    message: "expected `insert <s> <p> <o> .` or `delete <s> <p> <o> .`".to_owned(),
                })
            }
        };
        let mut graph = Graph::new();
        let parsed =
            rdf_io::parse_ntriples(stmt, &mut dict, &mut graph).map_err(|e| DecodeError {
                line: line_no,
                message: e.to_string(),
            })?;
        if parsed != 1 {
            return Err(DecodeError {
                line: line_no,
                message: format!("expected exactly one triple, found {parsed}"),
            });
        }
        let t = graph.iter().next().expect("parsed == 1");
        let terms = [
            dict.decode(t.s).expect("interned").clone(),
            dict.decode(t.p).expect("interned").clone(),
            dict.decode(t.o).expect("interned").clone(),
        ];
        ops.push(if op {
            UpdateOp::Insert(terms)
        } else {
            UpdateOp::Delete(terms)
        });
    }
    Ok(ops)
}

/// JSON body of a successful `POST /query` response.
#[derive(Debug, Serialize)]
pub struct QueryResponse {
    /// Projected variable names, in SELECT order.
    pub vars: Vec<String>,
    /// One row per solution; terms rendered in N-Triples syntax.
    pub rows: Vec<Vec<String>>,
    /// The snapshot epoch this answer was computed against.
    pub epoch: u64,
    /// Evaluation statistics, when the engine recorded them.
    pub stats: Option<EvalStats>,
}

/// JSON body of a successful `POST /update` response.
#[derive(Debug, Serialize)]
pub struct UpdateResponse {
    /// Ops accepted into the writer queue (= ops decoded).
    pub accepted: usize,
    /// Triples actually added by the batch.
    pub added: usize,
    /// Triples actually removed by the batch.
    pub removed: usize,
    /// The epoch published after this batch was applied.
    pub epoch: u64,
}

/// First frame of a `POST /subscribe` stream: the registration receipt.
/// The initial materialization and subsequent delta batches follow as
/// separate frames (each a serialized `DeltaBatch`), so a client can
/// parse the stream one JSON document per chunk.
#[derive(Debug, Serialize)]
pub struct SubscribeHeader {
    /// Server-assigned subscription id (used by `GET /subscribe/{id}`).
    pub id: u64,
    /// Epoch of the initial materialization that follows this header.
    pub epoch: u64,
    /// Projected variable names, in SELECT order.
    pub vars: Vec<String>,
    /// Whether the view is under set semantics (`SELECT DISTINCT`).
    pub distinct: bool,
}

/// JSON error payload used by every non-2xx response with a body. The
/// shape is uniform across both backends and every error class:
/// `retry_after_ms` is non-null exactly when the response carries a
/// `Retry-After` header (429 backpressure, 503 shed/degraded/limit), and
/// `degraded` is non-null exactly when the server is in read-only
/// degraded mode (its value is the machine-readable reason, e.g.
/// `journal_enospc`).
#[derive(Debug, Serialize)]
pub struct ErrorResponse {
    /// Machine-readable error class (`bad_request`, `overloaded`, …).
    pub error: String,
    /// Human-readable detail.
    pub message: String,
    /// Suggested retry delay in milliseconds (mirrors `Retry-After`).
    pub retry_after_ms: Option<u64>,
    /// Degraded-mode reason when the server is read-only.
    pub degraded: Option<String>,
}

impl ErrorResponse {
    /// Serialises a plain error payload (infallible: plain strings).
    pub fn to_json(error: &str, message: &str) -> Vec<u8> {
        Self::to_json_full(error, message, None, None)
    }

    /// Serialises an error payload carrying a retry hint.
    pub fn to_json_retry(error: &str, message: &str, retry_after_ms: u64) -> Vec<u8> {
        Self::to_json_full(error, message, Some(retry_after_ms), None)
    }

    /// Serialises the full payload.
    pub fn to_json_full(
        error: &str,
        message: &str,
        retry_after_ms: Option<u64>,
        degraded: Option<String>,
    ) -> Vec<u8> {
        serde_json::to_string(&ErrorResponse {
            error: error.to_owned(),
            message: message.to_owned(),
            retry_after_ms,
            degraded,
        })
        .map(String::into_bytes)
        .unwrap_or_else(|_| b"{\"error\":\"internal\"}".to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_inserts_deletes_comments_and_blanks() {
        let body = "# seed data\n\
                    insert <http://ex/s> <http://ex/p> \"v\" .\n\
                    \n\
                    delete <http://ex/s> <http://ex/p> \"v\" .\n";
        let ops = decode_update_body(body).unwrap();
        assert_eq!(ops.len(), 2);
        assert!(matches!(&ops[0], UpdateOp::Insert([s, _, o])
            if s.as_iri() == Some("http://ex/s") && o.is_literal()));
        assert!(matches!(&ops[1], UpdateOp::Delete(_)));
    }

    #[test]
    fn rejects_unknown_ops_and_bad_triples() {
        let e = decode_update_body("upsert <a> <b> <c> .").unwrap_err();
        assert_eq!(e.line, 1);
        let e = decode_update_body("insert not-a-triple").unwrap_err();
        assert_eq!(e.line, 1);
        let e = decode_update_body("# ok\ninsert <http://a> <http://b> .").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn typed_literals_round_trip() {
        let ops = decode_update_body(
            "insert <http://ex/x> <http://ex/age> \
             \"31\"^^<http://www.w3.org/2001/XMLSchema#integer> .",
        )
        .unwrap();
        let UpdateOp::Insert([_, _, o]) = &ops[0] else {
            panic!("insert expected");
        };
        assert_eq!(o.as_literal().unwrap().lexical(), "31");
    }
}
