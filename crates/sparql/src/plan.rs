//! Join-order planning for BGP evaluation.
//!
//! The evaluator is an index nested-loop join: patterns are matched one
//! after another, each probe constrained by the bindings produced so far.
//! Ordering dominates cost, so the planner picks a greedy order:
//!
//! 1. estimate each pattern's result cardinality from exact index counts
//!    (constants bound) discounted by the selectivity of already-bound
//!    variables (System-R style `1/V(attr)` with `V` approximated by the
//!    graph's distinct subject/property/object counts);
//! 2. repeatedly choose the cheapest pattern *connected* to the variables
//!    bound so far (avoiding cartesian products unless forced).
//!
//! Exposed separately from evaluation so the benches can measure the
//! planned-vs-unplanned gap (an ablation called out in DESIGN.md).

use crate::ast::{Bgp, TriplePattern, Variable};
use rdf_model::{Graph, Pattern};
use rustc_hash::FxHashSet;

/// A join order for one BGP, with the planner's cardinality estimates.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedBgp {
    /// Indexes into `bgp.patterns`, in evaluation order.
    pub order: Vec<usize>,
    /// The estimate used when each pattern was chosen (parallel to `order`).
    pub estimates: Vec<f64>,
}

/// Distinct-value counts used as `V(attr)` in the selectivity discounts.
///
/// Computing them walks the whole graph, so callers planning many BGPs
/// over the same graph (a reformulated union can have hundreds of
/// branches) should compute them once with [`DistinctCounts::of`] and
/// reuse them via [`plan_bgp_with`].
pub struct DistinctCounts {
    pub(crate) subjects: f64,
    pub(crate) properties: f64,
    pub(crate) objects: f64,
}

impl DistinctCounts {
    /// Collects the distinct subject/property/object counts of `g`.
    pub fn of(g: &Graph) -> Self {
        DistinctCounts {
            subjects: g.subjects().count().max(1) as f64,
            properties: g.property_count().max(1) as f64,
            objects: g.objects_iter().count().max(1) as f64,
        }
    }
}

/// Estimated number of matches of `tp` given the variables in `bound` are
/// already fixed (to unknown values): the exact count of the constant
/// skeleton, discounted by `1/V(position)` per bound-variable position.
fn estimate(
    g: &Graph,
    dc: &DistinctCounts,
    tp: &TriplePattern,
    bound: &FxHashSet<Variable>,
) -> f64 {
    let skeleton = Pattern::new(tp.s.as_const(), tp.p.as_const(), tp.o.as_const());
    let mut est = g.count(&skeleton) as f64;
    if tp.s.as_var().is_some_and(|v| bound.contains(&v)) {
        est /= dc.subjects;
    }
    if tp.p.as_var().is_some_and(|v| bound.contains(&v)) {
        est /= dc.properties;
    }
    if tp.o.as_var().is_some_and(|v| bound.contains(&v)) {
        est /= dc.objects;
    }
    est
}

/// True if the pattern shares a variable with `bound`.
fn connected(tp: &TriplePattern, bound: &FxHashSet<Variable>) -> bool {
    tp.variables().iter().any(|v| bound.contains(v))
}

/// True if the pattern has no variables at all (a membership test).
fn ground(tp: &TriplePattern) -> bool {
    tp.variables().is_empty()
}

/// Computes a greedy join order for `bgp` over `g`.
pub fn plan_bgp(g: &Graph, bgp: &Bgp) -> PlannedBgp {
    plan_bgp_with(g, &DistinctCounts::of(g), bgp)
}

/// [`plan_bgp`] with precomputed distinct-value counts, so a union of many
/// branches pays the graph walk once instead of once per branch.
pub fn plan_bgp_with(g: &Graph, dc: &DistinctCounts, bgp: &Bgp) -> PlannedBgp {
    let n = bgp.patterns.len();
    if n == 0 {
        return PlannedBgp {
            order: Vec::new(),
            estimates: Vec::new(),
        };
    }
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut order = Vec::with_capacity(n);
    let mut estimates = Vec::with_capacity(n);
    let mut bound: FxHashSet<Variable> = FxHashSet::default();

    while !remaining.is_empty() {
        // Prefer connected (or ground) patterns; fall back to any.
        let mut candidates: Vec<usize> = remaining
            .iter()
            .copied()
            .filter(|&i| {
                let tp = &bgp.patterns[i];
                ground(tp) || connected(tp, &bound) || bound.is_empty()
            })
            .collect();
        if candidates.is_empty() {
            candidates.clone_from(&remaining);
        }
        let (best, best_est) = candidates
            .iter()
            .map(|&i| (i, estimate(g, dc, &bgp.patterns[i], &bound)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("candidates nonempty");
        remaining.retain(|&i| i != best);
        for v in bgp.patterns[best].variables() {
            bound.insert(v);
        }
        order.push(best);
        estimates.push(best_est);
    }
    PlannedBgp { order, estimates }
}

/// The trivial left-to-right order, used as the ablation baseline.
pub fn plan_textual(bgp: &Bgp) -> PlannedBgp {
    let order: Vec<usize> = (0..bgp.patterns.len()).collect();
    let estimates = vec![f64::NAN; bgp.patterns.len()];
    PlannedBgp { order, estimates }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::QTerm;
    use rdf_model::{Dictionary, TermId, Triple};

    fn build() -> (Dictionary, Graph, TermId, TermId, TermId) {
        let mut d = Dictionary::new();
        let rare = d.encode_iri("http://ex/rare");
        let common = d.encode_iri("http://ex/common");
        let ty = d.encode_iri("http://ex/type");
        let mut g = Graph::new();
        // 1 rare triple, 100 common ones, 50 typed subjects
        let a = d.encode_iri("http://ex/a");
        let b = d.encode_iri("http://ex/b");
        g.insert(Triple::new(a, rare, b));
        for i in 0..100 {
            let s = d.encode_iri(&format!("http://ex/s{i}"));
            let o = d.encode_iri(&format!("http://ex/o{}", i % 10));
            g.insert(Triple::new(s, common, o));
            if i < 50 {
                g.insert(Triple::new(s, ty, b));
            }
        }
        (d, g, rare, common, ty)
    }

    fn var(i: u16) -> QTerm {
        QTerm::Var(Variable(i))
    }

    #[test]
    fn selective_pattern_goes_first() {
        let (_, g, rare, common, _) = build();
        let bgp = Bgp::new(vec![
            TriplePattern::new(var(0), QTerm::Const(common), var(1)),
            TriplePattern::new(var(0), QTerm::Const(rare), var(2)),
        ]);
        let plan = plan_bgp(&g, &bgp);
        assert_eq!(
            plan.order[0], 1,
            "rare pattern (1 match) before common (100)"
        );
        assert_eq!(plan.estimates[0], 1.0, "exact count of the rare skeleton");
    }

    #[test]
    fn connectivity_beats_raw_cardinality() {
        let (_, g, rare, common, ty) = build();
        // pattern 0: rare (1 match), pattern 1: type (50), pattern 2: common (100)
        // After rare binds ?x, the planner must continue with a *connected*
        // pattern even though the disconnected one might look similar.
        let bgp = Bgp::new(vec![
            TriplePattern::new(var(0), QTerm::Const(rare), var(1)),
            TriplePattern::new(var(2), QTerm::Const(ty), var(3)),
            TriplePattern::new(var(0), QTerm::Const(common), var(4)),
        ]);
        let plan = plan_bgp(&g, &bgp);
        assert_eq!(plan.order[0], 0);
        assert_eq!(
            plan.order[1], 2,
            "stay connected to ?x before jumping to the cartesian part"
        );
    }

    #[test]
    fn ground_patterns_are_free() {
        let (mut d, g, rare, common, _) = build();
        let a = d.encode_iri("http://ex/a");
        let b = d.encode_iri("http://ex/b");
        let bgp = Bgp::new(vec![
            TriplePattern::new(var(0), QTerm::Const(common), var(1)),
            TriplePattern::new(QTerm::Const(a), QTerm::Const(rare), QTerm::Const(b)),
        ]);
        let plan = plan_bgp(&g, &bgp);
        assert_eq!(plan.order[0], 1, "membership test first");
    }

    #[test]
    fn plan_covers_all_patterns_exactly_once() {
        let (_, g, rare, common, ty) = build();
        let bgp = Bgp::new(vec![
            TriplePattern::new(var(0), QTerm::Const(common), var(1)),
            TriplePattern::new(var(1), QTerm::Const(ty), var(2)),
            TriplePattern::new(var(2), QTerm::Const(rare), var(3)),
            TriplePattern::new(var(3), QTerm::Const(common), var(0)),
        ]);
        let plan = plan_bgp(&g, &bgp);
        let mut seen: Vec<usize> = plan.order.clone();
        seen.sort();
        assert_eq!(seen, vec![0, 1, 2, 3]);
        assert_eq!(plan.estimates.len(), 4);
    }

    #[test]
    fn empty_bgp_plans_empty() {
        let (_, g, ..) = build();
        let plan = plan_bgp(&g, &Bgp::default());
        assert!(plan.order.is_empty());
        assert_eq!(plan_textual(&Bgp::default()).order.len(), 0);
    }

    #[test]
    fn textual_plan_is_identity() {
        let (_, _, rare, common, _) = build();
        let bgp = Bgp::new(vec![
            TriplePattern::new(var(0), QTerm::Const(common), var(1)),
            TriplePattern::new(var(0), QTerm::Const(rare), var(2)),
        ]);
        assert_eq!(plan_textual(&bgp).order, vec![0, 1]);
    }
}
