//! End-to-end store scenarios across crates: load RDF text, reason, query.

use rdf_model::Term;
use webreason_core::{MaintenanceAlgorithm, ReasoningConfig, Store};

/// The paper's §I motivating example, end to end.
#[test]
fn tom_the_cat_end_to_end() {
    for config in ReasoningConfig::ALL {
        let mut store = Store::new(config);
        store
            .load_turtle(
                r#"
                @prefix zoo: <http://zoo.example/> .
                @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
                zoo:Cat rdfs:subClassOf zoo:Mammal .
                zoo:Tom a zoo:Cat .
            "#,
            )
            .unwrap();
        let sols = store
            .answer_sparql("PREFIX zoo: <http://zoo.example/> SELECT ?x WHERE { ?x a zoo:Mammal }")
            .unwrap();
        let expected = if config == ReasoningConfig::None {
            0
        } else {
            1
        };
        assert_eq!(sols.len(), expected, "{}", config.name());
    }
}

/// The paper's §II-A example: domain typing entails `Anne rdf:type Person`.
#[test]
fn anne_has_friend_domain_typing() {
    let mut store = Store::new(ReasoningConfig::Saturation(MaintenanceAlgorithm::Counting));
    store
        .load_turtle(
            r#"
            @prefix ex: <http://example.org/> .
            @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
            ex:hasFriend rdfs:domain ex:Person .
            ex:Anne ex:hasFriend ex:Marie .
        "#,
        )
        .unwrap();
    let sols = store
        .answer_sparql("PREFIX ex: <http://example.org/> SELECT ?x WHERE { ?x a ex:Person }")
        .unwrap();
    let names = sols.to_strings(&store.dictionary());
    assert_eq!(names, vec!["?x=<http://example.org/Anne>"]);
}

#[test]
fn ntriples_loading_and_literals() {
    let mut store = Store::new(ReasoningConfig::Reformulation);
    let n = store
        .load_ntriples(
            "<http://ex/p1> <http://ex/name> \"Anne\" .\n\
             <http://ex/p1> <http://ex/age> \"31\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n",
        )
        .unwrap();
    assert_eq!(n, 2);
    let sols = store
        .answer_sparql("PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x ex:name \"Anne\" }")
        .unwrap();
    assert_eq!(sols.len(), 1);
}

#[test]
fn multi_hop_reasoning_query_with_joins() {
    let data = r#"
        @prefix ex: <http://ex/> .
        @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
        ex:PhDStudent rdfs:subClassOf ex:Student .
        ex:Student rdfs:subClassOf ex:Person .
        ex:advises rdfs:domain ex:Professor .
        ex:advises rdfs:range ex:Student .
        ex:Professor rdfs:subClassOf ex:Person .
        ex:kim ex:advises ex:lee .
        ex:lee a ex:PhDStudent .
        ex:lee ex:friendOf ex:sam .
    "#;
    let q = "PREFIX ex: <http://ex/> SELECT DISTINCT ?prof ?stud WHERE { \
             ?prof a ex:Professor . ?prof ex:advises ?stud . ?stud a ex:Student }";
    let mut reference: Option<Vec<Vec<rdf_model::TermId>>> = None;
    for config in ReasoningConfig::ALL {
        if config == ReasoningConfig::None {
            continue;
        }
        let mut store = Store::new(config);
        store.load_turtle(data).unwrap();
        let sols = store.answer_sparql(q).unwrap();
        assert_eq!(sols.len(), 1, "{}: kim advises lee", config.name());
        let rows = sols.sorted_rows();
        match &reference {
            None => reference = Some(rows),
            Some(r) => assert_eq!(r, &rows, "{}", config.name()),
        }
    }
}

#[test]
fn deletes_retract_inferences_in_live_store() {
    for algo in MaintenanceAlgorithm::ALL {
        let mut store = Store::new(ReasoningConfig::Saturation(algo));
        store
            .load_turtle(
                r#"
                @prefix ex: <http://ex/> .
                @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
                ex:Cat rdfs:subClassOf ex:Mammal .
                ex:Tom a ex:Cat .
            "#,
            )
            .unwrap();
        let q = "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x a ex:Mammal }";
        assert_eq!(store.answer_sparql(q).unwrap().len(), 1);
        store.delete_terms(
            &Term::iri("http://ex/Tom"),
            &Term::iri(rdf_model::vocab::RDF_TYPE),
            &Term::iri("http://ex/Cat"),
        );
        assert_eq!(store.answer_sparql(q).unwrap().len(), 0, "{}", algo.name());
    }
}

#[test]
fn stats_track_sizes_across_strategies() {
    let mut store = Store::new(ReasoningConfig::Saturation(MaintenanceAlgorithm::DRed));
    store
        .load_turtle(
            r#"
            @prefix ex: <http://ex/> .
            @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
            ex:A rdfs:subClassOf ex:B .
            ex:x a ex:A .
        "#,
        )
        .unwrap();
    let stats = store.stats();
    assert_eq!(stats.base_triples, 2);
    assert_eq!(stats.saturated_triples, Some(3));
    assert!(stats.dictionary_terms >= 4);
}

#[test]
fn modifiers_and_aggregates_apply_uniformly_across_strategies() {
    let data = r#"
        @prefix ex: <http://ex/> .
        @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
        ex:Cat rdfs:subClassOf ex:Animal .
        ex:Dog rdfs:subClassOf ex:Animal .
        ex:tom a ex:Cat . ex:rex a ex:Dog . ex:ada a ex:Cat .
        ex:tom ex:age 3 . ex:rex ex:age 11 . ex:ada ex:age 2 .
    "#;
    for config in ReasoningConfig::ALL {
        if config == ReasoningConfig::None {
            continue;
        }
        let mut store = Store::new(config);
        store.load_turtle(data).unwrap();

        // COUNT over an entailed class
        let sols = store
            .answer_sparql(
                "PREFIX ex: <http://ex/> SELECT (COUNT(DISTINCT *) AS ?n) WHERE { ?x a ex:Animal }",
            )
            .unwrap();
        let n = store.dictionary().decode(sols.rows[0][0]).unwrap().clone();
        assert_eq!(n.as_literal().unwrap().lexical(), "3", "{}", config.name());

        // ORDER BY a numeric literal + LIMIT
        let sols = store
            .answer_sparql(
                "PREFIX ex: <http://ex/> SELECT DISTINCT ?x ?a WHERE { ?x a ex:Animal . ?x ex:age ?a } \
                 ORDER BY DESC(?a) LIMIT 2",
            )
            .unwrap();
        assert_eq!(sols.len(), 2, "{}", config.name());
        let oldest = store.dictionary().decode(sols.rows[0][0]).unwrap().clone();
        assert_eq!(oldest.as_iri(), Some("http://ex/rex"), "{}", config.name());

        // FILTER over an entailed pattern
        let sols = store
            .answer_sparql(
                "PREFIX ex: <http://ex/> SELECT DISTINCT ?x ?a WHERE { ?x a ex:Animal . ?x ex:age ?a . FILTER (?a < 10) }",
            )
            .unwrap();
        assert_eq!(sols.len(), 2, "{}: tom (3) and ada (2)", config.name());
    }
}

#[test]
fn empty_store_answers_empty() {
    let store = Store::new(ReasoningConfig::Reformulation);
    let sols = store
        .answer_sparql("SELECT ?x WHERE { ?x <http://p> ?y }")
        .unwrap();
    assert!(sols.is_empty());
}
