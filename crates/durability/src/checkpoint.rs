//! Checkpoints: a whole-store snapshot (dictionary + base graph + store
//! configuration) in a compact, checksummed binary file.
//!
//! ```text
//! file    := magic(8) len(u64 LE) crc32(u32 LE) payload(len bytes)
//! payload := seq(u64) config(str) threads(u32)
//!            n_terms(u32) term* n_triples(u32) triple*
//! ```
//!
//! A checkpoint named `checkpoint-<seq>.ckpt` covers journal records
//! `0..seq`; recovery loads the newest *valid* checkpoint and replays the
//! journal from `seq`. Writes are atomic: the bytes go to a temporary
//! file which is fsynced and then renamed into place, so a crash during
//! checkpointing leaves at worst a stale temp file, never a half-written
//! checkpoint under the real name. Because the journal is never truncated,
//! a store remains recoverable even if every checkpoint is lost — the
//! checkpoint only bounds how much journal must be replayed.

use crate::codec::{Decoder, Encoder};
use crate::crc32::crc32;
use crate::DurabilityError;
use rdf_model::{Term, Triple};
use std::path::{Path, PathBuf};
use webreason_failpoints::fail_point_io;

/// File magic: "WRCKP" + format version 1.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"WRCKP\x01\0\0";

/// A decoded checkpoint: everything needed to rebuild a `Store`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Journal records already reflected in this snapshot (`0..seq`).
    pub seq: u64,
    /// The store's reasoning strategy, by display name.
    pub config: String,
    /// The store's worker-thread count.
    pub threads: u32,
    /// The full dictionary, in id order (index = id).
    pub terms: Vec<Term>,
    /// The base graph `G`, as dictionary ids.
    pub triples: Vec<Triple>,
}

impl Checkpoint {
    fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u64(self.seq);
        e.str(&self.config);
        e.u32(self.threads);
        e.u32(self.terms.len() as u32);
        for t in &self.terms {
            e.term(t);
        }
        e.u32(self.triples.len() as u32);
        for t in &self.triples {
            e.triple(t);
        }
        e.into_bytes()
    }

    fn decode(payload: &[u8]) -> Result<Checkpoint, crate::codec::CodecError> {
        let mut d = Decoder::new(payload);
        let seq = d.u64("checkpoint seq")?;
        let config = d.str("config name")?.to_owned();
        let threads = d.u32("thread count")?;
        let n_terms = d.u32("term count")? as usize;
        let mut terms = Vec::with_capacity(n_terms.min(1 << 20));
        for _ in 0..n_terms {
            terms.push(d.term()?);
        }
        let n_triples = d.u32("triple count")? as usize;
        let mut triples = Vec::with_capacity(n_triples.min(1 << 20));
        for _ in 0..n_triples {
            triples.push(d.triple()?);
        }
        if !d.is_exhausted() {
            return Err(crate::codec::CodecError {
                offset: d.offset(),
                what: "trailing bytes after checkpoint",
            });
        }
        Ok(Checkpoint {
            seq,
            config,
            threads,
            terms,
            triples,
        })
    }
}

/// The canonical file name for a checkpoint at `seq` (zero-padded so the
/// lexicographic order of names is the numeric order of sequences).
pub fn checkpoint_file_name(seq: u64) -> String {
    format!("checkpoint-{seq:016}.ckpt")
}

/// Writes `cp` atomically under `dir`, returning the final path.
pub fn write_checkpoint(dir: &Path, cp: &Checkpoint) -> Result<PathBuf, DurabilityError> {
    let reg = obs::global();
    let _span = reg.span("durability.checkpoint.write");
    std::fs::create_dir_all(dir)?;
    let payload = cp.encode();
    let mut bytes = Vec::with_capacity(20 + payload.len());
    bytes.extend_from_slice(&CHECKPOINT_MAGIC);
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);

    let tmp = dir.join("checkpoint.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        use std::io::Write as _;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    // Crash actions model dying between the tmp-file fsync and the
    // rename; err actions model the rename target's volume failing.
    // Either way the previous checkpoint (if any) stays intact.
    fail_point_io!("store.checkpoint.write");
    let path = dir.join(checkpoint_file_name(cp.seq));
    std::fs::rename(&tmp, &path)?;
    // Best effort: persist the rename itself.
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all();
    }
    reg.add("durability.checkpoint.writes", 1);
    reg.add("durability.checkpoint.write_bytes", bytes.len() as u64);
    Ok(path)
}

/// Loads and validates one checkpoint file. Any truncation, checksum
/// mismatch or structural damage is an error — a checkpoint is used whole
/// or not at all.
pub fn load_checkpoint(path: &Path) -> Result<Checkpoint, DurabilityError> {
    let reg = obs::global();
    let _span = reg.span("durability.checkpoint.load");
    reg.add("durability.checkpoint.loads", 1);
    let bytes = std::fs::read(path)?;
    let corrupt = |offset: u64, what: &str| DurabilityError::Corrupt {
        path: path.to_owned(),
        offset,
        what: what.to_owned(),
    };
    if bytes.len() < 20 {
        return Err(corrupt(0, "checkpoint shorter than its header"));
    }
    if bytes[..8] != CHECKPOINT_MAGIC {
        return Err(corrupt(0, "checkpoint magic/version mismatch"));
    }
    let len = u64::from_le_bytes(bytes[8..16].try_into().expect("slice of 8")) as usize;
    let crc = u32::from_le_bytes(bytes[16..20].try_into().expect("slice of 4"));
    if bytes.len() - 20 != len {
        return Err(corrupt(8, "checkpoint length mismatch"));
    }
    let payload = &bytes[20..];
    if crc32(payload) != crc {
        return Err(corrupt(16, "checkpoint checksum mismatch"));
    }
    Checkpoint::decode(payload).map_err(|e| corrupt(20 + e.offset as u64, e.what))
}

/// Scans `dir` for checkpoint files, newest (highest seq) first.
fn checkpoint_paths(dir: &Path) -> Result<Vec<PathBuf>, DurabilityError> {
    let mut paths = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(paths),
        Err(e) => return Err(e.into()),
    };
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("checkpoint-") && name.ends_with(".ckpt") {
            paths.push(entry.path());
        }
    }
    paths.sort();
    paths.reverse();
    Ok(paths)
}

/// Loads the newest checkpoint in `dir` that validates, skipping damaged
/// ones (an older intact checkpoint plus a longer journal replay beats no
/// recovery at all). Returns `None` when no usable checkpoint exists.
pub fn load_latest(dir: &Path) -> Result<Option<(Checkpoint, PathBuf)>, DurabilityError> {
    for path in checkpoint_paths(dir)? {
        match load_checkpoint(&path) {
            Ok(cp) => return Ok(Some((cp, path))),
            Err(DurabilityError::Corrupt { .. }) => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(None)
}

/// Deletes all but the newest `keep` checkpoints (and any stale temp
/// file), returning how many files were removed.
pub fn prune_checkpoints(dir: &Path, keep: usize) -> Result<usize, DurabilityError> {
    let mut removed = 0;
    for path in checkpoint_paths(dir)?.into_iter().skip(keep.max(1)) {
        std::fs::remove_file(&path)?;
        removed += 1;
    }
    let tmp = dir.join("checkpoint.tmp");
    if tmp.exists() {
        std::fs::remove_file(&tmp)?;
        removed += 1;
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::TermId;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "webreason-checkpoint-{name}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample(seq: u64) -> Checkpoint {
        let t = |i| TermId::from_index(i);
        Checkpoint {
            seq,
            config: "saturation(counting)".into(),
            threads: 2,
            terms: vec![
                Term::iri("http://ex/s"),
                Term::iri("http://ex/p"),
                Term::literal("o"),
            ],
            triples: vec![Triple::new(t(0), t(1), t(2))],
        }
    }

    #[test]
    fn round_trip_and_latest_selection() {
        let dir = tmpdir("roundtrip");
        for seq in [3u64, 11, 7] {
            write_checkpoint(&dir, &sample(seq)).unwrap();
        }
        let (cp, path) = load_latest(&dir).unwrap().expect("a checkpoint");
        assert_eq!(cp, sample(11));
        assert!(path.ends_with(checkpoint_file_name(11)));
        // pruning keeps the newest two
        let removed = prune_checkpoints(&dir, 2).unwrap();
        assert_eq!(removed, 1);
        assert!(!dir.join(checkpoint_file_name(3)).exists());
        assert!(dir.join(checkpoint_file_name(11)).exists());
    }

    #[test]
    fn every_flipped_byte_is_rejected() {
        let dir = tmpdir("flip");
        let path = write_checkpoint(&dir, &sample(5)).unwrap();
        let clean = std::fs::read(&path).unwrap();
        for i in 0..clean.len() {
            let mut bytes = clean.clone();
            bytes[i] ^= 0x01;
            std::fs::write(&path, &bytes).unwrap();
            assert!(
                matches!(load_checkpoint(&path), Err(DurabilityError::Corrupt { .. })),
                "flip at byte {i} accepted"
            );
        }
        // truncation at every length is rejected too
        for cut in 0..clean.len() {
            std::fs::write(&path, &clean[..cut]).unwrap();
            assert!(load_checkpoint(&path).is_err(), "truncation at {cut}");
        }
        std::fs::write(&path, &clean).unwrap();
        assert_eq!(load_checkpoint(&path).unwrap(), sample(5));
    }

    #[test]
    fn damaged_newest_falls_back_to_older() {
        let dir = tmpdir("fallback");
        write_checkpoint(&dir, &sample(1)).unwrap();
        let newest = write_checkpoint(&dir, &sample(2)).unwrap();
        let mut bytes = std::fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&newest, &bytes).unwrap();
        let (cp, _) = load_latest(&dir).unwrap().expect("fallback checkpoint");
        assert_eq!(cp.seq, 1);
        // no checkpoint at all is not an error
        let empty = tmpdir("empty");
        assert!(load_latest(&empty).unwrap().is_none());
        assert!(load_latest(&empty.join("missing")).unwrap().is_none());
    }
}
