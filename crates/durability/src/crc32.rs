//! CRC-32 (IEEE 802.3 polynomial, reflected), the checksum guarding every
//! journal record and checkpoint file. Implemented locally — this build
//! environment has no crates.io access — with the standard 256-entry
//! table, built once at first use.

use std::sync::OnceLock;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    })
}

/// CRC-32 of `data` (IEEE, reflected, init/final xor `0xFFFF_FFFF`).
pub fn crc32(data: &[u8]) -> u32 {
    let table = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn single_bit_flip_changes_the_checksum() {
        let a = b"hello, journal".to_vec();
        let mut b = a.clone();
        b[3] ^= 0x40;
        assert_ne!(crc32(&a), crc32(&b));
    }
}
