//! Criterion bench behind T-SAT: graph saturation, specialised single-pass
//! vs naive fix-point vs Datalog translation, across scales.

use bench::Scale;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdfs::{saturate, saturate_naive, saturate_parallel};
use std::hint::black_box;
use std::num::NonZeroUsize;
use workload::lubm::generate;

fn bench_saturation(c: &mut Criterion) {
    let mut group = c.benchmark_group("saturation");
    group.sample_size(10);
    for scale in [Scale::Tiny, Scale::Small] {
        let ds = generate(&scale.config());
        let triples = ds.graph.len();
        group.bench_with_input(BenchmarkId::new("specialised", triples), &ds, |b, ds| {
            b.iter(|| black_box(saturate(&ds.graph, &ds.vocab)))
        });
        group.bench_with_input(BenchmarkId::new("naive", triples), &ds, |b, ds| {
            b.iter(|| black_box(saturate_naive(&ds.graph, &ds.vocab)))
        });
        group.bench_with_input(BenchmarkId::new("datalog", triples), &ds, |b, ds| {
            b.iter(|| black_box(datalog::saturate_via_datalog(&ds.graph, &ds.vocab)))
        });
    }
    group.finish();
}

/// A-PAR ablation: the derive-phase thread sweep, with a per-phase
/// wall-clock breakdown (the engine stamps `derive-us` / `merge-us`
/// into its stats) and the speedup of each thread count over 1 thread.
fn bench_parallel(c: &mut Criterion) {
    let ds = generate(&Scale::Small.config());
    let thread_counts = [1usize, 2, 4, 8];

    // Phase breakdown table: best-of-5 total per thread count, so the
    // reported speedup is not dominated by a single cold run.
    let mut rows = Vec::new();
    for &t in &thread_counts {
        let t = NonZeroUsize::new(t).unwrap();
        let best = (0..5)
            .map(|_| {
                let sat = saturate_parallel(&ds.graph, &ds.vocab, t);
                let derive = sat.stats.rule_firings["derive-us"];
                let merge = sat.stats.rule_firings["merge-us"];
                (derive + merge, derive, merge)
            })
            .min()
            .unwrap();
        rows.push((t.get(), best));
    }
    let baseline = rows[0].1 .0.max(1);
    println!("\nA-PAR phase breakdown ({} base triples):", ds.graph.len());
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>9}",
        "threads", "derive-us", "merge-us", "total-us", "speedup"
    );
    for (t, (total, derive, merge)) in &rows {
        println!(
            "{t:>8} {derive:>12} {merge:>12} {total:>12} {:>8.2}x",
            baseline as f64 / (*total).max(1) as f64
        );
    }

    let mut group = c.benchmark_group("saturation/parallel");
    group.sample_size(10);
    for threads in thread_counts {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            let t = NonZeroUsize::new(t).unwrap();
            b.iter(|| black_box(saturate_parallel(&ds.graph, &ds.vocab, t)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_saturation, bench_parallel);
criterion_main!(benches);
