//! Structured reporting of panics in scoped worker threads.
//!
//! The parallel engines (`rdfs::parallel`, `sparql::union_eval`) fan work
//! out over `std::thread::scope` workers. A panic in one worker must not
//! abort the whole process or poison the store: each worker body runs
//! under `catch_unwind` and a panic surfaces as a [`WorkerPanicked`]
//! value naming the site, which upper layers convert into their own error
//! types (e.g. `AnswerError::Worker`). The type lives here because both
//! engines (and the store above them) need the same shape and this crate
//! is their shared base dependency.

use std::fmt;

/// A worker thread panicked; the operation was abandoned without
/// corrupting any shared state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanicked {
    /// The site that panicked, in failpoint naming convention
    /// (`<subsystem>.<component>.<event>`, e.g. `rdfs.parallel.worker`).
    pub site: &'static str,
    /// The panic payload, when it was a string (the common case).
    pub message: String,
}

impl WorkerPanicked {
    /// Builds the error from a site name and the payload `catch_unwind`
    /// returned.
    pub fn from_payload(site: &'static str, payload: Box<dyn std::any::Any + Send>) -> Self {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_owned())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_owned());
        WorkerPanicked { site, message }
    }
}

impl fmt::Display for WorkerPanicked {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "worker panicked at {}: {}", self.site, self.message)
    }
}

impl std::error::Error for WorkerPanicked {}
