//! Measured cost profiles: the raw numbers behind Fig. 3.
//!
//! [`profile`] measures, on a concrete dataset and query set:
//!
//! * the one-time cost of saturating the graph;
//! * the cost of maintaining the saturation after each update kind
//!   (instance/schema × insert/delete), for a chosen maintenance
//!   algorithm — measured by deleting and re-inserting sampled triples,
//!   which leaves the store unchanged;
//! * per query: evaluating `q(G∞)`, producing `q_ref`, and evaluating
//!   `q_ref(G)`.
//!
//! All durations are seconds (`f64`) so the threshold arithmetic of
//! [`crate::threshold`] and the advisor stay plain math, and the profile
//! serialises directly into the bench harness's JSON reports.

use rdf_model::{Graph, Triple, Vocab};
use rdfs::incremental::MaintenanceAlgorithm;
use rdfs::{saturate, Schema};
use reformulation::reformulate;
use serde::Serialize;
use sparql::{evaluate, evaluate_union, Query};
use std::num::NonZeroUsize;
use std::time::Instant;

/// Measured costs for one query.
#[derive(Debug, Clone, Serialize)]
pub struct QueryCosts {
    /// Query name (e.g. `"Q4"`).
    pub name: String,
    /// Seconds to evaluate `q(G∞)`.
    pub eval_saturated: f64,
    /// Seconds to produce `q_ref` from `q`.
    pub reformulation_time: f64,
    /// Seconds to evaluate `q_ref(G)` with the union-aware evaluator —
    /// the path [`crate::Store`] actually takes, so the threshold /
    /// advisor arithmetic reads the sharing-aware cost.
    pub eval_reformulated: f64,
    /// Union branches in `q_ref`.
    pub branches: usize,
    /// Index scans saved by shared-prefix evaluation of `q_ref`.
    pub shared_prefix_scans: usize,
    /// Scan-cache hits while evaluating `q_ref`.
    pub scan_cache_hits: usize,
    /// Answer count (identical under both techniques; checked).
    pub answers: usize,
}

/// Average maintenance cost (seconds) per update kind.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct MaintenanceCosts {
    /// Instance triple insertion.
    pub instance_insert: f64,
    /// Instance triple deletion.
    pub instance_delete: f64,
    /// Schema triple insertion.
    pub schema_insert: f64,
    /// Schema triple deletion.
    pub schema_delete: f64,
}

/// A full cost profile of a dataset × query set × maintenance algorithm.
#[derive(Debug, Clone, Serialize)]
pub struct CostProfile {
    /// Explicit triples in `G`.
    pub base_triples: usize,
    /// Triples in `G∞`.
    pub saturated_triples: usize,
    /// Seconds to saturate from scratch.
    pub saturation_time: f64,
    /// Maintenance algorithm measured.
    pub maintenance_algorithm: String,
    /// Average maintenance costs per update kind.
    pub maintenance: MaintenanceCosts,
    /// Per-query costs.
    pub queries: Vec<QueryCosts>,
}

fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

/// Per-operation mean costs (seconds) read out of a live
/// [`MetricsSnapshot`](obs::MetricsSnapshot) — the *observed* counterpart
/// of [`profile`]'s synthetic measurements, closing the paper's §II-D loop:
/// the system measures itself and feeds the measurements back into the
/// Figure 3 threshold arithmetic (see
/// [`crate::threshold::observed_thresholds`] and
/// [`crate::advisor::advise_from_snapshot`]).
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct ObservedCosts {
    /// Mean wall-clock of one saturation run, seconds (sequential and
    /// parallel engines combined), or 0 when none ran.
    pub saturation: f64,
    /// Saturation runs observed.
    pub saturation_runs: u64,
    /// Mean maintenance cost per update kind, seconds (0 for kinds with
    /// no observations).
    pub maintenance: MaintenanceCosts,
    /// Maintenance updates observed (all kinds).
    pub updates_observed: u64,
    /// Mean `q(G∞)`-style answer cost, seconds: `core.answer.query` time
    /// that was *not* spent inside the union-aware reformulation
    /// evaluator, over the answers that did not take that path.
    pub eval_saturated: f64,
    /// Saturated-path answers observed.
    pub eval_saturated_runs: u64,
    /// Mean `q_ref(G)` cost, seconds: the `sparql.union.total` span.
    pub eval_reformulated: f64,
    /// Reformulated (union-aware) evaluations observed.
    pub eval_reformulated_runs: u64,
    /// Mean interval-rewritten evaluation cost, seconds: the
    /// `sparql.range.total` span.
    pub eval_interval: f64,
    /// Interval (range-scan) evaluations observed.
    pub eval_interval_runs: u64,
    /// Mean cost of re-encoding the interval dictionary after a schema
    /// change, seconds: the `core.interval.reencode` span. This is the
    /// interval strategy's whole maintenance bill — instance updates cost
    /// it nothing.
    pub interval_reencode: f64,
    /// Interval re-encodes observed.
    pub interval_reencodes: u64,
}

/// Microseconds to seconds.
fn us_to_s(us: f64) -> f64 {
    us / 1e6
}

impl ObservedCosts {
    /// Derives mean per-operation costs from a metrics snapshot.
    ///
    /// * saturation — the `rdfs.saturate.run` + `rdfs.parallel.run` spans;
    /// * maintenance — the `core.maintain.<kind>_us` histograms;
    /// * `q_ref(G)` — the `sparql.union.total` span across all parents;
    /// * `q(G∞)` — `core.answer.query` span time minus the union-eval
    ///   and query-rewrite time nested under it, averaged over the
    ///   answers that did not take the reformulation path.
    pub fn from_snapshot(snap: &obs::MetricsSnapshot) -> ObservedCosts {
        let span_mean = |name: &str| -> (f64, u64) {
            let count = snap.span_count(name);
            if count == 0 {
                return (0.0, 0);
            }
            (
                us_to_s(snap.span_total_us(name) as f64 / count as f64),
                count,
            )
        };
        let hist_mean = |name: &str| -> f64 {
            snap.histogram(name)
                .and_then(|h| h.mean())
                .map_or(0.0, us_to_s)
        };

        let sat_runs = snap.span_count("rdfs.saturate.run") + snap.span_count("rdfs.parallel.run");
        let sat_total =
            snap.span_total_us("rdfs.saturate.run") + snap.span_total_us("rdfs.parallel.run");
        let saturation = if sat_runs > 0 {
            us_to_s(sat_total as f64 / sat_runs as f64)
        } else {
            0.0
        };

        let maintenance = MaintenanceCosts {
            instance_insert: hist_mean("core.maintain.instance_insert_us"),
            instance_delete: hist_mean("core.maintain.instance_delete_us"),
            schema_insert: hist_mean("core.maintain.schema_insert_us"),
            schema_delete: hist_mean("core.maintain.schema_delete_us"),
        };
        let updates_observed = snap.counter("core.maintain.updates").unwrap_or(0);

        let (eval_reformulated, eval_reformulated_runs) = span_mean("sparql.union.total");
        let (eval_interval, eval_interval_runs) = span_mean("sparql.range.total");
        let (interval_reencode, interval_reencodes) = span_mean("core.interval.reencode");

        // Answers that went through neither rewriting evaluator: subtract
        // the nested union/range evaluation, rewrite and re-encode time
        // from the total answer time.
        let answers = snap.span_count("core.answer.query");
        let union_under_answer = snap
            .span("sparql.union.total", Some("core.answer.query"))
            .map(|s| (s.count, s.total_us))
            .unwrap_or((0, 0));
        let range_under_answer = snap
            .span("sparql.range.total", Some("core.answer.query"))
            .map(|s| (s.count, s.total_us))
            .unwrap_or((0, 0));
        let refo_under_answer_us = snap
            .span("core.answer.reformulate", Some("core.answer.query"))
            .map(|s| s.total_us)
            .unwrap_or(0);
        let reencode_under_answer_us = snap
            .span("core.interval.reencode", Some("core.answer.query"))
            .map(|s| s.total_us)
            .unwrap_or(0);
        let sat_answers = answers
            .saturating_sub(union_under_answer.0)
            .saturating_sub(range_under_answer.0);
        let sat_answer_us = snap
            .span_total_us("core.answer.query")
            .saturating_sub(union_under_answer.1)
            .saturating_sub(range_under_answer.1)
            .saturating_sub(refo_under_answer_us)
            .saturating_sub(reencode_under_answer_us);
        let eval_saturated = if sat_answers > 0 {
            us_to_s(sat_answer_us as f64 / sat_answers as f64)
        } else {
            0.0
        };

        ObservedCosts {
            saturation,
            saturation_runs: sat_runs,
            maintenance,
            updates_observed,
            eval_saturated,
            eval_saturated_runs: sat_answers,
            eval_reformulated,
            eval_reformulated_runs,
            eval_interval,
            eval_interval_runs,
            interval_reencode,
            interval_reencodes,
        }
    }

    /// Whether the snapshot observed both evaluation paths, i.e. the
    /// threshold/advisor arithmetic has real numbers on both sides.
    pub fn covers_both_paths(&self) -> bool {
        self.eval_saturated_runs > 0 && self.eval_reformulated_runs > 0
    }

    /// Whether the snapshot also observed the interval path, i.e. the
    /// three-way threshold/advice terms have real numbers.
    pub fn covers_interval(&self) -> bool {
        self.eval_interval_runs > 0
    }
}

/// Measures a cost profile. `samples` controls both how many triples are
/// sampled per update kind and how many timing repetitions each query
/// gets (the minimum is reported, Criterion-style, to suppress noise).
pub fn profile(
    graph: &Graph,
    vocab: &Vocab,
    queries: &[(String, Query)],
    algo: MaintenanceAlgorithm,
    samples: usize,
) -> CostProfile {
    let samples = samples.max(1);
    let (sat, saturation_time) = time(|| saturate(graph, vocab));

    // --- maintenance -----------------------------------------------------
    let mut maintainer = algo.build(graph.clone(), *vocab);
    let mut instance_samples: Vec<Triple> = Vec::new();
    let mut schema_samples: Vec<Triple> = Vec::new();
    for t in graph.iter() {
        if vocab.is_schema_property(t.p) {
            if schema_samples.len() < samples {
                schema_samples.push(t);
            }
        } else if instance_samples.len() < samples {
            instance_samples.push(t);
        }
        if instance_samples.len() >= samples && schema_samples.len() >= samples {
            break;
        }
    }
    let mut measure = |ts: &[Triple]| -> (f64, f64) {
        // (avg delete, avg insert); net zero change to the maintainer.
        if ts.is_empty() {
            return (0.0, 0.0);
        }
        let mut del = 0.0;
        let mut ins = 0.0;
        for t in ts {
            let (_, d) = time(|| maintainer.delete(t));
            let (_, i) = time(|| maintainer.insert(*t));
            del += d;
            ins += i;
        }
        (del / ts.len() as f64, ins / ts.len() as f64)
    };
    let (instance_delete, instance_insert) = measure(&instance_samples);
    let (schema_delete, schema_insert) = measure(&schema_samples);
    let maintenance = MaintenanceCosts {
        instance_insert,
        instance_delete,
        schema_insert,
        schema_delete,
    };

    // --- queries -----------------------------------------------------------
    let schema = Schema::extract(graph, vocab);
    let mut query_costs = Vec::with_capacity(queries.len());
    for (name, q) in queries {
        let mut q = q.clone();
        q.distinct = true; // answer-set semantics on both sides

        let (reform, reformulation_time) = time(|| reformulate(&q, &schema, vocab));
        let reform = reform.unwrap_or_else(|e| {
            panic!("profiled query {name} must be in the reformulation dialect: {e}")
        });

        let mut eval_saturated = f64::INFINITY;
        let mut eval_reformulated = f64::INFINITY;
        let mut answers = 0;
        let mut shared_prefix_scans = 0;
        let mut scan_cache_hits = 0;
        for _ in 0..samples {
            let (sols, secs) = time(|| evaluate(&sat.graph, &q));
            eval_saturated = eval_saturated.min(secs);
            answers = sols.len();
            let ((ref_sols, stats), secs) =
                time(|| evaluate_union(graph, &reform.query, NonZeroUsize::MIN));
            eval_reformulated = eval_reformulated.min(secs);
            shared_prefix_scans = stats.shared_prefix_scans();
            scan_cache_hits = stats.scan_cache_hits as usize;
            debug_assert_eq!(
                sols.as_set(),
                ref_sols.as_set(),
                "strategies disagree on {name}"
            );
        }
        query_costs.push(QueryCosts {
            name: name.clone(),
            eval_saturated,
            reformulation_time,
            eval_reformulated,
            branches: reform.branches,
            shared_prefix_scans,
            scan_cache_hits,
            answers,
        });
    }

    CostProfile {
        base_triples: graph.len(),
        saturated_triples: sat.graph.len(),
        saturation_time,
        maintenance_algorithm: algo.name().to_owned(),
        maintenance,
        queries: query_costs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::lubm::{generate, queries, LubmConfig};

    #[test]
    fn profile_on_tiny_lubm_is_coherent() {
        let mut ds = generate(&LubmConfig::tiny());
        let named = queries(&mut ds);
        let qs: Vec<(String, Query)> = named
            .iter()
            .map(|nq| (nq.name.to_owned(), nq.query.clone()))
            .collect();
        let p = profile(&ds.graph, &ds.vocab, &qs, MaintenanceAlgorithm::Counting, 2);

        assert_eq!(p.queries.len(), 10);
        assert!(p.saturated_triples > p.base_triples);
        assert!(p.saturation_time > 0.0);
        assert_eq!(p.maintenance_algorithm, "counting");
        assert!(p.maintenance.instance_insert >= 0.0);
        for qc in &p.queries {
            assert!(qc.branches >= 1, "{}", qc.name);
            assert!(qc.eval_saturated > 0.0);
            assert!(qc.eval_reformulated > 0.0);
            assert!(qc.answers > 0, "{} has answers on LUBM", qc.name);
        }
        // Q1 needs no reasoning: exactly one branch.
        assert_eq!(p.queries[0].branches, 1);
        // Q2 (all persons) has a large reformulation.
        assert!(p.queries[1].branches > 5, "got {}", p.queries[1].branches);
        // profile serialises (bench harness contract)
        let json = serde_json::to_string(&p).unwrap();
        assert!(json.contains("\"saturation_time\""));
    }

    #[test]
    fn profiling_leaves_the_dataset_unchanged() {
        // The delete/re-insert sampling must be net zero.
        let mut ds = generate(&LubmConfig::tiny());
        let before = ds.graph.clone();
        let named = queries(&mut ds);
        let qs: Vec<(String, Query)> = named
            .iter()
            .take(2)
            .map(|nq| (nq.name.to_owned(), nq.query.clone()))
            .collect();
        for algo in rdfs::incremental::MaintenanceAlgorithm::ALL {
            let _ = profile(&ds.graph, &ds.vocab, &qs, algo, 3);
            assert_eq!(ds.graph, before, "{}", algo.name());
        }
    }

    #[test]
    fn recompute_maintenance_costs_the_full_saturation() {
        let mut ds = generate(&LubmConfig::tiny());
        let named = queries(&mut ds);
        let qs: Vec<(String, Query)> = vec![(named[0].name.to_owned(), named[0].query.clone())];
        let p = profile(
            &ds.graph,
            &ds.vocab,
            &qs,
            MaintenanceAlgorithm::Recompute,
            2,
        );
        // Every update pays roughly a saturation; allow generous slack for
        // timer noise but catch order-of-magnitude regressions.
        assert!(
            p.maintenance.instance_insert > p.saturation_time / 20.0,
            "recompute insert {} vs saturation {}",
            p.maintenance.instance_insert,
            p.saturation_time
        );
        let p_inc = profile(&ds.graph, &ds.vocab, &qs, MaintenanceAlgorithm::Counting, 2);
        assert!(
            p_inc.maintenance.instance_insert < p.maintenance.instance_insert,
            "incremental maintenance is cheaper than recomputation"
        );
    }
}
