//! **Figure 3 reproduction** — "Saturation thresholds: quantifying the
//! amortization of saturation".
//!
//! For each LUBM query Q1–Q10, measures the cost profile and prints the
//! five thresholds (saturation, instance insertion/deletion, schema
//! insertion/deletion) as a table and a log-scale ASCII bar chart — the
//! same series the paper's Fig. 3 plots on a log axis — plus the headline
//! observation: the spread in orders of magnitude.
//!
//! ```sh
//! cargo run --release -p bench --bin fig3 [tiny|small|default|large] [recompute|dred|counting]
//! ```

use bench::{fmt_secs, log_bar, lubm_workload, render_table, write_json, Scale};
use webreason_core::cost::profile;
use webreason_core::threshold::{compute_thresholds, spread_orders_of_magnitude, Threshold};
use webreason_core::MaintenanceAlgorithm;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = args
        .first()
        .map(|s| Scale::parse(s).unwrap_or_else(|| panic!("unknown scale {s:?}")))
        .unwrap_or(Scale::Default);
    let algo = match args.get(1).map(String::as_str) {
        None | Some("counting") => MaintenanceAlgorithm::Counting,
        Some("dred") => MaintenanceAlgorithm::DRed,
        Some("recompute") => MaintenanceAlgorithm::Recompute,
        Some(other) => panic!("unknown maintenance algorithm {other:?}"),
    };

    eprintln!("generating LUBM workload ({scale:?})…");
    let (ds, qs) = lubm_workload(scale);
    eprintln!(
        "profiling {} triples × {} queries (algo: {})…",
        ds.graph.len(),
        qs.len(),
        algo.name()
    );
    let prof = profile(&ds.graph, &ds.vocab, &qs, algo, 5);

    println!("== Figure 3: saturation thresholds ==");
    println!(
        "dataset: {} base / {} saturated triples; saturation {}; maintenance: {}",
        prof.base_triples,
        prof.saturated_triples,
        fmt_secs(prof.saturation_time),
        prof.maintenance_algorithm,
    );
    println!(
        "maintenance per update: inst-ins {} | inst-del {} | schema-ins {} | schema-del {}\n",
        fmt_secs(prof.maintenance.instance_insert),
        fmt_secs(prof.maintenance.instance_delete),
        fmt_secs(prof.maintenance.schema_insert),
        fmt_secs(prof.maintenance.schema_delete),
    );

    let thresholds = compute_thresholds(&prof);
    let fmt_t = |t: Threshold| t.to_string();
    let rows: Vec<Vec<String>> = thresholds
        .iter()
        .map(|qt| {
            vec![
                qt.name.clone(),
                fmt_t(qt.saturation),
                fmt_t(qt.instance_insert),
                fmt_t(qt.instance_delete),
                fmt_t(qt.schema_insert),
                fmt_t(qt.schema_delete),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "query",
                "saturation",
                "inst-insert",
                "inst-delete",
                "schema-insert",
                "schema-delete"
            ],
            &rows
        )
    );

    println!("log-scale view (one bar per threshold, Fig. 3 legend order):");
    for qt in &thresholds {
        println!("{}", qt.name);
        for (label, t) in qt.series() {
            println!("  {:<20} {}", label, log_bar(t.runs(), 40));
        }
    }

    let spread = spread_orders_of_magnitude(&thresholds);
    println!("\nthreshold spread: {spread:.1} orders of magnitude across queries and update kinds");
    println!(
        "(the paper reports \"up to 7 orders of magnitude\" on its PostgreSQL-backed testbed)"
    );

    #[derive(serde::Serialize)]
    struct Fig3Report<'a> {
        scale: String,
        profile: &'a webreason_core::cost::CostProfile,
        thresholds: &'a [webreason_core::threshold::QueryThresholds],
        spread_orders_of_magnitude: f64,
    }
    match write_json(
        "fig3",
        &Fig3Report {
            scale: format!("{scale:?}"),
            profile: &prof,
            thresholds: &thresholds,
            spread_orders_of_magnitude: spread,
        },
    ) {
        Ok(path) => eprintln!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\ncould not write JSON report: {e}"),
    }
}
