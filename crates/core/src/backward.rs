//! Backward chaining: run-time reasoning during join evaluation.
//!
//! "AllegroGraph's RDFS++ performs run-time reasoning, sometimes
//! incomplete, based on backward chaining. […] It is not complete, but it
//! has predictable and fast performance." (§II-C). This module reproduces
//! that technique class: instead of expanding the *query* into a union
//! (reformulation) or the *data* into `G∞` (saturation), each triple
//! pattern is matched against the **virtual** entailed triples by probing
//! the explicit indexes once per schema-implied alternative:
//!
//! * `?x rdf:type C` matches explicit `(x, type, C')` for `C' ⊑* C`, plus
//!   `(x, p, _)` for properties with domain `C`, plus `(_, p, x)` for
//!   properties with range `C`;
//! * `?x P ?y` matches explicit `(x, P', y)` for every `P' ⊑* P`.
//!
//! Like RDFS++, patterns outside this shape — a variable property, a
//! variable class, or a schema property — fall back to *explicit-only*
//! matching, making the strategy deliberately incomplete on them (the
//! incompleteness the paper attributes to this class of systems). On the
//! reformulation dialect it is complete, which the equivalence tests
//! check.

use rdf_model::{Graph, Pattern, TermId, Triple, Vocab};
use rdfs::Schema;
use rustc_hash::FxHashSet;
use smallvec::SmallVec;
use sparql::plan::plan_bgp;
use sparql::{Bgp, QTerm, Query, Solutions, TriplePattern, Variable};

/// Calls `f` for every *entailed* triple matching `probe`, where `probe`
/// has the shape of `tp` with bound values substituted.
///
/// Emitted triples are virtual: the same entailed triple may be emitted
/// once per distinct derivation, so callers needing set semantics must
/// dedup (the evaluator's DISTINCT handling does).
fn for_each_entailed(
    g: &Graph,
    schema: &Schema,
    vocab: &Vocab,
    tp: &TriplePattern,
    probe: &Pattern,
    f: &mut dyn FnMut(Triple),
) {
    let p_const = tp.p.as_const();
    match p_const {
        Some(p) if p == vocab.rdf_type => {
            // Class must be a constant for entailment expansion.
            let Some(class) = tp.o.as_const() else {
                g.for_each_match(probe, &mut *f);
                return;
            };
            // 1. explicit + subclass typings
            let mut classes: Vec<TermId> = Vec::with_capacity(1 + schema.sub_classes(class).len());
            classes.push(class);
            classes.extend(schema.sub_classes(class).iter().copied());
            for c in classes {
                g.for_each_match(
                    &Pattern::new(probe.s, Some(vocab.rdf_type), Some(c)),
                    &mut |t: Triple| {
                        f(Triple::new(t.s, vocab.rdf_type, class));
                    },
                );
            }
            // 2. subjects of domain properties
            for &p in schema.properties_with_domain(class) {
                g.for_each_match(&Pattern::new(probe.s, Some(p), None), &mut |t: Triple| {
                    f(Triple::new(t.s, vocab.rdf_type, class));
                });
            }
            // 3. objects of range properties
            for &p in schema.properties_with_range(class) {
                g.for_each_match(&Pattern::new(None, Some(p), probe.s), &mut |t: Triple| {
                    f(Triple::new(t.o, vocab.rdf_type, class));
                });
            }
        }
        Some(p) if !vocab.is_schema_property(p) => {
            // explicit + subproperty edges, reported under `p`
            g.for_each_match(probe, &mut *f);
            for &sub in schema.sub_properties(p) {
                g.for_each_match(
                    &Pattern::new(probe.s, Some(sub), probe.o),
                    &mut |t: Triple| {
                        f(Triple::new(t.s, p, t.o));
                    },
                );
            }
        }
        _ => {
            // Variable property or schema property: explicit only
            // (RDFS++-style incompleteness, see module docs).
            g.for_each_match(probe, &mut *f);
        }
    }
}

#[inline]
fn resolve(qt: QTerm, binding: &[Option<TermId>]) -> Option<TermId> {
    match qt {
        QTerm::Const(c) => Some(c),
        QTerm::Var(v) => binding[v.index()],
    }
}

#[inline]
fn bind_triple(
    tp: &TriplePattern,
    t: &Triple,
    binding: &mut [Option<TermId>],
    touched: &mut SmallVec<[Variable; 3]>,
) -> bool {
    for (qt, value) in [(tp.s, t.s), (tp.p, t.p), (tp.o, t.o)] {
        if let QTerm::Var(v) = qt {
            match binding[v.index()] {
                Some(bound) => {
                    if bound != value {
                        return false;
                    }
                }
                None => {
                    binding[v.index()] = Some(value);
                    touched.push(v);
                }
            }
        }
    }
    true
}

#[allow(clippy::too_many_arguments)]
fn eval_rec(
    g: &Graph,
    schema: &Schema,
    vocab: &Vocab,
    bgp: &Bgp,
    order: &[usize],
    depth: usize,
    binding: &mut Vec<Option<TermId>>,
    emit: &mut dyn FnMut(&[Option<TermId>]),
) {
    if depth == order.len() {
        emit(binding);
        return;
    }
    let tp = &bgp.patterns[order[depth]];
    let probe = Pattern::new(
        resolve(tp.s, binding),
        resolve(tp.p, binding),
        resolve(tp.o, binding),
    );
    // Entailed matches can repeat (multiple derivations); dedup per level so
    // sibling bindings are not enumerated twice.
    let mut seen: FxHashSet<Triple> = FxHashSet::default();
    let mut matches: Vec<Triple> = Vec::new();
    for_each_entailed(g, schema, vocab, tp, &probe, &mut |t: Triple| {
        if seen.insert(t) {
            matches.push(t);
        }
    });
    for t in matches {
        let mut touched: SmallVec<[Variable; 3]> = SmallVec::new();
        if bind_triple(tp, &t, binding, &mut touched) {
            eval_rec(g, schema, vocab, bgp, order, depth + 1, binding, emit);
        }
        for v in touched {
            binding[v.index()] = None;
        }
    }
}

/// Evaluates `q` over the explicit graph with per-atom backward chaining
/// against `schema`. Complete on the reformulation dialect; explicit-only
/// on variable-property / variable-class / schema-property atoms.
pub fn evaluate_backward(g: &Graph, schema: &Schema, vocab: &Vocab, q: &Query) -> Solutions {
    let mut rows: Vec<Vec<TermId>> = Vec::new();
    let mut seen: FxHashSet<Vec<TermId>> = FxHashSet::default();
    for bgp in &q.bgps {
        let vars = bgp.variables();
        if !q.projection.iter().all(|v| vars.contains(v)) {
            continue;
        }
        let plan = plan_bgp(g, bgp);
        let mut binding: Vec<Option<TermId>> = vec![None; q.var_names.len()];
        eval_rec(
            g,
            schema,
            vocab,
            bgp,
            &plan.order,
            0,
            &mut binding,
            &mut |b| {
                // NOT EXISTS probes the explicit graph only — the same
                // RDFS++-style incompleteness as the rest of this strategy.
                if q.not_exists
                    .iter()
                    .any(|neg| sparql::bgp_has_match(g, neg, b))
                {
                    return;
                }
                let row: Vec<TermId> = q
                    .projection
                    .iter()
                    .map(|v| b[v.index()].expect("projected var bound"))
                    .collect();
                if q.distinct {
                    if seen.insert(row.clone()) {
                        rows.push(row);
                    }
                } else {
                    rows.push(row);
                }
            },
        );
    }
    let var_names = q
        .projection
        .iter()
        .map(|&v| q.var_name(v).to_owned())
        .collect();
    Solutions { var_names, rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_io::parse_turtle;
    use rdf_model::Dictionary;
    use rdfs::saturate;
    use sparql::{evaluate, parse_query};

    const UNIVERSITY: &str = r#"
        @prefix ex: <http://ex/> .
        @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
        ex:teaches rdfs:subPropertyOf ex:worksFor .
        ex:worksFor rdfs:domain ex:Employee .
        ex:worksFor rdfs:range ex:Org .
        ex:Employee rdfs:subClassOf ex:Person .
        ex:Professor rdfs:subClassOf ex:Employee .
        ex:bob ex:teaches ex:uni1 .
        ex:carol ex:worksFor ex:uni2 .
        ex:dan a ex:Professor .
        ex:eve a ex:Person .
    "#;

    fn check_complete(data: &str, query: &str) {
        let mut dict = Dictionary::new();
        let vocab = Vocab::intern(&mut dict);
        let mut g = Graph::new();
        parse_turtle(data, &mut dict, &mut g).unwrap();
        let mut q = parse_query(query, &mut dict).unwrap();
        q.distinct = true;
        let schema = Schema::extract(&g, &vocab);
        let got = evaluate_backward(&g, &schema, &vocab, &q).as_set();
        let want = evaluate(&saturate(&g, &vocab).graph, &q).as_set();
        assert_eq!(got, want, "backward chaining incomplete on {query}");
    }

    #[test]
    fn complete_on_type_queries() {
        check_complete(
            UNIVERSITY,
            "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x a ex:Person }",
        );
        check_complete(
            UNIVERSITY,
            "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x a ex:Employee }",
        );
        check_complete(
            UNIVERSITY,
            "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x a ex:Org }",
        );
    }

    #[test]
    fn complete_on_property_queries() {
        check_complete(
            UNIVERSITY,
            "PREFIX ex: <http://ex/> SELECT ?x ?y WHERE { ?x ex:worksFor ?y }",
        );
    }

    #[test]
    fn complete_on_joins() {
        check_complete(
            UNIVERSITY,
            "PREFIX ex: <http://ex/> SELECT ?x ?y WHERE { ?x a ex:Employee . ?x ex:worksFor ?y . ?y a ex:Org }",
        );
    }

    #[test]
    fn subproperty_matches_reported_under_queried_property() {
        let mut dict = Dictionary::new();
        let vocab = Vocab::intern(&mut dict);
        let mut g = Graph::new();
        parse_turtle(UNIVERSITY, &mut dict, &mut g).unwrap();
        let q = parse_query(
            "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x ex:worksFor ex:uni1 }",
            &mut dict,
        )
        .unwrap();
        let schema = Schema::extract(&g, &vocab);
        let sols = evaluate_backward(&g, &schema, &vocab, &q);
        assert_eq!(sols.len(), 1, "bob teaches uni1 ⊢ bob worksFor uni1");
    }

    #[test]
    fn incomplete_on_variable_property_like_rdfspp() {
        // "It is not complete" — variable-property atoms see explicit
        // triples only.
        let mut dict = Dictionary::new();
        let vocab = Vocab::intern(&mut dict);
        let mut g = Graph::new();
        parse_turtle(UNIVERSITY, &mut dict, &mut g).unwrap();
        let q = parse_query(
            "PREFIX ex: <http://ex/> SELECT ?p WHERE { ex:bob ?p ex:uni1 }",
            &mut dict,
        )
        .unwrap();
        let schema = Schema::extract(&g, &vocab);
        let backward = evaluate_backward(&g, &schema, &vocab, &q);
        assert_eq!(backward.len(), 1, "explicit teaches only");
        let complete = evaluate(&saturate(&g, &vocab).graph, &q);
        assert_eq!(complete.len(), 2, "teaches + derived worksFor");
    }

    #[test]
    fn distinct_semantics_dedups_multi_derivations() {
        // dan is an Employee via subclass; if he also works somewhere, the
        // two derivations must not duplicate the answer under DISTINCT.
        let data = format!("{UNIVERSITY}\nex:dan ex:worksFor ex:uni1 .");
        let mut dict = Dictionary::new();
        let vocab = Vocab::intern(&mut dict);
        let mut g = Graph::new();
        parse_turtle(&data, &mut dict, &mut g).unwrap();
        let mut q = parse_query(
            "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x a ex:Employee }",
            &mut dict,
        )
        .unwrap();
        q.distinct = true;
        let schema = Schema::extract(&g, &vocab);
        let sols = evaluate_backward(&g, &schema, &vocab, &q);
        let dan = dict.get_iri_id("http://ex/dan").unwrap();
        assert_eq!(sols.rows.iter().filter(|r| r[0] == dan).count(), 1);
    }
}
