//! Vendored minimal reimplementation of the `serde` serialization facade
//! (the container has no network access to crates.io). Instead of the full
//! `Serializer` visitor architecture, [`Serialize`] writes JSON directly —
//! the only data format this workspace emits. `#[derive(Serialize)]` is
//! provided by the sibling `serde_derive` proc-macro crate and produces
//! the same JSON shapes as upstream serde_json (named structs → objects,
//! unit enum variants → strings, newtype variants → single-key objects).

pub use serde_derive::Serialize;

/// A type that can write itself as JSON.
pub trait Serialize {
    /// Appends the JSON encoding of `self` to `out`.
    fn write_json(&self, out: &mut String);
}

/// Writes a JSON string literal (with escaping) to `out`.
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn write_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}

impl_serialize_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn write_json(&self, out: &mut String) {
                if self.is_finite() {
                    // Match serde_json: floats always render with enough
                    // precision to round-trip; integral floats get ".0".
                    let mut s = format!("{self}");
                    if !s.contains('.') && !s.contains('e') && !s.contains("inf") && !s.contains("NaN") {
                        s.push_str(".0");
                    }
                    out.push_str(&s);
                } else {
                    // serde_json serialises non-finite floats as null.
                    out.push_str("null");
                }
            }
        }
    )*};
}

impl_serialize_float!(f32, f64);

impl Serialize for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for str {
    fn write_json(&self, out: &mut String) {
        write_json_string(out, self);
    }
}

impl Serialize for String {
    fn write_json(&self, out: &mut String) {
        write_json_string(out, self);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.write_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

impl<V: Serialize, S: std::hash::BuildHasher> Serialize
    for std::collections::HashMap<String, V, S>
{
    fn write_json(&self, out: &mut String) {
        // Deterministic output: sort keys like a BTreeMap would.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        out.push('{');
        for (i, k) in keys.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(out, k);
            out.push(':');
            self[*k].write_json(out);
        }
        out.push('}');
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(out, k);
            out.push(':');
            v.write_json(out);
        }
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn json<T: Serialize>(v: T) -> String {
        let mut s = String::new();
        v.write_json(&mut s);
        s
    }

    #[test]
    fn primitives() {
        assert_eq!(json(42u32), "42");
        assert_eq!(json(-3i64), "-3");
        assert_eq!(json(true), "true");
        assert_eq!(json(2.5f64), "2.5");
        assert_eq!(json(3.0f64), "3.0");
        assert_eq!(json(f64::INFINITY), "null");
        assert_eq!(json("hi \"there\"\n"), r#""hi \"there\"\n""#);
    }

    #[test]
    fn containers() {
        assert_eq!(json(vec![1, 2, 3]), "[1,2,3]");
        assert_eq!(json(Option::<u8>::None), "null");
        assert_eq!(json(Some("x")), "\"x\"");
    }
}
