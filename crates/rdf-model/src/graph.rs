//! An in-memory, triple-indexed, internally sharded RDF graph.
//!
//! The graph maintains the three nested-map indexes
//!
//! * `SPO`: subject → property → {object}
//! * `POS`: property → object → {subject}
//! * `OSP`: object → subject → {property}
//!
//! which together answer each of the eight bound/unbound [`Pattern`] shapes
//! with a single probe chain — the classical "all access paths" layout of
//! RDF stores such as Hexastore and RDF-3X (the paper's §II-C prototypes),
//! reduced from six to three orders because RDF patterns never need a
//! *sorted* residual column here, only a set.
//!
//! ## Sharding
//!
//! Each index is split into `N` shards (`N` a power of two, 1 by default),
//! routed by the index's *leading* key: SPO by `subject_id & (N-1)`, POS by
//! property, OSP by object. Routing by the leading key keeps every probe
//! chain a single extra array index — `objects(s, p)` still lands on
//! exactly one map — so the whole read API is shard-oblivious.
//!
//! The point of the layout is parallel bulk insertion: producers route
//! triples into [`TripleBuckets`] (one `Vec` per index per shard) and
//! [`Graph::merge_buckets`] then merges *every (index, shard) pair
//! concurrently* — `3N` tasks with disjoint write targets, so the merge
//! needs no locks and no cross-thread contention. The per-property counts
//! are co-sharded with POS (same routing key) so they ride along in the
//! POS merge task. The parallel saturation engine in the `rdfs` crate is
//! built on this.

use crate::dictionary::TermId;
use crate::triple::{Pattern, Triple};
use rustc_hash::{FxHashMap, FxHashSet};

type Leaf = FxHashSet<TermId>;
type Index = FxHashMap<TermId, FxHashMap<TermId, Leaf>>;

/// An in-memory RDF graph over dictionary-encoded triples.
///
/// Duplicate-free by construction; `insert` and `remove` report whether the
/// graph changed. Cloning a graph deep-copies the indexes, which the
/// saturation maintenance algorithms use to snapshot states.
///
/// Equality is semantic (same triple set), so graphs with different shard
/// counts compare equal when they hold the same triples.
#[derive(Debug, Clone)]
pub struct Graph {
    /// SPO index shards, routed by `s.index() & mask`.
    spo: Vec<Index>,
    /// POS index shards, routed by `p.index() & mask`.
    pos: Vec<Index>,
    /// OSP index shards, routed by `o.index() & mask`.
    osp: Vec<Index>,
    /// Exact triple count per property, kept for O(1) planner
    /// cardinalities. Co-sharded with `pos` (same routing key) so the
    /// parallel merge can update it contention-free.
    p_counts: Vec<FxHashMap<TermId, usize>>,
    /// `shard_count - 1`; shard count is always a power of two.
    mask: usize,
    len: usize,
}

impl Default for Graph {
    fn default() -> Self {
        Self::with_shard_count(1)
    }
}

fn index_insert(index: &mut Index, a: TermId, b: TermId, c: TermId) -> bool {
    index.entry(a).or_default().entry(b).or_default().insert(c)
}

fn index_remove(index: &mut Index, a: TermId, b: TermId, c: TermId) -> bool {
    let Some(inner) = index.get_mut(&a) else {
        return false;
    };
    let Some(leaf) = inner.get_mut(&b) else {
        return false;
    };
    let removed = leaf.remove(&c);
    if removed {
        if leaf.is_empty() {
            inner.remove(&b);
        }
        if inner.is_empty() {
            index.remove(&a);
        }
    }
    removed
}

/// Pre-routed triples awaiting a (parallel) merge into a [`Graph`] with the
/// same shard count: one bucket per index per shard, filled by
/// [`TripleBuckets::push`]. Producers (e.g. saturation worker threads)
/// each fill their own `TripleBuckets`; [`Graph::merge_buckets`] consumes
/// any number of them at once.
#[derive(Debug)]
pub struct TripleBuckets {
    mask: usize,
    spo: Vec<Vec<Triple>>,
    pos: Vec<Vec<Triple>>,
    osp: Vec<Vec<Triple>>,
}

impl TripleBuckets {
    /// Creates empty buckets for a graph with `shard_count` shards
    /// (rounded up to a power of two, minimum 1).
    pub fn new(shard_count: usize) -> Self {
        let n = shard_count.max(1).next_power_of_two();
        TripleBuckets {
            mask: n - 1,
            spo: (0..n).map(|_| Vec::new()).collect(),
            pos: (0..n).map(|_| Vec::new()).collect(),
            osp: (0..n).map(|_| Vec::new()).collect(),
        }
    }

    /// Creates buckets matching `g`'s shard count.
    pub fn for_graph(g: &Graph) -> Self {
        Self::new(g.shard_count())
    }

    /// Routes `t` into the right bucket of each of the three indexes.
    #[inline]
    pub fn push(&mut self, t: Triple) {
        self.spo[t.s.index() & self.mask].push(t);
        self.pos[t.p.index() & self.mask].push(t);
        self.osp[t.o.index() & self.mask].push(t);
    }

    /// Number of routed triples (with multiplicity).
    pub fn len(&self) -> usize {
        self.spo.iter().map(Vec::len).sum()
    }

    /// True when no triple has been routed.
    pub fn is_empty(&self) -> bool {
        self.spo.iter().all(Vec::is_empty)
    }
}

/// One (index, shard) merge unit: disjoint write target, runs lock-free.
enum MergeTask<'a> {
    Spo {
        shard: &'a mut Index,
        inputs: Vec<Vec<Triple>>,
    },
    Pos {
        shard: &'a mut Index,
        counts: &'a mut FxHashMap<TermId, usize>,
        inputs: Vec<Vec<Triple>>,
    },
    Osp {
        shard: &'a mut Index,
        inputs: Vec<Vec<Triple>>,
    },
}

/// Runs one merge task. Returns the number of newly inserted triples for
/// SPO tasks (each triple is counted by exactly one SPO shard) and 0 for
/// the other indexes, which insert the same triple set idempotently.
fn run_merge_task(task: MergeTask<'_>) -> usize {
    match task {
        MergeTask::Spo { shard, inputs } => {
            let mut new = 0;
            for t in inputs.iter().flatten() {
                if index_insert(shard, t.s, t.p, t.o) {
                    new += 1;
                }
            }
            new
        }
        MergeTask::Pos {
            shard,
            counts,
            inputs,
        } => {
            for t in inputs.iter().flatten() {
                if index_insert(shard, t.p, t.o, t.s) {
                    *counts.entry(t.p).or_insert(0) += 1;
                }
            }
            0
        }
        MergeTask::Osp { shard, inputs } => {
            for t in inputs.iter().flatten() {
                index_insert(shard, t.o, t.s, t.p);
            }
            0
        }
    }
}

impl Graph {
    /// Creates an empty graph with a single shard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with `shard_count` shards per index
    /// (rounded up to a power of two, minimum 1). Pick the expected
    /// merge parallelism; single-threaded callers should stay at 1.
    pub fn with_shard_count(shard_count: usize) -> Self {
        let n = shard_count.max(1).next_power_of_two();
        Graph {
            spo: (0..n).map(|_| Index::default()).collect(),
            pos: (0..n).map(|_| Index::default()).collect(),
            osp: (0..n).map(|_| Index::default()).collect(),
            p_counts: (0..n).map(|_| FxHashMap::default()).collect(),
            mask: n - 1,
            len: 0,
        }
    }

    /// Number of shards per index (a power of two; 1 unless built with
    /// [`Graph::with_shard_count`]).
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.mask + 1
    }

    #[inline]
    fn shard(&self, id: TermId) -> usize {
        id.index() & self.mask
    }

    /// Number of triples.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the graph holds no triple.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a triple. Returns `true` if it was not already present.
    pub fn insert(&mut self, t: Triple) -> bool {
        let (ks, kp, ko) = (self.shard(t.s), self.shard(t.p), self.shard(t.o));
        if !index_insert(&mut self.spo[ks], t.s, t.p, t.o) {
            return false;
        }
        index_insert(&mut self.pos[kp], t.p, t.o, t.s);
        index_insert(&mut self.osp[ko], t.o, t.s, t.p);
        *self.p_counts[kp].entry(t.p).or_insert(0) += 1;
        self.len += 1;
        true
    }

    /// Removes a triple. Returns `true` if it was present.
    pub fn remove(&mut self, t: &Triple) -> bool {
        let (ks, kp, ko) = (self.shard(t.s), self.shard(t.p), self.shard(t.o));
        if !index_remove(&mut self.spo[ks], t.s, t.p, t.o) {
            return false;
        }
        index_remove(&mut self.pos[kp], t.p, t.o, t.s);
        index_remove(&mut self.osp[ko], t.o, t.s, t.p);
        match self.p_counts[kp].get_mut(&t.p) {
            Some(c) if *c > 1 => *c -= 1,
            _ => {
                self.p_counts[kp].remove(&t.p);
            }
        }
        self.len -= 1;
        true
    }

    /// Merges pre-routed buckets (from any number of producers) into the
    /// graph, one task per (index, shard), distributed over at most
    /// `threads` scoped worker threads. Write targets are disjoint by
    /// construction, so no synchronisation beyond the final join is
    /// needed. Duplicate triples across buckets are deduplicated by the
    /// set-semantics inserts. Returns the number of newly added triples.
    ///
    /// Every bucket's shard count must match the graph's.
    pub fn merge_buckets(&mut self, buckets: Vec<TripleBuckets>, threads: usize) -> usize {
        let n = self.mask + 1;
        // Transpose producer-major buckets into shard-major task inputs
        // (pointer moves only, no triple copies).
        let mut spo_in: Vec<Vec<Vec<Triple>>> = (0..n).map(|_| Vec::new()).collect();
        let mut pos_in: Vec<Vec<Vec<Triple>>> = (0..n).map(|_| Vec::new()).collect();
        let mut osp_in: Vec<Vec<Vec<Triple>>> = (0..n).map(|_| Vec::new()).collect();
        for mut b in buckets {
            assert_eq!(
                b.mask, self.mask,
                "TripleBuckets shard count must match the graph's"
            );
            for k in 0..n {
                spo_in[k].push(std::mem::take(&mut b.spo[k]));
                pos_in[k].push(std::mem::take(&mut b.pos[k]));
                osp_in[k].push(std::mem::take(&mut b.osp[k]));
            }
        }

        let mut tasks: Vec<MergeTask<'_>> = Vec::with_capacity(3 * n);
        for (shard, inputs) in self.spo.iter_mut().zip(spo_in) {
            tasks.push(MergeTask::Spo { shard, inputs });
        }
        for ((shard, counts), inputs) in self
            .pos
            .iter_mut()
            .zip(self.p_counts.iter_mut())
            .zip(pos_in)
        {
            tasks.push(MergeTask::Pos {
                shard,
                counts,
                inputs,
            });
        }
        for (shard, inputs) in self.osp.iter_mut().zip(osp_in) {
            tasks.push(MergeTask::Osp { shard, inputs });
        }

        let threads = threads.clamp(1, tasks.len());
        let new = if threads == 1 {
            tasks.into_iter().map(run_merge_task).sum()
        } else {
            // Round-robin tasks across workers: with shard and thread
            // counts both powers of two, each worker gets the same shard
            // residues of all three indexes.
            let mut bins: Vec<Vec<MergeTask<'_>>> = (0..threads).map(|_| Vec::new()).collect();
            for (i, task) in tasks.into_iter().enumerate() {
                bins[i % threads].push(task);
            }
            std::thread::scope(|scope| {
                let handles: Vec<_> = bins
                    .into_iter()
                    .map(|bin| {
                        scope.spawn(move || bin.into_iter().map(run_merge_task).sum::<usize>())
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("merge worker panicked"))
                    .sum()
            })
        };
        self.len += new;
        new
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, t: &Triple) -> bool {
        self.spo[self.shard(t.s)]
            .get(&t.s)
            .and_then(|inner| inner.get(&t.p))
            .is_some_and(|leaf| leaf.contains(&t.o))
    }

    /// Removes every triple.
    pub fn clear(&mut self) {
        for index in self
            .spo
            .iter_mut()
            .chain(&mut self.pos)
            .chain(&mut self.osp)
        {
            index.clear();
        }
        for counts in &mut self.p_counts {
            counts.clear();
        }
        self.len = 0;
    }

    /// Iterates over all triples (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.spo.iter().flat_map(|index| {
            index.iter().flat_map(|(&s, inner)| {
                inner
                    .iter()
                    .flat_map(move |(&p, leaf)| leaf.iter().map(move |&o| Triple::new(s, p, o)))
            })
        })
    }

    /// Calls `f` with every triple matching `pattern`, using the cheapest
    /// index for the pattern's shape.
    pub fn for_each_match(&self, pattern: &Pattern, mut f: impl FnMut(Triple)) {
        match (pattern.s, pattern.p, pattern.o) {
            (Some(s), Some(p), Some(o)) => {
                let t = Triple::new(s, p, o);
                if self.contains(&t) {
                    f(t);
                }
            }
            (Some(s), Some(p), None) => {
                if let Some(leaf) = self.spo[self.shard(s)].get(&s).and_then(|i| i.get(&p)) {
                    for &o in leaf {
                        f(Triple::new(s, p, o));
                    }
                }
            }
            (Some(s), None, Some(o)) => {
                if let Some(leaf) = self.osp[self.shard(o)].get(&o).and_then(|i| i.get(&s)) {
                    for &p in leaf {
                        f(Triple::new(s, p, o));
                    }
                }
            }
            (None, Some(p), Some(o)) => {
                if let Some(leaf) = self.pos[self.shard(p)].get(&p).and_then(|i| i.get(&o)) {
                    for &s in leaf {
                        f(Triple::new(s, p, o));
                    }
                }
            }
            (Some(s), None, None) => {
                if let Some(inner) = self.spo[self.shard(s)].get(&s) {
                    for (&p, leaf) in inner {
                        for &o in leaf {
                            f(Triple::new(s, p, o));
                        }
                    }
                }
            }
            (None, Some(p), None) => {
                if let Some(inner) = self.pos[self.shard(p)].get(&p) {
                    for (&o, leaf) in inner {
                        for &s in leaf {
                            f(Triple::new(s, p, o));
                        }
                    }
                }
            }
            (None, None, Some(o)) => {
                if let Some(inner) = self.osp[self.shard(o)].get(&o) {
                    for (&s, leaf) in inner {
                        for &p in leaf {
                            f(Triple::new(s, p, o));
                        }
                    }
                }
            }
            (None, None, None) => {
                for t in self.iter() {
                    f(t);
                }
            }
        }
    }

    /// Collects the triples matching `pattern`.
    pub fn matches(&self, pattern: &Pattern) -> Vec<Triple> {
        let mut out = Vec::new();
        self.for_each_match(pattern, |t| out.push(t));
        out
    }

    /// Exact number of triples matching `pattern`.
    ///
    /// O(1) for fully-bound, `(s,p,?)`-class and `(?,p,?)` shapes; for the
    /// remaining shapes it sums leaf sizes of the relevant inner map.
    pub fn count(&self, pattern: &Pattern) -> usize {
        match (pattern.s, pattern.p, pattern.o) {
            (Some(s), Some(p), Some(o)) => self.contains(&Triple::new(s, p, o)) as usize,
            (Some(s), Some(p), None) => self.spo[self.shard(s)]
                .get(&s)
                .and_then(|i| i.get(&p))
                .map_or(0, Leaf::len),
            (Some(s), None, Some(o)) => self.osp[self.shard(o)]
                .get(&o)
                .and_then(|i| i.get(&s))
                .map_or(0, Leaf::len),
            (None, Some(p), Some(o)) => self.pos[self.shard(p)]
                .get(&p)
                .and_then(|i| i.get(&o))
                .map_or(0, Leaf::len),
            (Some(s), None, None) => self.spo[self.shard(s)]
                .get(&s)
                .map_or(0, |i| i.values().map(Leaf::len).sum()),
            (None, Some(p), None) => self.p_counts[self.shard(p)].get(&p).copied().unwrap_or(0),
            (None, None, Some(o)) => self.osp[self.shard(o)]
                .get(&o)
                .map_or(0, |i| i.values().map(Leaf::len).sum()),
            (None, None, None) => self.len,
        }
    }

    /// The set of objects `o` with `s p o` in the graph, if any.
    ///
    /// Hot accessor for the reasoner's specialised join loops.
    #[inline]
    pub fn objects(&self, s: TermId, p: TermId) -> Option<&FxHashSet<TermId>> {
        self.spo[self.shard(s)].get(&s).and_then(|i| i.get(&p))
    }

    /// The set of subjects `s` with `s p o` in the graph, if any.
    #[inline]
    pub fn subjects_with(&self, p: TermId, o: TermId) -> Option<&FxHashSet<TermId>> {
        self.pos[self.shard(p)].get(&p).and_then(|i| i.get(&o))
    }

    /// Iterates over `(s, o)` pairs of triples with property `p`.
    pub fn pairs_with_property(&self, p: TermId) -> impl Iterator<Item = (TermId, TermId)> + '_ {
        self.pos[self.shard(p)]
            .get(&p)
            .into_iter()
            .flat_map(|inner| {
                inner
                    .iter()
                    .flat_map(|(&o, leaf)| leaf.iter().map(move |&s| (s, o)))
            })
    }

    /// Distinct subjects appearing in the graph.
    pub fn subjects(&self) -> impl Iterator<Item = TermId> + '_ {
        self.spo.iter().flat_map(|index| index.keys().copied())
    }

    /// Distinct properties appearing in the graph.
    pub fn properties(&self) -> impl Iterator<Item = TermId> + '_ {
        self.pos.iter().flat_map(|index| index.keys().copied())
    }

    /// Distinct objects appearing in the graph.
    pub fn objects_iter(&self) -> impl Iterator<Item = TermId> + '_ {
        self.osp.iter().flat_map(|index| index.keys().copied())
    }

    /// Number of distinct properties.
    pub fn property_count(&self) -> usize {
        self.pos.iter().map(FxHashMap::len).sum()
    }

    /// True if `other` contains every triple of `self`.
    pub fn is_subgraph_of(&self, other: &Graph) -> bool {
        self.len <= other.len && self.iter().all(|t| other.contains(&t))
    }

    /// Inserts every triple yielded by the iterator; returns how many were new.
    pub fn extend(&mut self, triples: impl IntoIterator<Item = Triple>) -> usize {
        triples.into_iter().filter(|&t| self.insert(t)).count()
    }

    /// The triples of `self` absent from `other`, i.e. set difference.
    pub fn difference(&self, other: &Graph) -> Vec<Triple> {
        self.iter().filter(|t| !other.contains(t)).collect()
    }
}

impl PartialEq for Graph {
    /// Two graphs are equal when they hold the same triple set
    /// (regardless of shard count).
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().all(|t| other.contains(&t))
    }
}

impl Eq for Graph {}

impl FromIterator<Triple> for Graph {
    fn from_iter<I: IntoIterator<Item = Triple>>(iter: I) -> Self {
        let mut g = Graph::new();
        g.extend(iter);
        g
    }
}

impl Extend<Triple> for Graph {
    fn extend<I: IntoIterator<Item = Triple>>(&mut self, iter: I) {
        Graph::extend(self, iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: usize) -> TermId {
        TermId::from_index(i)
    }

    fn t(s: usize, p: usize, o: usize) -> Triple {
        Triple::new(id(s), id(p), id(o))
    }

    fn sample() -> Graph {
        [
            t(1, 10, 2),
            t(1, 10, 3),
            t(2, 10, 3),
            t(1, 11, 2),
            t(4, 12, 1),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn insert_remove_contains() {
        let mut g = Graph::new();
        assert!(g.insert(t(1, 2, 3)));
        assert!(!g.insert(t(1, 2, 3)), "duplicate insert reports false");
        assert_eq!(g.len(), 1);
        assert!(g.contains(&t(1, 2, 3)));
        assert!(!g.contains(&t(3, 2, 1)));
        assert!(g.remove(&t(1, 2, 3)));
        assert!(!g.remove(&t(1, 2, 3)), "double remove reports false");
        assert!(g.is_empty());
    }

    #[test]
    fn all_eight_pattern_shapes() {
        let g = sample();
        let m = |s: Option<usize>, p: Option<usize>, o: Option<usize>| {
            let mut v = g.matches(&Pattern::new(s.map(id), p.map(id), o.map(id)));
            v.sort();
            v
        };
        assert_eq!(m(Some(1), Some(10), Some(2)), vec![t(1, 10, 2)]);
        assert_eq!(m(Some(1), Some(10), None), vec![t(1, 10, 2), t(1, 10, 3)]);
        assert_eq!(m(Some(1), None, Some(2)), vec![t(1, 10, 2), t(1, 11, 2)]);
        assert_eq!(m(None, Some(10), Some(3)), vec![t(1, 10, 3), t(2, 10, 3)]);
        assert_eq!(
            m(Some(1), None, None),
            vec![t(1, 10, 2), t(1, 10, 3), t(1, 11, 2)]
        );
        assert_eq!(
            m(None, Some(10), None),
            vec![t(1, 10, 2), t(1, 10, 3), t(2, 10, 3)]
        );
        assert_eq!(m(None, None, Some(3)), vec![t(1, 10, 3), t(2, 10, 3)]);
        assert_eq!(m(None, None, None).len(), 5);
    }

    #[test]
    fn counts_agree_with_matches() {
        let g = sample();
        let shapes = [
            Pattern::new(Some(id(1)), Some(id(10)), Some(id(2))),
            Pattern::new(Some(id(1)), Some(id(10)), None),
            Pattern::new(Some(id(1)), None, Some(id(2))),
            Pattern::new(None, Some(id(10)), Some(id(3))),
            Pattern::new(Some(id(1)), None, None),
            Pattern::new(None, Some(id(10)), None),
            Pattern::new(None, None, Some(id(3))),
            Pattern::any(),
            // misses:
            Pattern::new(Some(id(99)), None, None),
            Pattern::new(None, Some(id(99)), None),
            Pattern::new(None, None, Some(id(99))),
        ];
        for p in &shapes {
            assert_eq!(g.count(p), g.matches(p).len(), "pattern {p:?}");
        }
    }

    #[test]
    fn property_counts_track_removals() {
        let mut g = sample();
        assert_eq!(g.count(&Pattern::new(None, Some(id(10)), None)), 3);
        g.remove(&t(1, 10, 2));
        assert_eq!(g.count(&Pattern::new(None, Some(id(10)), None)), 2);
        g.remove(&t(1, 10, 3));
        g.remove(&t(2, 10, 3));
        assert_eq!(g.count(&Pattern::new(None, Some(id(10)), None)), 0);
        assert!(
            !g.properties().any(|p| p == id(10)),
            "empty property pruned from index"
        );
    }

    #[test]
    fn removal_prunes_index_keys() {
        let mut g = Graph::new();
        g.insert(t(1, 2, 3));
        g.remove(&t(1, 2, 3));
        assert_eq!(g.subjects().count(), 0);
        assert_eq!(g.properties().count(), 0);
        assert_eq!(g.objects_iter().count(), 0);
    }

    #[test]
    fn hot_accessors() {
        let g = sample();
        let objs = g.objects(id(1), id(10)).unwrap();
        assert_eq!(objs.len(), 2);
        assert!(objs.contains(&id(2)) && objs.contains(&id(3)));
        let subs = g.subjects_with(id(10), id(3)).unwrap();
        assert_eq!(subs.len(), 2);
        assert!(g.objects(id(9), id(9)).is_none());
        let mut pairs: Vec<_> = g.pairs_with_property(id(10)).collect();
        pairs.sort();
        assert_eq!(pairs, vec![(id(1), id(2)), (id(1), id(3)), (id(2), id(3))]);
    }

    #[test]
    fn graph_equality_ignores_insertion_order() {
        let a: Graph = [t(1, 2, 3), t(4, 5, 6)].into_iter().collect();
        let b: Graph = [t(4, 5, 6), t(1, 2, 3)].into_iter().collect();
        assert_eq!(a, b);
        let c: Graph = [t(1, 2, 3)].into_iter().collect();
        assert_ne!(a, c);
        assert!(c.is_subgraph_of(&a));
        assert!(!a.is_subgraph_of(&c));
    }

    #[test]
    fn difference() {
        let a = sample();
        let mut b = sample();
        b.remove(&t(4, 12, 1));
        let mut d = a.difference(&b);
        d.sort();
        assert_eq!(d, vec![t(4, 12, 1)]);
        assert!(b.difference(&a).is_empty());
    }

    #[test]
    fn clear_resets_everything() {
        let mut g = sample();
        g.clear();
        assert!(g.is_empty());
        assert_eq!(g.iter().count(), 0);
        assert_eq!(g.count(&Pattern::any()), 0);
        assert!(g.insert(t(1, 10, 2)));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(Graph::new().shard_count(), 1);
        assert_eq!(Graph::with_shard_count(0).shard_count(), 1);
        assert_eq!(Graph::with_shard_count(3).shard_count(), 4);
        assert_eq!(Graph::with_shard_count(8).shard_count(), 8);
    }

    #[test]
    fn sharded_graph_behaves_like_unsharded() {
        let plain = sample();
        for shards in [2usize, 4, 8] {
            let mut g = Graph::with_shard_count(shards);
            for tr in plain.iter() {
                assert!(g.insert(tr));
            }
            assert_eq!(g, plain, "{shards} shards");
            assert_eq!(g.len(), plain.len());
            assert_eq!(g.property_count(), plain.property_count());
            assert_eq!(
                g.count(&Pattern::new(None, Some(id(10)), None)),
                plain.count(&Pattern::new(None, Some(id(10)), None))
            );
            let mut subj: Vec<_> = g.subjects().collect();
            subj.sort();
            let mut want: Vec<_> = plain.subjects().collect();
            want.sort();
            assert_eq!(subj, want);
            // removal keeps the sharded bookkeeping straight
            assert!(g.remove(&t(1, 10, 2)));
            assert_eq!(g.count(&Pattern::new(None, Some(id(10)), None)), 2);
        }
    }

    #[test]
    fn merge_buckets_equals_sequential_inserts() {
        let triples: Vec<Triple> = (0..300).map(|i| t(i % 17, i % 5, (i * 7) % 23)).collect();
        let mut reference = Graph::new();
        let mut expected_new = 0;
        for &tr in &triples {
            if reference.insert(tr) {
                expected_new += 1;
            }
        }
        for (shards, threads) in [(1, 1), (4, 1), (4, 4), (8, 3), (4, 64)] {
            let mut g = Graph::with_shard_count(shards);
            // two producers, overlapping triples
            let mut a = TripleBuckets::for_graph(&g);
            let mut b = TripleBuckets::for_graph(&g);
            for (i, &tr) in triples.iter().enumerate() {
                if i % 2 == 0 || i % 3 == 0 {
                    a.push(tr);
                }
                if i % 2 == 1 || i % 3 == 0 {
                    b.push(tr);
                }
            }
            let new = g.merge_buckets(vec![a, b], threads);
            assert_eq!(new, expected_new, "{shards} shards, {threads} threads");
            assert_eq!(g, reference);
            assert_eq!(g.len(), reference.len());
            // p_counts survived the parallel merge
            for p in 0..5 {
                let pat = Pattern::new(None, Some(id(p)), None);
                assert_eq!(g.count(&pat), reference.count(&pat), "p{p}");
            }
        }
    }

    #[test]
    fn merge_buckets_into_nonempty_graph_deduplicates() {
        let mut g = sample();
        let before = g.len();
        let mut bucket = TripleBuckets::for_graph(&g);
        bucket.push(t(1, 10, 2)); // already present
        bucket.push(t(9, 10, 9)); // new
        bucket.push(t(9, 10, 9)); // duplicate within the bucket
        assert_eq!(bucket.len(), 3);
        let new = g.merge_buckets(vec![bucket], 2);
        assert_eq!(new, 1);
        assert_eq!(g.len(), before + 1);
        assert!(g.contains(&t(9, 10, 9)));
    }

    #[test]
    #[should_panic(expected = "shard count must match")]
    fn merge_buckets_rejects_mismatched_shards() {
        let mut g = Graph::with_shard_count(4);
        let bucket = TripleBuckets::new(2);
        g.merge_buckets(vec![bucket], 1);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;
        use std::collections::BTreeSet;

        #[derive(Debug, Clone)]
        enum Op {
            Insert(Triple),
            Remove(Triple),
        }

        fn arb_triple() -> impl Strategy<Value = Triple> {
            (0usize..12, 0usize..6, 0usize..12).prop_map(|(s, p, o)| t(s, p, o))
        }

        fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
            proptest::collection::vec(
                prop_oneof![
                    arb_triple().prop_map(Op::Insert),
                    arb_triple().prop_map(Op::Remove)
                ],
                0..200,
            )
        }

        proptest! {
            /// The indexed graph behaves exactly like a plain set of triples
            /// under arbitrary insert/remove streams, for every pattern
            /// shape — at every shard count.
            #[test]
            fn graph_matches_set_model(ops in arb_ops(), shards in 0usize..9) {
                let mut g = Graph::with_shard_count(shards);
                let mut model: BTreeSet<Triple> = BTreeSet::new();
                for op in ops {
                    match op {
                        Op::Insert(tr) => {
                            prop_assert_eq!(g.insert(tr), model.insert(tr));
                        }
                        Op::Remove(tr) => {
                            prop_assert_eq!(g.remove(&tr), model.remove(&tr));
                        }
                    }
                }
                prop_assert_eq!(g.len(), model.len());
                let mut all: Vec<_> = g.iter().collect();
                all.sort();
                prop_assert_eq!(all, model.iter().copied().collect::<Vec<_>>());

                // Exhaustive pattern check over the small id universe.
                for s in (0..12).map(id).map(Some).chain([None]) {
                    for p in (0..6).map(id).map(Some).chain([None]) {
                        for o in (0..12).map(id).map(Some).chain([None]) {
                            let pat = Pattern::new(s, p, o);
                            let mut got = g.matches(&pat);
                            got.sort();
                            let want: Vec<_> =
                                model.iter().copied().filter(|tr| pat.matches(tr)).collect();
                            prop_assert_eq!(&got, &want);
                            prop_assert_eq!(g.count(&pat), want.len());
                        }
                    }
                }
            }

            /// Parallel bucket merging produces exactly the graph that
            /// sequential insertion does, whatever the producer split.
            #[test]
            fn merge_buckets_matches_sequential(
                triples in proptest::collection::vec(arb_triple(), 0..120),
                shards in 0usize..9,
                threads in 1usize..9,
                producers in 1usize..4,
            ) {
                let mut reference = Graph::new();
                for &tr in &triples { reference.insert(tr); }
                let mut g = Graph::with_shard_count(shards);
                let mut buckets: Vec<TripleBuckets> =
                    (0..producers).map(|_| TripleBuckets::for_graph(&g)).collect();
                for (i, &tr) in triples.iter().enumerate() {
                    buckets[i % producers].push(tr);
                }
                let new = g.merge_buckets(buckets, threads);
                prop_assert_eq!(new, reference.len());
                prop_assert_eq!(&g, &reference);
                for p in (0..6).map(id) {
                    let pat = Pattern::new(None, Some(p), None);
                    prop_assert_eq!(g.count(&pat), reference.count(&pat));
                }
            }
        }
    }
}
