//! Golden-file test for the BGP planner: the join order and cardinality
//! estimates picked for LUBM Q1–Q10 are snapshotted in
//! `tests/golden/planner_lubm.txt`. Any change to the cost model, the
//! greedy search or the LUBM generator shows up as a readable diff
//! instead of a silent plan regression.
//!
//! To accept an intentional change, regenerate the snapshot with
//! `WEBREASON_BLESS=1 cargo test -p webreason-core --test
//! integration_planner_golden` and review the diff like any other code.

use sparql::plan::{plan_bgp_with, DistinctCounts};
use sparql::{QTerm, Query};
use workload::lubm::{generate, queries, LubmConfig};

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/planner_lubm.txt")
}

/// Renders one planned query: each BGP's patterns in evaluation order,
/// with the estimate the planner used when it chose them.
fn render_plan(dict: &rdf_model::Dictionary, q: &Query, g: &rdf_model::Graph) -> String {
    let dc = DistinctCounts::of(g);
    let term = |q: &Query, t: QTerm| -> String {
        match t {
            QTerm::Var(v) => format!("?{}", q.var_name(v)),
            QTerm::Const(id) => dict
                .decode(id)
                .map_or_else(|| format!("#{id}"), |tm| tm.to_string()),
        }
    };
    let mut out = String::new();
    for (bi, bgp) in q.bgps.iter().enumerate() {
        let plan = plan_bgp_with(g, &dc, bgp);
        if q.bgps.len() > 1 {
            out.push_str(&format!("  branch {bi}:\n"));
        }
        for (step, (&idx, est)) in plan.order.iter().zip(&plan.estimates).enumerate() {
            let tp = &bgp.patterns[idx];
            out.push_str(&format!(
                "  {step}. {} {} {}  est={est:.4}\n",
                term(q, tp.s),
                term(q, tp.p),
                term(q, tp.o),
            ));
        }
    }
    out
}

#[test]
fn planner_join_orders_match_golden_file() {
    let mut ds = generate(&LubmConfig::tiny());
    let named = queries(&mut ds);

    let mut snapshot = String::from(
        "# Planner snapshot: LUBM Q1-Q10 join orders and cardinality estimates\n\
         # (LubmConfig::tiny). Regenerate with WEBREASON_BLESS=1; review diffs.\n",
    );
    for nq in &named {
        snapshot.push_str(&format!("\n{}: {}\n", nq.name, nq.description));
        snapshot.push_str(&render_plan(&ds.dict, &nq.query, &ds.graph));
    }

    let path = golden_path();
    if std::env::var("WEBREASON_BLESS").is_ok_and(|v| !v.is_empty() && v != "0") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &snapshot).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with WEBREASON_BLESS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        snapshot,
        want,
        "planner output diverged from {}; if the change is intentional, \
         regenerate with WEBREASON_BLESS=1 and commit the diff",
        path.display()
    );
}
