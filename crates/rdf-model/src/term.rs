//! RDF terms: IRIs, literals and blank nodes.

use std::fmt;

/// An RDF literal: a lexical form optionally qualified by a language tag or
/// a datatype IRI.
///
/// Following the RDF 1.0 abstract syntax used by the paper, a literal is
/// *plain* (no tag, no datatype), *language-tagged* (`"chat"@fr`) or *typed*
/// (`"1"^^xsd:integer`). The three kinds are distinct terms even when their
/// lexical forms coincide.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Literal {
    lexical: Box<str>,
    kind: LiteralKind,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum LiteralKind {
    Plain,
    LanguageTagged(Box<str>),
    Typed(Box<str>),
}

impl Literal {
    /// Creates a plain literal such as `"hello"`.
    pub fn plain(lexical: impl Into<Box<str>>) -> Self {
        Literal {
            lexical: lexical.into(),
            kind: LiteralKind::Plain,
        }
    }

    /// Creates a language-tagged literal such as `"chat"@fr`.
    ///
    /// Language tags are case-insensitive per BCP 47; they are normalised to
    /// lowercase so that `"x"@EN` and `"x"@en` denote the same term.
    pub fn lang(lexical: impl Into<Box<str>>, tag: &str) -> Self {
        Literal {
            lexical: lexical.into(),
            kind: LiteralKind::LanguageTagged(tag.to_ascii_lowercase().into()),
        }
    }

    /// Creates a typed literal such as `"1"^^<http://www.w3.org/2001/XMLSchema#integer>`.
    pub fn typed(lexical: impl Into<Box<str>>, datatype: impl Into<Box<str>>) -> Self {
        Literal {
            lexical: lexical.into(),
            kind: LiteralKind::Typed(datatype.into()),
        }
    }

    /// The lexical form, without quotes or escapes.
    pub fn lexical(&self) -> &str {
        &self.lexical
    }

    /// The language tag, if this is a language-tagged literal.
    pub fn language(&self) -> Option<&str> {
        match &self.kind {
            LiteralKind::LanguageTagged(t) => Some(t),
            _ => None,
        }
    }

    /// The datatype IRI, if this is a typed literal.
    pub fn datatype(&self) -> Option<&str> {
        match &self.kind {
            LiteralKind::Typed(d) => Some(d),
            _ => None,
        }
    }
}

/// An RDF term: the subject, property or object of a triple.
///
/// Terms order as `Iri < Literal < BlankNode` (then lexicographically),
/// giving all containers of terms a deterministic order, which the test
/// suite and the bench harness rely on.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A uniform/international resource identifier, stored in full.
    Iri(Box<str>),
    /// A literal constant.
    Literal(Literal),
    /// A blank node (an unknown IRI or literal), identified by a local label.
    BlankNode(Box<str>),
}

impl Term {
    /// Creates an IRI term.
    pub fn iri(iri: impl Into<Box<str>>) -> Self {
        Term::Iri(iri.into())
    }

    /// Creates a plain literal term.
    pub fn literal(lexical: impl Into<Box<str>>) -> Self {
        Term::Literal(Literal::plain(lexical))
    }

    /// Creates a blank node term with the given label (no `_:` prefix).
    pub fn blank(label: impl Into<Box<str>>) -> Self {
        Term::BlankNode(label.into())
    }

    /// Returns the IRI string if this term is an IRI.
    pub fn as_iri(&self) -> Option<&str> {
        match self {
            Term::Iri(i) => Some(i),
            _ => None,
        }
    }

    /// Returns the literal if this term is a literal.
    pub fn as_literal(&self) -> Option<&Literal> {
        match self {
            Term::Literal(l) => Some(l),
            _ => None,
        }
    }

    /// Returns the blank node label if this term is a blank node.
    pub fn as_blank(&self) -> Option<&str> {
        match self {
            Term::BlankNode(b) => Some(b),
            _ => None,
        }
    }

    /// True for IRI terms.
    pub fn is_iri(&self) -> bool {
        matches!(self, Term::Iri(_))
    }

    /// True for literal terms.
    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal(_))
    }

    /// True for blank node terms.
    pub fn is_blank(&self) -> bool {
        matches!(self, Term::BlankNode(_))
    }
}

/// Escapes a string for inclusion in an N-Triples quoted literal.
fn escape_literal(s: &str, out: &mut fmt::Formatter<'_>) -> fmt::Result {
    for c in s.chars() {
        match c {
            '\\' => out.write_str("\\\\")?,
            '"' => out.write_str("\\\"")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c => write!(out, "{c}")?,
        }
    }
    Ok(())
}

impl fmt::Display for Literal {
    /// Formats the literal in N-Triples syntax.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("\"")?;
        escape_literal(&self.lexical, f)?;
        f.write_str("\"")?;
        match &self.kind {
            LiteralKind::Plain => Ok(()),
            LiteralKind::LanguageTagged(t) => write!(f, "@{t}"),
            LiteralKind::Typed(d) => write!(f, "^^<{d}>"),
        }
    }
}

impl fmt::Display for Term {
    /// Formats the term in N-Triples syntax.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(i) => write!(f, "<{i}>"),
            Term::Literal(l) => write!(f, "{l}"),
            Term::BlankNode(b) => write!(f, "_:{b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_kinds_are_distinct_terms() {
        let plain = Term::Literal(Literal::plain("1"));
        let typed = Term::Literal(Literal::typed(
            "1",
            "http://www.w3.org/2001/XMLSchema#integer",
        ));
        let tagged = Term::Literal(Literal::lang("1", "en"));
        assert_ne!(plain, typed);
        assert_ne!(plain, tagged);
        assert_ne!(typed, tagged);
    }

    #[test]
    fn language_tags_normalise_to_lowercase() {
        assert_eq!(Literal::lang("x", "EN-GB"), Literal::lang("x", "en-gb"));
        assert_eq!(Literal::lang("x", "EN").language(), Some("en"));
    }

    #[test]
    fn accessors() {
        let i = Term::iri("http://a");
        assert_eq!(i.as_iri(), Some("http://a"));
        assert!(i.is_iri() && !i.is_literal() && !i.is_blank());

        let b = Term::blank("b0");
        assert_eq!(b.as_blank(), Some("b0"));
        assert!(b.is_blank());

        let l = Term::literal("v");
        assert_eq!(l.as_literal().unwrap().lexical(), "v");
        assert_eq!(l.as_literal().unwrap().language(), None);
        assert_eq!(l.as_literal().unwrap().datatype(), None);
    }

    #[test]
    fn display_ntriples_forms() {
        assert_eq!(Term::iri("http://a#x").to_string(), "<http://a#x>");
        assert_eq!(Term::blank("n1").to_string(), "_:n1");
        assert_eq!(Term::literal("hi").to_string(), "\"hi\"");
        assert_eq!(
            Term::Literal(Literal::lang("hi", "en")).to_string(),
            "\"hi\"@en"
        );
        assert_eq!(
            Term::Literal(Literal::typed("1", "http://t")).to_string(),
            "\"1\"^^<http://t>"
        );
    }

    #[test]
    fn display_escapes_specials() {
        let l = Term::literal("a\"b\\c\nd\te\rf");
        assert_eq!(l.to_string(), "\"a\\\"b\\\\c\\nd\\te\\rf\"");
    }

    #[test]
    fn term_ordering_is_iri_literal_blank() {
        let mut v = [Term::blank("z"), Term::literal("a"), Term::iri("m")];
        v.sort();
        assert!(v[0].is_iri());
        assert!(v[1].is_literal());
        assert!(v[2].is_blank());
    }
}
