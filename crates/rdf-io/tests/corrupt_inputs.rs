//! Robustness of the parsers against damaged input: files cut off
//! mid-write, garbage spliced into valid documents, and malformed escape
//! sequences. The contract under test is total: whatever arrives, the
//! parser returns `Ok`/`Err` — it never panics — and malformed escapes in
//! particular are always a readable `Err`, not a silent mis-decode.

use proptest::prelude::*;
use rdf_io::{parse_ntriples, parse_turtle};
use rdf_model::{Dictionary, Graph};

/// A well-formed N-Triples document exercising every term shape the
/// writer produces: IRIs, blank nodes, plain / language-tagged / typed
/// literals, and string + unicode escapes.
const VALID_NT: &str = "<http://ex/a> <http://ex/p> <http://ex/b> .\n\
     _:b0 <http://ex/p> \"plain\" .\n\
     <http://ex/a> <http://ex/q> \"caf\\u00E9 \\\"quoted\\\" \\n tail\"@en .\n\
     <http://ex/a> <http://ex/r> \"3.5\"^^<http://www.w3.org/2001/XMLSchema#decimal> .\n";

/// A well-formed Turtle document exercising directives, prefixed names,
/// `a`, predicate lists and object lists.
const VALID_TTL: &str = "@prefix ex: <http://ex/> .\n\
     PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>\n\
     ex:a a ex:Class ; ex:p ex:b , _:b0 .\n\
     ex:b ex:q \"lit\"^^xsd:string ; ex:r \"fr\"@fr .\n";

fn nt(input: &str) -> Result<(), rdf_io::ParseError> {
    let mut d = Dictionary::new();
    let mut g = Graph::new();
    parse_ntriples(input, &mut d, &mut g).map(|_| ())
}

fn ttl(input: &str) -> Result<(), rdf_io::ParseError> {
    let mut d = Dictionary::new();
    let mut g = Graph::new();
    parse_turtle(input, &mut d, &mut g).map(|_| ())
}

/// Truncates at an arbitrary byte index, snapped back to a char boundary
/// (a real torn write tears bytes; the parsers take `&str`, so the
/// filesystem layer has already rejected invalid UTF-8).
fn truncate_at(doc: &str, at: usize) -> &str {
    let mut at = at.min(doc.len());
    while !doc.is_char_boundary(at) {
        at -= 1;
    }
    &doc[..at]
}

proptest! {
    /// A document cut off at any point never panics the N-Triples parser.
    #[test]
    fn truncated_ntriples_never_panics(at in 0usize..=200) {
        let _ = nt(truncate_at(VALID_NT, at));
    }

    /// A document cut off at any point never panics the Turtle parser.
    #[test]
    fn truncated_turtle_never_panics(at in 0usize..=200) {
        let _ = ttl(truncate_at(VALID_TTL, at));
    }

    /// Garbage spliced into the middle of a valid document never panics
    /// either parser — the error (if any) is a value, not an unwind.
    #[test]
    fn garbage_splice_never_panics(at in 0usize..=200, garbage in "\\PC{0,40}") {
        for doc in [VALID_NT, VALID_TTL] {
            let cut = truncate_at(doc, at);
            let spliced = format!("{cut}{garbage}{}", &doc[cut.len()..]);
            let _ = nt(&spliced);
            let _ = ttl(&spliced);
        }
    }

    /// A malformed escape inside a literal is always an `Err` — bad hex,
    /// short escapes, unknown escape letters, non-scalar code points.
    #[test]
    fn invalid_escape_is_an_error(esc in prop_oneof![
        Just("\\x".to_owned()),
        Just("\\u12".to_owned()),
        Just("\\uZZZZ".to_owned()),
        Just("\\U0000".to_owned()),
        Just("\\UDEADBEEF".to_owned()),
        Just("\\uD800".to_owned()),            // lone surrogate
        "\\\\u[0-9A-F]{0,3}",                  // truncated \u escapes
        "\\\\[cdeghijkmosvwxyz]",              // unknown escape letters
    ]) {
        let line = format!("<http://ex/a> <http://ex/p> \"{esc}\" .");
        prop_assert!(nt(&line).is_err(), "N-Triples accepted {esc:?}");
        let doc = format!("@prefix ex: <http://ex/> .\nex:a ex:p \"{esc}\" .");
        prop_assert!(ttl(&doc).is_err(), "Turtle accepted {esc:?}");
    }

    /// A malformed `\u` escape inside an IRI is likewise an `Err`.
    #[test]
    fn invalid_iri_escape_is_an_error(esc in prop_oneof![
        Just("\\uD800".to_owned()),
        Just("\\uGGGG".to_owned()),
        "\\\\u[0-9A-F]{0,3}",
    ]) {
        let line = format!("<http://ex/{esc}> <http://ex/p> <http://ex/b> .");
        prop_assert!(nt(&line).is_err(), "N-Triples accepted IRI escape {esc:?}");
    }
}

/// Deterministic spot-checks that truncation lands where expected: a cut
/// at a line boundary parses the surviving prefix, a cut mid-triple is a
/// parse error (never a panic, never a phantom triple).
#[test]
fn truncation_boundaries_behave() {
    let first_line_len = VALID_NT.find('\n').unwrap() + 1;
    let mut d = Dictionary::new();
    let mut g = Graph::new();
    parse_ntriples(&VALID_NT[..first_line_len], &mut d, &mut g).unwrap();
    assert_eq!(g.len(), 1);

    // cut inside the second triple's subject
    assert!(nt(&VALID_NT[..first_line_len + 2]).is_err());
    // cut inside a quoted literal: the string never closes
    let quote = VALID_NT.find('"').unwrap();
    assert!(nt(&VALID_NT[..quote + 3]).is_err());
}
