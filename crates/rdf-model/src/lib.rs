//! # rdf-model — the RDF data model
//!
//! This crate implements the core of the RDF data model as described in
//! Section II-A of *"Reasoning on Web Data: Algorithms and Performance"*
//! (Bursztyn, Goasdoué, Manolescu, Roatiş — ICDE 2015):
//!
//! * [`Term`]: IRIs, literals (plain, language-tagged, typed) and blank
//!   nodes — the components of well-formed RDF triples;
//! * [`Dictionary`]: a string interner mapping each distinct [`Term`] to a
//!   compact integer [`TermId`], so that every algorithm in the upper layers
//!   (saturation, reformulation, query evaluation) runs over integer triples
//!   and strings are only touched at parse / print time;
//! * [`Triple`] and [`Pattern`]: encoded triples and triple lookup patterns;
//! * [`Graph`]: an in-memory triple store indexed in the three orders
//!   SPO, POS and OSP, answering all eight bound/unbound pattern shapes
//!   with a single index probe; each index is internally sharded so bulk
//!   loads can merge pre-routed [`TripleBuckets`] with one thread per
//!   shard, contention-free;
//! * [`Vocab`]: the RDF/RDFS built-in vocabulary, pre-interned.
//!
//! ## Example
//!
//! ```
//! use rdf_model::{Dictionary, Graph, Term, Triple, Pattern};
//!
//! let mut dict = Dictionary::new();
//! let anne = dict.encode_iri("http://example.org/Anne");
//! let knows = dict.encode_iri("http://example.org/knows");
//! let marie = dict.encode_iri("http://example.org/Marie");
//!
//! let mut g = Graph::new();
//! g.insert(Triple::new(anne, knows, marie));
//! assert_eq!(g.len(), 1);
//!
//! // Who does Anne know?
//! let hits = g.matches(&Pattern::new(Some(anne), Some(knows), None));
//! assert_eq!(hits.len(), 1);
//! assert_eq!(dict.decode(hits[0].o).unwrap(), &Term::iri("http://example.org/Marie"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dictionary;
mod graph;
mod interval;
mod term;
mod triple;
pub mod vocab;
mod worker;

pub use dictionary::{Dictionary, TermId};
pub use graph::{Graph, TripleBuckets};
pub use interval::{IntervalDict, IntervalSet};
pub use term::{Literal, Term};
pub use triple::{Pattern, Triple};
pub use vocab::Vocab;
pub use worker::WorkerPanicked;
