//! # durability — crash-safe update journal and checkpoints
//!
//! The paper's Fig. 3 is about the cost of *maintaining* a saturated
//! store under updates; a production store must additionally survive a
//! crash in the middle of that maintenance. This crate provides the two
//! on-disk halves of that guarantee, independent of any particular store:
//!
//! * [`Journal`] — a write-ahead log of update operations
//!   ([`JournalRecord`]) in a length-prefixed, CRC-32-checksummed binary
//!   format, with torn-tail detection and truncation on reopen;
//! * [`Checkpoint`] — an atomic whole-store snapshot (dictionary + base
//!   graph + configuration) that bounds how much journal a recovery must
//!   replay.
//!
//! `webreason-core` wires these into the `Store` as `DurableStore` and
//! `Store::recover`; the CLI exposes them as `webreason checkpoint` /
//! `webreason recover`. Fault-injection sites (`store.journal.append`,
//! `store.checkpoint.write`) are compiled in under the `failpoints`
//! feature for the crash-equivalence test suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod codec;
pub mod crc32;
pub mod journal;

pub use checkpoint::{
    checkpoint_file_name, load_checkpoint, load_latest, prune_checkpoints, write_checkpoint,
    Checkpoint,
};
pub use journal::{Journal, JournalRecord, Replay, ScriptedOp};

use std::fmt;
use std::path::PathBuf;

/// When journal appends reach the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// `fdatasync` after every appended record: an acknowledged update
    /// survives an OS crash or power cut (the default).
    #[default]
    Always,
    /// Leave flushing to the OS page cache: much faster, and still safe
    /// against *process* crashes (the kernel owns the dirty pages), but an
    /// OS crash can lose the unsynced tail.
    Never,
}

impl FsyncPolicy {
    /// Parses `always` / `never` (aliases: `os`, `none` for `never`).
    pub fn parse(s: &str) -> Option<FsyncPolicy> {
        match s {
            "always" => Some(FsyncPolicy::Always),
            "never" | "os" | "none" => Some(FsyncPolicy::Never),
            _ => None,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::Never => "never",
        }
    }
}

/// An error raised by journal or checkpoint operations.
#[derive(Debug)]
pub enum DurabilityError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// Bytes on disk fail validation (checksum, magic, or structure).
    Corrupt {
        /// The damaged file.
        path: PathBuf,
        /// Byte offset of the damage.
        offset: u64,
        /// What failed to validate.
        what: String,
    },
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurabilityError::Io(e) => write!(f, "journal I/O error: {e}"),
            DurabilityError::Corrupt { path, offset, what } => {
                write!(f, "{} is corrupt at byte {offset}: {what}", path.display())
            }
        }
    }
}

impl std::error::Error for DurabilityError {}

impl From<std::io::Error> for DurabilityError {
    fn from(e: std::io::Error) -> Self {
        DurabilityError::Io(e)
    }
}
