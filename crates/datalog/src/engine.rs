//! A generic positive-Datalog engine with semi-naive evaluation.
//!
//! Programs are sets of rules `head :- body₁, …, bodyₙ` over atoms whose
//! arguments are variables or [`TermId`] constants. Facts are stored in
//! per-predicate relations indexed on every argument position, so joins
//! probe rather than scan whenever at least one argument is bound.

use rdf_model::TermId;
use rustc_hash::{FxHashMap, FxHashSet};
use smallvec::SmallVec;

/// A predicate symbol (caller-assigned).
pub type Predicate = u32;

/// A ground tuple.
pub type Row = SmallVec<[TermId; 3]>;

/// An argument of an atom: a rule variable or a constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DlTerm {
    /// A rule variable, scoped to its rule.
    Var(u16),
    /// A constant.
    Const(TermId),
}

/// An atom `p(t₁, …, tₖ)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// The predicate symbol.
    pub predicate: Predicate,
    /// The argument terms.
    pub args: SmallVec<[DlTerm; 3]>,
}

impl Atom {
    /// Builds an atom.
    pub fn new(predicate: Predicate, args: impl IntoIterator<Item = DlTerm>) -> Self {
        Atom {
            predicate,
            args: args.into_iter().collect(),
        }
    }
}

/// A Datalog rule `head :- body`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// The derived atom; its variables must all occur in the body
    /// (range restriction), checked by [`Program::validate`].
    pub head: Atom,
    /// The body atoms (conjunctive).
    pub body: Vec<Atom>,
}

/// A set of rules.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// The rules.
    pub rules: Vec<Rule>,
}

impl Program {
    /// Builds a program from rules.
    pub fn new(rules: Vec<Rule>) -> Self {
        Program { rules }
    }

    /// Checks range restriction: every head variable occurs in the body.
    /// Returns the index of the first offending rule, if any.
    pub fn validate(&self) -> Result<(), usize> {
        for (i, rule) in self.rules.iter().enumerate() {
            let body_vars: FxHashSet<u16> = rule
                .body
                .iter()
                .flat_map(|a| a.args.iter())
                .filter_map(|t| match t {
                    DlTerm::Var(v) => Some(*v),
                    DlTerm::Const(_) => None,
                })
                .collect();
            let ok = rule.head.args.iter().all(|t| match t {
                DlTerm::Var(v) => body_vars.contains(v),
                DlTerm::Const(_) => true,
            });
            if !ok {
                return Err(i);
            }
        }
        Ok(())
    }
}

/// One predicate's facts, with an index per argument position.
#[derive(Debug, Clone, Default)]
struct Relation {
    rows: Vec<Row>,
    present: FxHashSet<Row>,
    /// `index[pos][value]` = indexes into `rows` with `row[pos] == value`.
    index: Vec<FxHashMap<TermId, Vec<u32>>>,
}

impl Relation {
    fn insert(&mut self, row: Row) -> bool {
        if !self.present.insert(row.clone()) {
            return false;
        }
        if self.index.len() < row.len() {
            self.index.resize_with(row.len(), FxHashMap::default);
        }
        let id = self.rows.len() as u32;
        for (pos, &v) in row.iter().enumerate() {
            self.index[pos].entry(v).or_default().push(id);
        }
        self.rows.push(row);
        true
    }

    /// Iterates rows matching the partially-bound `probe` (`None` =
    /// wildcard), using the most selective position index available.
    fn for_each_match(&self, probe: &[Option<TermId>], mut f: impl FnMut(&Row)) {
        // Pick the bound position with the fewest candidate rows.
        let best = probe
            .iter()
            .enumerate()
            .filter_map(|(pos, v)| {
                v.map(|v| {
                    (
                        pos,
                        self.index
                            .get(pos)
                            .and_then(|m| m.get(&v))
                            .map_or(0, Vec::len),
                    )
                })
            })
            .min_by_key(|&(_, n)| n);
        let matches = |row: &Row| -> bool {
            probe
                .iter()
                .zip(row.iter())
                .all(|(p, &v)| p.is_none_or(|pv| pv == v))
        };
        match best {
            Some((pos, _)) => {
                let v = probe[pos].expect("best position is bound");
                if let Some(ids) = self.index.get(pos).and_then(|m| m.get(&v)) {
                    for &id in ids {
                        let row = &self.rows[id as usize];
                        if matches(row) {
                            f(row);
                        }
                    }
                }
            }
            None => {
                for row in &self.rows {
                    if matches(row) {
                        f(row);
                    }
                }
            }
        }
    }

    fn len(&self) -> usize {
        self.rows.len()
    }
}

/// A fact database: per-predicate relations.
#[derive(Debug, Clone, Default)]
pub struct Database {
    relations: FxHashMap<Predicate, Relation>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a fact; returns true if it was new.
    pub fn insert(&mut self, predicate: Predicate, row: impl IntoIterator<Item = TermId>) -> bool {
        self.relations
            .entry(predicate)
            .or_default()
            .insert(row.into_iter().collect())
    }

    /// Membership test.
    pub fn contains(&self, predicate: Predicate, row: &Row) -> bool {
        self.relations
            .get(&predicate)
            .is_some_and(|r| r.present.contains(row))
    }

    /// Number of facts for one predicate.
    pub fn predicate_len(&self, predicate: Predicate) -> usize {
        self.relations.get(&predicate).map_or(0, Relation::len)
    }

    /// Total number of facts.
    pub fn len(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// True when no fact is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates the rows of one predicate.
    pub fn rows(&self, predicate: Predicate) -> impl Iterator<Item = &Row> + '_ {
        self.relations
            .get(&predicate)
            .into_iter()
            .flat_map(|r| r.rows.iter())
    }

    fn for_each_match(&self, predicate: Predicate, probe: &[Option<TermId>], f: impl FnMut(&Row)) {
        if let Some(rel) = self.relations.get(&predicate) {
            rel.for_each_match(probe, f);
        }
    }
}

/// Statistics of a fix-point run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FixpointStats {
    /// Semi-naive rounds until quiescence.
    pub rounds: usize,
    /// Facts derived (new, after dedup).
    pub derived: usize,
    /// Rule-instance joins attempted (cost proxy).
    pub joins: usize,
}

fn bind_row(
    atom: &Atom,
    row: &Row,
    subst: &mut [Option<TermId>],
    touched: &mut SmallVec<[u16; 4]>,
) -> bool {
    for (t, &v) in atom.args.iter().zip(row.iter()) {
        match t {
            DlTerm::Const(c) => {
                if *c != v {
                    return false;
                }
            }
            DlTerm::Var(x) => match subst[*x as usize] {
                Some(b) => {
                    if b != v {
                        return false;
                    }
                }
                None => {
                    subst[*x as usize] = Some(v);
                    touched.push(*x);
                }
            },
        }
    }
    true
}

fn probe_of(atom: &Atom, subst: &[Option<TermId>]) -> SmallVec<[Option<TermId>; 3]> {
    atom.args
        .iter()
        .map(|t| match t {
            DlTerm::Const(c) => Some(*c),
            DlTerm::Var(x) => subst[*x as usize],
        })
        .collect()
}

fn max_var(rule: &Rule) -> usize {
    rule.head
        .args
        .iter()
        .chain(rule.body.iter().flat_map(|a| a.args.iter()))
        .filter_map(|t| match t {
            DlTerm::Var(v) => Some(*v as usize + 1),
            DlTerm::Const(_) => None,
        })
        .max()
        .unwrap_or(0)
}

/// Joins the body of `rule` with atom `delta_pos` drawn from `delta` and
/// the others from `all`, emitting each ground head.
#[allow(clippy::too_many_arguments)]
fn join_rec(
    rule: &Rule,
    all: &Database,
    delta: &Database,
    delta_pos: usize,
    depth: usize,
    subst: &mut Vec<Option<TermId>>,
    joins: &mut usize,
    emit: &mut dyn FnMut(Row),
) {
    if depth == rule.body.len() {
        let head: Row = rule
            .head
            .args
            .iter()
            .map(|t| match t {
                DlTerm::Const(c) => *c,
                DlTerm::Var(x) => subst[*x as usize].expect("range-restricted rule"),
            })
            .collect();
        emit(head);
        return;
    }
    let atom = &rule.body[depth];
    let probe = probe_of(atom, subst);
    let source = if depth == delta_pos { delta } else { all };
    // Collect matches first: recursion inside the closure would otherwise
    // borrow `subst` twice.
    let mut matches: Vec<Row> = Vec::new();
    source.for_each_match(atom.predicate, &probe, |row| matches.push(row.clone()));
    *joins += matches.len();
    for row in matches {
        let mut touched: SmallVec<[u16; 4]> = SmallVec::new();
        if bind_row(atom, &row, subst, &mut touched) {
            join_rec(rule, all, delta, delta_pos, depth + 1, subst, joins, emit);
        }
        for x in touched {
            subst[x as usize] = None;
        }
    }
}

/// Runs `program` to fix-point over `db` (mutated in place), semi-naive.
///
/// Panics in debug builds if the program is not range-restricted; call
/// [`Program::validate`] first for a graceful error.
pub fn fixpoint(db: &mut Database, program: &Program) -> FixpointStats {
    debug_assert!(
        program.validate().is_ok(),
        "program must be range-restricted"
    );
    let mut stats = FixpointStats::default();

    // Initial delta = everything.
    let mut delta = db.clone();
    let mut scratch: Vec<(Predicate, Row)> = Vec::new();

    while !delta.is_empty() {
        stats.rounds += 1;
        scratch.clear();
        for rule in &program.rules {
            let mut subst: Vec<Option<TermId>> = vec![None; max_var(rule)];
            for delta_pos in 0..rule.body.len() {
                join_rec(
                    rule,
                    db,
                    &delta,
                    delta_pos,
                    0,
                    &mut subst,
                    &mut stats.joins,
                    &mut |row| {
                        scratch.push((rule.head.predicate, row));
                    },
                );
            }
        }
        let mut next = Database::new();
        for (pred, row) in scratch.drain(..) {
            if db.insert(pred, row.clone()) {
                stats.derived += 1;
                next.insert(pred, row);
            }
        }
        delta = next;
    }
    stats
}

/// Answers a conjunctive query (a rule body) against `db`, returning the
/// distinct bindings of `projection` variables.
pub fn query(db: &Database, body: &[Atom], projection: &[u16]) -> FxHashSet<Row> {
    let rule = Rule {
        head: Atom::new(u32::MAX, projection.iter().map(|&v| DlTerm::Var(v))),
        body: body.to_vec(),
    };
    let mut out = FxHashSet::default();
    let mut subst: Vec<Option<TermId>> = vec![None; max_var(&rule)];
    let mut joins = 0;
    // Reuse the join machinery with `delta == all` and a single pass: set
    // delta_pos past the body so every atom reads from `all`.
    join_rec(
        &rule,
        db,
        db,
        usize::MAX,
        0,
        &mut subst,
        &mut joins,
        &mut |row| {
            out.insert(row);
        },
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: usize) -> TermId {
        TermId::from_index(i)
    }

    const EDGE: Predicate = 0;
    const PATH: Predicate = 1;

    /// path(X,Y) :- edge(X,Y).  path(X,Z) :- edge(X,Y), path(Y,Z).
    fn transitive_closure_program() -> Program {
        Program::new(vec![
            Rule {
                head: Atom::new(PATH, [DlTerm::Var(0), DlTerm::Var(1)]),
                body: vec![Atom::new(EDGE, [DlTerm::Var(0), DlTerm::Var(1)])],
            },
            Rule {
                head: Atom::new(PATH, [DlTerm::Var(0), DlTerm::Var(2)]),
                body: vec![
                    Atom::new(EDGE, [DlTerm::Var(0), DlTerm::Var(1)]),
                    Atom::new(PATH, [DlTerm::Var(1), DlTerm::Var(2)]),
                ],
            },
        ])
    }

    #[test]
    fn transitive_closure_of_a_chain() {
        let mut db = Database::new();
        for i in 0..10 {
            db.insert(EDGE, [c(i), c(i + 1)]);
        }
        let stats = fixpoint(&mut db, &transitive_closure_program());
        // chain of 11 nodes: 10+9+…+1 = 55 paths
        assert_eq!(db.predicate_len(PATH), 55);
        assert!(stats.rounds > 2, "recursive program needs several rounds");
        assert_eq!(stats.derived, 55);
    }

    #[test]
    fn transitive_closure_of_a_cycle_terminates() {
        let mut db = Database::new();
        db.insert(EDGE, [c(0), c(1)]);
        db.insert(EDGE, [c(1), c(2)]);
        db.insert(EDGE, [c(2), c(0)]);
        fixpoint(&mut db, &transitive_closure_program());
        assert_eq!(db.predicate_len(PATH), 9, "3×3 pairs all reachable");
    }

    #[test]
    fn fixpoint_is_idempotent() {
        let mut db = Database::new();
        db.insert(EDGE, [c(0), c(1)]);
        db.insert(EDGE, [c(1), c(2)]);
        let p = transitive_closure_program();
        fixpoint(&mut db, &p);
        let n = db.len();
        let stats = fixpoint(&mut db, &p);
        assert_eq!(db.len(), n);
        assert_eq!(stats.derived, 0);
    }

    #[test]
    fn constants_in_rules() {
        // likes_anne(X) :- likes(X, anne).
        const LIKES: Predicate = 2;
        const FAN: Predicate = 3;
        let anne = c(100);
        let program = Program::new(vec![Rule {
            head: Atom::new(FAN, [DlTerm::Var(0)]),
            body: vec![Atom::new(LIKES, [DlTerm::Var(0), DlTerm::Const(anne)])],
        }]);
        let mut db = Database::new();
        db.insert(LIKES, [c(1), anne]);
        db.insert(LIKES, [c(2), c(200)]);
        fixpoint(&mut db, &program);
        assert_eq!(db.predicate_len(FAN), 1);
        assert!(db.contains(FAN, &Row::from_slice(&[c(1)])));
    }

    #[test]
    fn repeated_variables_join_within_an_atom() {
        // loop(X) :- edge(X, X).
        const LOOP: Predicate = 4;
        let program = Program::new(vec![Rule {
            head: Atom::new(LOOP, [DlTerm::Var(0)]),
            body: vec![Atom::new(EDGE, [DlTerm::Var(0), DlTerm::Var(0)])],
        }]);
        let mut db = Database::new();
        db.insert(EDGE, [c(0), c(1)]);
        db.insert(EDGE, [c(2), c(2)]);
        fixpoint(&mut db, &program);
        assert_eq!(db.predicate_len(LOOP), 1);
        assert!(db.contains(LOOP, &Row::from_slice(&[c(2)])));
    }

    #[test]
    fn validate_rejects_unrestricted_head() {
        let bad = Program::new(vec![Rule {
            head: Atom::new(PATH, [DlTerm::Var(0), DlTerm::Var(9)]),
            body: vec![Atom::new(EDGE, [DlTerm::Var(0), DlTerm::Var(1)])],
        }]);
        assert_eq!(bad.validate(), Err(0));
        assert!(transitive_closure_program().validate().is_ok());
    }

    #[test]
    fn query_conjunctive() {
        let mut db = Database::new();
        db.insert(EDGE, [c(0), c(1)]);
        db.insert(EDGE, [c(1), c(2)]);
        db.insert(EDGE, [c(2), c(3)]);
        // two-hop: edge(X,Y), edge(Y,Z) → (X,Z)
        let body = vec![
            Atom::new(EDGE, [DlTerm::Var(0), DlTerm::Var(1)]),
            Atom::new(EDGE, [DlTerm::Var(1), DlTerm::Var(2)]),
        ];
        let rows = query(&db, &body, &[0, 2]);
        assert_eq!(rows.len(), 2);
        assert!(rows.contains(&Row::from_slice(&[c(0), c(2)])));
        assert!(rows.contains(&Row::from_slice(&[c(1), c(3)])));
    }

    #[test]
    fn empty_database_and_program() {
        let mut db = Database::new();
        let stats = fixpoint(&mut db, &Program::default());
        assert_eq!(stats.rounds, 0);
        assert!(db.is_empty());
        let stats = fixpoint(&mut db, &transitive_closure_program());
        assert_eq!(stats.derived, 0);
    }

    #[test]
    fn database_accessors() {
        let mut db = Database::new();
        assert!(db.insert(EDGE, [c(0), c(1)]));
        assert!(!db.insert(EDGE, [c(0), c(1)]), "duplicate");
        assert_eq!(db.len(), 1);
        assert_eq!(db.rows(EDGE).count(), 1);
        assert_eq!(db.rows(PATH).count(), 0);
        assert!(db.contains(EDGE, &Row::from_slice(&[c(0), c(1)])));
        assert!(!db.contains(EDGE, &Row::from_slice(&[c(1), c(0)])));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Engine transitive closure equals a reference reachability
            /// computation on random graphs.
            #[test]
            fn closure_matches_reference(edges in proptest::collection::vec((0usize..12, 0usize..12), 0..40)) {
                let mut db = Database::new();
                for &(a, b) in &edges {
                    db.insert(EDGE, [c(a), c(b)]);
                }
                fixpoint(&mut db, &transitive_closure_program());

                // Reference: Floyd–Warshall-style reachability.
                let mut reach = [[false; 12]; 12];
                for &(a, b) in &edges {
                    reach[a][b] = true;
                }
                for k in 0..12 {
                    for i in 0..12 {
                        for j in 0..12 {
                            reach[i][j] |= reach[i][k] && reach[k][j];
                        }
                    }
                }
                let want: usize = reach.iter().flatten().filter(|&&b| b).count();
                prop_assert_eq!(db.predicate_len(PATH), want);
            }
        }
    }
}
