//! Crash-safe stores: a write-ahead journal around [`Store`] updates,
//! periodic checkpoints, and recovery.
//!
//! [`DurableStore`] wraps a [`Store`] so that every state-changing
//! operation is journaled *before* it is applied in memory (write-ahead
//! order). [`Store::recover`] rebuilds the store from the newest valid
//! checkpoint plus the journal tail; because the incremental maintenance
//! engines converge on the same `G∞` as a from-scratch saturation, a
//! recovered store answers every query exactly as the store that never
//! crashed (asserted by the crash-equivalence suite under
//! `--features failpoints`).
//!
//! What is journaled: insert/delete batches (with the dictionary terms
//! interned since the previous record, in interning order — replay
//! re-interns them and necessarily assigns the same sequential ids),
//! strategy switches and thread-count changes. Derived state (saturations,
//! schema closures, caches) is never journaled: it is recomputed from the
//! base graph, which is what makes recovery converge instead of having to
//! trust a possibly-torn derived structure.

use crate::snapshot::StoreReader;
use crate::store::{AnswerError, ReasoningConfig, Store, StoreStats};
use durability::{
    load_latest, prune_checkpoints, write_checkpoint, Checkpoint, DurabilityError, FsyncPolicy,
    Journal, JournalRecord, ScriptedOp,
};
use rdf_model::{Dictionary, Graph, Term, Triple, Vocab};
use rdfs::incremental::UpdateStats;
use sparql::Solutions;
use std::fmt;
use std::num::NonZeroUsize;
use std::path::{Path, PathBuf};

/// The journal file name inside a durability directory.
pub const JOURNAL_FILE: &str = "journal.wal";

/// One term-level operation of an atomic update script (the decoded form
/// of one `insert`/`delete` line of a `POST /update` body). Scripts are
/// applied by [`DurableStore::apply_script`] as a single journal record:
/// either every op lands, or none does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScriptOp {
    /// Insert the triple.
    Insert([Term; 3]),
    /// Delete the triple (a no-op if absent, mirroring the store).
    Delete([Term; 3]),
}

/// What an atomically applied script changed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScriptOutcome {
    /// Triples actually added to the base graph.
    pub added: usize,
    /// Triples actually removed from the base graph.
    pub removed: usize,
}

/// How many checkpoints [`DurableStore::checkpoint`] keeps on disk (the
/// newest, plus one fallback in case the newest is damaged).
const CHECKPOINTS_KEPT: usize = 2;

/// An error raised by durable-store operations or recovery.
#[derive(Debug)]
pub enum DurableError {
    /// The journal or a checkpoint failed (I/O or corruption).
    Durability(DurabilityError),
    /// The wrapped store operation failed (parse errors etc.).
    Answer(AnswerError),
    /// A checkpoint claims more journal records than the journal holds —
    /// the journal was truncated or swapped and recovery cannot trust it.
    CheckpointAhead {
        /// Records the checkpoint claims are reflected in it.
        seq: u64,
        /// Intact records actually present in the journal.
        available: u64,
    },
    /// A journaled or checkpointed strategy name is not a known
    /// [`ReasoningConfig`] (a file from a newer version, or tampering).
    UnknownConfig(String),
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Durability(e) => write!(f, "{e}"),
            DurableError::Answer(e) => write!(f, "{e}"),
            DurableError::CheckpointAhead { seq, available } => write!(
                f,
                "checkpoint covers {seq} journal records but only {available} exist — \
                 the journal is missing records"
            ),
            DurableError::UnknownConfig(name) => {
                write!(f, "unknown reasoning strategy in durable state: {name:?}")
            }
        }
    }
}

impl std::error::Error for DurableError {}

impl From<DurabilityError> for DurableError {
    fn from(e: DurabilityError) -> Self {
        DurableError::Durability(e)
    }
}
impl From<AnswerError> for DurableError {
    fn from(e: AnswerError) -> Self {
        DurableError::Answer(e)
    }
}
impl From<std::io::Error> for DurableError {
    fn from(e: std::io::Error) -> Self {
        DurableError::Durability(DurabilityError::Io(e))
    }
}

/// A [`Store`] whose updates survive crashes.
///
/// Every mutation goes through the journal first; [`DurableStore::open`]
/// (or [`Store::recover`] for a read-only rebuild) brings a directory
/// back to exactly the state the last acknowledged update left it in.
pub struct DurableStore {
    store: Store,
    journal: Journal,
    dir: PathBuf,
    /// Dictionary length already captured by the journal stream (baseline
    /// terms + every record's `new_terms`). The delta above this watermark
    /// rides along with the next journaled update.
    journaled_terms: usize,
}

impl DurableStore {
    /// Creates a fresh durable store in `dir` (created if missing). Fails
    /// if `dir` already holds a journal with records or a checkpoint —
    /// use [`DurableStore::open`] to resume an existing one.
    pub fn create(
        dir: impl Into<PathBuf>,
        config: ReasoningConfig,
        threads: NonZeroUsize,
        fsync: FsyncPolicy,
    ) -> Result<DurableStore, DurableError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut journal = Journal::open(dir.join(JOURNAL_FILE), fsync)?;
        if journal.seq() > 0 || load_latest(&dir)?.is_some() {
            return Err(DurableError::Durability(DurabilityError::Io(
                std::io::Error::new(
                    std::io::ErrorKind::AlreadyExists,
                    format!("{} already holds a durable store", dir.display()),
                ),
            )));
        }
        let store = Store::new_with_threads(config, threads);
        // Journal the initial strategy and thread count so a recovery that
        // has lost every checkpoint still converges from the empty
        // baseline (whose vocabulary terms are interned deterministically).
        journal.append(&JournalRecord::SetConfig {
            name: config.name(),
        })?;
        journal.append(&JournalRecord::SetThreads {
            threads: threads.get() as u32,
        })?;
        let journaled_terms = store.dictionary().len();
        Ok(DurableStore {
            store,
            journal,
            dir,
            journaled_terms,
        })
    }

    /// Opens the durable store in `dir`, recovering its state: newest
    /// valid checkpoint, journal tail replayed, torn tail truncated. A
    /// directory with neither journal nor checkpoint opens as an empty
    /// store under [`ReasoningConfig::None`].
    pub fn open(dir: impl Into<PathBuf>, fsync: FsyncPolicy) -> Result<DurableStore, DurableError> {
        let dir = dir.into();
        let store = recover_in(&dir)?;
        // `Journal::open` rescans and truncates any torn tail, so appends
        // resume exactly after the last record the recovery replayed.
        let journal = Journal::open(dir.join(JOURNAL_FILE), fsync)?;
        let journaled_terms = store.dictionary().len();
        Ok(DurableStore {
            store,
            journal,
            dir,
            journaled_terms,
        })
    }

    /// The wrapped store (read-only — mutations must go through the
    /// journaled methods).
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// The durability directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Records appended to the journal so far.
    pub fn seq(&self) -> u64 {
        self.journal.seq()
    }

    /// Size and state snapshot of the wrapped store.
    pub fn stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// Terms interned since the journal stream last captured the
    /// dictionary (query preparation may intern terms between updates;
    /// the next journaled update carries them), plus the watermark the
    /// capture covers. Both are read under *one* dictionary guard:
    /// concurrent readers keep interning query constants, and a term that
    /// slipped in between a delta and its watermark would never be
    /// journaled — misaligning every TermId on replay.
    fn dict_delta(&self) -> (Vec<Term>, usize) {
        let dict = self.store.dictionary();
        let delta = dict
            .iter()
            .skip(self.journaled_terms)
            .map(|(_, t)| t.clone())
            .collect();
        (delta, dict.len())
    }

    /// Parses Turtle and durably inserts every triple as one batch.
    /// Returns the document's triple count and the update stats.
    pub fn load_turtle(&mut self, text: &str) -> Result<(usize, UpdateStats), DurableError> {
        let mut staging = Graph::new();
        let n = rdf_io::parse_turtle(text, &mut self.store.dict_mut(), &mut staging)
            .map_err(AnswerError::Data)?;
        let triples: Vec<Triple> = staging.iter().collect();
        let stats = self.insert_batch(&triples)?;
        Ok((n, stats))
    }

    /// Parses N-Triples and durably inserts every triple as one batch.
    pub fn load_ntriples(&mut self, text: &str) -> Result<(usize, UpdateStats), DurableError> {
        let mut staging = Graph::new();
        let n = rdf_io::parse_ntriples(text, &mut self.store.dict_mut(), &mut staging)
            .map_err(AnswerError::Data)?;
        let triples: Vec<Triple> = staging.iter().collect();
        let stats = self.insert_batch(&triples)?;
        Ok((n, stats))
    }

    /// Durably inserts a batch of encoded triples: journal first, then
    /// apply (one maintenance pass where the strategy supports it).
    pub fn insert_batch(&mut self, triples: &[Triple]) -> Result<UpdateStats, DurableError> {
        let (new_terms, watermark) = self.dict_delta();
        self.journal.append(&JournalRecord::InsertBatch {
            new_terms,
            triples: triples.to_vec(),
        })?;
        self.journaled_terms = watermark;
        Ok(self.store.insert_batch(triples))
    }

    /// Durably deletes a batch of encoded triples.
    pub fn delete_batch(&mut self, triples: &[Triple]) -> Result<UpdateStats, DurableError> {
        let (new_terms, watermark) = self.dict_delta();
        self.journal.append(&JournalRecord::DeleteBatch {
            new_terms,
            triples: triples.to_vec(),
        })?;
        self.journaled_terms = watermark;
        Ok(self.store.delete_batch(triples))
    }

    /// Encodes three terms and durably inserts the triple.
    pub fn insert_terms(
        &mut self,
        s: &Term,
        p: &Term,
        o: &Term,
    ) -> Result<UpdateStats, DurableError> {
        let t = {
            let mut dict = self.store.dict_mut();
            Triple::new(dict.encode(s), dict.encode(p), dict.encode(o))
        };
        self.insert_batch(&[t])
    }

    /// Durably deletes the triple formed by three terms (a no-op when any
    /// term is unknown, mirroring [`Store::delete_terms`]).
    pub fn delete_terms(
        &mut self,
        s: &Term,
        p: &Term,
        o: &Term,
    ) -> Result<UpdateStats, DurableError> {
        let ids = {
            let dict = self.store.dictionary();
            (dict.get_id(s), dict.get_id(p), dict.get_id(o))
        };
        match ids {
            (Some(s), Some(p), Some(o)) => self.delete_batch(&[Triple::new(s, p, o)]),
            _ => Ok(UpdateStats {
                kind: rdfs::incremental::UpdateKind::Noop,
                added: 0,
                removed: 0,
                work: 0,
            }),
        }
    }

    /// Atomically and durably applies a whole update script: **one**
    /// journal record ([`JournalRecord::UpdateScript`]) carrying every op
    /// in request order plus the dictionary delta, then the in-memory
    /// apply. Write-ahead order holds for the script as a unit — if the
    /// journal append fails, *nothing* is applied and the base graph,
    /// epoch and reader-visible answers are untouched (terms the failed
    /// script interned ride along with the next journaled update, exactly
    /// like query constants).
    pub fn apply_script(&mut self, ops: &[ScriptOp]) -> Result<ScriptOutcome, DurableError> {
        self.apply_script_inner(ops, false)
    }

    /// [`DurableStore::apply_script`] with the per-record fsync deferred:
    /// the group-commit building block. The caller owes one
    /// [`DurableStore::sync_group`] for the drained group before
    /// acknowledging any of its scripts as durable.
    pub fn apply_script_deferred(
        &mut self,
        ops: &[ScriptOp],
    ) -> Result<ScriptOutcome, DurableError> {
        self.apply_script_inner(ops, true)
    }

    fn apply_script_inner(
        &mut self,
        ops: &[ScriptOp],
        deferred: bool,
    ) -> Result<ScriptOutcome, DurableError> {
        // Encode the whole script against the live dictionary first, so
        // the journal record is complete before any write-ahead I/O.
        // Deletes intern their terms too: harmless (an interned-but-absent
        // triple deletes as a no-op) and it keeps replay ids aligned.
        let encoded: Vec<ScriptedOp> = {
            let mut dict = self.store.dict_mut();
            let mut enc = |t: &[Term; 3]| {
                Triple::new(dict.encode(&t[0]), dict.encode(&t[1]), dict.encode(&t[2]))
            };
            ops.iter()
                .map(|op| match op {
                    ScriptOp::Insert(t) => ScriptedOp::Insert(enc(t)),
                    ScriptOp::Delete(t) => ScriptedOp::Delete(enc(t)),
                })
                .collect()
        };
        let (new_terms, watermark) = self.dict_delta();
        let record = JournalRecord::UpdateScript {
            new_terms,
            ops: encoded.clone(),
        };
        if deferred {
            self.journal.append_deferred(&record)?;
        } else {
            self.journal.append(&record)?;
        }
        self.journaled_terms = watermark;
        Ok(apply_scripted(&mut self.store, &encoded))
    }

    /// Settles a group of [`DurableStore::apply_script_deferred`] calls:
    /// one journal fsync under [`FsyncPolicy::Always`], a no-op under
    /// [`FsyncPolicy::Never`].
    pub fn sync_group(&mut self) -> Result<(), DurableError> {
        self.journal.sync_group()?;
        Ok(())
    }

    /// Durably switches reasoning strategy.
    pub fn set_config(&mut self, config: ReasoningConfig) -> Result<(), DurableError> {
        self.journal.append(&JournalRecord::SetConfig {
            name: config.name(),
        })?;
        self.store.set_config(config);
        Ok(())
    }

    /// Durably changes the worker-thread count.
    pub fn set_threads(&mut self, threads: NonZeroUsize) -> Result<(), DurableError> {
        self.journal.append(&JournalRecord::SetThreads {
            threads: threads.get() as u32,
        })?;
        self.store.set_threads(threads);
        Ok(())
    }

    /// Answers a SPARQL query (queries are not journaled; the terms they
    /// intern ride along with the next update record).
    pub fn answer_sparql(&self, sparql: &str) -> Result<Solutions, AnswerError> {
        self.store.answer_sparql(sparql)
    }

    /// Publishes the current epoch so [`StoreReader`] handles observe
    /// every update applied so far (see [`Store::snapshot`]). The server's
    /// writer thread calls this after each applied batch. Returns the
    /// published epoch.
    pub fn publish(&self) -> u64 {
        self.store.snapshot().epoch()
    }

    /// A cloneable concurrent read handle onto the wrapped store; see
    /// [`Store::reader`]. Readers only ever observe *published* epochs —
    /// i.e. states some committed prefix of the journal produced.
    pub fn reader(&self) -> StoreReader {
        self.store.reader()
    }

    /// Turns update-delta capture on or off (see
    /// [`Store::set_delta_tracking`]). Delta state is in-memory only — it
    /// is not journaled, and a recovered store starts with tracking off.
    pub fn set_delta_tracking(&mut self, on: bool) {
        self.store.set_delta_tracking(on);
    }

    /// Drains the delta captured since the last drain (see
    /// [`Store::take_delta`]).
    pub fn take_delta(&mut self) -> crate::store::StoreDelta {
        self.store.take_delta()
    }

    /// Writes a checkpoint of the current state, marks it in the journal,
    /// and prunes old checkpoints (the newest two are kept). Returns the
    /// checkpoint's path.
    ///
    /// The journal is forced to disk first, so a checkpoint never claims
    /// records the disk has not seen; the checkpoint file itself lands
    /// atomically (tmp + fsync + rename).
    pub fn checkpoint(&mut self) -> Result<PathBuf, DurableError> {
        self.journal.sync()?;
        let cp = Checkpoint {
            seq: self.journal.seq(),
            config: self.store.config().name(),
            threads: self.store.threads().get() as u32,
            terms: self
                .store
                .dictionary()
                .iter()
                .map(|(_, t)| t.clone())
                .collect(),
            triples: self.store.base_graph().iter().collect(),
        };
        let path = write_checkpoint(&self.dir, &cp)?;
        self.journal
            .append(&JournalRecord::CheckpointMark { seq: cp.seq })?;
        prune_checkpoints(&self.dir, CHECKPOINTS_KEPT)?;
        Ok(path)
    }

    /// Forces buffered journal appends to disk regardless of the fsync
    /// policy.
    pub fn sync(&mut self) -> Result<(), DurableError> {
        self.journal.sync()?;
        Ok(())
    }
}

impl Store {
    /// Rebuilds the store a crashed (or cleanly exited) [`DurableStore`]
    /// left in `dir`: loads the newest checkpoint that validates, replays
    /// the journal records it does not cover, ignores a torn final record,
    /// and re-runs maintenance so derived state (saturation, schema
    /// closure) converges on the same `G∞` the live store had.
    ///
    /// Read-only: the journal is not opened for appending and nothing in
    /// `dir` is modified. Use [`DurableStore::open`] to resume journaling.
    pub fn recover(dir: impl AsRef<Path>) -> Result<Store, DurableError> {
        recover_in(dir.as_ref())
    }
}

/// The recovery algorithm shared by [`Store::recover`] and
/// [`DurableStore::open`].
fn recover_in(dir: &Path) -> Result<Store, DurableError> {
    let replay = Journal::replay(dir.join(JOURNAL_FILE))?;
    let (mut store, start) = match load_latest(dir)? {
        Some((cp, _path)) => {
            let seq = cp.seq;
            if seq > replay.records.len() as u64 {
                return Err(DurableError::CheckpointAhead {
                    seq,
                    available: replay.records.len() as u64,
                });
            }
            (store_from_checkpoint(cp)?, seq as usize)
        }
        // No usable checkpoint: the empty baseline. Its vocabulary terms
        // are interned deterministically, so journaled term ids line up.
        None => (Store::new(ReasoningConfig::None), 0),
    };
    for record in &replay.records[start..] {
        apply_record(&mut store, record)?;
    }
    Ok(store)
}

fn store_from_checkpoint(cp: Checkpoint) -> Result<Store, DurableError> {
    let config = ReasoningConfig::from_name(&cp.config)
        .ok_or_else(|| DurableError::UnknownConfig(cp.config.clone()))?;
    let threads = NonZeroUsize::new(cp.threads.max(1) as usize).expect("max(1) is non-zero");
    // Re-interning the checkpointed terms in id order reproduces the ids
    // the checkpointed triples were encoded against.
    let mut dict = Dictionary::new();
    for term in &cp.terms {
        dict.encode(term);
    }
    let vocab = Vocab::intern(&mut dict);
    let mut graph = Graph::new();
    for t in &cp.triples {
        graph.insert(*t);
    }
    Ok(Store::from_parts_with_threads(
        dict, vocab, graph, config, threads,
    ))
}

/// Applies one journal record to a store being recovered. The write-ahead
/// discipline makes this idempotent at the convergence level: inserting a
/// present triple or deleting an absent one is a maintained no-op.
fn apply_record(store: &mut Store, record: &JournalRecord) -> Result<(), DurableError> {
    match record {
        JournalRecord::InsertBatch { new_terms, triples } => {
            for term in new_terms {
                store.dict_mut().encode(term);
            }
            store.insert_batch(triples);
        }
        JournalRecord::DeleteBatch { new_terms, triples } => {
            for term in new_terms {
                store.dict_mut().encode(term);
            }
            store.delete_batch(triples);
        }
        JournalRecord::SetConfig { name } => {
            let config = ReasoningConfig::from_name(name)
                .ok_or_else(|| DurableError::UnknownConfig(name.clone()))?;
            store.set_config(config);
        }
        JournalRecord::SetThreads { threads } => {
            let threads =
                NonZeroUsize::new((*threads).max(1) as usize).expect("max(1) is non-zero");
            store.set_threads(threads);
        }
        JournalRecord::CheckpointMark { .. } => {}
        JournalRecord::UpdateScript { new_terms, ops } => {
            for term in new_terms {
                store.dict_mut().encode(term);
            }
            apply_scripted(store, ops);
        }
    }
    Ok(())
}

/// Applies an encoded script to the store, preserving request order.
/// Consecutive same-kind ops run as one batch (one maintenance pass), so
/// a pure-insert script costs the same as an [`JournalRecord::InsertBatch`]
/// while an interleaved script still nets correctly — shared between the
/// live write path and journal replay so both walk the identical code.
fn apply_scripted(store: &mut Store, ops: &[ScriptedOp]) -> ScriptOutcome {
    let mut outcome = ScriptOutcome::default();
    let mut i = 0;
    let mut run: Vec<Triple> = Vec::new();
    while i < ops.len() {
        run.clear();
        match ops[i] {
            ScriptedOp::Insert(_) => {
                while let Some(ScriptedOp::Insert(t)) = ops.get(i) {
                    run.push(*t);
                    i += 1;
                }
                outcome.added += store.insert_batch(&run).added;
            }
            ScriptedOp::Delete(_) => {
                while let Some(ScriptedOp::Delete(t)) = ops.get(i) {
                    run.push(*t);
                    i += 1;
                }
                outcome.removed += store.delete_batch(&run).removed;
            }
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdfs::incremental::MaintenanceAlgorithm;

    const ZOO: &str = r#"
        @prefix ex: <http://ex/> .
        @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
        ex:Cat rdfs:subClassOf ex:Mammal .
        ex:Mammal rdfs:subClassOf ex:Animal .
        ex:Tom a ex:Cat .
    "#;
    const MAMMALS: &str = "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x a ex:Mammal }";

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("webreason-durable-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sat(alg: MaintenanceAlgorithm) -> ReasoningConfig {
        ReasoningConfig::Saturation(alg)
    }

    #[test]
    fn journal_only_recovery_round_trips() {
        let dir = tmpdir("journal-only");
        {
            let mut ds = DurableStore::create(
                &dir,
                sat(MaintenanceAlgorithm::DRed),
                NonZeroUsize::MIN,
                FsyncPolicy::Always,
            )
            .unwrap();
            ds.load_turtle(ZOO).unwrap();
            ds.insert_terms(
                &Term::iri("http://ex/Felix"),
                &Term::iri(rdf_model::vocab::RDF_TYPE),
                &Term::iri("http://ex/Cat"),
            )
            .unwrap();
            ds.delete_terms(
                &Term::iri("http://ex/Tom"),
                &Term::iri(rdf_model::vocab::RDF_TYPE),
                &Term::iri("http://ex/Cat"),
            )
            .unwrap();
            assert_eq!(ds.answer_sparql(MAMMALS).unwrap().len(), 1, "Felix only");
        }
        let rec = Store::recover(&dir).unwrap();
        assert_eq!(rec.config(), sat(MaintenanceAlgorithm::DRed));
        assert_eq!(rec.answer_sparql(MAMMALS).unwrap().len(), 1);
        assert_eq!(rec.export_ntriples().lines().count(), 3, "3 + Felix - Tom");
    }

    #[test]
    fn checkpoint_bounds_replay_and_recovers() {
        let dir = tmpdir("checkpointed");
        {
            let mut ds = DurableStore::create(
                &dir,
                sat(MaintenanceAlgorithm::Counting),
                NonZeroUsize::MIN,
                FsyncPolicy::Never,
            )
            .unwrap();
            ds.load_turtle(ZOO).unwrap();
            let path = ds.checkpoint().unwrap();
            assert!(path.exists());
            // post-checkpoint tail
            ds.insert_terms(
                &Term::iri("http://ex/Rex"),
                &Term::iri(rdf_model::vocab::RDF_TYPE),
                &Term::iri("http://ex/Mammal"),
            )
            .unwrap();
            ds.sync().unwrap();
        }
        let rec = Store::recover(&dir).unwrap();
        assert_eq!(rec.answer_sparql(MAMMALS).unwrap().len(), 2, "Tom + Rex");
        // reopening for append keeps journaling consistent
        let mut ds = DurableStore::open(&dir, FsyncPolicy::Always).unwrap();
        ds.insert_terms(
            &Term::iri("http://ex/Ana"),
            &Term::iri(rdf_model::vocab::RDF_TYPE),
            &Term::iri("http://ex/Mammal"),
        )
        .unwrap();
        let rec = Store::recover(&dir).unwrap();
        assert_eq!(rec.answer_sparql(MAMMALS).unwrap().len(), 3);
    }

    #[test]
    fn torn_journal_tail_recovers_to_the_committed_prefix() {
        let dir = tmpdir("torn-tail");
        {
            let mut ds = DurableStore::create(
                &dir,
                sat(MaintenanceAlgorithm::Recompute),
                NonZeroUsize::MIN,
                FsyncPolicy::Always,
            )
            .unwrap();
            ds.load_turtle(ZOO).unwrap();
            ds.insert_terms(
                &Term::iri("http://ex/Rex"),
                &Term::iri(rdf_model::vocab::RDF_TYPE),
                &Term::iri("http://ex/Mammal"),
            )
            .unwrap();
        }
        // Tear the final record (crash mid-append).
        let path = dir.join(JOURNAL_FILE);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let rec = Store::recover(&dir).unwrap();
        assert_eq!(rec.answer_sparql(MAMMALS).unwrap().len(), 1, "Rex lost");
        // …and the torn tail does not poison further appends.
        let mut ds = DurableStore::open(&dir, FsyncPolicy::Always).unwrap();
        ds.insert_terms(
            &Term::iri("http://ex/Rex"),
            &Term::iri(rdf_model::vocab::RDF_TYPE),
            &Term::iri("http://ex/Mammal"),
        )
        .unwrap();
        let rec = Store::recover(&dir).unwrap();
        assert_eq!(rec.answer_sparql(MAMMALS).unwrap().len(), 2);
    }

    #[test]
    fn config_and_thread_changes_are_durable() {
        let dir = tmpdir("reconfig");
        {
            let mut ds = DurableStore::create(
                &dir,
                ReasoningConfig::None,
                NonZeroUsize::MIN,
                FsyncPolicy::Always,
            )
            .unwrap();
            ds.load_turtle(ZOO).unwrap();
            ds.set_config(ReasoningConfig::Reformulation).unwrap();
            ds.set_threads(NonZeroUsize::new(2).unwrap()).unwrap();
        }
        let rec = Store::recover(&dir).unwrap();
        assert_eq!(rec.config(), ReasoningConfig::Reformulation);
        assert_eq!(rec.threads().get(), 2);
    }

    #[test]
    fn update_script_is_one_record_and_order_sensitive() {
        let dir = tmpdir("script");
        let mut ds = DurableStore::create(
            &dir,
            sat(MaintenanceAlgorithm::DRed),
            NonZeroUsize::MIN,
            FsyncPolicy::Always,
        )
        .unwrap();
        ds.load_turtle(ZOO).unwrap();
        let seq_before = ds.seq();
        let cat = |n: &str| {
            [
                Term::iri(format!("http://ex/{n}")),
                Term::iri(rdf_model::vocab::RDF_TYPE),
                Term::iri("http://ex/Cat"),
            ]
        };
        // insert Felix, delete Tom, insert-then-delete Ghost (nets absent).
        let outcome = ds
            .apply_script(&[
                ScriptOp::Insert(cat("Felix")),
                ScriptOp::Delete(cat("Tom")),
                ScriptOp::Insert(cat("Ghost")),
                ScriptOp::Delete(cat("Ghost")),
            ])
            .unwrap();
        assert_eq!(ds.seq(), seq_before + 1, "whole script is one record");
        // Counts include entailed triples (x a Cat ⊨ Mammal, Animal), the
        // same store-level semantics the per-op path reported.
        assert_eq!((outcome.added, outcome.removed), (6, 6));
        assert_eq!(ds.answer_sparql(MAMMALS).unwrap().len(), 1, "Felix only");
        // Replay walks the same code path and converges identically.
        let rec = Store::recover(&dir).unwrap();
        assert_eq!(rec.export_ntriples(), ds.store().export_ntriples());
        assert_eq!(
            rec.answer_sparql(MAMMALS).unwrap().as_set(),
            ds.answer_sparql(MAMMALS).unwrap().as_set()
        );
    }

    #[test]
    fn deferred_scripts_recover_after_sync_group() {
        let dir = tmpdir("script-deferred");
        let mut ds = DurableStore::create(
            &dir,
            sat(MaintenanceAlgorithm::Counting),
            NonZeroUsize::MIN,
            FsyncPolicy::Always,
        )
        .unwrap();
        let rex = [
            Term::iri("http://ex/Rex"),
            Term::iri(rdf_model::vocab::RDF_TYPE),
            Term::iri("http://ex/Mammal"),
        ];
        let ana = [
            Term::iri("http://ex/Ana"),
            Term::iri(rdf_model::vocab::RDF_TYPE),
            Term::iri("http://ex/Mammal"),
        ];
        ds.apply_script_deferred(&[ScriptOp::Insert(rex)]).unwrap();
        ds.apply_script_deferred(&[ScriptOp::Insert(ana)]).unwrap();
        ds.sync_group().unwrap();
        let rec = Store::recover(&dir).unwrap();
        assert_eq!(rec.answer_sparql(MAMMALS).unwrap().len(), 2);
    }

    #[test]
    fn create_refuses_an_existing_store() {
        let dir = tmpdir("exists");
        DurableStore::create(
            &dir,
            ReasoningConfig::None,
            NonZeroUsize::MIN,
            FsyncPolicy::Always,
        )
        .unwrap();
        assert!(DurableStore::create(
            &dir,
            ReasoningConfig::None,
            NonZeroUsize::MIN,
            FsyncPolicy::Always,
        )
        .is_err());
    }

    #[test]
    fn recovery_matches_a_never_crashed_reference() {
        // The in-process half of the crash-equivalence argument: recovery
        // from (checkpoint + journal) equals the live store, answers and
        // saturation included. The process-kill half lives in
        // tests/integration_crash.rs behind --features failpoints.
        let dir = tmpdir("reference");
        let mut live = DurableStore::create(
            &dir,
            sat(MaintenanceAlgorithm::DRed),
            NonZeroUsize::MIN,
            FsyncPolicy::Always,
        )
        .unwrap();
        live.load_turtle(ZOO).unwrap();
        live.checkpoint().unwrap();
        live.load_turtle("@prefix ex: <http://ex/> .\nex:Rex a ex:Mammal .")
            .unwrap();
        live.delete_terms(
            &Term::iri("http://ex/Tom"),
            &Term::iri(rdf_model::vocab::RDF_TYPE),
            &Term::iri("http://ex/Cat"),
        )
        .unwrap();
        let rec = Store::recover(live.dir()).unwrap();
        assert_eq!(rec.export_ntriples(), live.store().export_ntriples());
        assert_eq!(rec.stats(), live.stats());
        assert_eq!(
            rec.answer_sparql(MAMMALS).unwrap().as_set(),
            live.answer_sparql(MAMMALS).unwrap().as_set()
        );
    }
}
