//! **Figure 3 reproduction** — "Saturation thresholds: quantifying the
//! amortization of saturation".
//!
//! For each LUBM query Q1–Q10, measures the cost profile and prints the
//! five thresholds (saturation, instance insertion/deletion, schema
//! insertion/deletion) as a table and a log-scale ASCII bar chart — the
//! same series the paper's Fig. 3 plots on a log axis — plus the headline
//! observation: the spread in orders of magnitude. Since updates against
//! a journaled store pay a write-ahead append before maintenance runs,
//! the report also measures that per-update journal overhead under both
//! fsync policies.
//!
//! ```sh
//! cargo run --release -p bench --bin fig3 [tiny|small|default|large] [recompute|dred|counting]
//! ```

use bench::{
    emit_json, fmt_secs, journal_append_cost, log_bar, lubm_workload, render_table, Scale,
};
use durability::FsyncPolicy;
use webreason_core::cost::profile;
use webreason_core::threshold::{compute_thresholds, spread_orders_of_magnitude, Threshold};
use webreason_core::MaintenanceAlgorithm;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = match args.first() {
        None => Scale::Default,
        Some(s) => match Scale::parse(s) {
            Some(scale) => scale,
            None => {
                eprintln!("error: unknown scale {s:?} (expected tiny|small|default|large)");
                std::process::exit(2);
            }
        },
    };
    let algo = match args.get(1).map(String::as_str) {
        None | Some("counting") => MaintenanceAlgorithm::Counting,
        Some("dred") => MaintenanceAlgorithm::DRed,
        Some("recompute") => MaintenanceAlgorithm::Recompute,
        Some(other) => {
            eprintln!(
                "error: unknown maintenance algorithm {other:?} \
                 (expected recompute|dred|counting)"
            );
            std::process::exit(2);
        }
    };

    // Collect an observability snapshot for the whole run: the profiling
    // below drives saturation, maintenance and both query paths through
    // the instrumented engines.
    let reg = obs::global();
    reg.reset();

    eprintln!("generating LUBM workload ({scale:?})…");
    let (ds, qs) = lubm_workload(scale);
    eprintln!(
        "profiling {} triples × {} queries (algo: {})…",
        ds.graph.len(),
        qs.len(),
        algo.name()
    );
    let prof = profile(&ds.graph, &ds.vocab, &qs, algo, 5);

    // Replay the workload through the instrumented `Store` so the metrics
    // snapshot covers both query paths (`core.answer.query` over G∞ and
    // `sparql.union.total` over G) plus the maintenance histograms —
    // that is what `ObservedCosts::from_snapshot` derives thresholds from.
    eprintln!("replaying queries through instrumented stores…");
    let one = std::num::NonZeroUsize::new(1).expect("non-zero");
    let mut sat_store = webreason_core::Store::from_parts_with_threads(
        ds.dict.clone(),
        ds.vocab,
        ds.graph.clone(),
        webreason_core::ReasoningConfig::Saturation(algo),
        one,
    );
    let ref_store = webreason_core::Store::from_parts_with_threads(
        ds.dict.clone(),
        ds.vocab,
        ds.graph.clone(),
        webreason_core::ReasoningConfig::Reformulation,
        one,
    );
    let int_store = webreason_core::Store::from_parts_with_threads(
        ds.dict.clone(),
        ds.vocab,
        ds.graph.clone(),
        webreason_core::ReasoningConfig::Interval,
        one,
    );
    for (name, q) in &qs {
        let mut q = q.clone();
        q.distinct = true;
        let a = sat_store.answer(&q).expect("saturated answers");
        let b = ref_store.answer(&q).expect("reformulated answers");
        let c = int_store.answer(&q).expect("interval answers");
        assert_eq!(a.len(), b.len(), "{name}: both paths agree");
        assert_eq!(a.len(), c.len(), "{name}: interval path agrees");
    }
    let instance_sample: Vec<rdf_model::Triple> = ds
        .graph
        .iter()
        .filter(|t| !ds.vocab.is_schema_property(t.p))
        .take(5)
        .collect();
    for t in &instance_sample {
        sat_store.delete(t);
        sat_store.insert(*t);
    }

    println!("== Figure 3: saturation thresholds ==");
    println!(
        "dataset: {} base / {} saturated triples; saturation {}; maintenance: {}",
        prof.base_triples,
        prof.saturated_triples,
        fmt_secs(prof.saturation_time),
        prof.maintenance_algorithm,
    );
    println!(
        "maintenance per update: inst-ins {} | inst-del {} | schema-ins {} | schema-del {}\n",
        fmt_secs(prof.maintenance.instance_insert),
        fmt_secs(prof.maintenance.instance_delete),
        fmt_secs(prof.maintenance.schema_insert),
        fmt_secs(prof.maintenance.schema_delete),
    );

    let thresholds = compute_thresholds(&prof);
    let fmt_t = |t: Threshold| t.to_string();
    let rows: Vec<Vec<String>> = thresholds
        .iter()
        .map(|qt| {
            vec![
                qt.name.clone(),
                fmt_t(qt.saturation),
                fmt_t(qt.instance_insert),
                fmt_t(qt.instance_delete),
                fmt_t(qt.schema_insert),
                fmt_t(qt.schema_delete),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "query",
                "saturation",
                "inst-insert",
                "inst-delete",
                "schema-insert",
                "schema-delete"
            ],
            &rows
        )
    );

    println!("log-scale view (one bar per threshold, Fig. 3 legend order):");
    for qt in &thresholds {
        println!("{}", qt.name);
        for (label, t) in qt.series() {
            println!("  {:<20} {}", label, log_bar(t.runs(), 40));
        }
    }

    let spread = spread_orders_of_magnitude(&thresholds);
    println!("\nthreshold spread: {spread:.1} orders of magnitude across queries and update kinds");
    println!(
        "(the paper reports \"up to 7 orders of magnitude\" on its PostgreSQL-backed testbed)"
    );

    let journal_overhead = measure_journal_overhead();
    if let Some(o) = &journal_overhead {
        println!(
            "journal overhead per update: {} (fsync always) | {} (fsync never)",
            fmt_secs(o.append_always_s),
            fmt_secs(o.append_never_s),
        );
    }

    // Snapshot what the instrumented engines observed during the run, and
    // cross-check Fig. 3 against it: thresholds recomputed from measured
    // per-operation costs rather than the profiler's stopwatch.
    let snapshot = reg.snapshot();
    let observed = webreason_core::ObservedCosts::from_snapshot(&snapshot);
    if let Some(t) = webreason_core::observed_thresholds(&observed) {
        println!("\nobserved-cost thresholds (from the metrics snapshot):");
        for (label, threshold) in t.series() {
            println!("  {:<20} {}", label, threshold);
        }
    }
    let interval = webreason_core::interval_thresholds(&observed);
    if let Some(t) = &interval {
        println!("interval-strategy thresholds (third technique, same snapshot):");
        println!(
            "  {:<20} {}",
            "reencode-vs-refo", t.reencode_vs_reformulation
        );
        println!("  {:<20} {}", "sat-vs-interval", t.saturation_vs_interval);
    }

    #[derive(serde::Serialize)]
    struct Fig3Report<'a> {
        scale: String,
        profile: &'a webreason_core::cost::CostProfile,
        thresholds: &'a [webreason_core::threshold::QueryThresholds],
        spread_orders_of_magnitude: f64,
        journal_overhead: Option<JournalOverhead>,
        observed_costs: webreason_core::ObservedCosts,
        interval_thresholds: Option<webreason_core::IntervalThresholds>,
        metrics: &'a obs::MetricsSnapshot,
    }
    let ok = emit_json(
        "fig3",
        &Fig3Report {
            scale: format!("{scale:?}"),
            profile: &prof,
            thresholds: &thresholds,
            spread_orders_of_magnitude: spread,
            journal_overhead,
            observed_costs: observed,
            interval_thresholds: interval,
            metrics: &snapshot,
        },
    ) && emit_json("metrics", &snapshot);
    if !ok {
        std::process::exit(1);
    }
}

#[derive(serde::Serialize)]
struct JournalOverhead {
    append_always_s: f64,
    append_never_s: f64,
}

/// Per-append journal cost under both fsync policies; `None` (with a
/// message) when the filesystem refuses, rather than aborting the run.
fn measure_journal_overhead() -> Option<JournalOverhead> {
    let measure = |fsync| match journal_append_cost(fsync, 200) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("could not measure journal overhead: {e}");
            None
        }
    };
    Some(JournalOverhead {
        append_always_s: measure(FsyncPolicy::Always)?,
        append_never_s: measure(FsyncPolicy::Never)?,
    })
}
