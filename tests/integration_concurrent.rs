//! Snapshot-isolation oracle suite.
//!
//! The property under test: **while a writer applies an update storm,
//! every answer a concurrent reader observes equals `q(G∞)` of some
//! committed prefix of the update sequence** — never a torn state, never
//! a rolled-back one — and the epochs a reader observes never go
//! backwards.
//!
//! Mechanics: the update sequence is generated from a fixed seed, so the
//! oracle can be computed ahead of time by replaying the same batches on
//! a sequential store and recording `q`'s answers after each prefix
//! (answers are compared as rendered term strings, which are stable even
//! though concurrent interning assigns different `TermId`s). The writer
//! then replays the batches against the live store, publishing after each
//! one and logging the epoch it published; reader threads hammer the
//! query throughout and log every `(epoch, answers)` pair they see. After
//! the join, each observation must match the oracle's answer set for its
//! epoch exactly.

use rdf_model::Term;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use webreason_core::{MaintenanceAlgorithm, ReasoningConfig, Store};

const SCHEMA: &str = r#"
    @prefix ex: <http://ex/> .
    @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
    ex:Cat rdfs:subClassOf ex:Mammal .
    ex:Mammal rdfs:subClassOf ex:Animal .
"#;
const ANIMALS: &str = "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x a ex:Animal }";

/// Batches per scenario — enough churn for readers to land mid-storm.
const BATCHES: usize = 32;

#[derive(Debug, Clone)]
enum Op {
    Insert(Term, Term, Term),
    Delete(Term, Term, Term),
}

/// A tiny deterministic PRNG (64-bit LCG, high bits): the whole suite
/// must replay identically from the seed.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn rdf_type() -> Term {
    Term::iri(rdf_model::vocab::RDF_TYPE)
}

fn sub_class_of() -> Term {
    Term::iri(rdf_model::vocab::RDFS_SUB_CLASS_OF)
}

/// The seeded update storm: instance inserts into the `Cat`/`Mammal`
/// hierarchy, deletions of previously-inserted triples, and a periodic
/// schema extension (a fresh subclass) so the schema-swap path runs too.
fn generate_batches(seed: u64) -> Vec<Vec<Op>> {
    let mut rng = Lcg(seed);
    let mut live: Vec<(Term, Term, Term)> = Vec::new();
    let mut batches = Vec::with_capacity(BATCHES);
    for i in 0..BATCHES {
        let mut batch = Vec::new();
        if i % 8 == 7 {
            // Schema churn: a new class under ex:Animal plus one member.
            let class = Term::iri(format!("http://ex/Breed{i}"));
            batch.push(Op::Insert(
                class.clone(),
                sub_class_of(),
                Term::iri("http://ex/Animal"),
            ));
            let ind = Term::iri(format!("http://ex/breedling{i}"));
            live.push((ind.clone(), rdf_type(), class.clone()));
            batch.push(Op::Insert(ind, rdf_type(), class));
        } else {
            for _ in 0..=rng.below(2) {
                let class = if rng.below(2) == 0 { "Cat" } else { "Mammal" };
                let ind = Term::iri(format!("http://ex/ind{}", rng.below(24)));
                let class = Term::iri(format!("http://ex/{class}"));
                live.push((ind.clone(), rdf_type(), class.clone()));
                batch.push(Op::Insert(ind, rdf_type(), class));
            }
            if !live.is_empty() && rng.below(3) == 0 {
                let victim = live.swap_remove(rng.below(live.len() as u64) as usize);
                batch.push(Op::Delete(victim.0, victim.1, victim.2));
            }
        }
        batches.push(batch);
    }
    batches
}

fn apply_batch(store: &mut Store, batch: &[Op]) {
    for op in batch {
        match op {
            Op::Insert(s, p, o) => {
                store.insert_terms(s, p, o);
            }
            Op::Delete(s, p, o) => {
                store.delete_terms(s, p, o);
            }
        }
    }
}

fn seeded_store(config: ReasoningConfig) -> Store {
    let mut store = Store::new_with_threads(config, NonZeroUsize::MIN);
    store.load_turtle(SCHEMA).expect("schema loads");
    store
}

/// Replays the storm sequentially and records `q`'s rendered answers
/// after each committed prefix (index 0 = schema only).
fn oracle_answers(config: ReasoningConfig, batches: &[Vec<Op>]) -> Vec<Vec<String>> {
    let mut store = seeded_store(config);
    let mut answers = Vec::with_capacity(batches.len() + 1);
    let observe = |store: &Store| {
        store
            .answer_sparql(ANIMALS)
            .expect("oracle answers")
            .to_strings(&store.dictionary())
    };
    answers.push(observe(&store));
    for batch in batches {
        apply_batch(&mut store, batch);
        answers.push(observe(&store));
    }
    answers
}

/// One reader's log: every `(epoch, answers)` it observed.
type Observations = Vec<(u64, Vec<String>)>;

/// Runs the storm with `n_readers` concurrent readers and checks every
/// observation against the committed-prefix oracle.
fn run_scenario(config: ReasoningConfig, n_readers: usize, seed: u64) {
    let batches = generate_batches(seed);
    let expected = oracle_answers(config, &batches);

    let mut store = seeded_store(config);
    // Epoch -> prefix index, recorded by the writer as it publishes. Two
    // prefixes can share an epoch only when the later batch was a no-op,
    // in which case their oracle answers agree as well.
    let mut published: Vec<(u64, usize)> = vec![(store.snapshot().epoch(), 0)];

    let done = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..n_readers)
        .map(|_| {
            let reader = store.reader();
            let done = Arc::clone(&done);
            std::thread::spawn(move || -> Observations {
                let mut log = Observations::new();
                let mut last_epoch = 0u64;
                loop {
                    let (sols, _stats, epoch) =
                        reader.answer_sparql(ANIMALS).expect("reader answers");
                    assert!(
                        epoch >= last_epoch,
                        "epoch went backwards: {last_epoch} -> {epoch}"
                    );
                    last_epoch = epoch;
                    log.push((epoch, sols.to_strings(&reader.dictionary())));
                    if done.load(Ordering::SeqCst) {
                        return log;
                    }
                }
            })
        })
        .collect();

    for (i, batch) in batches.iter().enumerate() {
        apply_batch(&mut store, batch);
        published.push((store.snapshot().epoch(), i + 1));
    }
    done.store(true, Ordering::SeqCst);

    // epoch -> oracle answers for that committed prefix.
    let by_epoch: std::collections::HashMap<u64, &Vec<String>> = published
        .iter()
        .map(|&(epoch, prefix)| (epoch, &expected[prefix]))
        .collect();

    let mut total = 0usize;
    for handle in readers {
        let log = handle.join().expect("reader thread");
        assert!(!log.is_empty(), "reader observed nothing");
        total += log.len();
        for (epoch, answers) in log {
            let want = by_epoch.get(&epoch).unwrap_or_else(|| {
                panic!("observed epoch {epoch} that the writer never published")
            });
            assert_eq!(
                &&answers, want,
                "answers at epoch {epoch} match no committed prefix"
            );
        }
    }
    // The final prefix must be reachable: the last thing every reader saw
    // is the fully-applied storm (done was set after the last publish).
    assert!(total >= n_readers, "every reader logs at least once");
}

const CONFIGS: [ReasoningConfig; 3] = [
    ReasoningConfig::Saturation(MaintenanceAlgorithm::Counting),
    ReasoningConfig::Reformulation,
    ReasoningConfig::Adaptive,
];

#[test]
fn single_reader_sees_only_committed_prefixes() {
    for (i, config) in CONFIGS.into_iter().enumerate() {
        run_scenario(config, 1, 0xC0FFEE + i as u64);
    }
}

#[test]
fn two_readers_see_only_committed_prefixes() {
    for (i, config) in CONFIGS.into_iter().enumerate() {
        run_scenario(config, 2, 0xBEEF + i as u64);
    }
}

#[test]
fn four_readers_see_only_committed_prefixes() {
    for (i, config) in CONFIGS.into_iter().enumerate() {
        run_scenario(config, 4, 0xF00D + i as u64);
    }
}

/// A reader that holds one snapshot across several queries gets one
/// frozen world: repeated evaluation mid-storm is bit-stable.
#[test]
fn a_held_snapshot_is_immutable_mid_storm() {
    let batches = generate_batches(0xDECADE);
    let mut store = seeded_store(ReasoningConfig::Saturation(MaintenanceAlgorithm::DRed));
    let reader = store.reader();

    let snap = reader.snapshot();
    let q = reader.prepare(ANIMALS).expect("parses");
    let (before, _) = snap.answer(&q).expect("answers");
    let before = before.to_strings(&reader.dictionary());

    for batch in &batches {
        apply_batch(&mut store, batch);
        store.snapshot(); // publish: later readers see it, `snap` must not
    }

    let (after, _) = snap.answer(&q).expect("still answers");
    assert_eq!(after.to_strings(&reader.dictionary()), before);
    // A fresh snapshot does observe the storm.
    let fresh_epoch = reader.snapshot().epoch();
    assert!(fresh_epoch > snap.epoch(), "publishes advanced the epoch");
}
