//! Criterion bench behind T-SAT: graph saturation, specialised single-pass
//! vs naive fix-point vs Datalog translation, across scales.

use bench::Scale;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdfs::{saturate, saturate_naive, saturate_parallel};
use std::hint::black_box;
use std::num::NonZeroUsize;
use workload::lubm::generate;

fn bench_saturation(c: &mut Criterion) {
    let mut group = c.benchmark_group("saturation");
    group.sample_size(10);
    for scale in [Scale::Tiny, Scale::Small] {
        let ds = generate(&scale.config());
        let triples = ds.graph.len();
        group.bench_with_input(
            BenchmarkId::new("specialised", triples),
            &ds,
            |b, ds| b.iter(|| black_box(saturate(&ds.graph, &ds.vocab))),
        );
        group.bench_with_input(BenchmarkId::new("naive", triples), &ds, |b, ds| {
            b.iter(|| black_box(saturate_naive(&ds.graph, &ds.vocab)))
        });
        group.bench_with_input(BenchmarkId::new("datalog", triples), &ds, |b, ds| {
            b.iter(|| black_box(datalog::saturate_via_datalog(&ds.graph, &ds.vocab)))
        });
    }
    group.finish();
}

/// A-PAR ablation: the derive-phase thread sweep.
fn bench_parallel(c: &mut Criterion) {
    let ds = generate(&Scale::Small.config());
    let mut group = c.benchmark_group("saturation/parallel");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            let t = NonZeroUsize::new(t).unwrap();
            b.iter(|| black_box(saturate_parallel(&ds.graph, &ds.vocab, t)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_saturation, bench_parallel);
criterion_main!(benches);
