//! Criterion bench behind T-MAINT: saturation maintenance per update
//! kind × algorithm. Each iteration deletes and re-inserts a sampled
//! triple, so the maintained state is invariant across iterations.

use bench::Scale;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdf_model::Triple;
use rdfs::incremental::MaintenanceAlgorithm;
use std::hint::black_box;
use workload::lubm::generate;

fn bench_maintenance(c: &mut Criterion) {
    let ds = generate(&Scale::Tiny.config());
    let instance: Triple = ds
        .graph
        .iter()
        .find(|t| !ds.vocab.is_schema_property(t.p) && t.p != ds.vocab.rdf_type)
        .expect("has instance triples");
    let schema: Triple = ds
        .graph
        .iter()
        .find(|t| ds.vocab.is_schema_property(t.p))
        .expect("has schema triples");

    let mut group = c.benchmark_group("maintenance");
    group.sample_size(20);
    for algo in MaintenanceAlgorithm::ALL {
        let mut m = algo.build(ds.graph.clone(), ds.vocab);
        group.bench_function(BenchmarkId::new("instance-roundtrip", algo.name()), |b| {
            b.iter(|| {
                black_box(m.delete(&instance));
                black_box(m.insert(instance));
            })
        });
        let mut m = algo.build(ds.graph.clone(), ds.vocab);
        group.bench_function(BenchmarkId::new("schema-roundtrip", algo.name()), |b| {
            b.iter(|| {
                black_box(m.delete(&schema));
                black_box(m.insert(schema));
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_maintenance);
criterion_main!(benches);
