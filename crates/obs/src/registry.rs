//! The metrics [`Registry`]: counters, histograms and hierarchical spans
//! behind one handle, global by default and resettable under test.
//!
//! Instrumentation sites use `&'static str` names following the
//! `subsystem.operation.unit` scheme (see DESIGN.md §5); the registry
//! aggregates — it never retains one record per event — so memory stays
//! bounded no matter how hot the instrumented path is. A disabled
//! registry (`Registry::disabled()`, or `set_enabled(false)`) reduces
//! every operation to an atomic flag test: no allocation, no lock, and
//! counter reads return 0.

use crate::clock::{Clock, ManualClock, MonotonicClock};
use crate::histogram::Histogram;
use crate::snapshot::{CounterSnapshot, HistogramSnapshot, MetricsSnapshot, SpanSnapshot};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// A handle to one monotonic counter. Cheap to clone; `None` inside means
/// the registry was disabled when the handle was created, making every
/// operation a no-op.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A permanently-inert counter (what disabled registries hand out).
    pub fn noop() -> Counter {
        Counter(None)
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1.
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value (0 for a no-op counter).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Aggregated statistics of one (span name, parent) pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanAgg {
    /// How many spans finished.
    pub count: u64,
    /// Summed wall-clock microseconds.
    pub total_us: u64,
}

thread_local! {
    /// The active span names of this thread, innermost last. Spans opened
    /// on worker threads start a fresh hierarchy (parent `None`), which is
    /// exactly the per-worker grouping the reports want.
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// An open span. Records `(name, parent, elapsed µs)` into the registry
/// when dropped; while open, it is the parent of any span started on the
/// same thread.
#[must_use = "a span measures until it is dropped"]
pub struct Span<'r> {
    reg: Option<&'r Registry>,
    name: &'static str,
    parent: Option<&'static str>,
    start_us: u64,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let Some(reg) = self.reg else { return };
        SPAN_STACK.with(|s| {
            s.borrow_mut().pop();
        });
        let dur = reg.now_us().saturating_sub(self.start_us);
        reg.record_span(self.name, self.parent, dur);
    }
}

/// The metrics registry. See the module docs; most code uses
/// [`crate::global()`].
pub struct Registry {
    enabled: AtomicBool,
    clock: RwLock<Arc<dyn Clock>>,
    counters: Mutex<BTreeMap<&'static str, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<&'static str, Histogram>>,
    spans: Mutex<BTreeMap<(&'static str, Option<&'static str>), SpanAgg>>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An enabled registry on the monotonic production clock.
    pub fn new() -> Registry {
        Registry::with_clock(Arc::new(MonotonicClock::new()))
    }

    /// An enabled registry on an explicit clock (tests pass a shared
    /// [`ManualClock`]).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Registry {
        Registry {
            enabled: AtomicBool::new(true),
            clock: RwLock::new(clock),
            counters: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            spans: Mutex::new(BTreeMap::new()),
        }
    }

    /// A no-op registry: every operation is inert, counter handles are
    /// [`Counter::noop`], snapshots are empty. The instrumented engines
    /// must compute byte-identical results against it (asserted by the
    /// overhead-guard test).
    pub fn disabled() -> Registry {
        let r = Registry::new();
        r.set_enabled(false);
        r
    }

    /// The process-wide registry the instrumentation sites record into.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Turns recording on or off. Existing counter handles created while
    /// enabled keep recording; new handles are inert while disabled.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::SeqCst);
    }

    /// Whether the registry records.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::SeqCst)
    }

    /// Swaps the time source (tests inject a [`ManualClock`]).
    pub fn set_clock(&self, clock: Arc<dyn Clock>) {
        *self.clock.write().expect("clock lock") = clock;
    }

    /// Installs and returns a fresh shared [`ManualClock`] — the
    /// one-line test setup for deterministic timings.
    pub fn install_manual_clock(&self) -> Arc<ManualClock> {
        let clock = Arc::new(ManualClock::new());
        self.set_clock(clock.clone() as Arc<dyn Clock>);
        clock
    }

    /// The current clock reading (0 when disabled).
    pub fn now_us(&self) -> u64 {
        if !self.is_enabled() {
            return 0;
        }
        self.clock.read().expect("clock lock").now_us()
    }

    /// Drops every recorded metric. The clock and enabled flag survive, so
    /// a test can `reset()` between scenarios without re-wiring.
    pub fn reset(&self) {
        self.counters.lock().expect("counters lock").clear();
        self.histograms.lock().expect("histograms lock").clear();
        self.spans.lock().expect("spans lock").clear();
    }

    /// A handle to the named counter, registering it on first use.
    /// Disabled registries return an inert handle without registering
    /// (or allocating) anything.
    pub fn counter(&self, name: &'static str) -> Counter {
        if !self.is_enabled() {
            return Counter::noop();
        }
        let mut counters = self.counters.lock().expect("counters lock");
        Counter(Some(Arc::clone(counters.entry(name).or_default())))
    }

    /// Adds `n` to the named counter (shorthand for one-shot sites).
    pub fn add(&self, name: &'static str, n: u64) {
        if !self.is_enabled() {
            return;
        }
        self.counter(name).add(n);
    }

    /// The counter's current value; 0 if it never recorded (or disabled).
    pub fn counter_value(&self, name: &str) -> u64 {
        if !self.is_enabled() {
            return 0;
        }
        self.counters
            .lock()
            .expect("counters lock")
            .get(name)
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Records one observation into the named histogram.
    pub fn record(&self, name: &'static str, value: u64) {
        if !self.is_enabled() {
            return;
        }
        self.histograms
            .lock()
            .expect("histograms lock")
            .entry(name)
            .or_default()
            .record(value);
    }

    /// Folds a locally-accumulated histogram into the named one (workers
    /// record locally, merge once — merge order does not matter).
    pub fn merge_histogram(&self, name: &'static str, h: &Histogram) {
        if !self.is_enabled() || h.is_empty() {
            return;
        }
        self.histograms
            .lock()
            .expect("histograms lock")
            .entry(name)
            .or_default()
            .merge(h);
    }

    /// Opens a span. The innermost span already open on this thread
    /// becomes its parent; the span records on drop.
    pub fn span(&self, name: &'static str) -> Span<'_> {
        if !self.is_enabled() {
            return Span {
                reg: None,
                name,
                parent: None,
                start_us: 0,
            };
        }
        let parent = SPAN_STACK.with(|s| s.borrow().last().copied());
        SPAN_STACK.with(|s| s.borrow_mut().push(name));
        Span {
            reg: Some(self),
            name,
            parent,
            start_us: self.now_us(),
        }
    }

    /// Directly records one finished span (used by `Span::drop`; exposed
    /// for instrumentation that measures durations out-of-band).
    pub fn record_span(&self, name: &'static str, parent: Option<&'static str>, dur_us: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut spans = self.spans.lock().expect("spans lock");
        let agg = spans.entry((name, parent)).or_default();
        agg.count += 1;
        agg.total_us += dur_us;
    }

    /// The aggregate of one (span, parent) pair, if it ever finished.
    pub fn span_agg(&self, name: &str, parent: Option<&str>) -> Option<SpanAgg> {
        self.spans
            .lock()
            .expect("spans lock")
            .iter()
            .find(|((n, p), _)| *n == name && p.as_deref() == parent)
            .map(|(_, agg)| *agg)
    }

    /// A consistent, deterministically-ordered copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .expect("counters lock")
            .iter()
            .map(|(name, v)| CounterSnapshot {
                name: (*name).to_owned(),
                value: v.load(Ordering::Relaxed),
            })
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("histograms lock")
            .iter()
            .map(|(name, h)| HistogramSnapshot::of(name, h))
            .collect();
        let spans = self
            .spans
            .lock()
            .expect("spans lock")
            .iter()
            .map(|((name, parent), agg)| SpanSnapshot {
                name: (*name).to_owned(),
                parent: parent.map(str::to_owned),
                count: agg.count,
                total_us: agg.total_us,
            })
            .collect();
        MetricsSnapshot {
            counters,
            histograms,
            spans,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_and_accumulate() {
        let reg = Registry::new();
        let c = reg.counter("t.op.count");
        c.add(2);
        c.incr();
        assert_eq!(c.get(), 3);
        assert_eq!(reg.counter_value("t.op.count"), 3);
        assert_eq!(reg.counter_value("t.other.count"), 0);
        // A second handle shares the cell.
        reg.counter("t.op.count").add(1);
        assert_eq!(c.get(), 4);
    }

    #[test]
    fn disabled_registry_is_inert() {
        let reg = Registry::disabled();
        let c = reg.counter("t.op.count");
        c.add(10);
        assert_eq!(c.get(), 0, "disabled counter reads return 0");
        reg.add("t.op.count", 5);
        reg.record("t.op.us", 5);
        {
            let _s = reg.span("t.op");
        }
        assert_eq!(reg.counter_value("t.op.count"), 0);
        let snap = reg.snapshot();
        assert!(snap.counters.is_empty(), "nothing was registered");
        assert!(snap.histograms.is_empty());
        assert!(snap.spans.is_empty());
        assert_eq!(reg.now_us(), 0);
    }

    #[test]
    fn spans_nest_via_the_thread_stack() {
        let reg = Registry::new();
        let clock = reg.install_manual_clock();
        {
            let _outer = reg.span("t.outer");
            clock.advance(10);
            {
                let _inner = reg.span("t.inner");
                clock.advance(5);
            }
            clock.advance(3);
        }
        let outer = reg.span_agg("t.outer", None).unwrap();
        let inner = reg.span_agg("t.inner", Some("t.outer")).unwrap();
        assert_eq!(
            outer,
            SpanAgg {
                count: 1,
                total_us: 18
            }
        );
        assert_eq!(
            inner,
            SpanAgg {
                count: 1,
                total_us: 5
            }
        );
        assert!(reg.span_agg("t.inner", None).is_none(), "parent recorded");
    }

    #[test]
    fn reset_clears_metrics_but_keeps_the_clock() {
        let reg = Registry::new();
        let clock = reg.install_manual_clock();
        clock.advance(7);
        reg.add("t.a.count", 1);
        reg.record("t.a.us", 2);
        reg.record_span("t.a", None, 3);
        reg.reset();
        let snap = reg.snapshot();
        assert!(snap.counters.is_empty() && snap.histograms.is_empty() && snap.spans.is_empty());
        assert_eq!(reg.now_us(), 7, "clock survives reset");
    }

    #[test]
    fn snapshot_is_deterministically_ordered() {
        let reg = Registry::new();
        reg.add("t.z.count", 1);
        reg.add("t.a.count", 1);
        reg.add("t.m.count", 1);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["t.a.count", "t.m.count", "t.z.count"]);
    }
}
