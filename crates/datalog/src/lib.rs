//! # datalog — a semi-naive Datalog engine with an RDF bridge
//!
//! The paper's open issues (§II-D) include: "alternative methods for
//! answering queries against an RDF graph can be devised, for instance
//! based on translation to Datalog; given the presence of new-generation,
//! very efficient Datalog engines, smart translations to Datalog and
//! possibly RDF-specific Datalog optimization techniques are of interest."
//!
//! This crate implements that alternative end to end:
//!
//! * [`engine`]: a generic positive-Datalog engine — constants are
//!   [`rdf_model::TermId`]s, facts live in per-predicate relations indexed
//!   on every argument position, and evaluation is semi-naive (each round
//!   joins the delta against the full database);
//! * [`rdf`]: the RDF→Datalog translation: a graph becomes a single
//!   ternary relation `t(s, p, o)`, the RDFS entailment rules of the
//!   paper's Fig. 2 (plus the schema-closure rules) become Datalog rules,
//!   and saturation becomes the engine's fix-point —
//!   [`rdf::saturate_via_datalog`] is cross-checked against the
//!   specialised `rdfs::saturate` in the tests and raced against it in the
//!   bench harness (experiment A-DATALOG).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod rdf;

pub use engine::{Atom, Database, DlTerm, Program, Rule};
pub use rdf::{rdfs_program, saturate_via_datalog};
