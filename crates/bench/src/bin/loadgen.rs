//! `loadgen` — seeded mixed read/write load generator over real sockets.
//!
//! Boots the embedded HTTP server on a scratch journaled store and drives
//! it with N closed-loop clients on persistent keep-alive connections,
//! each flipping a seeded coin per request between a SPARQL read and an
//! update script. Reports throughput and p50/p95/p99 latency per mode and
//! proves the group-commit claim with observability counters: one fsync
//! and one publish per drained group, not per script.
//!
//! By default the workload runs twice and the report carries the write
//! throughput (applied ops/s) speedup between the legs:
//!
//! * **per-op-fsync baseline** — group commit off and one op per update
//!   request, i.e. one journal record, one fsync and one snapshot publish
//!   per op: exactly what the pre-group-commit server did for every op of
//!   a script;
//! * **group commit** — `--ops-per-update` ops per script (one atomic
//!   record each), concurrent scripts drained per writer wakeup, one
//!   fsync + one publish per drained group.
//!
//! Results land in `bench_results/table_loadgen.json`.
//!
//! ```text
//! loadgen [--clients N] [--write-ratio F] [--duration-secs S]
//!         [--ops-per-update N] [--fsync always|never]
//!         [--group-commit on|off|both] [--threads N] [--queue N]
//!         [--seed N] [--strict]
//! ```
//!
//! `--strict` exits non-zero when any response is neither 200 nor 429 —
//! the CI smoke gate.

use bench::{emit_json, render_table};
use durability::FsyncPolicy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdfs::incremental::MaintenanceAlgorithm;
use serde::Serialize;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use webreason_core::{DurableStore, ReasoningConfig};
use webreason_server::{Backend, Server, ServerConfig};

const QUERY: &str = "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x a ex:Mammal }";

#[derive(Debug, Clone)]
struct Args {
    clients: usize,
    write_ratio: f64,
    duration_secs: f64,
    ops_per_update: usize,
    fsync: FsyncPolicy,
    /// Store reasoning strategy. `None` (default) isolates the commit
    /// protocol — every microsecond of maintenance dilutes the fsync
    /// amortization being measured; `counting` adds incremental
    /// maintenance per op for an end-to-end mixed workload.
    reasoning: ReasoningConfig,
    /// `[false, true]` = both modes, baseline first.
    modes: Vec<bool>,
    threads: usize,
    queue: usize,
    seed: u64,
    strict: bool,
    backend: Backend,
    /// Run the connection-scaling sweep (threaded@8 vs reactor@8 vs
    /// reactor@`--clients`) into `table_cserve.json` instead of the
    /// group-commit comparison.
    conn_sweep: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--clients N] [--write-ratio F] [--duration-secs S]\n\
         \x20              [--ops-per-update N] [--fsync always|never]\n\
         \x20              [--reasoning none|counting]\n\
         \x20              [--group-commit on|off|both] [--threads N] [--queue N]\n\
         \x20              [--seed N] [--strict]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        clients: 8,
        write_ratio: 0.5,
        duration_secs: 3.0,
        ops_per_update: 4,
        fsync: FsyncPolicy::Always,
        reasoning: ReasoningConfig::None,
        modes: vec![false, true],
        threads: 0, // 0 = one worker per client
        queue: 256,
        seed: 42,
        strict: false,
        backend: Backend::Reactor,
        conn_sweep: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        if flag == "--strict" {
            args.strict = true;
            continue;
        }
        if flag == "--conn-sweep" {
            args.conn_sweep = true;
            continue;
        }
        let Some(value) = it.next() else { usage() };
        let ok = match flag.as_str() {
            "--clients" => value.parse().map(|v| args.clients = v).is_ok(),
            "--write-ratio" => value
                .parse()
                .ok()
                .filter(|v| (0.0..=1.0).contains(v))
                .map(|v| args.write_ratio = v)
                .is_some(),
            "--duration-secs" => value
                .parse()
                .ok()
                .filter(|v| *v > 0.0)
                .map(|v| args.duration_secs = v)
                .is_some(),
            "--ops-per-update" => value
                .parse()
                .ok()
                .filter(|v| *v >= 1)
                .map(|v| args.ops_per_update = v)
                .is_some(),
            "--fsync" => FsyncPolicy::parse(value).map(|v| args.fsync = v).is_some(),
            "--reasoning" => match value.as_str() {
                "none" => {
                    args.reasoning = ReasoningConfig::None;
                    true
                }
                "counting" => {
                    args.reasoning = ReasoningConfig::Saturation(MaintenanceAlgorithm::Counting);
                    true
                }
                _ => false,
            },
            "--group-commit" => match value.as_str() {
                "on" => {
                    args.modes = vec![true];
                    true
                }
                "off" => {
                    args.modes = vec![false];
                    true
                }
                "both" => {
                    args.modes = vec![false, true];
                    true
                }
                _ => false,
            },
            "--threads" => value.parse().map(|v| args.threads = v).is_ok(),
            "--backend" => match value.as_str() {
                "reactor" => {
                    args.backend = Backend::Reactor;
                    true
                }
                "threaded" => {
                    args.backend = Backend::Threaded;
                    true
                }
                _ => false,
            },
            "--queue" => value
                .parse()
                .ok()
                .filter(|v| *v >= 1)
                .map(|v| args.queue = v)
                .is_some(),
            "--seed" => value.parse().map(|v| args.seed = v).is_ok(),
            _ => false,
        };
        if !ok {
            eprintln!("loadgen: bad flag {flag} {value}");
            usage();
        }
    }
    if args.clients == 0 {
        usage();
    }
    args
}

/// One request over a persistent connection: write, then read exactly one
/// `Content-Length`-framed response. Returns the status code.
///
/// Chunked reads are safe on this closed loop: the server sends exactly
/// one response per request and the client only writes the next request
/// after consuming the current response, so there is never a next
/// response to over-read into.
fn roundtrip(stream: &mut TcpStream, raw: &[u8], buf: &mut Vec<u8>) -> std::io::Result<u16> {
    stream.write_all(raw)?;
    buf.clear();
    let mut chunk = [0u8; 4096];
    let head_len = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        if buf.len() > 16 * 1024 {
            return Err(std::io::Error::other("response head too large"));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::other("peer closed mid-response"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let text = String::from_utf8_lossy(&buf[..head_len]);
    let status: u16 = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::other("no status line"))?;
    let len: usize = text
        .lines()
        .find_map(|l| {
            l.to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::trim)
                .map(str::to_owned)
        })
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| std::io::Error::other("no content-length"))?;
    while buf.len() < head_len + len {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::other("peer closed mid-body"));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
    Ok(status)
}

fn post(path: &str, body: &str) -> Vec<u8> {
    format!(
        "POST {path} HTTP/1.1\r\nHost: loadgen\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

#[derive(Default)]
struct ClientTally {
    reads_ok: u64,
    writes_ok: u64,
    rejected_429: u64,
    errors: u64,
    read_us: Vec<u64>,
    write_us: Vec<u64>,
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

#[derive(Serialize)]
struct ModeRow {
    mode: &'static str,
    backend: &'static str,
    group_commit: bool,
    clients: usize,
    write_ratio: f64,
    ops_per_update: usize,
    fsync: &'static str,
    elapsed_secs: f64,
    reads: u64,
    reads_per_s: f64,
    writes_applied: u64,
    writes_per_s: f64,
    ops_applied: u64,
    write_ops_per_s: f64,
    rejected_429: u64,
    errors: u64,
    read_p50_us: u64,
    read_p95_us: u64,
    read_p99_us: u64,
    write_p50_us: u64,
    write_p95_us: u64,
    write_p99_us: u64,
    // Counter proof of the commit protocol, deltas over this run.
    fsyncs: u64,
    groups: u64,
    publishes: u64,
    mean_group_size: f64,
    /// `webreason_server_open_connections` scraped mid-run (sweep legs).
    open_connections_mid: u64,
    reactor_accepted: u64,
    reactor_reaped: u64,
    fsyncs_per_write: f64,
}

#[derive(Serialize)]
struct Report {
    seed: u64,
    rows: Vec<ModeRow>,
    /// `write_ops_per_s(group commit) / write_ops_per_s(per-op-fsync)`,
    /// present when both legs ran.
    write_speedup: Option<f64>,
}

/// Snapshot of the group-size histogram (count, sum) — the registry is
/// process-global, so per-run numbers are deltas between snapshots.
fn group_size_totals() -> (u64, u64) {
    obs::global()
        .snapshot()
        .histogram("server.update.group_size")
        .map_or((0, 0), |h| (h.count, h.sum))
}

/// Connects with retries: a 1000-client storm can transiently overflow
/// the accept backlog.
fn connect_with_retry(addr: SocketAddr) -> TcpStream {
    let mut last = None;
    for _ in 0..100 {
        match TcpStream::connect(addr) {
            Ok(s) => {
                let _ = s.set_read_timeout(Some(Duration::from_secs(30)));
                let _ = s.set_nodelay(true);
                return s;
            }
            Err(e) => {
                last = Some(e);
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
    panic!("connect failed after retries: {last:?}");
}

/// Scrapes `/metrics` and returns the open-connections gauge.
fn scrape_open_connections(addr: SocketAddr) -> u64 {
    let mut stream = connect_with_retry(addr);
    let raw = b"GET /metrics HTTP/1.1\r\nHost: loadgen\r\nConnection: close\r\n\r\n";
    let mut buf = Vec::new();
    if stream.write_all(raw).is_err() || stream.read_to_end(&mut buf).is_err() {
        return 0;
    }
    let text = String::from_utf8_lossy(&buf);
    text.lines()
        .find_map(|l| l.strip_prefix("webreason_server_open_connections "))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

fn run_mode(args: &Args, group_commit: bool) -> ModeRow {
    run_leg(
        args,
        LegSpec {
            label: if group_commit {
                "group-commit"
            } else {
                "per-op-fsync"
            },
            group_commit,
            backend: args.backend,
            clients: args.clients,
            threads: if args.threads == 0 {
                args.clients
            } else {
                args.threads
            },
            scrape_mid: false,
        },
    )
}

/// One sweep/mode leg: backend, client count and worker count pinned.
#[derive(Clone, Copy)]
struct LegSpec {
    label: &'static str,
    group_commit: bool,
    backend: Backend,
    clients: usize,
    threads: usize,
    scrape_mid: bool,
}

fn run_leg(args: &Args, spec: LegSpec) -> ModeRow {
    let mode = spec.label;
    let group_commit = spec.group_commit;
    // The baseline leg pins one op per request: one record, one fsync,
    // one publish per op — the pre-group-commit write path.
    let ops_per_update = if group_commit { args.ops_per_update } else { 1 };
    let dir = std::env::temp_dir().join(format!("webreason-loadgen-{mode}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut store = DurableStore::create(&dir, args.reasoning, NonZeroUsize::MIN, args.fsync)
        .expect("store creates");
    store
        .load_turtle(
            "@prefix ex: <http://ex/> .\n\
             @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n\
             ex:Cat rdfs:subClassOf ex:Mammal .\n\
             ex:Tom a ex:Cat .\n",
        )
        .expect("seed loads");
    let server = Server::start(
        store,
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            threads: spec.threads,
            update_queue: args.queue,
            checkpoint_every: 0, // keep the fsync ledger to commits only
            group_commit,
            backend: spec.backend,
            max_conns: 4096.max(spec.clients + 64),
            ..Default::default()
        },
    )
    .expect("server boots");
    let addr: SocketAddr = server.local_addr();

    let reg = obs::global();
    let fsyncs0 = reg.counter_value("durability.journal.fsyncs");
    let groups0 = reg.counter_value("server.update.groups");
    let publishes0 = reg.counter_value("server.update.publishes");
    let (gs_count0, gs_sum0) = group_size_totals();
    let accepted0 = reg.counter_value("server.reactor.accepted");
    let reaped0 = reg.counter_value("server.reactor.reaped");

    let stop = Arc::new(AtomicBool::new(false));
    let deadline = Duration::from_secs_f64(args.duration_secs);
    let started = Instant::now();
    let handles: Vec<_> = (0..spec.clients)
        .map(|c| {
            let stop = Arc::clone(&stop);
            let args = args.clone();
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(args.seed.wrapping_add(c as u64));
                let mut stream = connect_with_retry(addr);
                stream
                    .set_read_timeout(Some(Duration::from_secs(30)))
                    .expect("timeout sets");
                let _ = stream.set_nodelay(true);
                let mut tally = ClientTally::default();
                let mut head = Vec::with_capacity(256);
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let write = rng.gen_bool(args.write_ratio);
                    let raw = if write {
                        let mut body = String::new();
                        for j in 0..ops_per_update {
                            body.push_str(&format!(
                                "insert <http://ex/w{c}-{n}-{j}> \
                                 <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> \
                                 <http://ex/Cat> .\n"
                            ));
                        }
                        post("/update", &body)
                    } else {
                        post("/query", QUERY)
                    };
                    n += 1;
                    let t = Instant::now();
                    match roundtrip(&mut stream, &raw, &mut head) {
                        Ok(200) => {
                            let us = t.elapsed().as_micros() as u64;
                            if write {
                                tally.writes_ok += 1;
                                tally.write_us.push(us);
                            } else {
                                tally.reads_ok += 1;
                                tally.read_us.push(us);
                            }
                        }
                        Ok(429) => {
                            tally.rejected_429 += 1;
                            std::thread::sleep(Duration::from_micros(200));
                        }
                        Ok(_) => tally.errors += 1,
                        Err(_) => {
                            tally.errors += 1;
                            break; // connection is gone; stop this client
                        }
                    }
                }
                tally
            })
        })
        .collect();
    // Mid-run gauge evidence: with every client connected and working,
    // the server should report them all as open.
    let open_connections_mid = if spec.scrape_mid {
        std::thread::sleep(deadline / 2);
        let open = scrape_open_connections(addr);
        std::thread::sleep(deadline / 2);
        open
    } else {
        std::thread::sleep(deadline);
        0
    };
    stop.store(true, Ordering::Relaxed);
    let mut total = ClientTally::default();
    for h in handles {
        let t = h.join().expect("client thread");
        total.reads_ok += t.reads_ok;
        total.writes_ok += t.writes_ok;
        total.rejected_429 += t.rejected_429;
        total.errors += t.errors;
        total.read_us.extend(t.read_us);
        total.write_us.extend(t.write_us);
    }
    let elapsed = started.elapsed().as_secs_f64();

    let fsyncs = reg.counter_value("durability.journal.fsyncs") - fsyncs0;
    let groups = reg.counter_value("server.update.groups") - groups0;
    let publishes = reg.counter_value("server.update.publishes") - publishes0;
    let (gs_count, gs_sum) = group_size_totals();
    let mean_group_size = if gs_count > gs_count0 {
        (gs_sum - gs_sum0) as f64 / (gs_count - gs_count0) as f64
    } else {
        0.0
    };

    drop(server.shutdown());
    let _ = std::fs::remove_dir_all(&dir);

    total.read_us.sort_unstable();
    total.write_us.sort_unstable();
    let ops_applied = total.writes_ok * ops_per_update as u64;
    ModeRow {
        mode,
        backend: match spec.backend {
            Backend::Reactor => "reactor",
            Backend::Threaded => "threaded",
        },
        group_commit,
        clients: spec.clients,
        write_ratio: args.write_ratio,
        ops_per_update,
        fsync: match args.fsync {
            FsyncPolicy::Always => "always",
            FsyncPolicy::Never => "never",
        },
        elapsed_secs: elapsed,
        reads: total.reads_ok,
        reads_per_s: total.reads_ok as f64 / elapsed,
        writes_applied: total.writes_ok,
        writes_per_s: total.writes_ok as f64 / elapsed,
        ops_applied,
        write_ops_per_s: ops_applied as f64 / elapsed,
        rejected_429: total.rejected_429,
        errors: total.errors,
        read_p50_us: percentile(&total.read_us, 0.50),
        read_p95_us: percentile(&total.read_us, 0.95),
        read_p99_us: percentile(&total.read_us, 0.99),
        write_p50_us: percentile(&total.write_us, 0.50),
        write_p95_us: percentile(&total.write_us, 0.95),
        write_p99_us: percentile(&total.write_us, 0.99),
        fsyncs,
        groups,
        publishes,
        mean_group_size,
        open_connections_mid,
        reactor_accepted: reg.counter_value("server.reactor.accepted") - accepted0,
        reactor_reaped: reg.counter_value("server.reactor.reaped") - reaped0,
        fsyncs_per_write: if total.writes_ok > 0 {
            fsyncs as f64 / total.writes_ok as f64
        } else {
            0.0
        },
    }
}

#[derive(Serialize)]
struct SweepReport {
    seed: u64,
    rows: Vec<ModeRow>,
    /// `reads_per_s(reactor@8) / reads_per_s(threaded@8)` — the reactor
    /// must not regress low-concurrency read throughput.
    read_throughput_ratio: Option<f64>,
}

/// The connection-scaling sweep: the threaded baseline and the reactor at
/// matched low concurrency, then the reactor alone at `--clients` (the
/// threaded backend would need one OS thread per connection there).
fn run_conn_sweep(args: &Args) -> ! {
    let big = args.clients.max(64);
    let workers = if args.threads == 0 { 8 } else { args.threads };
    println!(
        "== loadgen conn sweep: {big} keep-alive clients on the big leg, write ratio {:.2}, \
         {:.1}s per leg, seed {} ==",
        args.write_ratio, args.duration_secs, args.seed
    );
    let legs = [
        LegSpec {
            label: "threaded-8",
            group_commit: true,
            backend: Backend::Threaded,
            clients: 8,
            threads: 8.max(workers),
            scrape_mid: false,
        },
        LegSpec {
            label: "reactor-8",
            group_commit: true,
            backend: Backend::Reactor,
            clients: 8,
            threads: workers,
            scrape_mid: false,
        },
        LegSpec {
            label: "reactor-high",
            group_commit: true,
            backend: Backend::Reactor,
            clients: big,
            threads: workers,
            scrape_mid: true,
        },
    ];
    let rows: Vec<ModeRow> = legs.iter().map(|&l| run_leg(args, l)).collect();

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.mode.to_owned(),
                r.backend.to_owned(),
                r.clients.to_string(),
                format!("{:.0}", r.reads_per_s),
                format!("{:.0}", r.writes_per_s),
                r.read_p50_us.to_string(),
                r.read_p95_us.to_string(),
                r.read_p99_us.to_string(),
                r.open_connections_mid.to_string(),
                r.reactor_accepted.to_string(),
                r.reactor_reaped.to_string(),
                r.rejected_429.to_string(),
                r.errors.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "leg",
                "backend",
                "clients",
                "reads/s",
                "writes/s",
                "r p50 (µs)",
                "r p95 (µs)",
                "r p99 (µs)",
                "open@mid",
                "accepted",
                "reaped",
                "429s",
                "errors",
            ],
            &table
        )
    );

    let read_throughput_ratio = match rows.as_slice() {
        [threaded, reactor, ..] if threaded.reads_per_s > 0.0 => {
            Some(reactor.reads_per_s / threaded.reads_per_s)
        }
        _ => None,
    };
    if let Some(r) = read_throughput_ratio {
        println!("read throughput, reactor vs threaded at 8 clients: {r:.2}x");
    }

    let errors: u64 = rows.iter().map(|r| r.errors).sum();
    let report = SweepReport {
        seed: args.seed,
        rows,
        read_throughput_ratio,
    };
    let ok = emit_json("table_cserve", &report);
    if args.strict && errors > 0 {
        eprintln!("loadgen: --strict and {errors} non-200/429 responses");
        std::process::exit(1);
    }
    std::process::exit(if ok { 0 } else { 1 });
}

fn main() {
    let args = parse_args();
    if args.conn_sweep {
        run_conn_sweep(&args);
    }
    println!(
        "== loadgen: {} clients, write ratio {:.2}, {:.1}s per mode, fsync {:?}, seed {} ==",
        args.clients, args.write_ratio, args.duration_secs, args.fsync, args.seed
    );

    let rows: Vec<ModeRow> = args.modes.iter().map(|&gc| run_mode(&args, gc)).collect();

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.mode.to_owned(),
                r.ops_per_update.to_string(),
                format!("{:.0}", r.write_ops_per_s),
                format!("{:.0}", r.writes_per_s),
                format!("{:.0}", r.reads_per_s),
                r.write_p50_us.to_string(),
                r.write_p95_us.to_string(),
                r.write_p99_us.to_string(),
                r.fsyncs.to_string(),
                r.groups.to_string(),
                format!("{:.1}", r.mean_group_size),
                r.rejected_429.to_string(),
                r.errors.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "mode",
                "ops/req",
                "write ops/s",
                "scripts/s",
                "reads/s",
                "w p50 (µs)",
                "w p95 (µs)",
                "w p99 (µs)",
                "fsyncs",
                "groups",
                "mean group",
                "429s",
                "errors",
            ],
            &table
        )
    );

    let write_speedup = match rows.as_slice() {
        [off, on] if off.write_ops_per_s > 0.0 => Some(on.write_ops_per_s / off.write_ops_per_s),
        _ => None,
    };
    if let Some(s) = write_speedup {
        println!("write throughput speedup (group commit vs per-op fsync): {s:.1}x");
    }

    let errors: u64 = rows.iter().map(|r| r.errors).sum();
    let report = Report {
        seed: args.seed,
        rows,
        write_speedup,
    };
    let ok = emit_json("table_loadgen", &report);
    if args.strict && errors > 0 {
        eprintln!("loadgen: --strict and {errors} non-200/429 responses");
        std::process::exit(1);
    }
    if !ok {
        std::process::exit(1);
    }
}
