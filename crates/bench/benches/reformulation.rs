//! Criterion bench behind T-REF: reformulation time per LUBM query and
//! per synthetic class-tree shape.

use bench::{lubm_workload, Scale};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdfs::Schema;
use reformulation::reformulate;
use std::hint::black_box;
use workload::synth::{generate as synth_generate, SynthConfig};

fn bench_lubm_queries(c: &mut Criterion) {
    let (ds, qs) = lubm_workload(Scale::Small);
    let schema = Schema::extract(&ds.graph, &ds.vocab);
    let mut group = c.benchmark_group("reformulate/lubm");
    for (name, q) in &qs {
        group.bench_with_input(BenchmarkId::from_parameter(name), q, |b, q| {
            b.iter(|| black_box(reformulate(q, &schema, &ds.vocab).unwrap()))
        });
    }
    group.finish();
}

fn bench_tree_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("reformulate/tree");
    for (depth, fanout) in [(2usize, 2usize), (3, 2), (3, 3)] {
        let mut w = synth_generate(&SynthConfig {
            class_depth: depth,
            class_fanout: fanout,
            individuals: 10,
            edges: 20,
            typings: 10,
            ..Default::default()
        });
        let schema = Schema::extract(&w.dataset.graph, &w.dataset.vocab);
        let root = w.root_class;
        let q = w.type_query(root);
        let vocab = w.dataset.vocab;
        group.bench_function(
            BenchmarkId::from_parameter(format!("d{depth}f{fanout}")),
            |b| b.iter(|| black_box(reformulate(&q, &schema, &vocab).unwrap())),
        );
    }
    group.finish();
}

/// Ablation: raw rewriting vs minimisation+pruning, and the evaluation
/// cost of each output, on the join-heavy Q9.
fn bench_pruning_ablation(c: &mut Criterion) {
    use reformulation::{reformulate_with, Options};
    use sparql::evaluate;

    let (ds, qs) = lubm_workload(Scale::Small);
    let schema = Schema::extract(&ds.graph, &ds.vocab);
    let (_, q9) = qs.iter().find(|(n, _)| n == "Q9").expect("Q9 exists");

    let mut group = c.benchmark_group("reformulate/ablation");
    group.bench_function("rewrite_raw", |b| {
        b.iter(|| black_box(reformulate_with(q9, &schema, &ds.vocab, Options::raw()).unwrap()))
    });
    group.bench_function("rewrite_optimised", |b| {
        b.iter(|| black_box(reformulate_with(q9, &schema, &ds.vocab, Options::default()).unwrap()))
    });
    let raw = reformulate_with(q9, &schema, &ds.vocab, Options::raw()).unwrap();
    let opt = reformulate_with(q9, &schema, &ds.vocab, Options::default()).unwrap();
    assert!(raw.branches > opt.branches, "ablation must differ");
    group.bench_function("evaluate_raw", |b| {
        b.iter(|| black_box(evaluate(&ds.graph, &raw.query)))
    });
    group.bench_function("evaluate_optimised", |b| {
        b.iter(|| black_box(evaluate(&ds.graph, &opt.query)))
    });
    group.finish();
}

/// Sequential per-branch evaluation vs the union-aware evaluator (shared
/// trie at 1 thread, plus 4 workers) on a subclass-heavy join whose
/// reformulation exceeds 300 branches — the evaluation side of A-REF.
fn bench_union_evaluation(c: &mut Criterion) {
    use sparql::{evaluate, evaluate_union, parse_query};
    use std::num::NonZeroUsize;

    let mut w = synth_generate(&SynthConfig {
        class_depth: 4,
        class_fanout: 3,
        individuals: 2_000,
        edges: 6_000,
        typings: 80_000,
        domain_range_density: 0.0,
        ..Default::default()
    });
    let schema = Schema::extract(&w.dataset.graph, &w.dataset.vocab);
    let decode = |t| {
        w.dataset
            .dict
            .decode(t)
            .and_then(|term| term.as_iri())
            .expect("IRI")
            .to_owned()
    };
    let root_iri = decode(w.root_class);
    let p_iri = decode(w.top_properties[0]);
    let q = parse_query(
        &format!("SELECT ?x WHERE {{ ?x <{p_iri}> ?y . ?y a <{root_iri}> }}"),
        &mut w.dataset.dict,
    )
    .expect("join query parses");
    let r = reformulate(&q, &schema, &w.dataset.vocab).expect("dialect ok");
    assert!(r.branches > 100, "subclass-heavy: got {}", r.branches);
    let g = &w.dataset.graph;

    let mut group = c.benchmark_group("union_eval/synth_join");
    group.bench_function("per_branch", |b| {
        b.iter(|| black_box(evaluate(g, &r.query)))
    });
    for threads in [1usize, 4] {
        let n = NonZeroUsize::new(threads).unwrap();
        group.bench_function(
            BenchmarkId::from_parameter(format!("union_{threads}thr")),
            |b| b.iter(|| black_box(evaluate_union(g, &r.query, n))),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_lubm_queries,
    bench_tree_sweep,
    bench_pruning_ablation,
    bench_union_evaluation
);
criterion_main!(benches);
