//! Vendored minimal property-testing harness with a proptest-compatible
//! API surface (the container has no network access to crates.io).
//!
//! Covers exactly what this workspace uses: the `proptest!` macro (with
//! optional `#![proptest_config(..)]`), `prop_assert!`/`prop_assert_eq!`,
//! `prop_oneof!`, `Strategy` with `prop_map`, integer-range and tuple
//! strategies, `&'static str` regex strategies (character classes, `\PC`,
//! `{n,m}` repetition, concatenation), `proptest::collection::vec`, and
//! `proptest::bool::ANY`.
//!
//! Differences from upstream: no shrinking (failures report the full
//! generated inputs instead of a minimised case), and generation is
//! deterministic per (test name, case index) so failures reproduce
//! across runs.

pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Strategies over `bool`.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// The `proptest::bool::ANY` strategy: a fair coin.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Generates `true` or `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

/// Strategies over collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// A strategy producing `Vec`s of `element` values with a length drawn
    /// uniformly from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start < self.size.end {
                rng.gen_range(self.size.clone())
            } else {
                self.size.start
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Generation from the mini-regex subset proptest string strategies use.
pub(crate) mod string {
    use crate::test_runner::TestRng;
    use rand::Rng;

    enum Atom {
        /// `[a-z0-9_]`-style class, as inclusive char ranges.
        Class(Vec<(char, char)>),
        /// `\PC`: any non-control character.
        AnyNonControl,
        Literal(char),
    }

    /// Sprinkled into `\PC` output so non-ASCII text gets exercised.
    const NON_ASCII: &[char] = &['é', 'ß', 'λ', '中', 'ő', '→', '°', 'Ω', 'ñ', '🦀'];

    fn parse_class(chars: &[char], i: &mut usize) -> Vec<(char, char)> {
        let mut ranges = Vec::new();
        // *i points just past '['.
        while *i < chars.len() && chars[*i] != ']' {
            let lo = if chars[*i] == '\\' {
                *i += 1;
                unescape(chars[*i])
            } else {
                chars[*i]
            };
            *i += 1;
            // `a-z` is a range unless '-' is last in the class.
            if *i + 1 < chars.len() && chars[*i] == '-' && chars[*i + 1] != ']' {
                *i += 1;
                let hi = if chars[*i] == '\\' {
                    *i += 1;
                    unescape(chars[*i])
                } else {
                    chars[*i]
                };
                *i += 1;
                ranges.push((lo, hi));
            } else {
                ranges.push((lo, lo));
            }
        }
        *i += 1; // consume ']'
        ranges
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            'r' => '\r',
            't' => '\t',
            '0' => '\0',
            other => other,
        }
    }

    /// `{n}` / `{n,m}` repetition; defaults to exactly one.
    fn parse_repeat(chars: &[char], i: &mut usize) -> (usize, usize) {
        if *i >= chars.len() || chars[*i] != '{' {
            return (1, 1);
        }
        *i += 1;
        let mut lo = 0usize;
        while chars[*i].is_ascii_digit() {
            lo = lo * 10 + chars[*i].to_digit(10).unwrap() as usize;
            *i += 1;
        }
        let hi = if chars[*i] == ',' {
            *i += 1;
            let mut h = 0usize;
            while chars[*i].is_ascii_digit() {
                h = h * 10 + chars[*i].to_digit(10).unwrap() as usize;
                *i += 1;
            }
            h
        } else {
            lo
        };
        *i += 1; // consume '}'
        (lo, hi)
    }

    fn parse(pattern: &str) -> Vec<(Atom, usize, usize)> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    i += 1;
                    Atom::Class(parse_class(&chars, &mut i))
                }
                '\\' => {
                    i += 1;
                    if chars[i] == 'P' && i + 1 < chars.len() && chars[i + 1] == 'C' {
                        i += 2;
                        Atom::AnyNonControl
                    } else {
                        let c = unescape(chars[i]);
                        i += 1;
                        Atom::Literal(c)
                    }
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            let (lo, hi) = parse_repeat(&chars, &mut i);
            atoms.push((atom, lo, hi));
        }
        atoms
    }

    fn sample_class(ranges: &[(char, char)], rng: &mut TestRng) -> char {
        let total: u32 = ranges
            .iter()
            .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
            .sum();
        let mut idx = rng.gen_range(0..total.max(1));
        for &(lo, hi) in ranges {
            let span = hi as u32 - lo as u32 + 1;
            if idx < span {
                return char::from_u32(lo as u32 + idx).unwrap_or(lo);
            }
            idx -= span;
        }
        ranges.first().map(|&(lo, _)| lo).unwrap_or('a')
    }

    fn sample_non_control(rng: &mut TestRng) -> char {
        if rng.gen_bool(0.95) {
            char::from_u32(rng.gen_range(0x20u32..0x7F)).unwrap()
        } else {
            NON_ASCII[rng.gen_range(0..NON_ASCII.len())]
        }
    }

    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for (atom, lo, hi) in parse(pattern) {
            let count = rng.gen_range(lo..=hi);
            for _ in 0..count {
                match &atom {
                    Atom::Class(ranges) => out.push(sample_class(ranges, rng)),
                    Atom::AnyNonControl => out.push(sample_non_control(rng)),
                    Atom::Literal(c) => out.push(*c),
                }
            }
        }
        out
    }
}

/// Asserts a condition inside `proptest!`, reporting the generated inputs
/// on failure instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)));
        }
    };
}

/// `prop_assert!` for equality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(
                format!("assertion failed: `left == right`\n  left: {:?}\n right: {:?}", l, r));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `left == right`: {}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r));
        }
    }};
}

/// `prop_assert!` for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `left != right`\n  both: {:?}",
                l
            ));
        }
    }};
}

/// Picks uniformly among heterogeneous strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::union_boxed($strategy),)+])
    };
}

/// Declares property tests. Each `pat in strategy` argument is generated
/// `config.cases` times; `prop_assert*` failures report the inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                let mut __inputs = ::std::string::String::new();
                $(
                    let __value = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    __inputs.push_str(&format!(
                        "{} = {:?}; ", stringify!($pat), &__value));
                    let $pat = __value;
                )+
                let __result: ::std::result::Result<(), ::std::string::String> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__msg) = __result {
                    panic!(
                        "proptest {} failed at case {}/{}:\n{}\ninputs: {}",
                        stringify!($name), __case, __config.cases, __msg, __inputs,
                    );
                }
            }
        }
    )*};
}
