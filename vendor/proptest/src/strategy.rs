//! The [`Strategy`] trait and the combinators this workspace uses.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no shrinking: `generate` produces a
/// value directly from the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { source: self, f }
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.source.generate(rng))
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Wraps the given non-empty option list.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one strategy"
        );
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// Boxes a strategy for use in [`Union`]; lets `prop_oneof!` rely on
/// inference for the common value type.
pub fn union_boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// `&'static str` patterns act as mini-regex string strategies
/// (classes, `\PC`, `{n,m}`, concatenation).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($S:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($S,)+) = self;
                ($($S.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
