//! The per-connection HTTP state machine driven by the reactor.
//!
//! A [`Connection`] is a *pure* state machine over an [`IoSource`]: it
//! owns the read/write buffers and the keep-alive/pipelining/close
//! protocol, but performs no socket calls of its own and never blocks —
//! every transition is driven by an explicit event (`on_readable`,
//! `on_writable`, `on_response`, `begin_shutdown`) plus a caller-supplied
//! clock. That makes the whole connection lifecycle unit-testable with
//! scripted byte sequences and a fake clock: no sockets, no threads, no
//! timing dependence (see `tests/conn_machine.rs`).
//!
//! State machine:
//!
//! ```text
//!             bytes           head CRLFCRLF          request complete
//!  [ReadingHead] ───────────▶ [ReadingBody] ───────────▶ [Dispatched]
//!       ▲  ▲                                                  │ response
//!       │  │ first byte of next request                       ▼
//!       │  └────────────── [KeepAlive] ◀───────────── [Writing]
//!       │ new conn              ▲   buffer empty          │ Connection: close,
//!       │                       └── after drain           │ shutdown, or EOF
//!       │                                                 ▼
//!       └── parse error / limit breach ────────────▶ [Closing] ─▶ [Closed]
//!                (4xx queued, close marked)           drain, then close
//! ```
//!
//! Deadlines are **per phase**, not per byte: the reap deadline is armed
//! when a request starts arriving (first byte after idle), when a
//! response starts draining, and when the connection goes idle — and it
//! is *not* refreshed by intermediate progress. A slowloris client
//! trickling header bytes, or a stalled reader that stops consuming a
//! large response, therefore hits the deadline no matter how often it
//! makes one byte of progress. While a request is [`ConnState::Dispatched`]
//! the connection has no deadline at all — server-side latency (a long
//! query, a writer group commit) must never reap a well-behaved client.

use std::io::{self, ErrorKind};

use crate::http::{
    head_complete, mark_close, parse_request, write_response, Limits, ParseOutcome, Request,
};
use crate::proto::ErrorResponse;

/// Byte-level I/O the connection is driven over. `std::net::TcpStream`
/// (in nonblocking mode) is the production source; tests substitute a
/// scripted source that replays readable/writable/EOF sequences.
///
/// Contract: both calls are nonblocking — they return `WouldBlock`
/// instead of waiting, `read` returns `Ok(0)` exactly at EOF, and
/// `write` may accept any prefix of the buffer.
pub trait IoSource {
    /// Nonblocking read into `buf`.
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize>;
    /// Nonblocking write of a prefix of `buf`.
    fn write(&mut self, buf: &[u8]) -> io::Result<usize>;
}

impl IoSource for std::net::TcpStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        io::Read::read(self, buf)
    }
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        io::Write::write(self, buf)
    }
}

/// Where a connection is in its request/response lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnState {
    /// Collecting request-line + header bytes (no `\r\n\r\n` yet).
    ReadingHead,
    /// Head complete; collecting body bytes.
    ReadingBody,
    /// A complete request is at the worker pool; no deadline runs.
    Dispatched,
    /// Draining a response; the connection persists afterwards.
    Writing,
    /// Draining the final response; close once the buffer empties.
    Closing,
    /// Idle between keep-alive requests.
    KeepAlive,
    /// Finished — the owner drops the socket.
    Closed,
}

/// Outcome of a parse attempt, internal to the advance loop.
enum Parsed {
    /// A complete request; dispatch it.
    Dispatch(Box<Request>),
    /// Valid prefix; need more bytes.
    More,
    /// Framing error; a 4xx close response is queued.
    Fatal,
}

/// One connection's buffers + state. See the module doc for the machine.
pub struct Connection {
    limits: Limits,
    idle_timeout_ms: u64,
    in_buf: Vec<u8>,
    out_buf: Vec<u8>,
    out_pos: usize,
    state: ConnState,
    /// Peer half-closed its write side (`read` returned 0). A request
    /// already received keeps being served; keep-alive is off.
    eof: bool,
    /// The in-flight request asked for `Connection: close` (or was
    /// HTTP/1.0 without keep-alive).
    req_close: bool,
    /// Reap deadline for the current phase; `None` while dispatched.
    deadline_ms: Option<u64>,
    /// Requests answered on this connection (stats / tests).
    served: u64,
}

impl Connection {
    /// A fresh connection: the peer owes us a request within the idle
    /// timeout.
    pub fn new(limits: Limits, idle_timeout_ms: u64, now_ms: u64) -> Connection {
        Connection {
            limits,
            idle_timeout_ms,
            in_buf: Vec::with_capacity(1024),
            out_buf: Vec::new(),
            out_pos: 0,
            state: ConnState::ReadingHead,
            eof: false,
            req_close: false,
            deadline_ms: Some(now_ms.saturating_add(idle_timeout_ms)),
            served: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> ConnState {
        self.state
    }

    /// Whether the owner should drop the socket.
    pub fn is_closed(&self) -> bool {
        self.state == ConnState::Closed
    }

    /// Whether the reactor should watch for readability.
    pub fn wants_read(&self) -> bool {
        !self.eof
            && matches!(
                self.state,
                ConnState::ReadingHead | ConnState::ReadingBody | ConnState::KeepAlive
            )
    }

    /// Whether the reactor should watch for writability (a partial
    /// response is pending).
    pub fn wants_write(&self) -> bool {
        self.out_pos < self.out_buf.len() && self.state != ConnState::Closed
    }

    /// The phase deadline: reap the connection when `now` passes it.
    /// `None` while a request is dispatched (the server's own latency is
    /// not the client's fault) and once closed.
    pub fn deadline_ms(&self) -> Option<u64> {
        match self.state {
            ConnState::Dispatched | ConnState::Closed => None,
            _ => self.deadline_ms,
        }
    }

    /// Requests answered so far on this connection.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Readability event: read until `WouldBlock`/EOF, parsing after
    /// every chunk (fragmentation-oblivious — the parser is a pure
    /// function of the accumulated buffer). Returns at most one request
    /// to dispatch; reading then pauses until its response is queued
    /// (serial dispatch per connection bounds buffering and keeps
    /// pipelined responses in order).
    pub fn on_readable(&mut self, io: &mut dyn IoSource, now_ms: u64) -> Option<Box<Request>> {
        if !self.wants_read() {
            return None;
        }
        let mut chunk = [0u8; 4096];
        loop {
            match io.read(&mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    break;
                }
                Ok(n) => {
                    if self.state == ConnState::KeepAlive {
                        // First byte of a new request: the read phase
                        // (and its reap deadline) starts here.
                        self.state = ConnState::ReadingHead;
                        self.deadline_ms = Some(now_ms.saturating_add(self.idle_timeout_ms));
                    }
                    self.in_buf.extend_from_slice(&chunk[..n]);
                    match self.try_parse(now_ms) {
                        Parsed::Dispatch(req) => return Some(req),
                        Parsed::More => {}
                        Parsed::Fatal => {
                            // 4xx queued; push what we can right away.
                            return self.advance(io, now_ms);
                        }
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    self.state = ConnState::Closed;
                    return None;
                }
            }
        }
        if self.eof
            && matches!(
                self.state,
                ConnState::ReadingHead | ConnState::ReadingBody | ConnState::KeepAlive
            )
        {
            // The buffer cannot hold a complete request (we parse after
            // every append), so nothing more can ever be served.
            self.state = ConnState::Closed;
        }
        None
    }

    /// Writability event: drain the pending response, then advance —
    /// which may close, go idle, or dispatch the next pipelined request.
    pub fn on_writable(&mut self, io: &mut dyn IoSource, now_ms: u64) -> Option<Box<Request>> {
        match self.state {
            ConnState::Writing | ConnState::Closing => self.advance(io, now_ms),
            _ => None,
        }
    }

    /// The worker finished the dispatched request: queue its response
    /// and start draining. `force_close` (shutdown drain) closes the
    /// connection after this response even if the client wanted
    /// keep-alive.
    pub fn on_response(
        &mut self,
        mut resp: Vec<u8>,
        force_close: bool,
        io: &mut dyn IoSource,
        now_ms: u64,
    ) -> Option<Box<Request>> {
        if self.state != ConnState::Dispatched {
            return None; // reaped or errored while the worker ran
        }
        self.served += 1;
        let close = self.req_close || force_close || self.eof;
        if close {
            mark_close(&mut resp);
        }
        self.enqueue(resp, close, now_ms);
        self.advance(io, now_ms)
    }

    /// Shutdown begins: idle and half-read connections are resolved now
    /// (close, or 503 the partial request); dispatched and writing
    /// connections finish their response first — the reactor passes
    /// `force_close` on completion.
    pub fn begin_shutdown(&mut self, io: &mut dyn IoSource, now_ms: u64) {
        match self.state {
            ConnState::KeepAlive => self.state = ConnState::Closed,
            ConnState::ReadingHead | ConnState::ReadingBody => {
                if self.in_buf.is_empty() {
                    self.state = ConnState::Closed;
                } else {
                    // A partial request can never complete under the
                    // drain contract: refuse it explicitly.
                    let body = ErrorResponse::to_json("unavailable", "server is shutting down");
                    let mut resp =
                        write_response(503, "Service Unavailable", "application/json", &[], &body);
                    mark_close(&mut resp);
                    self.enqueue(resp, true, now_ms);
                    let _ = self.advance(io, now_ms);
                }
            }
            ConnState::Writing => self.state = ConnState::Closing,
            ConnState::Dispatched | ConnState::Closing | ConnState::Closed => {}
        }
    }

    /// Parses the accumulated buffer: at most one complete request, a
    /// state refinement (head vs body), or a queued framing error.
    fn try_parse(&mut self, now_ms: u64) -> Parsed {
        match parse_request(&self.in_buf, &self.limits) {
            ParseOutcome::Complete(req, consumed) => {
                self.in_buf.drain(..consumed);
                self.state = ConnState::Dispatched;
                self.deadline_ms = None;
                self.req_close = req.wants_close();
                Parsed::Dispatch(req)
            }
            ParseOutcome::Incomplete => {
                self.state = if head_complete(&self.in_buf) {
                    ConnState::ReadingBody
                } else {
                    ConnState::ReadingHead
                };
                Parsed::More
            }
            ParseOutcome::Error(e) => {
                obs::global().add("server.http.bad_requests", 1);
                let body = ErrorResponse::to_json("bad_request", &e.to_string());
                let mut resp =
                    write_response(e.status(), e.reason(), "application/json", &[], &body);
                mark_close(&mut resp);
                self.enqueue(resp, true, now_ms);
                Parsed::Fatal
            }
        }
    }

    /// Queues one serialised response and arms the write-phase deadline.
    fn enqueue(&mut self, resp: Vec<u8>, close: bool, now_ms: u64) {
        debug_assert!(self.out_pos >= self.out_buf.len(), "one response at a time");
        self.out_buf = resp;
        self.out_pos = 0;
        self.state = if close {
            ConnState::Closing
        } else {
            ConnState::Writing
        };
        self.deadline_ms = Some(now_ms.saturating_add(self.idle_timeout_ms));
    }

    /// Pushes queued bytes until `WouldBlock` or empty. Returns false on
    /// `WouldBlock` (wait for writability), true when fully drained;
    /// write errors close the connection (and return false).
    fn flush_bytes(&mut self, io: &mut dyn IoSource) -> bool {
        while self.out_pos < self.out_buf.len() {
            match io.write(&self.out_buf[self.out_pos..]) {
                Ok(0) => {
                    self.state = ConnState::Closed;
                    return false;
                }
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return false,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    self.state = ConnState::Closed;
                    return false;
                }
            }
        }
        true
    }

    /// Drives the machine after write progress: flush, then either close
    /// (Closing), go idle, or parse the next pipelined request — looping
    /// so a pipelined framing error still gets its 4xx flushed.
    fn advance(&mut self, io: &mut dyn IoSource, now_ms: u64) -> Option<Box<Request>> {
        loop {
            if self.state == ConnState::Closed {
                return None;
            }
            if !self.flush_bytes(io) {
                return None; // WouldBlock (wants_write stays true) or closed
            }
            self.out_buf.clear();
            self.out_pos = 0;
            match self.state {
                ConnState::Closing => {
                    self.state = ConnState::Closed;
                    return None;
                }
                ConnState::Writing => {
                    if self.in_buf.is_empty() {
                        if self.eof {
                            self.state = ConnState::Closed;
                        } else {
                            self.state = ConnState::KeepAlive;
                            self.deadline_ms = Some(now_ms.saturating_add(self.idle_timeout_ms));
                        }
                        return None;
                    }
                    // Pipelined bytes already buffered: the next request
                    // phase starts now.
                    self.deadline_ms = Some(now_ms.saturating_add(self.idle_timeout_ms));
                    match self.try_parse(now_ms) {
                        Parsed::Dispatch(req) => return Some(req),
                        Parsed::More => {
                            if self.eof {
                                self.state = ConnState::Closed;
                            }
                            return None;
                        }
                        Parsed::Fatal => continue, // flush the queued 4xx
                    }
                }
                // flush_bytes returned true with nothing queued — no
                // further transition owed from a write event.
                _ => return None,
            }
        }
    }
}
