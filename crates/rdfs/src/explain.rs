//! Derivation explanations ("justifications").
//!
//! OWLIM-class systems "compute only the relevant justifications w.r.t. an
//! update, at maintenance time" (§II-C): a justification is a derivation
//! of an entailed triple from asserted ones. [`explain`] produces such a
//! derivation tree for any triple of `G∞` — useful for debugging
//! ontologies, for auditing query answers, and as the conceptual basis of
//! the DRed/counting maintenance the crate implements.
//!
//! ```
//! use rdf_model::{Dictionary, Graph, Triple, Vocab};
//! use rdfs::explain::explain;
//!
//! let mut dict = Dictionary::new();
//! let vocab = Vocab::intern(&mut dict);
//! let (cat, mammal, tom) = (
//!     dict.encode_iri("http://z/Cat"),
//!     dict.encode_iri("http://z/Mammal"),
//!     dict.encode_iri("http://z/Tom"),
//! );
//! let mut g = Graph::new();
//! g.insert(Triple::new(cat, vocab.sub_class_of, mammal));
//! g.insert(Triple::new(tom, vocab.rdf_type, cat));
//!
//! let e = explain(&Triple::new(tom, vocab.rdf_type, mammal), &g, &vocab).unwrap();
//! assert_eq!(e.depth(), 1);                      // one rdfs9 application
//! assert!(e.render(&dict).contains("[rdfs9]"));  // human-readable tree
//! ```

use crate::rules::{derivations_of, Rule};
use crate::saturate;
use rdf_model::{Dictionary, Graph, Triple, Vocab};
use rustc_hash::FxHashSet;
use std::fmt::Write as _;

/// A derivation of a triple from the asserted graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Explanation {
    /// The triple is asserted in the base graph.
    Asserted(Triple),
    /// The triple follows from a rule application whose premises are in
    /// turn explained.
    Derived {
        /// The derived triple.
        triple: Triple,
        /// The immediate entailment rule applied.
        rule: Rule,
        /// Explanations of the two premises.
        premises: Box<[Explanation; 2]>,
    },
}

impl Explanation {
    /// The explained triple.
    pub fn triple(&self) -> Triple {
        match self {
            Explanation::Asserted(t) => *t,
            Explanation::Derived { triple, .. } => *triple,
        }
    }

    /// Number of rule applications in the tree.
    pub fn depth(&self) -> usize {
        match self {
            Explanation::Asserted(_) => 0,
            Explanation::Derived { premises, .. } => 1 + premises[0].depth() + premises[1].depth(),
        }
    }

    /// The asserted triples this derivation rests on (the justification's
    /// leaves).
    pub fn support(&self) -> FxHashSet<Triple> {
        let mut out = FxHashSet::default();
        self.collect_support(&mut out);
        out
    }

    fn collect_support(&self, out: &mut FxHashSet<Triple>) {
        match self {
            Explanation::Asserted(t) => {
                out.insert(*t);
            }
            Explanation::Derived { premises, .. } => {
                premises[0].collect_support(out);
                premises[1].collect_support(out);
            }
        }
    }

    /// Renders the derivation tree with decoded terms.
    pub fn render(&self, dict: &Dictionary) -> String {
        let mut out = String::new();
        self.render_into(dict, 0, &mut out);
        out
    }

    fn render_into(&self, dict: &Dictionary, indent: usize, out: &mut String) {
        let pad = "  ".repeat(indent);
        let show = |t: &Triple| -> String {
            let term = |id| {
                dict.decode(id)
                    .map_or_else(|| id.to_string(), |term| term.to_string())
            };
            format!("{} {} {}", term(t.s), term(t.p), term(t.o))
        };
        match self {
            Explanation::Asserted(t) => {
                let _ = writeln!(out, "{pad}{}   [asserted]", show(t));
            }
            Explanation::Derived {
                triple,
                rule,
                premises,
            } => {
                let _ = writeln!(out, "{pad}{}   [{}]", show(triple), rule.name());
                premises[0].render_into(dict, indent + 1, out);
                premises[1].render_into(dict, indent + 1, out);
            }
        }
    }
}

/// Explains why `t` is entailed by `base`: a derivation tree rooted at `t`
/// whose leaves are asserted triples. Returns `None` when `t` is not in
/// `G∞`.
///
/// Backward search with backtracking over the rule instances of the
/// saturated graph; the path-local cycle guard makes it complete (every
/// entailed triple has an acyclic derivation) and terminating even on
/// cyclic schemas.
pub fn explain(t: &Triple, base: &Graph, vocab: &Vocab) -> Option<Explanation> {
    let sat = saturate(base, vocab).graph;
    explain_in(t, base, &sat, vocab)
}

/// Like [`explain`], but reuses an already-computed saturation (`sat` must
/// be `saturate(base)`); the store's saturation strategies call this.
pub fn explain_in(t: &Triple, base: &Graph, sat: &Graph, vocab: &Vocab) -> Option<Explanation> {
    let mut visiting = FxHashSet::default();
    explain_rec(t, base, sat, vocab, &mut visiting)
}

fn explain_rec(
    t: &Triple,
    base: &Graph,
    sat: &Graph,
    vocab: &Vocab,
    visiting: &mut FxHashSet<Triple>,
) -> Option<Explanation> {
    if base.contains(t) {
        return Some(Explanation::Asserted(*t));
    }
    if !sat.contains(t) || !visiting.insert(*t) {
        return None;
    }
    let mut instances: Vec<(Rule, Triple, Triple)> = Vec::new();
    derivations_of(t, sat, vocab, |rule, p1, p2| instances.push((rule, p1, p2)));
    // Prefer instances whose premises are asserted: shallower trees first.
    instances.sort_by_key(|(_, p1, p2)| (!base.contains(p1)) as u8 + (!base.contains(p2)) as u8);
    let mut found = None;
    for (rule, p1, p2) in instances {
        let Some(e1) = explain_rec(&p1, base, sat, vocab, visiting) else {
            continue;
        };
        let Some(e2) = explain_rec(&p2, base, sat, vocab, visiting) else {
            continue;
        };
        found = Some(Explanation::Derived {
            triple: *t,
            rule,
            premises: Box::new([e1, e2]),
        });
        break;
    }
    visiting.remove(t);
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::TermId;

    struct Fx {
        dict: Dictionary,
        vocab: Vocab,
        g: Graph,
    }

    impl Fx {
        fn new() -> Self {
            let mut dict = Dictionary::new();
            let vocab = Vocab::intern(&mut dict);
            Fx {
                dict,
                vocab,
                g: Graph::new(),
            }
        }
        fn id(&mut self, n: &str) -> TermId {
            self.dict.encode_iri(&format!("http://ex/{n}"))
        }
        fn add(&mut self, s: TermId, p: TermId, o: TermId) {
            self.g.insert(Triple::new(s, p, o));
        }
    }

    #[test]
    fn asserted_triples_explain_as_asserted() {
        let mut f = Fx::new();
        let (a, p, b) = (f.id("a"), f.id("p"), f.id("b"));
        f.add(a, p, b);
        let e = explain(&Triple::new(a, p, b), &f.g, &f.vocab).unwrap();
        assert_eq!(e, Explanation::Asserted(Triple::new(a, p, b)));
        assert_eq!(e.depth(), 0);
    }

    #[test]
    fn one_step_derivation() {
        let mut f = Fx::new();
        let (cat, mammal, tom) = (f.id("Cat"), f.id("Mammal"), f.id("tom"));
        let v = f.vocab;
        f.add(cat, v.sub_class_of, mammal);
        f.add(tom, v.rdf_type, cat);
        let e = explain(&Triple::new(tom, v.rdf_type, mammal), &f.g, &v).unwrap();
        assert_eq!(e.depth(), 1);
        match &e {
            Explanation::Derived { rule, premises, .. } => {
                assert_eq!(*rule, Rule::Rdfs9);
                assert!(matches!(premises[0], Explanation::Asserted(_)));
                assert!(matches!(premises[1], Explanation::Asserted(_)));
            }
            other => panic!("expected derivation, got {other:?}"),
        }
        let support = e.support();
        assert_eq!(support.len(), 2);
        assert!(support.contains(&Triple::new(cat, v.sub_class_of, mammal)));
    }

    #[test]
    fn multi_step_chain_explains_all_the_way_down() {
        let mut f = Fx::new();
        let (teaches, worksfor, prof, person, bob, uni) = (
            f.id("teaches"),
            f.id("worksFor"),
            f.id("Professor"),
            f.id("Person"),
            f.id("bob"),
            f.id("uni"),
        );
        let v = f.vocab;
        f.add(teaches, v.sub_property_of, worksfor);
        f.add(worksfor, v.domain, prof);
        f.add(prof, v.sub_class_of, person);
        f.add(bob, teaches, uni);
        // bob type Person needs teaches→worksFor (rdfs7), domain (rdfs2), subclass (rdfs9)
        let e = explain(&Triple::new(bob, v.rdf_type, person), &f.g, &v).unwrap();
        assert!(e.depth() >= 3, "deep derivation, got {}", e.depth());
        // all leaves asserted
        assert!(e.support().iter().all(|t| f.g.contains(t)));
        // rendering shows rule applications over asserted leaves (the
        // search may pick any valid derivation, e.g. via the ext rules)
        let text = e.render(&f.dict);
        assert!(
            text.contains("[rdfs2]") || text.contains("[rdfs9]"),
            "{text}"
        );
        assert!(text.contains("[asserted]"));
    }

    #[test]
    fn unentailed_triples_have_no_explanation() {
        let mut f = Fx::new();
        let (a, p, b) = (f.id("a"), f.id("p"), f.id("b"));
        f.add(a, p, b);
        assert_eq!(explain(&Triple::new(b, p, a), &f.g, &f.vocab), None);
    }

    #[test]
    fn cyclic_schema_explanations_terminate() {
        let mut f = Fx::new();
        let (x, a, b) = (f.id("x"), f.id("A"), f.id("B"));
        let v = f.vocab;
        f.add(a, v.sub_class_of, b);
        f.add(b, v.sub_class_of, a);
        f.add(x, v.rdf_type, a);
        // x type B via the cycle
        let e = explain(&Triple::new(x, v.rdf_type, b), &f.g, &v).unwrap();
        assert!(e.depth() >= 1);
        // the cycle-entailed self-edge (a sc a) also has a finite explanation
        let e = explain(&Triple::new(a, v.sub_class_of, a), &f.g, &v).unwrap();
        assert_eq!(e.depth(), 1, "a ⊑ b ∧ b ⊑ a ⊢ a ⊑ a");
    }

    #[test]
    fn every_saturated_triple_is_explainable() {
        let mut f = Fx::new();
        let ids: Vec<TermId> = (0..5).map(|i| f.id(&format!("C{i}"))).collect();
        let props: Vec<TermId> = (0..3).map(|i| f.id(&format!("p{i}"))).collect();
        let v = f.vocab;
        for w in ids.windows(2) {
            f.add(w[0], v.sub_class_of, w[1]);
        }
        f.add(props[0], v.sub_property_of, props[1]);
        f.add(props[1], v.domain, ids[0]);
        f.add(props[1], v.range, ids[2]);
        for i in 0..6 {
            let s = f.id(&format!("n{i}"));
            let o = f.id(&format!("n{}", (i + 1) % 6));
            f.add(s, props[i % 2], o);
        }
        let sat = saturate(&f.g, &v).graph;
        for t in sat.iter() {
            let e = explain_in(&t, &f.g, &sat, &v)
                .unwrap_or_else(|| panic!("no explanation for saturated triple {t}"));
            assert_eq!(e.triple(), t);
            assert!(
                e.support().iter().all(|leaf| f.g.contains(leaf)),
                "leaves asserted"
            );
        }
    }
}
