//! Time sources for the registry.
//!
//! Every duration the registry records flows through the [`Clock`] trait,
//! so tests can substitute a [`ManualClock`] and make timing-dependent
//! assertions exact — no sleeps, no flaky wall-clock comparisons. The
//! production default is [`MonotonicClock`], a microsecond reading of
//! [`std::time::Instant`] against a fixed origin.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic microsecond time source.
pub trait Clock: Send + Sync {
    /// Microseconds since this clock's origin. Must never decrease.
    fn now_us(&self) -> u64;
}

/// The production clock: microseconds since the clock was created, read
/// from [`Instant`].
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// Creates a clock whose origin is now.
    pub fn new() -> MonotonicClock {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }
}

/// A test clock that only moves when told to. Share it (via `Arc`) with a
/// registry and advance it between operations: every span duration is
/// then an exact, deterministic number.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// Creates a manual clock at time 0.
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// Advances the clock by `us` microseconds.
    pub fn advance(&self, us: u64) {
        self.now.fetch_add(us, Ordering::SeqCst);
    }

    /// Sets the clock to an absolute microsecond value. Panics if the
    /// clock would go backwards (monotonicity is part of the contract).
    pub fn set(&self, us: u64) {
        let prev = self.now.swap(us, Ordering::SeqCst);
        assert!(
            prev <= us,
            "ManualClock::set would go backwards: {prev} -> {us}"
        );
    }
}

impl Clock for ManualClock {
    fn now_us(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_does_not_decrease() {
        let c = MonotonicClock::new();
        let a = c.now_us();
        let b = c.now_us();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_moves_only_when_told() {
        let c = ManualClock::new();
        assert_eq!(c.now_us(), 0);
        c.advance(5);
        assert_eq!(c.now_us(), 5);
        c.set(100);
        assert_eq!(c.now_us(), 100);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn manual_clock_rejects_time_travel() {
        let c = ManualClock::new();
        c.set(10);
        c.set(5);
    }
}
