//! Ablation bench for the storage substrate: dictionary encode/decode
//! throughput and indexed-graph probe cost vs a full scan (DESIGN.md
//! design decisions 1 and 2).

use criterion::{criterion_group, criterion_main, Criterion};
use rdf_model::{Dictionary, Graph, Pattern, Term, Triple};
use std::hint::black_box;

fn bench_dictionary(c: &mut Criterion) {
    let iris: Vec<String> = (0..10_000)
        .map(|i| format!("http://bench.example/entity/{i}"))
        .collect();
    let mut group = c.benchmark_group("dictionary");
    group.bench_function("encode_10k_fresh", |b| {
        b.iter(|| {
            let mut d = Dictionary::with_capacity(iris.len());
            for iri in &iris {
                black_box(d.encode_iri(iri));
            }
        })
    });
    let mut d = Dictionary::new();
    let ids: Vec<_> = iris.iter().map(|i| d.encode_iri(i)).collect();
    group.bench_function("encode_10k_hit", |b| {
        b.iter(|| {
            for iri in &iris {
                black_box(d.get_iri_id(iri));
            }
        })
    });
    group.bench_function("decode_10k", |b| {
        b.iter(|| {
            for &id in &ids {
                black_box(d.decode(id));
            }
        })
    });
    group.finish();
}

fn bench_graph(c: &mut Criterion) {
    let mut d = Dictionary::new();
    let mut g = Graph::new();
    let p = d.encode(&Term::iri("http://p"));
    for i in 0..20_000 {
        let s = d.encode_iri(&format!("http://s/{}", i % 2_000));
        let o = d.encode_iri(&format!("http://o/{}", i % 500));
        g.insert(Triple::new(s, p, o));
    }
    let probe_s = d.get_iri_id("http://s/42").unwrap();
    let probe_o = d.get_iri_id("http://o/7").unwrap();

    let mut group = c.benchmark_group("graph");
    group.bench_function("probe_sp", |b| {
        b.iter(|| {
            let mut n = 0usize;
            g.for_each_match(&Pattern::new(Some(probe_s), Some(p), None), |_| n += 1);
            black_box(n)
        })
    });
    group.bench_function("probe_po", |b| {
        b.iter(|| {
            let mut n = 0usize;
            g.for_each_match(&Pattern::new(None, Some(p), Some(probe_o)), |_| n += 1);
            black_box(n)
        })
    });
    // The ablation baseline: what the same lookup costs without indexes.
    group.bench_function("scan_filter_equivalent", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for t in g.iter() {
                if t.s == probe_s && t.p == p {
                    n += 1;
                }
            }
            black_box(n)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_dictionary, bench_graph);
criterion_main!(benches);
