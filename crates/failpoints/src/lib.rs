//! # webreason-failpoints — deterministic fault injection
//!
//! A minimal, dependency-free failpoint layer in the style of
//! `tikv/fail-rs`: code under test marks crash-relevant sites with
//! [`fail_point!`]`("site.name")`, and a test (or an operator chasing a
//! heisenbug) arms those sites with an action script. The layer is
//! **zero-cost unless the `failpoints` cargo feature is enabled**: with
//! the feature off, `fail_point!` expands to nothing — no registry, no
//! atomics, no branch.
//!
//! ## Arming sites
//!
//! Sites are armed from the `WEBREASON_FAILPOINTS` environment variable
//! (read once, at first evaluation) or programmatically via [`configure`]:
//!
//! ```text
//! WEBREASON_FAILPOINTS=store.journal.append=panic@3,store.merge.pre_commit=abort
//! ```
//!
//! Each entry is `site=action[@n]` where `action` is one of
//!
//! * `panic` — panic at the site (unwinding; exercises panic isolation),
//! * `abort` — abort the process at the site (no destructors, no unwind;
//!   models a crash / power cut for recovery tests),
//! * `off`   — explicitly disarmed (useful to override an outer script).
//!
//! `@n` (1-based, default 1) delays the action until the *n*-th hit of the
//! site, so a test can survive two appends and die on the third. Hits are
//! counted per site with a process-global atomic counter, which makes the
//! trigger deterministic for a deterministic workload.
//!
//! ## Naming convention
//!
//! Site names are dotted paths, `<subsystem>.<component>.<event>`:
//! `store.journal.append`, `store.checkpoint.write`,
//! `store.merge.pre_commit`, `store.maintain.incremental`,
//! `rdfs.parallel.worker`, `sparql.union.worker`. The registry is
//! open-world — arming an unknown site is not an error, it simply never
//! fires — so tests can be written against sites before they exist.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Marks a fault-injection site.
///
/// With the `failpoints` feature enabled this evaluates the site against
/// the process-global registry (possibly panicking or aborting); with the
/// feature off it expands to nothing.
#[cfg(feature = "failpoints")]
#[macro_export]
macro_rules! fail_point {
    ($name:expr) => {
        $crate::eval($name)
    };
}

/// Marks a fault-injection site (no-op build: the `failpoints` feature is
/// disabled, the macro expands to nothing).
#[cfg(not(feature = "failpoints"))]
#[macro_export]
macro_rules! fail_point {
    ($name:expr) => {};
}

#[cfg(feature = "failpoints")]
mod imp {
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex, OnceLock};

    /// What an armed site does when it triggers.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Action {
        /// Panic (unwinding) at the site.
        Panic,
        /// Abort the process at the site — models a hard crash.
        Abort,
        /// Explicitly disarmed.
        Off,
    }

    struct Site {
        action: Action,
        /// 1-based hit index on which the action fires.
        trigger_at: u64,
        hits: AtomicU64,
    }

    struct Registry {
        sites: HashMap<String, Site>,
    }

    fn registry() -> &'static Mutex<Registry> {
        static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
        REGISTRY.get_or_init(|| {
            let spec = std::env::var("WEBREASON_FAILPOINTS").unwrap_or_default();
            Mutex::new(parse(&spec))
        })
    }

    fn parse(spec: &str) -> Registry {
        let mut sites = HashMap::new();
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let Some((name, rhs)) = entry.split_once('=') else {
                continue;
            };
            let (action, trigger_at) = match rhs.split_once('@') {
                Some((a, n)) => (a, n.parse::<u64>().unwrap_or(1).max(1)),
                None => (rhs, 1),
            };
            let action = match action.trim() {
                "panic" => Action::Panic,
                "abort" | "kill" => Action::Abort,
                _ => Action::Off,
            };
            sites.insert(
                name.trim().to_owned(),
                Site {
                    action,
                    trigger_at,
                    hits: AtomicU64::new(0),
                },
            );
        }
        Registry { sites }
    }

    /// Evaluates a site: counts the hit and fires the armed action on the
    /// configured occurrence. Called by `fail_point!`.
    pub fn eval(name: &str) {
        let reg = registry().lock().expect("failpoint registry");
        let Some(site) = reg.sites.get(name) else {
            return;
        };
        let hit = site.hits.fetch_add(1, Ordering::SeqCst) + 1;
        if hit != site.trigger_at {
            return;
        }
        match site.action {
            Action::Off => {}
            Action::Panic => {
                drop(reg); // don't poison the registry for catch_unwind users
                panic!("failpoint {name} triggered (hit {hit})");
            }
            Action::Abort => {
                // Flush nothing, unwind nothing: model a hard crash.
                eprintln!("failpoint {name} aborting process (hit {hit})");
                std::process::abort();
            }
        }
    }

    /// Replaces the whole registry from a spec string (same grammar as the
    /// `WEBREASON_FAILPOINTS` environment variable). Hit counters reset.
    pub fn configure(spec: &str) {
        *registry().lock().expect("failpoint registry") = parse(spec);
    }

    /// How many times a site has been evaluated since it was last armed.
    pub fn hit_count(name: &str) -> u64 {
        registry()
            .lock()
            .expect("failpoint registry")
            .sites
            .get(name)
            .map(|s| s.hits.load(Ordering::SeqCst))
            .unwrap_or(0)
    }
}

#[cfg(feature = "failpoints")]
pub use imp::{configure, eval, hit_count, Action};

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// The registry is process-global; tests that reconfigure it must not
    /// overlap.
    fn serial() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn unarmed_sites_are_inert() {
        let _g = serial();
        configure("");
        fail_point!("nothing.armed.here");
        assert_eq!(hit_count("nothing.armed.here"), 0);
    }

    #[test]
    fn panic_fires_on_the_configured_hit() {
        let _g = serial();
        configure("t.panic=panic@3");
        fail_point!("t.panic");
        fail_point!("t.panic");
        assert_eq!(hit_count("t.panic"), 2);
        let r = std::panic::catch_unwind(|| fail_point!("t.panic"));
        assert!(r.is_err(), "third hit panics");
        // subsequent hits are inert again (one-shot trigger)
        fail_point!("t.panic");
        assert_eq!(hit_count("t.panic"), 4);
    }

    #[test]
    fn off_and_garbage_actions_never_fire() {
        let _g = serial();
        configure("t.off=off,t.junk=frobnicate,malformed-entry,x=panic@0");
        fail_point!("t.off");
        fail_point!("t.junk");
        // `@0` clamps to 1, so "x" would fire on first hit — but only for
        // a real action; `panic@0` is armed as panic at hit 1.
        let r = std::panic::catch_unwind(|| fail_point!("x"));
        assert!(r.is_err());
        assert_eq!(hit_count("t.off"), 1);
    }
}
