//! Vendored minimal reimplementation of the `smallvec` crate (the container
//! has no network access to crates.io). The inline-storage optimisation is
//! deliberately *not* reproduced — `SmallVec<[T; N]>` is a thin wrapper over
//! `Vec<T>` exposing the same API subset this workspace uses. Semantics are
//! identical; only the allocation profile differs.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut};

/// Types usable as the backing array parameter of [`SmallVec`].
pub trait Array {
    /// Element type.
    type Item;
    /// Inline capacity (unused by this vendored shim).
    fn size() -> usize;
}

impl<T, const N: usize> Array for [T; N] {
    type Item = T;
    fn size() -> usize {
        N
    }
}

/// A `Vec`-backed stand-in for `smallvec::SmallVec`.
pub struct SmallVec<A: Array> {
    inner: Vec<A::Item>,
}

impl<A: Array> SmallVec<A> {
    /// Creates an empty vector.
    #[inline]
    pub fn new() -> Self {
        SmallVec { inner: Vec::new() }
    }

    /// Creates an empty vector with room for `cap` elements.
    #[inline]
    pub fn with_capacity(cap: usize) -> Self {
        SmallVec {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Copies a slice into a new vector.
    #[inline]
    pub fn from_slice(slice: &[A::Item]) -> Self
    where
        A::Item: Clone,
    {
        SmallVec {
            inner: slice.to_vec(),
        }
    }

    /// Appends an element.
    #[inline]
    pub fn push(&mut self, value: A::Item) {
        self.inner.push(value);
    }

    /// Removes and returns the last element, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<A::Item> {
        self.inner.pop()
    }

    /// Shortens the vector to `len` elements.
    #[inline]
    pub fn truncate(&mut self, len: usize) {
        self.inner.truncate(len);
    }

    /// Removes every element.
    #[inline]
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// View as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[A::Item] {
        &self.inner
    }

    /// Converts into a plain `Vec`.
    #[inline]
    pub fn into_vec(self) -> Vec<A::Item> {
        self.inner
    }
}

impl<A: Array> Default for SmallVec<A> {
    fn default() -> Self {
        SmallVec::new()
    }
}

impl<A: Array> Deref for SmallVec<A> {
    type Target = [A::Item];
    #[inline]
    fn deref(&self) -> &[A::Item] {
        &self.inner
    }
}

impl<A: Array> DerefMut for SmallVec<A> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [A::Item] {
        &mut self.inner
    }
}

impl<A: Array> Clone for SmallVec<A>
where
    A::Item: Clone,
{
    fn clone(&self) -> Self {
        SmallVec {
            inner: self.inner.clone(),
        }
    }
}

impl<A: Array> fmt::Debug for SmallVec<A>
where
    A::Item: fmt::Debug,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<A: Array, B: Array<Item = A::Item>> PartialEq<SmallVec<B>> for SmallVec<A>
where
    A::Item: PartialEq,
{
    fn eq(&self, other: &SmallVec<B>) -> bool {
        self.inner == other.inner
    }
}

impl<A: Array> Eq for SmallVec<A> where A::Item: Eq {}

impl<A: Array> Hash for SmallVec<A>
where
    A::Item: Hash,
{
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.inner.hash(state);
    }
}

impl<A: Array> PartialOrd for SmallVec<A>
where
    A::Item: PartialOrd,
{
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        self.inner.partial_cmp(&other.inner)
    }
}

impl<A: Array> Ord for SmallVec<A>
where
    A::Item: Ord,
{
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.inner.cmp(&other.inner)
    }
}

impl<A: Array> Extend<A::Item> for SmallVec<A> {
    fn extend<I: IntoIterator<Item = A::Item>>(&mut self, iter: I) {
        self.inner.extend(iter);
    }
}

impl<A: Array> FromIterator<A::Item> for SmallVec<A> {
    fn from_iter<I: IntoIterator<Item = A::Item>>(iter: I) -> Self {
        SmallVec {
            inner: Vec::from_iter(iter),
        }
    }
}

impl<A: Array> IntoIterator for SmallVec<A> {
    type Item = A::Item;
    type IntoIter = std::vec::IntoIter<A::Item>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

impl<'a, A: Array> IntoIterator for &'a SmallVec<A> {
    type Item = &'a A::Item;
    type IntoIter = std::slice::Iter<'a, A::Item>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

impl<'a, A: Array> IntoIterator for &'a mut SmallVec<A> {
    type Item = &'a mut A::Item;
    type IntoIter = std::slice::IterMut<'a, A::Item>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter_mut()
    }
}

/// Constructs a `SmallVec` from a list of elements, like `vec!`.
#[macro_export]
macro_rules! smallvec {
    () => { $crate::SmallVec::new() };
    ($($x:expr),+ $(,)?) => {{
        let mut v = $crate::SmallVec::new();
        $(v.push($x);)+
        v
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_slice() {
        let mut v: SmallVec<[u32; 3]> = SmallVec::new();
        v.push(1);
        v.push(2);
        assert_eq!(v.as_slice(), &[1, 2]);
        assert_eq!(v.pop(), Some(2));
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn from_slice_and_eq() {
        let a: SmallVec<[u8; 4]> = SmallVec::from_slice(&[1, 2, 3]);
        let b: SmallVec<[u8; 4]> = [1u8, 2, 3].into_iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn deref_gives_slice_methods() {
        let v: SmallVec<[i32; 2]> = SmallVec::from_slice(&[3, 1, 2]);
        assert!(v.contains(&3));
        assert_eq!(v.iter().max(), Some(&3));
    }
}
