//! Turtle writer with prefix compaction.
//!
//! Produces deterministic, human-oriented Turtle: statements grouped by
//! subject (predicate lists with `;`, object lists with `,`), `a` for
//! `rdf:type`, IRIs compacted against a [`PrefixMap`], everything sorted.
//! The output round-trips through [`crate::parse_turtle`] (property-tested).

use rdf_model::{vocab, Dictionary, Graph, Term, TermId};
use std::fmt::Write as _;

/// An ordered prefix → namespace mapping used for IRI compaction.
///
/// Longest-namespace match wins, so overlapping namespaces (e.g. a vhost
/// and a path below it) compact correctly.
#[derive(Debug, Clone, Default)]
pub struct PrefixMap {
    pairs: Vec<(String, String)>,
}

impl PrefixMap {
    /// An empty map (no compaction; all IRIs written in full).
    pub fn new() -> Self {
        Self::default()
    }

    /// The well-known prefixes: `rdf:`, `rdfs:`, `xsd:`, `owl:`.
    pub fn common() -> Self {
        let mut m = Self::new();
        m.add("rdf", vocab::NS_RDF);
        m.add("rdfs", vocab::NS_RDFS);
        m.add("xsd", vocab::NS_XSD);
        m.add("owl", "http://www.w3.org/2002/07/owl#");
        m
    }

    /// Adds (or replaces) a prefix binding.
    pub fn add(&mut self, prefix: &str, namespace: &str) -> &mut Self {
        self.pairs.retain(|(p, _)| p != prefix);
        self.pairs.push((prefix.to_owned(), namespace.to_owned()));
        self
    }

    /// The bindings, in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.pairs.iter().map(|(p, n)| (p.as_str(), n.as_str()))
    }

    /// Compacts `iri` to `prefix:local` if a namespace matches and the
    /// local part is safe to write unescaped.
    fn compact(&self, iri: &str) -> Option<String> {
        let (prefix, local) = self
            .pairs
            .iter()
            .filter_map(|(p, ns)| iri.strip_prefix(ns.as_str()).map(|local| (p, local)))
            .max_by_key(|(_, local)| iri.len() - local.len())?;
        let safe = !local.is_empty()
            && !local.ends_with('.')
            && local
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.'));
        if safe {
            Some(format!("{prefix}:{local}"))
        } else {
            None
        }
    }
}

fn render_term(id: TermId, dict: &Dictionary, prefixes: &PrefixMap) -> String {
    match dict.decode(id) {
        Some(Term::Iri(iri)) => prefixes.compact(iri).unwrap_or_else(|| format!("<{iri}>")),
        Some(term) => term.to_string(),
        None => format!("{id}"),
    }
}

/// Serialises `graph` as Turtle against `prefixes`. Deterministic: subjects,
/// predicates and objects are sorted by their rendered form.
pub fn write_turtle(graph: &Graph, dict: &Dictionary, prefixes: &PrefixMap) -> String {
    let mut out = String::new();
    // Only emit the prefixes that are actually used.
    let body = {
        let mut subjects: Vec<(String, TermId)> = graph
            .subjects()
            .map(|s| (render_term(s, dict, prefixes), s))
            .collect();
        subjects.sort();
        let rdf_type = dict.get_iri_id(vocab::RDF_TYPE);
        let mut body = String::new();
        for (s_text, s) in subjects {
            let mut predicates: Vec<(String, TermId)> = Vec::new();
            graph.for_each_match(&rdf_model::Pattern::new(Some(s), None, None), |t| {
                if !predicates.iter().any(|(_, p)| *p == t.p) {
                    let text = if Some(t.p) == rdf_type {
                        "a".to_owned()
                    } else {
                        render_term(t.p, dict, prefixes)
                    };
                    predicates.push((text, t.p));
                }
            });
            predicates.sort();
            let _ = write!(body, "{s_text}");
            for (i, (p_text, p)) in predicates.iter().enumerate() {
                let mut objects: Vec<String> = graph
                    .objects(s, *p)
                    .map(|os| os.iter().map(|&o| render_term(o, dict, prefixes)).collect())
                    .unwrap_or_default();
                objects.sort();
                let sep = if i == 0 { " " } else { " ;\n    " };
                let _ = write!(body, "{sep}{p_text} {}", objects.join(" , "));
            }
            body.push_str(" .\n");
        }
        body
    };
    for (prefix, ns) in prefixes.iter() {
        if body.contains(&format!("{prefix}:")) {
            let _ = writeln!(out, "@prefix {prefix}: <{ns}> .");
        }
    }
    if !out.is_empty() && !body.is_empty() {
        out.push('\n');
    }
    out.push_str(&body);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::turtle::parse_turtle;

    fn fixture() -> (Dictionary, Graph, PrefixMap) {
        let mut dict = Dictionary::new();
        let mut g = Graph::new();
        parse_turtle(
            r#"
            @prefix ex: <http://ex/> .
            @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
            ex:Cat rdfs:subClassOf ex:Mammal .
            ex:tom a ex:Cat ; ex:name "Tom" ; ex:age 3 ; ex:likes ex:ada , ex:rex .
            _:b1 ex:p "x"@en .
        "#,
            &mut dict,
            &mut g,
        )
        .unwrap();
        let mut prefixes = PrefixMap::common();
        prefixes.add("ex", "http://ex/");
        (dict, g, prefixes)
    }

    #[test]
    fn output_is_grouped_and_compacted() {
        let (dict, g, prefixes) = fixture();
        let text = write_turtle(&g, &dict, &prefixes);
        assert!(text.contains("@prefix ex: <http://ex/> ."));
        assert!(text.contains("ex:tom a ex:Cat"), "{text}");
        assert!(text.contains(";\n    "), "predicate lists grouped");
        assert!(text.contains("ex:ada , ex:rex"), "object list");
        assert!(text.contains("ex:Cat rdfs:subClassOf ex:Mammal ."));
        assert!(!text.contains("@prefix owl:"), "unused prefixes omitted");
    }

    #[test]
    fn round_trips_through_the_parser() {
        let (dict, g, prefixes) = fixture();
        let text = write_turtle(&g, &dict, &prefixes);
        let mut dict2 = Dictionary::new();
        let mut g2 = Graph::new();
        parse_turtle(&text, &mut dict2, &mut g2).expect("writer output parses");
        assert_eq!(g.len(), g2.len());
        assert_eq!(
            crate::ntriples::write_ntriples_sorted(&g, &dict),
            crate::ntriples::write_ntriples_sorted(&g2, &dict2),
        );
    }

    #[test]
    fn deterministic_output() {
        let (dict, g, prefixes) = fixture();
        assert_eq!(
            write_turtle(&g, &dict, &prefixes),
            write_turtle(&g, &dict, &prefixes)
        );
    }

    #[test]
    fn unsafe_locals_stay_full_iris() {
        let mut dict = Dictionary::new();
        let mut g = Graph::new();
        parse_turtle(
            "@prefix ex: <http://ex/> .\n<http://ex/with/slash> ex:p <http://ex/trailing.> .",
            &mut dict,
            &mut g,
        )
        .unwrap();
        let mut prefixes = PrefixMap::new();
        prefixes.add("ex", "http://ex/");
        let text = write_turtle(&g, &dict, &prefixes);
        assert!(text.contains("<http://ex/with/slash>"), "{text}");
        assert!(text.contains("<http://ex/trailing.>"), "{text}");
        assert!(text.contains("ex:p"), "plain local still compacts");
    }

    #[test]
    fn longest_namespace_wins() {
        let mut dict = Dictionary::new();
        let mut g = Graph::new();
        parse_turtle(
            "@prefix a: <http://ex/> .\n<http://ex/sub/x> <http://ex/p> <http://ex/y> .",
            &mut dict,
            &mut g,
        )
        .unwrap();
        let mut prefixes = PrefixMap::new();
        prefixes.add("outer", "http://ex/");
        prefixes.add("inner", "http://ex/sub/");
        let text = write_turtle(&g, &dict, &prefixes);
        assert!(text.contains("inner:x"), "{text}");
        assert!(text.contains("outer:y"), "{text}");
    }

    #[test]
    fn empty_graph_writes_empty() {
        let dict = Dictionary::new();
        let g = Graph::new();
        assert_eq!(write_turtle(&g, &dict, &PrefixMap::common()), "");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;
        use rdf_model::{Literal, Triple};

        fn arb_term() -> impl Strategy<Value = Term> {
            prop_oneof![
                "[a-z0-9/._-]{1,12}".prop_map(|l| Term::iri(format!("http://ex/{l}"))),
                "\\PC{0,12}".prop_map(Term::literal),
                ("\\PC{0,8}", "[a-z]{1,4}").prop_map(|(l, t)| Term::Literal(Literal::lang(l, &t))),
                "[A-Za-z][A-Za-z0-9_]{0,6}".prop_map(Term::blank),
            ]
        }

        proptest! {
            /// write_turtle ∘ parse_turtle = identity on the triple set.
            #[test]
            fn round_trip(
                triples in proptest::collection::vec(
                    (
                        prop_oneof![
                            "[a-z0-9._-]{1,10}".prop_map(|l| Term::iri(format!("http://ex/{l}"))),
                            "[A-Za-z][A-Za-z0-9_]{0,6}".prop_map(Term::blank),
                        ],
                        "[a-z0-9._-]{1,10}".prop_map(|l| Term::iri(format!("http://ex/{l}"))),
                        arb_term(),
                    ),
                    0..20,
                )
            ) {
                let mut dict = Dictionary::new();
                let mut g = Graph::new();
                for (s, p, o) in &triples {
                    g.insert(Triple::new(dict.encode(s), dict.encode(p), dict.encode(o)));
                }
                let mut prefixes = PrefixMap::common();
                prefixes.add("ex", "http://ex/");
                let text = write_turtle(&g, &dict, &prefixes);
                let mut dict2 = Dictionary::new();
                let mut g2 = Graph::new();
                parse_turtle(&text, &mut dict2, &mut g2).expect("writer output parses");
                prop_assert_eq!(g.len(), g2.len());
                prop_assert_eq!(
                    crate::ntriples::write_ntriples_sorted(&g, &dict),
                    crate::ntriples::write_ntriples_sorted(&g2, &dict2)
                );
            }
        }
    }
}
