//! Snapshot isolation for concurrent query answering.
//!
//! The paper's amortisation story (§III) presumes a live system: queries
//! keep arriving *while* updates trigger maintenance. This module turns
//! the single-threaded [`Store`](crate::Store) into a snapshot-publishing
//! design — the writer applies updates and incremental maintenance on its
//! private state, then publishes an immutable [`StoreSnapshot`] behind an
//! atomically-swapped `Arc` epoch; readers clone the `Arc` and evaluate
//! against that frozen view, never blocking behind maintenance.
//!
//! Three invariants make this safe without fine-grained locking:
//!
//! 1. **Graphs are frozen at publish time.** A snapshot owns its graphs
//!    (cloned from the writer's state at most once per epoch, lazily, on
//!    the first read after a change); nothing mutates them afterwards.
//! 2. **The dictionary is append-only and shared.** Term ids are never
//!    reassigned, so one `Arc<RwLock<Dictionary>>` serves the writer and
//!    every snapshot: readers interning query constants cannot invalidate
//!    any id a frozen graph was encoded against.
//! 3. **Derived caches are replaced, never cleared.** The schema closure,
//!    reformulation cache and adaptive winners ride along as `Arc`s that
//!    the writer *swaps* on schema-changing updates — a reader holding an
//!    old snapshot keeps the caches consistent with *its* graph.

use crate::backward::evaluate_backward;
use crate::store::{AnswerError, ReasoningConfig};
use datalog::rdf::saturate_via_datalog;
use obs::CancelToken;
use rdf_model::{Dictionary, Graph, Vocab};
use rdfs::Schema;
use reformulation::reformulate;
use sparql::{
    evaluate, evaluate_union, parse_query, try_evaluate_union_cancel, EvalStats, Query, Solutions,
    UnionEvalError,
};
use std::num::NonZeroUsize;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Locks a `RwLock` for reading, recovering from poisoning: every shared
/// structure here is append-only or replace-only, so a reader that
/// panicked mid-read cannot have left it half-mutated.
pub(crate) fn read_lock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

/// Locks a `RwLock` for writing, recovering from poisoning (see
/// [`read_lock`]).
pub(crate) fn write_lock<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

/// Locks a `Mutex`, recovering from poisoning (see [`read_lock`]).
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// Which path the adaptive strategy learned for a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AdaptiveChoice {
    Saturated,
    Reformulated,
}

/// Schema closure, computed at most once per schema version and shared by
/// every snapshot of that version (the writer swaps the `Arc` on
/// schema-changing updates).
pub(crate) type SchemaCell = Arc<OnceLock<Schema>>;

/// Per-query reformulation cache, keyed by the query's structural form.
/// Valid for one schema version; swapped with [`SchemaCell`].
pub(crate) type RefoCache = Arc<Mutex<rustc_hash::FxHashMap<String, Query>>>;

/// Learned per-query winners of the adaptive strategy. Survives instance
/// updates, swapped on schema updates (costs may have shifted).
pub(crate) type Winners = Arc<Mutex<rustc_hash::FxHashMap<String, AdaptiveChoice>>>;

/// The structural cache key of a query (projection + patterns + DISTINCT).
pub(crate) fn query_key(q: &Query) -> String {
    format!("{:?}|{:?}|{}", q.projection, q.bgps, q.distinct)
}

/// Frozen per-strategy state: the graphs a snapshot answers against.
pub(crate) enum SnapState {
    /// Plain `q(G)`.
    Plain { graph: Graph },
    /// Maintained saturation: answer with `q(G∞)`.
    Saturated { saturated: Graph },
    /// Reformulation / backward chaining over the explicit graph.
    Schema {
        graph: Graph,
        backward: bool,
        schema: SchemaCell,
        refo_cache: RefoCache,
    },
    /// Datalog: explicit graph + per-epoch lazily materialised saturation.
    Datalog {
        graph: Graph,
        saturated: OnceLock<Graph>,
    },
    /// Adaptive hybrid: both graphs + shared learned winners.
    Adaptive {
        base: Graph,
        saturated: Graph,
        schema: SchemaCell,
        winners: Winners,
    },
}

/// One published epoch of a [`Store`](crate::Store): an immutable view
/// that answers queries with `&self`, concurrently with the writer's
/// maintenance of the *next* epoch.
///
/// Cheap to share (`Arc`), safe to keep: a snapshot taken before an
/// update keeps answering from its frozen graphs.
pub struct StoreSnapshot {
    pub(crate) epoch: u64,
    pub(crate) config: ReasoningConfig,
    pub(crate) threads: NonZeroUsize,
    pub(crate) vocab: Vocab,
    pub(crate) dict: Arc<RwLock<Dictionary>>,
    pub(crate) state: SnapState,
}

impl StoreSnapshot {
    /// The epoch this snapshot publishes. Epochs increase monotonically
    /// with every effective update; two snapshots with the same epoch are
    /// views of identical data.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The reasoning strategy the snapshot answers with.
    pub fn config(&self) -> ReasoningConfig {
        self.config
    }

    /// Explicit triples in the frozen `G`.
    pub fn base_len(&self) -> usize {
        match &self.state {
            SnapState::Plain { graph }
            | SnapState::Schema { graph, .. }
            | SnapState::Datalog { graph, .. } => graph.len(),
            SnapState::Saturated { saturated } => saturated.len(),
            SnapState::Adaptive { base, .. } => base.len(),
        }
    }

    /// Triples in the frozen saturation, when this epoch materialised one.
    pub(crate) fn saturated_len(&self) -> Option<usize> {
        match &self.state {
            SnapState::Saturated { saturated } => Some(saturated.len()),
            SnapState::Datalog { saturated, .. } => saturated.get().map(|g| g.len()),
            SnapState::Adaptive { saturated, .. } => Some(saturated.len()),
            _ => None,
        }
    }

    /// A read guard on the shared dictionary (for decoding solutions).
    pub fn dictionary(&self) -> RwLockReadGuard<'_, Dictionary> {
        read_lock(&self.dict)
    }

    /// The frozen graph a registered incremental view's dataflow probes
    /// under this snapshot's strategy: `G∞` for the saturation strategies
    /// (their entailed delta streams), the explicit `G` for plain and
    /// reformulation answering. `None` for the strategies the subscription
    /// layer does not support (backward chaining, Datalog, adaptive —
    /// their answer processes have no delta form here).
    pub fn view_graph(&self) -> Option<&Graph> {
        match &self.state {
            SnapState::Plain { graph } => Some(graph),
            SnapState::Saturated { saturated } => Some(saturated),
            SnapState::Schema {
                graph,
                backward: false,
                ..
            } => Some(graph),
            _ => None,
        }
    }

    /// For the reformulation strategy: compiles `q` into its reformulated
    /// union `q_ref` against this snapshot's schema version, through the
    /// same per-version cache the answer path uses. `Ok(None)` when this
    /// snapshot's strategy does not answer by reformulation.
    pub fn reformulated(&self, q: &Query) -> Result<Option<Query>, AnswerError> {
        match &self.state {
            SnapState::Schema {
                graph,
                backward: false,
                schema,
                refo_cache,
            } => {
                let schema = schema.get_or_init(|| Schema::extract(graph, &self.vocab));
                let key = query_key(q);
                let mut cache = lock(refo_cache);
                if let Some(cached) = cache.get(&key) {
                    return Ok(Some(cached.clone()));
                }
                let r = reformulate(q, schema, &self.vocab)?;
                cache.insert(key, r.query.clone());
                Ok(Some(r.query))
            }
            _ => Ok(None),
        }
    }

    /// Parses a SPARQL query against the shared dictionary. New constants
    /// are interned (append-only), which never disturbs existing ids.
    pub fn prepare(&self, sparql: &str) -> Result<Query, AnswerError> {
        Ok(parse_query(sparql, &mut write_lock(&self.dict))?)
    }

    /// Parses and answers in one call.
    pub fn answer_sparql(
        &self,
        sparql: &str,
    ) -> Result<(Solutions, Option<EvalStats>), AnswerError> {
        let q = self.prepare(sparql)?;
        self.answer(&q)
    }

    /// Answers a prepared query against this frozen epoch with the active
    /// strategy, applying solution modifiers / aggregates uniformly at the
    /// end. Returns the union-evaluation stats when a reformulation path
    /// ran (`None` otherwise).
    ///
    /// `&self` end to end: lazily-derived state (schema closure, Datalog
    /// saturation) lives in per-epoch `OnceLock`s, the reformulation cache
    /// and adaptive winners behind shared mutexes — so any number of
    /// readers answer concurrently with each other and with the writer.
    pub fn answer(&self, q: &Query) -> Result<(Solutions, Option<EvalStats>), AnswerError> {
        self.answer_cancel(q, &CancelToken::none())
    }

    /// [`answer`](StoreSnapshot::answer) with cooperative cancellation:
    /// the token is polled on entry and threaded into the parallel union
    /// evaluator, which checks it at branch/chunk boundaries. On trip the
    /// query returns [`AnswerError::Cancelled`] and every worker's partial
    /// state is discarded — the snapshot (including its shared scan cache
    /// and reformulation cache) is untouched, so an identical re-run
    /// produces bit-identical answers.
    pub fn answer_cancel(
        &self,
        q: &Query,
        cancel: &CancelToken,
    ) -> Result<(Solutions, Option<EvalStats>), AnswerError> {
        let reg = obs::global();
        let _span = reg.span("core.answer.query");
        reg.add("core.answer.queries", 1);
        if cancel.is_cancelled() {
            reg.add("core.answer.cancelled", 1);
            return Err(AnswerError::Cancelled);
        }
        let map_union = |e: UnionEvalError| match e {
            UnionEvalError::Worker(w) => AnswerError::Worker(w),
            UnionEvalError::Cancelled => {
                reg.add("core.answer.cancelled", 1);
                AnswerError::Cancelled
            }
        };
        let threads = self.threads;
        let mut eval_stats: Option<EvalStats> = None;
        let sols = match &self.state {
            SnapState::Plain { graph } => evaluate(graph, q),
            SnapState::Saturated { saturated } => evaluate(saturated, q),
            SnapState::Schema {
                graph,
                backward,
                schema,
                refo_cache,
            } => {
                let schema = schema.get_or_init(|| Schema::extract(graph, &self.vocab));
                if *backward {
                    evaluate_backward(graph, schema, &self.vocab, q)
                } else {
                    let key = query_key(q);
                    let q_ref = {
                        let mut cache = lock(refo_cache);
                        match cache.get(&key) {
                            Some(cached) => cached.clone(),
                            None => {
                                // Spanned separately so observed-cost
                                // analysis can keep rewrite time out of
                                // evaluation time.
                                let _refo = reg.span("core.answer.reformulate");
                                let r = reformulate(q, schema, &self.vocab)?;
                                cache.insert(key, r.query.clone());
                                r.query
                            }
                        }
                    };
                    // The union-aware evaluator: shared-prefix trie +
                    // scan cache, parallel across the threads knob. A
                    // worker panic surfaces as `AnswerError::Worker`, a
                    // tripped token as `AnswerError::Cancelled`; the
                    // snapshot itself stays consistent either way.
                    let (sols, stats) = try_evaluate_union_cancel(graph, &q_ref, threads, cancel)
                        .map_err(map_union)?;
                    eval_stats = Some(stats);
                    sols
                }
            }
            SnapState::Datalog { graph, saturated } => {
                let sat = saturated.get_or_init(|| saturate_via_datalog(graph, &self.vocab).0);
                evaluate(sat, q)
            }
            SnapState::Adaptive {
                base,
                saturated,
                schema,
                winners,
            } => {
                let key = query_key(q);
                let schema = schema.get_or_init(|| Schema::extract(base, &self.vocab));
                let choice = lock(winners).get(&key).copied();
                match choice {
                    Some(AdaptiveChoice::Saturated) => evaluate(saturated, q),
                    Some(AdaptiveChoice::Reformulated) => {
                        let r = {
                            let _refo = reg.span("core.answer.reformulate");
                            reformulate(q, schema, &self.vocab)?
                        };
                        let (sols, stats) =
                            try_evaluate_union_cancel(base, &r.query, threads, cancel)
                                .map_err(map_union)?;
                        eval_stats = Some(stats);
                        sols
                    }
                    None => {
                        // First sight of this query: learn the cheaper path.
                        // Non-DISTINCT queries pin to saturation (the
                        // reformulated union has answer-set semantics), as
                        // do queries outside the reformulation dialect.
                        if !q.distinct {
                            lock(winners).insert(key, AdaptiveChoice::Saturated);
                            evaluate(saturated, q)
                        } else {
                            match reformulate(q, schema, &self.vocab) {
                                Err(_) => {
                                    lock(winners).insert(key, AdaptiveChoice::Saturated);
                                    evaluate(saturated, q)
                                }
                                Ok(r) => {
                                    let start = std::time::Instant::now();
                                    let sat_sols = evaluate(saturated, q);
                                    let sat_time = start.elapsed();
                                    let start = std::time::Instant::now();
                                    // Measure the path the strategy would
                                    // actually take: the union-aware one.
                                    let _ = evaluate_union(base, &r.query, threads);
                                    let ref_time = start.elapsed();
                                    lock(winners).insert(
                                        key,
                                        if sat_time <= ref_time {
                                            AdaptiveChoice::Saturated
                                        } else {
                                            AdaptiveChoice::Reformulated
                                        },
                                    );
                                    sat_sols
                                }
                            }
                        }
                    }
                }
            }
        };
        let sols = sparql::finalize(sols, q, &mut write_lock(&self.dict));
        Ok((sols, eval_stats))
    }
}

/// The publication slot: one `RwLock`-guarded `Arc` the writer swaps and
/// readers clone. The lock is held only for the pointer copy, never
/// during evaluation or maintenance.
pub(crate) struct SnapshotCell {
    slot: RwLock<Arc<StoreSnapshot>>,
}

impl SnapshotCell {
    pub(crate) fn new(initial: Arc<StoreSnapshot>) -> Self {
        SnapshotCell {
            slot: RwLock::new(initial),
        }
    }

    /// The most recently published snapshot.
    pub(crate) fn current(&self) -> Arc<StoreSnapshot> {
        read_lock(&self.slot).clone()
    }

    /// Atomically replaces the published snapshot.
    pub(crate) fn publish(&self, snap: Arc<StoreSnapshot>) {
        *write_lock(&self.slot) = snap;
    }
}

/// A cloneable read handle onto a [`Store`](crate::Store): server worker
/// threads (and tests) hold one per thread and answer queries against
/// whatever epoch the writer last published, without any access to the
/// writer itself.
///
/// Obtained from [`Store::reader`](crate::Store::reader) or
/// [`DurableStore::reader`](crate::DurableStore::reader).
#[derive(Clone)]
pub struct StoreReader {
    pub(crate) cell: Arc<SnapshotCell>,
    pub(crate) dict: Arc<RwLock<Dictionary>>,
}

impl StoreReader {
    /// The most recently published epoch, frozen. Hold it to evaluate
    /// several queries against one consistent view.
    pub fn snapshot(&self) -> Arc<StoreSnapshot> {
        self.cell.current()
    }

    /// A read guard on the shared dictionary (decoding solutions).
    pub fn dictionary(&self) -> RwLockReadGuard<'_, Dictionary> {
        read_lock(&self.dict)
    }

    /// Parses a SPARQL query against the shared dictionary.
    pub fn prepare(&self, sparql: &str) -> Result<Query, AnswerError> {
        Ok(parse_query(sparql, &mut write_lock(&self.dict))?)
    }

    /// Parses and answers against the current published epoch. Returns
    /// the solutions, the union-evaluation stats when a reformulation
    /// path ran, and the epoch that was answered — so callers can assert
    /// monotonic reads.
    pub fn answer_sparql(
        &self,
        sparql: &str,
    ) -> Result<(Solutions, Option<EvalStats>, u64), AnswerError> {
        let snap = self.snapshot();
        let q = self.prepare(sparql)?;
        let (sols, stats) = snap.answer(&q)?;
        Ok((sols, stats, snap.epoch()))
    }

    /// Answers a prepared query against the current published epoch.
    pub fn answer(&self, q: &Query) -> Result<(Solutions, Option<EvalStats>, u64), AnswerError> {
        self.answer_cancel(q, &CancelToken::none())
    }

    /// [`answer`](StoreReader::answer) with cooperative cancellation (see
    /// [`StoreSnapshot::answer_cancel`]).
    pub fn answer_cancel(
        &self,
        q: &Query,
        cancel: &CancelToken,
    ) -> Result<(Solutions, Option<EvalStats>, u64), AnswerError> {
        let snap = self.snapshot();
        let (sols, stats) = snap.answer_cancel(q, cancel)?;
        Ok((sols, stats, snap.epoch()))
    }

    /// [`answer_sparql`](StoreReader::answer_sparql) with cooperative
    /// cancellation (see [`StoreSnapshot::answer_cancel`]).
    pub fn answer_sparql_cancel(
        &self,
        sparql: &str,
        cancel: &CancelToken,
    ) -> Result<(Solutions, Option<EvalStats>, u64), AnswerError> {
        let snap = self.snapshot();
        let q = self.prepare(sparql)?;
        let (sols, stats) = snap.answer_cancel(&q, cancel)?;
        Ok((sols, stats, snap.epoch()))
    }
}
