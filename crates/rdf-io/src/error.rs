//! Parse errors with line positions.

use std::fmt;

/// An error raised while parsing an RDF document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending input.
    pub line: usize,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}
