//! Command-line argument parsing (hand-rolled; no dependency needed for
//! a handful of commands and flags).

use std::fmt;
use webreason_core::FsyncPolicy;

/// A reasoning strategy name accepted on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// No reasoning (`q(G)`).
    None,
    /// Saturation with full recomputation on updates.
    Saturation,
    /// Saturation maintained by DRed.
    DRed,
    /// Saturation maintained by counting.
    Counting,
    /// RDFS-Plus (OWL inverse/symmetric/transitive).
    Plus,
    /// Query reformulation.
    Reformulation,
    /// LiteMat interval rewriting (range scans over hierarchy intervals).
    Interval,
    /// Adaptive hybrid (learns per query).
    Adaptive,
    /// Backward chaining.
    Backward,
    /// Datalog translation.
    Datalog,
}

impl Strategy {
    fn parse(s: &str) -> Option<Strategy> {
        Some(match s {
            "none" => Strategy::None,
            "saturation" | "recompute" => Strategy::Saturation,
            "dred" => Strategy::DRed,
            "counting" => Strategy::Counting,
            "plus" | "rdfs-plus" => Strategy::Plus,
            "reformulation" => Strategy::Reformulation,
            "interval" | "litemat" => Strategy::Interval,
            "adaptive" => Strategy::Adaptive,
            "backward" | "backward-chaining" => Strategy::Backward,
            "datalog" => Strategy::Datalog,
            _ => return None,
        })
    }
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `webreason query …`
    Query {
        /// Data files to load.
        files: Vec<String>,
        /// SPARQL text (already dereferenced if given as `@file`).
        sparql: String,
        /// Strategy to answer with (`None` = the default, or — with
        /// `--journal` — whatever strategy the journaled store has).
        strategy: Option<Strategy>,
        /// Maximum solutions printed.
        limit_display: usize,
        /// Worker threads for saturation passes (`None` = default / the
        /// journaled store's count).
        threads: Option<usize>,
        /// Durability directory: updates are journaled and the store is
        /// recovered from it on the next run.
        journal: Option<String>,
        /// When journal appends reach the disk (`--fsync always|never`).
        fsync: FsyncPolicy,
    },
    /// `webreason saturate …`
    Saturate {
        /// Data files to load.
        files: Vec<String>,
        /// Worker threads (`None` = sequential).
        parallel: Option<usize>,
        /// `nt` or `ttl` output.
        format: String,
        /// Full-RDFS structural closure instead of the database fragment.
        full: bool,
    },
    /// `webreason reformulate …`
    Reformulate {
        /// Data files to load (for the schema).
        files: Vec<String>,
        /// SPARQL text.
        sparql: String,
    },
    /// `webreason explain …`
    Explain {
        /// Data files to load.
        files: Vec<String>,
        /// The triple, as three N-Triples terms.
        triple: String,
    },
    /// `webreason stats …`
    Stats {
        /// Data files to load.
        files: Vec<String>,
    },
    /// `webreason thresholds …` — the Fig. 3 analysis on user data.
    Thresholds {
        /// Data files to load.
        files: Vec<String>,
        /// Path to a query file: one query per line, optionally
        /// `name<TAB>query` or `name|query`.
        queries: String,
    },
    /// `webreason metrics` — run a built-in workload against every
    /// instrumented subsystem and print the observability snapshot.
    Metrics {
        /// `json` or `prometheus` output.
        format: String,
        /// Durability directory for the journalled part of the workload
        /// (`None` = a scratch directory, removed afterwards).
        journal: Option<String>,
    },
    /// `webreason serve …` — run the embedded HTTP query/update server
    /// over a journaled store.
    Serve {
        /// Bind address, e.g. `127.0.0.1:7878` (`:0` picks a free port).
        addr: String,
        /// Worker threads serving queries.
        threads: usize,
        /// Durability directory (created on first run; recovered after).
        journal: String,
        /// When journal appends reach the disk.
        fsync: FsyncPolicy,
        /// Bounded writer-queue depth (a full queue answers 429).
        queue: usize,
        /// Drain queued update scripts as one fsync+publish group.
        group_commit: bool,
        /// Stop after this many seconds (`None` = run until killed).
        duration_secs: Option<u64>,
        /// Connection-handling engine: `reactor` (default) or `threaded`.
        backend: String,
        /// Open-connection cap; excess accepts are refused with 503.
        max_conns: usize,
        /// Per-phase idle timeout in milliseconds before a stalled
        /// connection is reaped.
        idle_timeout_ms: u64,
        /// Deadline applied to requests that send no
        /// `X-Webreason-Deadline-Ms` header (`None` = no default).
        default_deadline_ms: Option<u64>,
        /// Upper clamp on any per-request deadline header.
        max_deadline_ms: u64,
        /// Live `POST /subscribe` registrations allowed at once
        /// (0 disables the subscription subsystem).
        max_subscriptions: usize,
        /// Reasoning strategy for a freshly created journal (`None` =
        /// counting saturation); an existing journal keeps the strategy
        /// it was created with.
        strategy: Option<Strategy>,
    },
    /// `webreason checkpoint <journal-dir>` — snapshot a durable store.
    Checkpoint {
        /// The durability directory holding the journal.
        dir: String,
    },
    /// `webreason recover <journal-dir>` — rebuild and summarise a
    /// durable store without modifying it.
    Recover {
        /// The durability directory holding the journal.
        dir: String,
    },
    /// `webreason help`
    Help,
}

/// A command-line or execution error, with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Reads a `--sparql` value: literal text, or `@path` to read a file.
fn sparql_value(raw: &str) -> Result<String, CliError> {
    if let Some(path) = raw.strip_prefix('@') {
        std::fs::read_to_string(path)
            .map_err(|e| err(format!("cannot read query file {path}: {e}")))
    } else {
        Ok(raw.to_owned())
    }
}

/// Parses the command line (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let Some(command) = args.first() else {
        return Err(err("missing command; try `webreason help`"));
    };
    if command == "help" || command == "--help" || command == "-h" {
        return Ok(Command::Help);
    }

    // Split positionals (files) from --flag value pairs.
    let mut files = Vec::new();
    let mut flags: Vec<(String, String)> = Vec::new();
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let value = it
                .next()
                .ok_or_else(|| err(format!("flag --{name} needs a value")))?;
            flags.push((name.to_owned(), value.clone()));
        } else {
            files.push(a.clone());
        }
    }
    let flag = |name: &str| {
        flags
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    };
    let known_flags: &[&str] = &[
        "sparql",
        "strategy",
        "triple",
        "parallel",
        "format",
        "limit-display",
        "queries",
        "entailment",
        "threads",
        "journal",
        "fsync",
        "addr",
        "queue",
        "group-commit",
        "duration-secs",
        "backend",
        "max-conns",
        "idle-timeout",
        "default-deadline-ms",
        "max-deadline-ms",
        "max-subscriptions",
    ];
    for (name, _) in &flags {
        if !known_flags.contains(&name.as_str()) {
            return Err(err(format!("unknown flag --{name}; try `webreason help`")));
        }
    }
    // The durability commands take the journal directory as their only
    // positional; every data-driven command needs at least one file —
    // except `query --journal`, whose data may live entirely in the
    // journal.
    match command.as_str() {
        "checkpoint" | "recover" => {
            if files.len() != 1 {
                return Err(err(format!("{command} needs exactly one <journal-dir>")));
            }
        }
        "query" if flag("journal").is_some() => {}
        "serve" => {
            if !files.is_empty() {
                return Err(err(
                    "serve takes no data files; load via the journal or POST /update",
                ));
            }
        }
        "metrics" => {
            if !files.is_empty() {
                return Err(err(
                    "metrics runs a built-in workload and takes no data files",
                ));
            }
        }
        _ => {
            if files.is_empty() {
                return Err(err("no data files given"));
            }
        }
    }

    match command.as_str() {
        "query" => {
            let sparql = sparql_value(flag("sparql").ok_or_else(|| err("query needs --sparql"))?)?;
            let strategy = match flag("strategy") {
                None => None,
                Some(s) => {
                    Some(Strategy::parse(s).ok_or_else(|| err(format!("unknown strategy {s:?}")))?)
                }
            };
            let limit_display = match flag("limit-display") {
                None => 20,
                Some(v) => v
                    .parse()
                    .map_err(|_| err("--limit-display needs a number"))?,
            };
            let threads = match flag("threads") {
                None => None,
                Some(v) => Some(
                    v.parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| err("--threads needs a positive number"))?,
                ),
            };
            let journal = flag("journal").map(str::to_owned);
            let fsync = match flag("fsync") {
                None => FsyncPolicy::Always,
                Some(v) => FsyncPolicy::parse(v).ok_or_else(|| {
                    err(format!("unknown fsync policy {v:?}; use always or never"))
                })?,
            };
            if fsync != FsyncPolicy::Always && journal.is_none() {
                return Err(err("--fsync only applies with --journal"));
            }
            Ok(Command::Query {
                files,
                sparql,
                strategy,
                limit_display,
                threads,
                journal,
                fsync,
            })
        }
        "metrics" => {
            let format = flag("format").unwrap_or("json").to_owned();
            if format != "json" && format != "prometheus" {
                return Err(err(format!(
                    "unknown format {format:?}; use json or prometheus"
                )));
            }
            let journal = flag("journal").map(str::to_owned);
            Ok(Command::Metrics { format, journal })
        }
        "serve" => {
            let journal = flag("journal")
                .ok_or_else(|| err("serve needs --journal <dir>"))?
                .to_owned();
            let addr = flag("addr").unwrap_or("127.0.0.1:7878").to_owned();
            let threads = match flag("threads") {
                None => 4,
                Some(v) => v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| err("--threads needs a positive number"))?,
            };
            let queue = match flag("queue") {
                None => 64,
                Some(v) => v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| err("--queue needs a positive number"))?,
            };
            let fsync = match flag("fsync") {
                None => FsyncPolicy::Always,
                Some(v) => FsyncPolicy::parse(v).ok_or_else(|| {
                    err(format!("unknown fsync policy {v:?}; use always or never"))
                })?,
            };
            let group_commit = match flag("group-commit") {
                None | Some("on") => true,
                Some("off") => false,
                Some(other) => {
                    return Err(err(format!(
                        "unknown group-commit mode {other:?}; use on or off"
                    )))
                }
            };
            let duration_secs = match flag("duration-secs") {
                None => None,
                Some(v) => Some(
                    v.parse::<u64>()
                        .map_err(|_| err("--duration-secs needs a number"))?,
                ),
            };
            let backend = match flag("backend") {
                None => "reactor".to_owned(),
                Some(v @ ("reactor" | "threaded")) => v.to_owned(),
                Some(other) => {
                    return Err(err(format!(
                        "unknown backend {other:?}; use reactor or threaded"
                    )))
                }
            };
            let max_conns = match flag("max-conns") {
                None => 4096,
                Some(v) => v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| err("--max-conns needs a positive number"))?,
            };
            let idle_timeout_ms = match flag("idle-timeout") {
                None => 10_000,
                Some(v) => v
                    .parse::<u64>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| err("--idle-timeout needs milliseconds (>= 1)"))?,
            };
            // 0 disables the default deadline (requests without a header
            // run uncapped), matching the header's `0 = uncapped` rule.
            let default_deadline_ms = match flag("default-deadline-ms") {
                None => Some(30_000),
                Some(v) => v
                    .parse::<u64>()
                    .map(|n| (n > 0).then_some(n))
                    .map_err(|_| err("--default-deadline-ms needs milliseconds (0 = off)"))?,
            };
            let max_deadline_ms = match flag("max-deadline-ms") {
                None => 60_000,
                Some(v) => v
                    .parse::<u64>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| err("--max-deadline-ms needs milliseconds (>= 1)"))?,
            };
            // 0 is legal: it turns the subscription subsystem off.
            let max_subscriptions = match flag("max-subscriptions") {
                None => 64,
                Some(v) => v
                    .parse::<usize>()
                    .map_err(|_| err("--max-subscriptions needs a number (0 = off)"))?,
            };
            // Only consulted when the journal is created fresh; an
            // existing journal keeps the strategy it was created with.
            let strategy = match flag("strategy") {
                None => None,
                Some(v) => {
                    Some(Strategy::parse(v).ok_or_else(|| err(format!("unknown strategy {v:?}")))?)
                }
            };
            Ok(Command::Serve {
                addr,
                threads,
                journal,
                fsync,
                queue,
                group_commit,
                duration_secs,
                backend,
                max_conns,
                idle_timeout_ms,
                default_deadline_ms,
                max_deadline_ms,
                max_subscriptions,
                strategy,
            })
        }
        "checkpoint" => Ok(Command::Checkpoint {
            dir: files.remove(0),
        }),
        "recover" => Ok(Command::Recover {
            dir: files.remove(0),
        }),
        "saturate" => {
            let parallel = match flag("parallel") {
                None => None,
                Some(v) => Some(
                    v.parse::<usize>()
                        .map_err(|_| err("--parallel needs a number"))?,
                ),
            };
            let format = flag("format").unwrap_or("nt").to_owned();
            if format != "nt" && format != "ttl" {
                return Err(err(format!("unknown format {format:?}; use nt or ttl")));
            }
            let full = match flag("entailment") {
                None | Some("fragment") => false,
                Some("full") => true,
                Some(other) => {
                    return Err(err(format!(
                        "unknown entailment {other:?}; use fragment or full"
                    )))
                }
            };
            Ok(Command::Saturate {
                files,
                parallel,
                format,
                full,
            })
        }
        "reformulate" => {
            let sparql =
                sparql_value(flag("sparql").ok_or_else(|| err("reformulate needs --sparql"))?)?;
            Ok(Command::Reformulate { files, sparql })
        }
        "explain" => {
            let triple = flag("triple")
                .ok_or_else(|| err("explain needs --triple \"<s> <p> <o>\""))?
                .to_owned();
            Ok(Command::Explain { files, triple })
        }
        "stats" => Ok(Command::Stats { files }),
        "thresholds" => {
            let queries = flag("queries")
                .ok_or_else(|| err("thresholds needs --queries <file>"))?
                .to_owned();
            Ok(Command::Thresholds { files, queries })
        }
        other => Err(err(format!(
            "unknown command {other:?}; try `webreason help`"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn parses_query_command() {
        let c = parse_args(&argv(
            "query data.ttl more.nt --sparql SELECT --strategy reformulation --limit-display 5 \
             --threads 4",
        ))
        .unwrap();
        assert_eq!(
            c,
            Command::Query {
                files: vec!["data.ttl".into(), "more.nt".into()],
                sparql: "SELECT".into(),
                strategy: Some(Strategy::Reformulation),
                limit_display: 5,
                threads: Some(4),
                journal: None,
                fsync: FsyncPolicy::Always,
            }
        );
    }

    #[test]
    fn defaults() {
        let c = parse_args(&argv("query d.ttl --sparql Q")).unwrap();
        match c {
            Command::Query {
                strategy,
                limit_display,
                threads,
                journal,
                fsync,
                ..
            } => {
                assert_eq!(strategy, None, "resolved to counting at run time");
                assert_eq!(limit_display, 20);
                assert_eq!(threads, None);
                assert_eq!(journal, None);
                assert_eq!(fsync, FsyncPolicy::Always);
            }
            other => panic!("{other:?}"),
        }
        let c = parse_args(&argv("saturate d.ttl")).unwrap();
        assert_eq!(
            c,
            Command::Saturate {
                files: vec!["d.ttl".into()],
                parallel: None,
                format: "nt".into(),
                full: false,
            }
        );
    }

    #[test]
    fn strategy_aliases() {
        for (name, want) in [
            ("none", Strategy::None),
            ("dred", Strategy::DRed),
            ("plus", Strategy::Plus),
            ("interval", Strategy::Interval),
            ("litemat", Strategy::Interval),
            ("backward-chaining", Strategy::Backward),
            ("datalog", Strategy::Datalog),
        ] {
            let c = parse_args(&argv(&format!("query d --sparql Q --strategy {name}"))).unwrap();
            assert!(matches!(c, Command::Query { strategy, .. } if strategy == Some(want)));
        }
    }

    #[test]
    fn durability_commands_and_flags() {
        assert_eq!(
            parse_args(&argv("checkpoint /tmp/j")).unwrap(),
            Command::Checkpoint {
                dir: "/tmp/j".into()
            }
        );
        assert_eq!(
            parse_args(&argv("recover /tmp/j")).unwrap(),
            Command::Recover {
                dir: "/tmp/j".into()
            }
        );
        // a journaled query needs no data files; --fsync rides along
        let c = parse_args(&argv("query --sparql Q --journal /tmp/j --fsync never")).unwrap();
        match c {
            Command::Query {
                files,
                journal,
                fsync,
                ..
            } => {
                assert!(files.is_empty());
                assert_eq!(journal.as_deref(), Some("/tmp/j"));
                assert_eq!(fsync, FsyncPolicy::Never);
            }
            other => panic!("{other:?}"),
        }
        for (line, needle) in [
            ("checkpoint", "exactly one"),
            ("recover a b", "exactly one"),
            (
                "query --sparql Q --journal /tmp/j --fsync sometimes",
                "unknown fsync",
            ),
            (
                "query d.ttl --sparql Q --fsync never",
                "only applies with --journal",
            ),
        ] {
            let e = parse_args(&argv(line)).unwrap_err();
            assert!(e.0.contains(needle), "{line:?}: {e}");
        }
    }

    #[test]
    fn parses_serve_command() {
        assert_eq!(
            parse_args(&argv("serve --journal /tmp/j")).unwrap(),
            Command::Serve {
                addr: "127.0.0.1:7878".into(),
                threads: 4,
                journal: "/tmp/j".into(),
                fsync: FsyncPolicy::Always,
                queue: 64,
                group_commit: true,
                duration_secs: None,
                backend: "reactor".into(),
                max_conns: 4096,
                idle_timeout_ms: 10_000,
                default_deadline_ms: Some(30_000),
                max_deadline_ms: 60_000,
                max_subscriptions: 64,
                strategy: None,
            }
        );
        assert_eq!(
            parse_args(&argv(
                "serve --journal /tmp/j --addr 127.0.0.1:0 --threads 2 --queue 8 \
                 --fsync never --group-commit off --duration-secs 3 \
                 --backend threaded --max-conns 128 --idle-timeout 2500 \
                 --default-deadline-ms 0 --max-deadline-ms 120000 \
                 --max-subscriptions 8 --strategy interval"
            ))
            .unwrap(),
            Command::Serve {
                addr: "127.0.0.1:0".into(),
                threads: 2,
                journal: "/tmp/j".into(),
                fsync: FsyncPolicy::Never,
                queue: 8,
                group_commit: false,
                duration_secs: Some(3),
                backend: "threaded".into(),
                max_conns: 128,
                idle_timeout_ms: 2500,
                default_deadline_ms: None,
                max_deadline_ms: 120_000,
                max_subscriptions: 8,
                strategy: Some(Strategy::Interval),
            }
        );
        for (line, needle) in [
            ("serve", "needs --journal"),
            ("serve data.ttl --journal /tmp/j", "takes no data files"),
            ("serve --journal /tmp/j --threads 0", "positive number"),
            ("serve --journal /tmp/j --queue nope", "positive number"),
            (
                "serve --journal /tmp/j --group-commit sometimes",
                "use on or off",
            ),
            (
                "serve --journal /tmp/j --duration-secs soon",
                "needs a number",
            ),
            (
                "serve --journal /tmp/j --backend fibers",
                "use reactor or threaded",
            ),
            ("serve --journal /tmp/j --max-conns 0", "positive number"),
            (
                "serve --journal /tmp/j --strategy fibers",
                "unknown strategy",
            ),
            (
                "serve --journal /tmp/j --idle-timeout never",
                "milliseconds",
            ),
            (
                "serve --journal /tmp/j --default-deadline-ms soon",
                "milliseconds",
            ),
            ("serve --journal /tmp/j --max-deadline-ms 0", "milliseconds"),
        ] {
            let e = parse_args(&argv(line)).unwrap_err();
            assert!(e.0.contains(needle), "{line:?}: {e}");
        }
    }

    #[test]
    fn parses_metrics_command() {
        assert_eq!(
            parse_args(&argv("metrics")).unwrap(),
            Command::Metrics {
                format: "json".into(),
                journal: None,
            }
        );
        assert_eq!(
            parse_args(&argv("metrics --format prometheus --journal /tmp/j")).unwrap(),
            Command::Metrics {
                format: "prometheus".into(),
                journal: Some("/tmp/j".into()),
            }
        );
        for (line, needle) in [
            ("metrics --format xml", "unknown format"),
            ("metrics data.ttl", "takes no data files"),
        ] {
            let e = parse_args(&argv(line)).unwrap_err();
            assert!(e.0.contains(needle), "{line:?}: {e}");
        }
    }

    #[test]
    fn help_variants() {
        for h in ["help", "--help", "-h"] {
            assert_eq!(parse_args(&argv(h)).unwrap(), Command::Help);
        }
    }

    #[test]
    fn error_cases() {
        for (line, needle) in [
            ("", "missing command"),
            ("frobnicate d.ttl", "unknown command"),
            ("query --sparql Q", "no data files"),
            ("query d.ttl", "needs --sparql"),
            ("query d.ttl --sparql", "needs a value"),
            ("query d.ttl --sparql Q --strategy warp", "unknown strategy"),
            ("query d.ttl --sparql Q --bogus x", "unknown flag"),
            ("query d.ttl --sparql Q --threads 0", "positive number"),
            ("query d.ttl --sparql Q --threads lots", "positive number"),
            ("saturate d.ttl --format xml", "unknown format"),
            ("explain d.ttl", "needs --triple"),
            ("query d.ttl --sparql @/nonexistent/query.rq", "cannot read"),
        ] {
            let e = parse_args(&argv(line)).unwrap_err();
            assert!(e.0.contains(needle), "{line:?}: {e}");
        }
    }
}
