//! Delta evaluation of BGP union queries — the dataflow layer behind
//! incremental materialized views.
//!
//! A registered query is compiled once into a [`DeltaProgram`]; when the
//! graph changes from `G_old` to `G_new = G_old ± Δ`, the program emits the
//! *signed multiplicity change* of every answer row in `O(|Δ|)` join work
//! instead of re-evaluating from scratch. The algebra is the classical
//! delta rule for a k-way join (all patterns range over the same graph, so
//! every pattern position sees the same `Δ`):
//!
//! ```text
//! Δ(P₀ ⋈ … ⋈ Pₖ₋₁) = Σᵢ  P₀(old) ⋈ … ⋈ Pᵢ₋₁(old) ⋈ ΔPᵢ ⋈ Pᵢ₊₁(new) ⋈ … ⋈ Pₖ₋₁(new)
//! ```
//!
//! Each term has exactly one `Δ` factor, so an emitted row's multiplicity
//! change is the sign of the delta triple that seeded it (`+1` insert,
//! `-1` delete); the telescoping sum makes the union of terms *exactly*
//! `q(G_new) − q(G_old)` in the bag algebra. Union branches contribute
//! independently (bag-union is linear). `DISTINCT` is **not** applied
//! here: consumers keep per-row multiplicity counts and emit set-level
//! transitions on 0 ↔ positive crossings — collapsing early would retract
//! a row that still has other derivations (the bag-vs-set bug class).
//!
//! Filters commute with the delta rule (they are per-row predicates on
//! projected — hence bound — variables) and are applied to every emitted
//! binding. Queries with aggregates, negation or solution modifiers have
//! no incremental form here and are rejected at compile time.

use crate::ast::{Bgp, CompareOp, Filter, QTerm, Query, TriplePattern, Variable};
use crate::eval::{bind_triple, compare_terms, resolve};
use crate::plan::{plan_bgp_with, DistinctCounts};
use rdf_model::{Dictionary, Graph, Pattern, TermId, Triple};
use rustc_hash::FxHashSet;
use smallvec::SmallVec;
use std::fmt;

/// Why a query has no incremental (delta) form in this dataflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaUnsupported {
    /// Aggregates (`COUNT`) need their own maintenance operators.
    Aggregate,
    /// `FILTER NOT EXISTS` is non-monotone per *binding*, not per row —
    /// a base delta can flip answers that no delta term seeds.
    NotExists,
    /// `ORDER BY` / `LIMIT` / `OFFSET` are presentation-level; a delta
    /// stream of an ordered prefix is not well-defined here.
    Modifiers,
}

impl fmt::Display for DeltaUnsupported {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match self {
            DeltaUnsupported::Aggregate => "aggregate queries",
            DeltaUnsupported::NotExists => "FILTER NOT EXISTS",
            DeltaUnsupported::Modifiers => "solution modifiers (ORDER BY/LIMIT/OFFSET)",
        };
        write!(f, "{what} cannot be incrementally maintained")
    }
}

impl std::error::Error for DeltaUnsupported {}

/// One union branch of a compiled program: the BGP plus, per delta
/// position `i`, a join order for the remaining patterns (graph-independent
/// connectivity ordering, computed once at compile time).
#[derive(Debug)]
struct DeltaBranch {
    bgp: Bgp,
    /// `orders[i]` = evaluation order of the patterns `≠ i`, starting from
    /// the variables the delta triple binds at position `i`.
    orders: Vec<Vec<usize>>,
}

/// A query compiled for delta evaluation. Built once per registered view
/// by [`compile_delta`]; [`DeltaProgram::eval_delta`] then costs
/// `O(|Δ| · joins)` per update batch.
#[derive(Debug)]
pub struct DeltaProgram {
    n_vars: usize,
    projection: Vec<Variable>,
    filters: Vec<Filter>,
    branches: Vec<DeltaBranch>,
}

/// Orders the patterns of `bgp` other than `seed` so that each step stays
/// connected to the already-bound variables where possible — the same
/// greedy discipline as the cost-based planner, but graph-independent
/// (cardinalities change every epoch; connectivity does not).
fn connectivity_order(bgp: &Bgp, seed: usize) -> Vec<usize> {
    let mut bound: FxHashSet<Variable> = bgp.patterns[seed].variables().into_iter().collect();
    let mut remaining: Vec<usize> = (0..bgp.patterns.len()).filter(|&j| j != seed).collect();
    let mut order = Vec::with_capacity(remaining.len());
    while !remaining.is_empty() {
        let pick = remaining
            .iter()
            .position(|&j| {
                let tp = &bgp.patterns[j];
                tp.variables().is_empty() || tp.variables().iter().any(|v| bound.contains(v))
            })
            .unwrap_or(0);
        let j = remaining.remove(pick);
        for v in bgp.patterns[j].variables() {
            bound.insert(v);
        }
        order.push(j);
    }
    order
}

/// Compiles `q` (a BGP union — the original query, or a reformulated
/// `q_ref`) into a delta program. Branches that do not bind every
/// projected variable are dropped, mirroring [`crate::evaluate`].
pub fn compile_delta(q: &Query) -> Result<DeltaProgram, DeltaUnsupported> {
    if q.aggregate.is_some() {
        return Err(DeltaUnsupported::Aggregate);
    }
    if !q.not_exists.is_empty() {
        return Err(DeltaUnsupported::NotExists);
    }
    if !q.modifiers.is_empty() {
        return Err(DeltaUnsupported::Modifiers);
    }
    let branches = q
        .bgps
        .iter()
        .filter(|bgp| {
            let vars = bgp.variables();
            q.projection.iter().all(|v| vars.contains(v))
        })
        .map(|bgp| DeltaBranch {
            orders: (0..bgp.patterns.len())
                .map(|i| connectivity_order(bgp, i))
                .collect(),
            bgp: bgp.clone(),
        })
        .collect();
    Ok(DeltaProgram {
        n_vars: q.var_names.len(),
        projection: q.projection.clone(),
        filters: q.filters.clone(),
        branches,
    })
}

impl DeltaProgram {
    /// Number of (projectable) union branches.
    pub fn branch_count(&self) -> usize {
        self.branches.len()
    }

    /// True when a binding passes every `FILTER`. Filter variables are
    /// projected (parser restriction) and every kept branch binds the
    /// projection, so both sides are always bound here.
    fn passes_filters(&self, binding: &[Option<TermId>], dict: &Dictionary) -> bool {
        self.filters.iter().all(|f| {
            let lhs = match binding[f.left.index()] {
                Some(id) => id,
                None => return false,
            };
            let rhs = match resolve(f.right, binding) {
                Some(id) => id,
                None => return false,
            };
            match f.op {
                CompareOp::Eq => lhs == rhs,
                CompareOp::Ne => lhs != rhs,
                op => match (dict.decode(lhs), dict.decode(rhs)) {
                    (Some(a), Some(b)) => op.test(compare_terms(a, b)),
                    _ => false,
                },
            }
        })
    }

    fn project(&self, binding: &[Option<TermId>]) -> Vec<TermId> {
        self.projection
            .iter()
            .map(|v| binding[v.index()].expect("projected variable bound"))
            .collect()
    }

    /// Full (from-scratch) evaluation with per-derivation multiplicities:
    /// emits every projected row once per derivation across all branches,
    /// with multiplicity `+1`. This — not the set-collapsed
    /// [`crate::evaluate`] — is the correct initial state for a
    /// multiplicity-counting view: a row derived twice must survive the
    /// deletion of one derivation.
    pub fn eval_full(&self, g: &Graph, dict: &Dictionary, mut emit: impl FnMut(Vec<TermId>, i64)) {
        let dc = DistinctCounts::of(g);
        for branch in &self.branches {
            let plan = plan_bgp_with(g, &dc, &branch.bgp);
            let mut binding: Vec<Option<TermId>> = vec![None; self.n_vars];
            self.full_rec(
                g,
                &branch.bgp,
                &plan.order,
                0,
                &mut binding,
                dict,
                &mut emit,
            );
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn full_rec(
        &self,
        g: &Graph,
        bgp: &Bgp,
        order: &[usize],
        depth: usize,
        binding: &mut Vec<Option<TermId>>,
        dict: &Dictionary,
        emit: &mut impl FnMut(Vec<TermId>, i64),
    ) {
        if depth == order.len() {
            if self.passes_filters(binding, dict) {
                emit(self.project(binding), 1);
            }
            return;
        }
        let tp = &bgp.patterns[order[depth]];
        let probe = probe_of(tp, binding);
        g.for_each_match(&probe, |t| {
            let mut touched: SmallVec<[Variable; 3]> = SmallVec::new();
            if bind_triple(tp, &t, binding, &mut touched) {
                self.full_rec(g, bgp, order, depth + 1, binding, dict, emit);
            }
            for v in touched {
                binding[v.index()] = None;
            }
        });
    }

    /// Delta evaluation: emits `(row, ±1)` for every multiplicity change
    /// of the query's bag answer between `old` and `new`.
    ///
    /// Contract: `delta` must be the **consolidated** difference of the two
    /// graphs — `new = old ∪ {t | (t, +1)} ∖ {t | (t, −1)}`, each triple at
    /// most once, inserts absent from `old`, deletes present in `old`.
    /// The subscription layer derives it from the store's base or entailed
    /// delta stream.
    pub fn eval_delta(
        &self,
        old: &Graph,
        new: &Graph,
        delta: &[(Triple, i64)],
        dict: &Dictionary,
        mut emit: impl FnMut(Vec<TermId>, i64),
    ) {
        if delta.is_empty() {
            return;
        }
        for branch in &self.branches {
            for i in 0..branch.bgp.patterns.len() {
                let tp = &branch.bgp.patterns[i];
                let order = &branch.orders[i];
                for &(t, sign) in delta {
                    if !consts_match(tp, &t) {
                        continue;
                    }
                    let mut binding: Vec<Option<TermId>> = vec![None; self.n_vars];
                    let mut touched: SmallVec<[Variable; 3]> = SmallVec::new();
                    if bind_triple(tp, &t, &mut binding, &mut touched) {
                        self.delta_rec(
                            old,
                            new,
                            &branch.bgp,
                            i,
                            order,
                            0,
                            &mut binding,
                            sign,
                            dict,
                            &mut emit,
                        );
                    }
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn delta_rec(
        &self,
        old: &Graph,
        new: &Graph,
        bgp: &Bgp,
        split: usize,
        order: &[usize],
        depth: usize,
        binding: &mut Vec<Option<TermId>>,
        sign: i64,
        dict: &Dictionary,
        emit: &mut impl FnMut(Vec<TermId>, i64),
    ) {
        if depth == order.len() {
            if self.passes_filters(binding, dict) {
                emit(self.project(binding), sign);
            }
            return;
        }
        let j = order[depth];
        // The delta rule's telescoping: positions before the Δ factor see
        // the old graph, positions after it the new one.
        let g = if j < split { old } else { new };
        let tp = &bgp.patterns[j];
        let probe = probe_of(tp, binding);
        g.for_each_match(&probe, |t| {
            let mut touched: SmallVec<[Variable; 3]> = SmallVec::new();
            if bind_triple(tp, &t, binding, &mut touched) {
                self.delta_rec(
                    old,
                    new,
                    bgp,
                    split,
                    order,
                    depth + 1,
                    binding,
                    sign,
                    dict,
                    emit,
                );
            }
            for v in touched {
                binding[v.index()] = None;
            }
        });
    }
}

/// `bind_triple` trusts `for_each_match` to have filtered constant
/// positions; delta triples arrive unfiltered, so check them explicitly
/// before seeding a pattern.
fn consts_match(tp: &TriplePattern, t: &Triple) -> bool {
    [(tp.s, t.s), (tp.p, t.p), (tp.o, t.o)]
        .iter()
        .all(|&(qt, v)| match qt {
            QTerm::Const(c) => c == v,
            QTerm::Var(_) => true,
        })
}

fn probe_of(tp: &TriplePattern, binding: &[Option<TermId>]) -> Pattern {
    Pattern::new(
        resolve(tp.s, binding),
        resolve(tp.p, binding),
        resolve(tp.o, binding),
    )
}

/// Consolidates an event-ordered signed triple stream (as drained from the
/// store) into the net set difference [`DeltaProgram::eval_delta`]
/// requires: later events override earlier ones per triple, zero-net
/// triples drop out, and the result carries `±1` (graphs are sets).
pub fn consolidate_delta(events: &[(Triple, bool)]) -> Vec<(Triple, i64)> {
    let mut last: rustc_hash::FxHashMap<Triple, bool> = rustc_hash::FxHashMap::default();
    let mut first_seen: rustc_hash::FxHashMap<Triple, bool> = rustc_hash::FxHashMap::default();
    for &(t, add) in events {
        first_seen.entry(t).or_insert(add);
        last.insert(t, add);
    }
    // A triple whose first event inserts and last event deletes (or vice
    // versa) may still net out: insert→delete over a triple absent from
    // the old graph is a no-op, delete→insert over a present one too.
    // The first event's direction tells us the old-graph membership
    // (insert ⇒ was absent, delete ⇒ was present); the last event tells
    // the new-graph membership.
    let mut out = Vec::with_capacity(last.len());
    for (t, add) in last {
        let was_present = !first_seen[&t]; // first insert ⇒ absent before
        let now_present = add;
        match (was_present, now_present) {
            (false, true) => out.push((t, 1)),
            (true, false) => out.push((t, -1)),
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::OrderKey;
    use crate::eval::evaluate;
    use crate::parser::parse_query;
    use rustc_hash::FxHashMap;

    fn setup(turtle: &str) -> (Dictionary, Graph) {
        let mut dict = Dictionary::new();
        let mut g = Graph::new();
        rdf_io::parse_turtle(turtle, &mut dict, &mut g).unwrap();
        (dict, g)
    }

    /// Applies a consolidated delta to a graph copy.
    fn apply(g: &Graph, delta: &[(Triple, i64)]) -> Graph {
        let mut out = g.clone();
        for &(t, s) in delta {
            if s > 0 {
                assert!(out.insert(t), "insert of present triple");
            } else {
                assert!(out.remove(&t), "delete of absent triple");
            }
        }
        out
    }

    /// Bag of projected rows with multiplicities, from scratch.
    fn full_counts(p: &DeltaProgram, g: &Graph, dict: &Dictionary) -> FxHashMap<Vec<TermId>, i64> {
        let mut counts = FxHashMap::default();
        p.eval_full(g, dict, |row, m| *counts.entry(row).or_insert(0) += m);
        counts
    }

    fn check_delta_matches_rescratch(
        q: &Query,
        dict: &Dictionary,
        old: &Graph,
        delta: Vec<(Triple, i64)>,
    ) {
        let p = compile_delta(q).unwrap();
        let new = apply(old, &delta);
        let mut counts = full_counts(&p, old, dict);
        p.eval_delta(old, &new, &delta, dict, |row, m| {
            *counts.entry(row).or_insert(0) += m;
        });
        counts.retain(|_, m| *m != 0);
        let expect = full_counts(&p, &new, dict);
        assert_eq!(counts, expect, "delta-maintained bag diverged");
    }

    #[test]
    fn single_pattern_insert_and_delete() {
        let (mut dict, g) = setup(
            r#"@prefix ex: <http://ex/> .
               ex:a ex:p ex:b . ex:b ex:p ex:c ."#,
        );
        let q = parse_query(
            "PREFIX ex: <http://ex/> SELECT ?x ?y WHERE { ?x ex:p ?y }",
            &mut dict,
        )
        .unwrap();
        let p = dict.get_iri_id("http://ex/p").unwrap();
        let a = dict.get_iri_id("http://ex/a").unwrap();
        let c = dict.get_iri_id("http://ex/c").unwrap();
        check_delta_matches_rescratch(&q, &dict, &g, vec![(Triple::new(a, p, c), 1)]);
        let b = dict.get_iri_id("http://ex/b").unwrap();
        check_delta_matches_rescratch(&q, &dict, &g, vec![(Triple::new(b, p, c), -1)]);
    }

    #[test]
    fn join_delta_covers_all_positions() {
        let (mut dict, g) = setup(
            r#"@prefix ex: <http://ex/> .
               ex:a ex:knows ex:b . ex:b ex:knows ex:c .
               ex:c ex:knows ex:d . ex:x ex:knows ex:a ."#,
        );
        let q = parse_query(
            "PREFIX ex: <http://ex/> SELECT ?x ?z WHERE { ?x ex:knows ?y . ?y ex:knows ?z }",
            &mut dict,
        )
        .unwrap();
        let knows = dict.get_iri_id("http://ex/knows").unwrap();
        let b = dict.get_iri_id("http://ex/b").unwrap();
        let d = dict.get_iri_id("http://ex/d").unwrap();
        let a = dict.get_iri_id("http://ex/a").unwrap();
        // Mixed batch: one insert creating new 2-hop paths through both
        // join sides, one delete removing existing ones.
        check_delta_matches_rescratch(
            &q,
            &dict,
            &g,
            vec![
                (Triple::new(d, knows, b), 1),
                (Triple::new(a, knows, b), -1),
            ],
        );
    }

    #[test]
    fn self_join_same_triple_both_positions() {
        // ?x knows ?y . ?y knows ?z with a triple participating on both
        // sides (b knows b): the delta rule must count each derivation
        // exactly once per position.
        let (mut dict, g) = setup(
            r#"@prefix ex: <http://ex/> .
               ex:a ex:knows ex:b ."#,
        );
        let q = parse_query(
            "PREFIX ex: <http://ex/> SELECT ?x ?z WHERE { ?x ex:knows ?y . ?y ex:knows ?z }",
            &mut dict,
        )
        .unwrap();
        let knows = dict.get_iri_id("http://ex/knows").unwrap();
        let b = dict.get_iri_id("http://ex/b").unwrap();
        check_delta_matches_rescratch(&q, &dict, &g, vec![(Triple::new(b, knows, b), 1)]);
        // And removal of the loop once inserted.
        let mut g2 = g.clone();
        g2.insert(Triple::new(b, knows, b));
        check_delta_matches_rescratch(&q, &dict, &g2, vec![(Triple::new(b, knows, b), -1)]);
    }

    #[test]
    fn union_branches_contribute_multiplicities() {
        let (mut dict, g) = setup(
            r#"@prefix ex: <http://ex/> .
               ex:a ex:p ex:b ."#,
        );
        // Overlapping branches: a row answering both branches has bag
        // multiplicity 2; deleting the support of one branch must leave it.
        let q = parse_query(
            "PREFIX ex: <http://ex/> SELECT ?x WHERE { { ?x ex:p ?y } UNION { ?x ex:q ?y } }",
            &mut dict,
        )
        .unwrap();
        let qprop = dict.get_iri_id("http://ex/q").unwrap();
        let a = dict.get_iri_id("http://ex/a").unwrap();
        let b = dict.get_iri_id("http://ex/b").unwrap();
        check_delta_matches_rescratch(&q, &dict, &g, vec![(Triple::new(a, qprop, b), 1)]);
        let mut g2 = g.clone();
        g2.insert(Triple::new(a, qprop, b));
        let p = dict.get_iri_id("http://ex/p").unwrap();
        // Delete one of two derivations: bag count drops 2 → 1.
        let program = compile_delta(&q).unwrap();
        let delta = vec![(Triple::new(a, p, b), -1)];
        let new = apply(&g2, &delta);
        let mut counts = full_counts(&program, &g2, &dict);
        program.eval_delta(&g2, &new, &delta, &dict, |row, m| {
            *counts.entry(row).or_insert(0) += m;
        });
        assert_eq!(
            counts.get(&vec![a]).copied(),
            Some(1),
            "one derivation left"
        );
    }

    #[test]
    fn filters_apply_to_delta_rows() {
        // Plain literals compare lexically (same rule as `finalize`).
        let (mut dict, g) = setup(
            r#"@prefix ex: <http://ex/> .
               ex:a ex:age "c" . ex:b ex:age "a" ."#,
        );
        let q = parse_query(
            "PREFIX ex: <http://ex/> SELECT ?x ?v WHERE { ?x ex:age ?v . FILTER (?v > \"b\") }",
            &mut dict,
        )
        .unwrap();
        let age = dict.get_iri_id("http://ex/age").unwrap();
        let c = dict.encode_iri("http://ex/c");
        let pass = dict.encode(&rdf_model::Term::literal("d"));
        let fail = dict.encode(&rdf_model::Term::literal("a"));
        check_delta_matches_rescratch(&q, &dict, &g, vec![(Triple::new(c, age, pass), 1)]);
        // A row failing the filter emits nothing.
        let p = compile_delta(&q).unwrap();
        let delta = vec![(Triple::new(c, age, fail), 1)];
        let new = apply(&g, &delta);
        let mut emitted = 0;
        p.eval_delta(&g, &new, &delta, &dict, |_, _| emitted += 1);
        assert_eq!(emitted, 0);
    }

    #[test]
    fn unsupported_features_are_rejected() {
        let mut dict = Dictionary::new();
        let q = parse_query("SELECT (COUNT(*) AS ?n) WHERE { ?x ?p ?y }", &mut dict);
        // Variable-property queries still parse; only compile must reject.
        if let Ok(q) = q {
            assert_eq!(compile_delta(&q).unwrap_err(), DeltaUnsupported::Aggregate);
        }
        let q = parse_query(
            "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x ex:p ?y . FILTER NOT EXISTS { ?x ex:q ?y } }",
            &mut dict,
        )
        .unwrap();
        assert_eq!(compile_delta(&q).unwrap_err(), DeltaUnsupported::NotExists);
        let mut q = parse_query(
            "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x ex:p ?y } LIMIT 3",
            &mut dict,
        )
        .unwrap();
        assert_eq!(compile_delta(&q).unwrap_err(), DeltaUnsupported::Modifiers);
        q.modifiers.limit = None;
        q.modifiers.order_by = vec![OrderKey {
            var: Variable(0),
            descending: false,
        }];
        assert_eq!(compile_delta(&q).unwrap_err(), DeltaUnsupported::Modifiers);
    }

    #[test]
    fn eval_full_matches_evaluate_as_set() {
        let (mut dict, g) = setup(
            r#"@prefix ex: <http://ex/> .
               ex:a ex:p ex:b . ex:b ex:p ex:c . ex:a ex:q ex:b ."#,
        );
        let q = parse_query(
            "PREFIX ex: <http://ex/> SELECT ?x ?y WHERE { { ?x ex:p ?y } UNION { ?x ex:q ?y } }",
            &mut dict,
        )
        .unwrap();
        let p = compile_delta(&q).unwrap();
        let counts = full_counts(&p, &g, &dict);
        let sols = evaluate(&g, &q);
        // evaluate (bag, non-distinct) row count == sum of multiplicities
        let total: i64 = counts.values().sum();
        assert_eq!(total, sols.len() as i64);
        assert_eq!(counts.len(), sols.as_set().len());
    }

    #[test]
    fn consolidation_nets_out_churn() {
        let mut dict = Dictionary::new();
        let p = dict.encode_iri("http://ex/p");
        let a = dict.encode_iri("http://ex/a");
        let b = dict.encode_iri("http://ex/b");
        let c = dict.encode_iri("http://ex/c");
        let t1 = Triple::new(a, p, b);
        let t2 = Triple::new(a, p, c);
        let t3 = Triple::new(b, p, c);
        // t1: insert then delete (absent before) → nets out.
        // t2: delete then insert (present before) → nets out.
        // t3: plain insert → survives.
        let events = vec![(t1, true), (t2, false), (t3, true), (t1, false), (t2, true)];
        let mut net = consolidate_delta(&events);
        net.sort();
        assert_eq!(net, vec![(t3, 1)]);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        type ArbTriples = Vec<(u8, u8, u8)>;
        type ArbDeltaOps = Vec<(u8, u8, u8, bool)>;

        fn arb_graph_and_delta() -> impl Strategy<Value = (ArbTriples, ArbDeltaOps)> {
            (
                proptest::collection::vec((0u8..6, 0u8..3, 0u8..6), 0..25),
                proptest::collection::vec((0u8..6, 0u8..3, 0u8..6, proptest::bool::ANY), 0..12),
            )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(96))]
            /// Delta evaluation applied to the old bag always equals
            /// re-evaluation from scratch on the new graph — joins,
            /// unions and self-joins included.
            #[test]
            fn delta_equals_rescratch((triples, raw_delta) in arb_graph_and_delta()) {
                let mut dict = Dictionary::new();
                let id = |d: &mut Dictionary, i: u8| d.encode_iri(&format!("http://ex/n{i}"));
                let prop = |d: &mut Dictionary, i: u8| d.encode_iri(&format!("http://ex/p{i}"));
                let mut old = Graph::new();
                for (s, p, o) in &triples {
                    let t = Triple::new(id(&mut dict, *s), prop(&mut dict, *p), id(&mut dict, *o));
                    old.insert(t);
                }
                // Build a consolidated, contract-respecting delta.
                let mut new = old.clone();
                let mut delta: Vec<(Triple, i64)> = Vec::new();
                for (s, p, o, add) in &raw_delta {
                    let t = Triple::new(id(&mut dict, *s), prop(&mut dict, *p), id(&mut dict, *o));
                    if *add {
                        if new.insert(t) {
                            delta.push((t, 1));
                        }
                    } else if new.remove(&t) {
                        delta.push((t, -1));
                    }
                }
                // Net per triple (a later delete can cancel an earlier insert).
                let mut net: FxHashMap<Triple, i64> = FxHashMap::default();
                for (t, s) in delta { *net.entry(t).or_insert(0) += s; }
                let delta: Vec<(Triple, i64)> = net.into_iter().filter(|(_, s)| *s != 0).collect();

                let q = parse_query(
                    "PREFIX ex: <http://ex/> SELECT ?x ?z WHERE \
                     { { ?x ex:p0 ?y . ?y ex:p1 ?z } UNION { ?x ex:p2 ?z } }",
                    &mut dict,
                ).unwrap();
                let program = compile_delta(&q).unwrap();
                let mut counts = full_counts(&program, &old, &dict);
                program.eval_delta(&old, &new, &delta, &dict, |row, m| {
                    *counts.entry(row).or_insert(0) += m;
                });
                counts.retain(|_, m| *m != 0);
                let expect = full_counts(&program, &new, &dict);
                prop_assert_eq!(counts, expect);
            }
        }
    }
}
