//! Quickstart: load RDF with an RDFS schema, then answer the same query
//! with each reasoning strategy the paper classifies.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use webreason_core::{ReasoningConfig, Store};

const DATA: &str = r#"
    @prefix zoo:  <http://zoo.example/> .
    @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .

    # The ontology (semantic constraints)
    zoo:Cat     rdfs:subClassOf zoo:Mammal .
    zoo:Dog     rdfs:subClassOf zoo:Mammal .
    zoo:Mammal  rdfs:subClassOf zoo:Animal .
    zoo:hasPet  rdfs:range      zoo:Animal .

    # The facts
    zoo:Tom   a zoo:Cat .
    zoo:Rex   a zoo:Dog .
    zoo:anne  zoo:hasPet zoo:Goldie .
"#;

const QUERY: &str = r#"
    PREFIX zoo: <http://zoo.example/>
    SELECT DISTINCT ?x WHERE { ?x a zoo:Animal }
"#;

fn main() {
    println!("Query: all animals — none is *explicitly* typed zoo:Animal.\n");
    for config in ReasoningConfig::ALL {
        let mut store = Store::new(config);
        store
            .load_turtle(DATA)
            .expect("example data is valid Turtle");
        let sols = store.answer_sparql(QUERY).expect("example query is valid");
        println!("strategy {:<22} -> {} answers", config.name(), sols.len());
        for line in sols.to_strings(&store.dictionary()) {
            println!("    {line}");
        }
    }
    println!(
        "\nPlain evaluation (strategy `none`) finds nothing; every reasoning\n\
         strategy finds Tom and Rex (subclass chains) and Goldie (range typing)."
    );
}
