//! # workload — synthetic RDF workloads
//!
//! The evaluation behind the paper's Fig. 3 (borrowed from its ref. \[12\],
//! EDBT 2013) runs on LUBM, the Lehigh University Benchmark. The official
//! generator is a Java artifact we don't have, so this crate re-implements
//! the workload (a substitution documented in DESIGN.md):
//!
//! * [`lubm`]: a seeded generator producing the Univ-Bench ontology
//!   skeleton (the professor/student class tree, works-for / teaches /
//!   takes-course / advisor properties with domains, ranges and
//!   subproperty links) and scalable instance data with LUBM's key trait —
//!   entities are typed at *leaf* classes only, so queries over
//!   mid-hierarchy classes (`Person`, `Faculty`, `Student`) return nothing
//!   without reasoning — plus the ten-query workload Q1–Q10 whose
//!   reformulations range from trivial (1 branch) to large (tens of
//!   branches), driving the threshold spread of Fig. 3;
//! * [`synth`]: a parametric random ontology/instance generator (class
//!   tree depth × fan-out, subproperty chain length, domain/range density)
//!   used by the reformulation-size sweep (experiment T-REF).
//!
//! Both generators are deterministic given a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lubm;
pub mod social;
pub mod synth;

use rdf_model::{Dictionary, Graph, Vocab};

/// A generated dataset: dictionary, vocabulary and the base graph
/// (schema + instance triples, unsaturated).
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The dictionary the graph is encoded against.
    pub dict: Dictionary,
    /// Pre-interned RDF/RDFS vocabulary ids.
    pub vocab: Vocab,
    /// The base graph `G`.
    pub graph: Graph,
}

/// A named benchmark query.
#[derive(Debug, Clone)]
pub struct NamedQuery {
    /// Short identifier, e.g. `"Q4"`.
    pub name: &'static str,
    /// What the query asks, for reports.
    pub description: &'static str,
    /// The parsed query.
    pub query: sparql::Query,
}
