//! # reformulation — RDFS-aware query rewriting
//!
//! The second query-answering technique of the paper (§II-B "Query
//! reformulation"): "the database is left unchanged, while queries are
//! modified (reformulated) to take into account all the known semantic
//! constraints", such that evaluating the reformulated query against the
//! *original* graph yields the answers of the original query against the
//! *saturated* graph:
//!
//! ```text
//! q_ref(G) = q(G∞)
//! ```
//!
//! [`reformulate`] rewrites each BGP of a query into a **union of BGPs**
//! by exhaustively applying the RDFS entailment rules *backwards* on one
//! atom at a time, against the closed [`rdfs::Schema`]:
//!
//! | atom | backward rule | rewritings |
//! |------|---------------|------------|
//! | `x rdf:type C` | rdfs9 | `x rdf:type C'` for every subclass `C' ⊑ C` |
//! | `x rdf:type C` | rdfs2 | `x p y_fresh` for every `p` with (closed) domain `C` |
//! | `x rdf:type C` | rdfs3 | `y_fresh p x` for every `p` with (closed) range `C` |
//! | `x P y` | rdfs7 | `x P' y` for every subproperty `P' ⊑ P` |
//!
//! In the paper's example: "a query asking for all mammals would be
//! reformulated into 'find all mammals and all cats as particular cases'":
//!
//! ```
//! use rdf_model::{Dictionary, Graph, Triple, Vocab};
//! use rdfs::Schema;
//! use reformulation::reformulate;
//! use sparql::parse_query;
//!
//! let mut dict = Dictionary::new();
//! let vocab = Vocab::intern(&mut dict);
//! let (cat, mammal) = (dict.encode_iri("http://z/Cat"), dict.encode_iri("http://z/Mammal"));
//! let mut g = Graph::new();
//! g.insert(Triple::new(cat, vocab.sub_class_of, mammal));
//!
//! let q = parse_query("SELECT ?x WHERE { ?x a <http://z/Mammal> }", &mut dict).unwrap();
//! let r = reformulate(&q, &Schema::extract(&g, &vocab), &vocab).unwrap();
//! assert_eq!(r.branches, 2); // mammals ∪ cats
//! assert!(r.query.to_sparql(&dict).contains("UNION"));
//! ```
//!
//! ## Supported dialect
//!
//! Reformulation is defined for the RDF database fragment the paper's
//! reformulation references \[15\]–\[21\] target: every triple pattern has
//! a *constant* property, and `rdf:type` patterns have a *constant* class
//! object. Patterns with a variable property, a variable class, or an RDFS
//! schema property are rejected with [`ReformulationError`] — "reformulation
//! leads to a subtle interplay between the RDF and SPARQL dialects"
//! (§II-B); such queries are answered by saturation or backward chaining
//! in the `webreason-core` store instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod containment;
mod interval;

pub use containment::{homomorphism, minimize, prune_subsumed};
pub use interval::reformulate_intervals;

use rdf_model::{TermId, Vocab};
use rdfs::Schema;
use rustc_hash::FxHashSet;
use sparql::{Bgp, QTerm, Query, TriplePattern, Variable};
use std::fmt;

/// Why a query could not be reformulated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReformulationError {
    /// A triple pattern has a variable in the property position.
    VariableProperty,
    /// An `rdf:type` pattern has a variable class object.
    VariableClass,
    /// A pattern queries an RDFS schema property (`rdfs:subClassOf`, …);
    /// answering those under entailment requires the schema closure, not a
    /// UCQ reformulation.
    SchemaProperty(TermId),
    /// The query uses `FILTER NOT EXISTS`: negation over entailed data is
    /// not UCQ-rewritable (the inner pattern would probe the unsaturated
    /// graph) — answer it under a saturation strategy instead.
    Negation,
}

impl fmt::Display for ReformulationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReformulationError::VariableProperty => {
                write!(f, "cannot reformulate a pattern with a variable property")
            }
            ReformulationError::VariableClass => {
                write!(
                    f,
                    "cannot reformulate an rdf:type pattern with a variable class"
                )
            }
            ReformulationError::SchemaProperty(p) => {
                write!(f, "cannot reformulate a pattern over schema property {p}")
            }
            ReformulationError::Negation => {
                write!(
                    f,
                    "cannot reformulate FILTER NOT EXISTS; use a saturation strategy"
                )
            }
        }
    }
}

impl std::error::Error for ReformulationError {}

/// The result of reformulating a query.
#[derive(Debug, Clone)]
pub struct Reformulation {
    /// The reformulated query `q_ref`: same projection, `DISTINCT`
    /// semantics (the paper's answer sets), body a union of BGPs.
    pub query: Query,
    /// Number of BGPs in the union — the "syntactically larger" size the
    /// paper warns about.
    pub branches: usize,
    /// Single-atom rewrite steps performed (a cost proxy).
    pub rewrite_steps: usize,
    /// Union branches removed by core minimisation + subsumption pruning
    /// (see [`minimize`] / [`prune_subsumed`]).
    pub pruned_branches: usize,
}

/// Optimisation switches for [`reformulate_with`] — the ablation knobs of
/// experiment T-REF.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Options {
    /// Replace every branch with its core (fold redundant existential
    /// atoms).
    pub minimize: bool,
    /// Drop branches subsumed by a more general branch.
    pub prune_subsumed: bool,
}

impl Default for Options {
    /// Both optimisations on — what [`reformulate`] uses.
    fn default() -> Self {
        Options {
            minimize: true,
            prune_subsumed: true,
        }
    }
}

impl Options {
    /// The raw rewriting, no optimisation (the ablation baseline).
    pub fn raw() -> Self {
        Options {
            minimize: false,
            prune_subsumed: false,
        }
    }
}

/// Checks that every pattern is in the supported reformulation dialect.
pub(crate) fn check_dialect(bgp: &Bgp, vocab: &Vocab) -> Result<(), ReformulationError> {
    for tp in &bgp.patterns {
        match tp.p {
            QTerm::Var(_) => return Err(ReformulationError::VariableProperty),
            QTerm::Const(p) if vocab.is_schema_property(p) => {
                return Err(ReformulationError::SchemaProperty(p));
            }
            QTerm::Const(p) if p == vocab.rdf_type => {
                if tp.o.as_const().is_none() {
                    return Err(ReformulationError::VariableClass);
                }
            }
            QTerm::Const(_) => {}
        }
    }
    Ok(())
}

/// Canonicalises a BGP up to renaming of the *fresh* variables (ids `>=
/// n_query_vars`), so that rewritings differing only in fresh-variable
/// identity deduplicate.
fn canonical_key(bgp: &Bgp, n_query_vars: usize) -> Bgp {
    // Sort with fresh variables masked so the order is independent of the
    // particular fresh ids…
    let mask = |t: QTerm| -> (u8, u32) {
        match t {
            QTerm::Const(c) => (0, c.index() as u32),
            QTerm::Var(v) if v.index() < n_query_vars => (1, v.0 as u32),
            QTerm::Var(_) => (2, u32::MAX),
        }
    };
    let mut patterns = bgp.patterns.clone();
    patterns.sort_by_key(|tp| (mask(tp.s), mask(tp.p), mask(tp.o)));
    // …then rename fresh variables by first occurrence in that order…
    let mut next = n_query_vars as u16;
    let mut renames: Vec<(Variable, Variable)> = Vec::new();
    let mut rename = |t: &mut QTerm| {
        if let QTerm::Var(v) = t {
            if v.index() >= n_query_vars {
                if let Some(&(_, to)) = renames.iter().find(|(from, _)| from == v) {
                    *v = to;
                } else {
                    let to = Variable(next);
                    next += 1;
                    renames.push((*v, to));
                    *v = to;
                }
            }
        }
    };
    for tp in &mut patterns {
        rename(&mut tp.s);
        rename(&mut tp.p);
        rename(&mut tp.o);
    }
    // …and normalise conjunct order and duplicates.
    patterns.sort();
    patterns.dedup();
    Bgp { patterns }
}

struct Rewriter<'a> {
    schema: &'a Schema,
    vocab: &'a Vocab,
    next_fresh: u16,
    max_fresh: u16,
}

impl Rewriter<'_> {
    fn fresh_var(&mut self) -> Variable {
        let v = Variable(self.next_fresh);
        self.next_fresh += 1;
        self.max_fresh = self.max_fresh.max(self.next_fresh);
        v
    }

    /// Emits every single-step rewriting of atom `i` of `bgp`.
    fn rewrite_atom(&mut self, bgp: &Bgp, i: usize, mut emit: impl FnMut(Bgp)) -> usize {
        let tp = bgp.patterns[i];
        let mut steps = 0;
        let replace = |replacement: TriplePattern, emit: &mut dyn FnMut(Bgp)| {
            let mut patterns = bgp.patterns.clone();
            patterns[i] = replacement;
            emit(Bgp { patterns });
        };
        match tp.p {
            QTerm::Const(p) if p == self.vocab.rdf_type => {
                let Some(class) = tp.o.as_const() else {
                    return 0;
                };
                // rdfs9 backwards: subclasses
                for &sub in self.schema.sub_classes(class) {
                    steps += 1;
                    replace(TriplePattern::new(tp.s, tp.p, QTerm::Const(sub)), &mut emit);
                }
                // rdfs2 backwards: properties whose domain is `class`
                for &p in self.schema.properties_with_domain(class) {
                    steps += 1;
                    let y = self.fresh_var();
                    replace(
                        TriplePattern::new(tp.s, QTerm::Const(p), QTerm::Var(y)),
                        &mut emit,
                    );
                }
                // rdfs3 backwards: properties whose range is `class`
                for &p in self.schema.properties_with_range(class) {
                    steps += 1;
                    let y = self.fresh_var();
                    replace(
                        TriplePattern::new(QTerm::Var(y), QTerm::Const(p), tp.s),
                        &mut emit,
                    );
                }
            }
            QTerm::Const(p) => {
                // rdfs7 backwards: subproperties
                for &sub in self.schema.sub_properties(p) {
                    steps += 1;
                    replace(TriplePattern::new(tp.s, QTerm::Const(sub), tp.o), &mut emit);
                }
            }
            QTerm::Var(_) => {}
        }
        steps
    }
}

/// Reformulates `q` against `schema` with both optimisations on,
/// producing `q_ref` with `q_ref(G) = q(G∞)` under answer-set
/// (`DISTINCT`) semantics.
pub fn reformulate(
    q: &Query,
    schema: &Schema,
    vocab: &Vocab,
) -> Result<Reformulation, ReformulationError> {
    reformulate_with(q, schema, vocab, Options::default())
}

/// Like [`reformulate`], with explicit optimisation [`Options`].
pub fn reformulate_with(
    q: &Query,
    schema: &Schema,
    vocab: &Vocab,
    options: Options,
) -> Result<Reformulation, ReformulationError> {
    if !q.not_exists.is_empty() {
        return Err(ReformulationError::Negation);
    }
    for bgp in &q.bgps {
        check_dialect(bgp, vocab)?;
    }
    let n_query_vars = q.var_names.len();
    let mut rw = Rewriter {
        schema,
        vocab,
        next_fresh: n_query_vars as u16,
        max_fresh: n_query_vars as u16,
    };

    let mut seen: FxHashSet<Bgp> = FxHashSet::default();
    let mut output: Vec<Bgp> = Vec::new();
    let mut queue: Vec<Bgp> = Vec::new();
    let mut rewrite_steps = 0usize;

    for bgp in &q.bgps {
        let key = canonical_key(bgp, n_query_vars);
        if seen.insert(key) {
            output.push(bgp.clone());
            queue.push(bgp.clone());
        }
    }

    while let Some(bgp) = queue.pop() {
        for i in 0..bgp.patterns.len() {
            // Fresh variables restart per expansion front; the canonical key
            // hides their identity, and the final numbering is compacted below.
            rewrite_steps += rw.rewrite_atom(&bgp, i, |candidate| {
                let key = canonical_key(&candidate, n_query_vars);
                if seen.insert(key.clone()) {
                    output.push(key.clone());
                    queue.push(key);
                }
            });
        }
    }

    // Optimisation passes: core minimisation then subsumption pruning,
    // both with the projected variables fixed (answer-set semantics).
    let raw_branches = output.len();
    let answer_vars: FxHashSet<Variable> = q.projection.iter().copied().collect();
    if options.minimize {
        for bgp in &mut output {
            *bgp = containment::minimize(bgp, &answer_vars);
        }
        output.sort();
        output.dedup();
    }
    if options.prune_subsumed {
        containment::prune_subsumed(&mut output, &answer_vars);
    }
    let pruned_branches = raw_branches - output.len();

    // Stable order for deterministic output and tests.
    output.sort();

    // Extend the variable table with names for the fresh variables.
    let mut var_names = q.var_names.clone();
    let max_var = output
        .iter()
        .flat_map(|b| b.patterns.iter().flat_map(|tp| tp.variables()))
        .map(|v| v.index())
        .max()
        .unwrap_or(0);
    while var_names.len() <= max_var {
        var_names.push(format!("_r{}", var_names.len() - n_query_vars));
    }

    let branches = output.len();
    let query = Query {
        var_names,
        projection: q.projection.clone(),
        distinct: true,
        bgps: output,
        // Filters, solution modifiers and aggregates are orthogonal to the
        // BGP core: they carry through and apply to the union's solutions.
        filters: q.filters.clone(),
        not_exists: Vec::new(), // rejected above; never reaches here populated
        modifiers: q.modifiers.clone(),
        aggregate: q.aggregate.clone(),
    };
    Ok(Reformulation {
        query,
        branches,
        rewrite_steps,
        pruned_branches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_io::parse_turtle;
    use rdf_model::{Dictionary, Graph};
    use rdfs::saturate;
    use sparql::{evaluate, parse_query};

    struct Fx {
        dict: Dictionary,
        vocab: Vocab,
        g: Graph,
    }

    fn setup(data: &str) -> Fx {
        let mut dict = Dictionary::new();
        let vocab = Vocab::intern(&mut dict);
        let mut g = Graph::new();
        parse_turtle(data, &mut dict, &mut g).expect("fixture parses");
        Fx { dict, vocab, g }
    }

    /// Checks the central contract: q_ref(G) = q(G∞) (answer sets).
    fn assert_contract(f: &mut Fx, query: &str) -> Reformulation {
        let q = parse_query(query, &mut f.dict).expect("query parses");
        let schema = Schema::extract(&f.g, &f.vocab);
        let r = reformulate(&q, &schema, &f.vocab).expect("reformulates");
        let sat = saturate(&f.g, &f.vocab).graph;
        let direct: FxHashSet<_> = evaluate(&sat, &q).as_set();
        let reformulated: FxHashSet<_> = evaluate(&f.g, &r.query).as_set();
        assert_eq!(reformulated, direct, "q_ref(G) != q(G∞) for {query}");
        r
    }

    const ZOO: &str = r#"
        @prefix ex: <http://ex/> .
        @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
        ex:Cat rdfs:subClassOf ex:Mammal .
        ex:Dog rdfs:subClassOf ex:Mammal .
        ex:Mammal rdfs:subClassOf ex:Animal .
        ex:Tom a ex:Cat .
        ex:Rex a ex:Dog .
        ex:Daffy a ex:Animal .
    "#;

    #[test]
    fn paper_mammal_example() {
        // "a query asking for all mammals would be reformulated into 'find
        // all mammals and all cats as particular cases', and Tom would be
        // returned even though it was not explicitly stated to be a mammal."
        let mut f = setup(ZOO);
        let r = assert_contract(
            &mut f,
            "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x a ex:Mammal }",
        );
        assert_eq!(r.branches, 3, "Mammal ∪ Cat ∪ Dog");
        // Tom is in the answers
        let sols = evaluate(&f.g, &r.query);
        let tom = f.dict.get_iri_id("http://ex/Tom").unwrap();
        assert!(sols.rows.iter().any(|row| row == &vec![tom]));
    }

    #[test]
    fn subclass_chain_expands_transitively() {
        let mut f = setup(ZOO);
        let r = assert_contract(
            &mut f,
            "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x a ex:Animal }",
        );
        assert_eq!(r.branches, 4, "Animal ∪ Mammal ∪ Cat ∪ Dog");
    }

    const UNIVERSITY: &str = r#"
        @prefix ex: <http://ex/> .
        @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
        ex:teaches rdfs:subPropertyOf ex:worksFor .
        ex:worksFor rdfs:domain ex:Employee .
        ex:worksFor rdfs:range ex:Org .
        ex:Employee rdfs:subClassOf ex:Person .
        ex:Professor rdfs:subClassOf ex:Employee .
        ex:bob ex:teaches ex:uni1 .
        ex:carol ex:worksFor ex:uni2 .
        ex:dan a ex:Professor .
        ex:eve a ex:Person .
    "#;

    #[test]
    fn subproperty_reformulation() {
        let mut f = setup(UNIVERSITY);
        let r = assert_contract(
            &mut f,
            "PREFIX ex: <http://ex/> SELECT ?x ?y WHERE { ?x ex:worksFor ?y }",
        );
        assert_eq!(r.branches, 2, "worksFor ∪ teaches");
    }

    #[test]
    fn domain_range_reformulation() {
        let mut f = setup(UNIVERSITY);
        // Employees: direct type, subclass Professor, or subject of
        // worksFor/teaches (domain), each as its own union branch.
        let r = assert_contract(
            &mut f,
            "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x a ex:Employee }",
        );
        assert_eq!(r.branches, 4, "Employee ∪ Professor ∪ ∃worksFor ∪ ∃teaches");
        // Persons add one more level.
        let r = assert_contract(
            &mut f,
            "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x a ex:Person }",
        );
        assert_eq!(
            r.branches, 5,
            "Person ∪ Employee ∪ Professor ∪ ∃worksFor ∪ ∃teaches"
        );
        let r = assert_contract(
            &mut f,
            "PREFIX ex: <http://ex/> SELECT ?y WHERE { ?y a ex:Org }",
        );
        assert_eq!(r.branches, 3, "Org ∪ range(worksFor) ∪ range(teaches)");
    }

    #[test]
    fn multi_atom_query_cross_product_of_rewritings() {
        let mut f = setup(UNIVERSITY);
        let r = assert_contract(
            &mut f,
            "PREFIX ex: <http://ex/> SELECT ?x ?y WHERE { ?x ex:worksFor ?y . ?x a ex:Person }",
        );
        // The raw cross product (2 rewritings of the worksFor atom × 6 of
        // the Person atom, modulo fresh-variable isomorphism) collapses
        // hard under minimisation + subsumption: `?x worksFor ?y` alone
        // already implies `?x a Person` via the domain constraint, so the
        // branch {?x worksFor ?y} subsumes every branch that extends it.
        assert!(r.pruned_branches > 5, "got {} pruned", r.pruned_branches);
        assert!(r.branches <= 4, "got {}", r.branches);
        // The ablation baseline keeps the blow-up (and stays correct).
        let q = parse_query(
            "PREFIX ex: <http://ex/> SELECT ?x ?y WHERE { ?x ex:worksFor ?y . ?x a ex:Person }",
            &mut f.dict,
        )
        .unwrap();
        let schema = Schema::extract(&f.g, &f.vocab);
        let raw = reformulate_with(&q, &schema, &f.vocab, Options::raw()).unwrap();
        assert!(raw.branches >= 10, "raw blow-up kept: {}", raw.branches);
        assert_eq!(raw.pruned_branches, 0);
        let sat = rdfs::saturate(&f.g, &f.vocab).graph;
        assert_eq!(
            evaluate(&f.g, &raw.query).as_set(),
            evaluate(&sat, &q).as_set(),
            "raw reformulation is still correct"
        );
    }

    #[test]
    fn pruning_is_sound_and_effective_on_domain_example() {
        // SELECT ?x WHERE { ?x a Employee }: the ∃worksFor and ∃teaches
        // branches cannot be pruned (a worksFor edge is the only evidence
        // for carol), and the subclass branches cannot fold into them.
        let mut f = setup(UNIVERSITY);
        let r = assert_contract(
            &mut f,
            "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x a ex:Employee }",
        );
        assert_eq!(r.branches, 4, "no over-pruning of incomparable branches");
        assert_eq!(r.pruned_branches, 0);
    }

    #[test]
    fn no_schema_means_identity() {
        let mut f = setup("@prefix ex: <http://ex/> .\nex:a ex:p ex:b .");
        let r = assert_contract(
            &mut f,
            "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x ex:p ?y }",
        );
        assert_eq!(r.branches, 1);
        assert_eq!(r.rewrite_steps, 0);
    }

    #[test]
    fn constants_in_subject_position() {
        let mut f = setup(ZOO);
        let r = assert_contract(
            &mut f,
            "PREFIX ex: <http://ex/> SELECT ?c WHERE { ex:Tom a ex:Mammal . ?c a ex:Animal }",
        );
        assert!(r.branches >= 4);
    }

    #[test]
    fn cyclic_schema_terminates_and_is_correct() {
        let mut f = setup(
            r#"
            @prefix ex: <http://ex/> .
            @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
            ex:A rdfs:subClassOf ex:B .
            ex:B rdfs:subClassOf ex:A .
            ex:x a ex:A .
            ex:y a ex:B .
        "#,
        );
        let r = assert_contract(
            &mut f,
            "PREFIX ex: <http://ex/> SELECT ?s WHERE { ?s a ex:B }",
        );
        assert_eq!(r.branches, 2, "B ∪ A");
    }

    #[test]
    fn unsupported_dialect_is_rejected() {
        let mut f = setup(ZOO);
        let schema = Schema::extract(&f.g, &f.vocab);
        for (src, want) in [
            (
                "SELECT ?p WHERE { <http://s> ?p <http://o> }",
                ReformulationError::VariableProperty,
            ),
            (
                "SELECT ?c WHERE { <http://s> a ?c }",
                ReformulationError::VariableClass,
            ),
            (
                "PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#> SELECT ?c WHERE { ?c rdfs:subClassOf ?d }",
                ReformulationError::SchemaProperty(f.vocab.sub_class_of),
            ),
        ] {
            let q = parse_query(src, &mut f.dict).unwrap();
            assert_eq!(reformulate(&q, &schema, &f.vocab).unwrap_err(), want);
        }
    }

    #[test]
    fn fresh_variables_are_named_and_not_projected() {
        let mut f = setup(UNIVERSITY);
        let q = parse_query(
            "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x a ex:Employee }",
            &mut f.dict,
        )
        .unwrap();
        let schema = Schema::extract(&f.g, &f.vocab);
        let r = reformulate(&q, &schema, &f.vocab).unwrap();
        assert!(
            r.query.var_names.len() > q.var_names.len(),
            "fresh vars added"
        );
        assert_eq!(r.query.projection, q.projection, "projection unchanged");
        assert!(r.query.distinct, "answer-set semantics");
        // serialises and parses back
        let text = r.query.to_sparql(&f.dict);
        let reparsed = parse_query(&text, &mut f.dict).unwrap();
        assert_eq!(reparsed.bgps.len(), r.branches);
    }

    #[test]
    fn union_input_query_is_supported() {
        let mut f = setup(ZOO);
        let r = assert_contract(
            &mut f,
            "PREFIX ex: <http://ex/> SELECT ?x WHERE { { ?x a ex:Cat } UNION { ?x a ex:Dog } }",
        );
        assert_eq!(r.branches, 2);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;
        use rdf_model::Triple;
        use sparql::Variable;

        /// Random fragment instances: schema + data + a random 1–3 atom query.
        #[derive(Debug, Clone)]
        struct Case {
            sub_class: Vec<(u8, u8)>,
            sub_prop: Vec<(u8, u8)>,
            domain: Vec<(u8, u8)>,
            range: Vec<(u8, u8)>,
            facts: Vec<(u8, u8, u8)>,
            types: Vec<(u8, u8)>,
            query_atoms: Vec<(u8, u8, u8, bool)>, // (s, p_or_class, o, is_type_atom)
        }

        fn arb_case() -> impl Strategy<Value = Case> {
            (
                proptest::collection::vec((0u8..5, 0u8..5), 0..6),
                proptest::collection::vec((0u8..4, 0u8..4), 0..4),
                proptest::collection::vec((0u8..4, 0u8..5), 0..4),
                proptest::collection::vec((0u8..4, 0u8..5), 0..4),
                proptest::collection::vec((0u8..6, 0u8..4, 0u8..6), 0..15),
                proptest::collection::vec((0u8..6, 0u8..5), 0..8),
                proptest::collection::vec((0u8..3, 0u8..5, 0u8..3, proptest::bool::ANY), 1..4),
            )
                .prop_map(
                    |(sub_class, sub_prop, domain, range, facts, types, query_atoms)| Case {
                        sub_class,
                        sub_prop,
                        domain,
                        range,
                        facts,
                        types,
                        query_atoms,
                    },
                )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(96))]
            /// The reformulation contract on random schemas, data and queries:
            /// q_ref(G) = q(G∞).
            #[test]
            fn contract_holds(case in arb_case()) {
                let mut dict = Dictionary::new();
                let vocab = Vocab::intern(&mut dict);
                let class = |d: &mut Dictionary, i: u8| d.encode_iri(&format!("http://ex/C{i}"));
                let prop = |d: &mut Dictionary, i: u8| d.encode_iri(&format!("http://ex/p{i}"));
                let node = |d: &mut Dictionary, i: u8| d.encode_iri(&format!("http://ex/n{i}"));
                let mut g = Graph::new();
                for &(a, b) in &case.sub_class {
                    let t = Triple::new(class(&mut dict, a), vocab.sub_class_of, class(&mut dict, b));
                    g.insert(t);
                }
                for &(a, b) in &case.sub_prop {
                    let t = Triple::new(prop(&mut dict, a), vocab.sub_property_of, prop(&mut dict, b));
                    g.insert(t);
                }
                for &(p, c) in &case.domain {
                    let t = Triple::new(prop(&mut dict, p), vocab.domain, class(&mut dict, c));
                    g.insert(t);
                }
                for &(p, c) in &case.range {
                    let t = Triple::new(prop(&mut dict, p), vocab.range, class(&mut dict, c));
                    g.insert(t);
                }
                for &(s, p, o) in &case.facts {
                    let t = Triple::new(node(&mut dict, s), prop(&mut dict, p), node(&mut dict, o));
                    g.insert(t);
                }
                for &(s, c) in &case.types {
                    let t = Triple::new(node(&mut dict, s), vocab.rdf_type, class(&mut dict, c));
                    g.insert(t);
                }

                // Build the query: variables 0..=5 shared across atoms so the
                // random BGPs join.
                let mut patterns = Vec::new();
                for &(s, pc, o, is_type) in &case.query_atoms {
                    let sv = QTerm::Var(Variable(s as u16));
                    if is_type {
                        patterns.push(TriplePattern::new(
                            sv,
                            QTerm::Const(vocab.rdf_type),
                            QTerm::Const(class(&mut dict, pc % 5)),
                        ));
                    } else {
                        patterns.push(TriplePattern::new(
                            sv,
                            QTerm::Const(prop(&mut dict, pc % 4)),
                            QTerm::Var(Variable(o as u16)),
                        ));
                    }
                }
                let used: FxHashSet<u16> = patterns
                    .iter()
                    .flat_map(|tp: &TriplePattern| tp.variables())
                    .map(|v| v.0)
                    .collect();
                let max_var = *used.iter().max().unwrap() as usize;
                let var_names: Vec<String> = (0..=max_var).map(|i| format!("v{i}")).collect();
                let projection: Vec<Variable> = {
                    let mut u: Vec<u16> = used.into_iter().collect();
                    u.sort();
                    u.into_iter().map(Variable).collect()
                };
                let q = Query::conjunctive(var_names, projection, true, Bgp::new(patterns));

                let schema = Schema::extract(&g, &vocab);
                let r = reformulate(&q, &schema, &vocab).expect("dialect is supported");
                let sat = saturate(&g, &vocab).graph;
                let want = evaluate(&sat, &q).as_set();
                let got = evaluate(&g, &r.query).as_set();
                prop_assert_eq!(got, want);
            }
        }
    }
}
