//! Graceful-degradation suite: request deadlines (504s that arrive
//! *before* the uncapped query would have finished), the `/health` vs
//! `/ready` split, uniform error bodies, conn-limit `Retry-After`, and —
//! under `--features failpoints` — the read-only degraded mode: a journal
//! ENOSPC/EIO fails the in-flight write, flips the server read-only,
//! keeps queries flowing, and heals automatically once the supervisor's
//! probe write reaches the disk again.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::num::NonZeroUsize;
use std::path::PathBuf;
use std::time::{Duration, Instant};
use webreason_core::{DurableStore, FsyncPolicy, ReasoningConfig};
use webreason_server::{Backend, Server, ServerConfig};

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("webreason-degrade-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn boot_with(name: &str, config: ServerConfig, reasoning: ReasoningConfig) -> Server {
    boot_fsync(name, config, reasoning, FsyncPolicy::Never)
}

fn boot_fsync(
    name: &str,
    config: ServerConfig,
    reasoning: ReasoningConfig,
    fsync: FsyncPolicy,
) -> Server {
    let store = DurableStore::create(tmpdir(name), reasoning, NonZeroUsize::MIN, fsync)
        .expect("store creates");
    Server::start(store, config).expect("server boots")
}

fn raw_round_trip(addr: SocketAddr, raw: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout sets");
    stream.write_all(raw).expect("request writes");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("response reads");
    let status: u16 = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {text:?}"));
    (status, text)
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    post_with_headers(addr, path, body, &[])
}

fn post_with_headers(
    addr: SocketAddr,
    path: &str,
    body: &str,
    headers: &[(&str, &str)],
) -> (u16, String) {
    let mut extra = String::new();
    for (k, v) in headers {
        extra.push_str(&format!("{k}: {v}\r\n"));
    }
    let raw = format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n{extra}Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    raw_round_trip(addr, raw.as_bytes())
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    let raw = format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    raw_round_trip(addr, raw.as_bytes())
}

/// Pulls one counter/gauge value out of a `/metrics` scrape; 0 when the
/// counter has never been touched (and so is absent from the scrape).
fn metric_or_zero(addr: SocketAddr, name: &str) -> u64 {
    let (status, text) = get(addr, "/metrics");
    assert_eq!(status, 200);
    text.lines()
        .find_map(|l| {
            let v = l.strip_prefix(name)?;
            if !v.starts_with(' ') {
                return None;
            }
            Some(v.trim().parse().expect("metric parses"))
        })
        .unwrap_or(0)
}

/// Loads a wide reformulation fixture over `/update`: `classes`
/// subclasses of `ex:Thing`, `per` instances each, so the probe query
/// reformulates into a `classes + 1`-branch union.
fn load_wide_hierarchy(addr: SocketAddr, classes: usize, per: usize) {
    const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
    const SUBCLASS: &str = "http://www.w3.org/2000/01/rdf-schema#subClassOf";
    let mut lines: Vec<String> = Vec::new();
    for c in 0..classes {
        lines.push(format!(
            "insert <http://ex/C{c}> <{SUBCLASS}> <http://ex/Thing> ."
        ));
        for i in 0..per {
            lines.push(format!(
                "insert <http://ex/i{c}x{i}> <{RDF_TYPE}> <http://ex/C{c}> ."
            ));
        }
    }
    for chunk in lines.chunks(1000) {
        let (status, text) = post(addr, "/update", &chunk.join("\n"));
        assert_eq!(status, 200, "fixture chunk failed: {text}");
    }
}

const THING_QUERY: &str = "SELECT ?x WHERE { ?x a <http://ex/Thing> }";

#[test]
fn health_is_liveness_and_ready_reports_ok() {
    let server = boot_with(
        "ready",
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            threads: 1,
            ..Default::default()
        },
        ReasoningConfig::Reformulation,
    );
    let addr = server.local_addr();
    let (status, text) = get(addr, "/health");
    assert_eq!(status, 200, "{text}");
    let (status, text) = get(addr, "/ready");
    assert_eq!(status, 200, "{text}");
    assert!(text.contains("ready"), "{text}");
    drop(server.shutdown());
}

#[test]
fn deadline_capped_union_times_out_with_504() {
    // Threaded backend: the token is created at dispatch, so a small
    // deadline deterministically expires *inside* evaluation rather than
    // while queued (the reactor's pre-dispatch shed is separate).
    let server = boot_with(
        "deadline",
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            threads: 2,
            backend: Backend::Threaded,
            ..Default::default()
        },
        ReasoningConfig::Reformulation,
    );
    let addr = server.local_addr();
    load_wide_hierarchy(addr, 363, 10);

    let start = Instant::now();
    let (status, text) = post_with_headers(
        addr,
        "/query",
        THING_QUERY,
        &[("X-Webreason-Deadline-Ms", "1")],
    );
    let elapsed = start.elapsed();
    assert_eq!(status, 504, "{text}");
    assert!(text.contains("deadline_exceeded"), "{text}");
    // The 504 must arrive promptly — far sooner than evaluating all 364
    // branches and far within the acceptance envelope.
    assert!(elapsed < Duration::from_secs(2), "504 took {elapsed:?}");
    assert!(metric_or_zero(addr, "webreason_server_query_deadline_exceeded_total") >= 1);

    // The identical query without a deadline is unaffected by the
    // abandoned pass: full answer, no residue.
    let (status, text) = post(addr, "/query", THING_QUERY);
    assert_eq!(status, 200, "{text}");
    assert!(text.contains("http://ex/i0x0"), "{text}");
    drop(server.shutdown());
}

#[test]
fn oversized_deadline_header_is_clamped_and_zero_disables() {
    let server = boot_with(
        "clamp",
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            threads: 1,
            backend: Backend::Threaded,
            default_deadline_ms: Some(30_000),
            max_deadline_ms: 60_000,
            ..Default::default()
        },
        ReasoningConfig::Reformulation,
    );
    let addr = server.local_addr();
    let (status, _) = post(
        addr,
        "/update",
        "insert <http://ex/s> <http://ex/p> \"v\" .",
    );
    assert_eq!(status, 200);
    // A clamped huge deadline and an explicit 0 (= uncapped) both serve.
    for header in [
        &[("X-Webreason-Deadline-Ms", "999999999")][..],
        &[("X-Webreason-Deadline-Ms", "0")][..],
    ] {
        let (status, text) = post_with_headers(
            addr,
            "/query",
            "SELECT ?x WHERE { <http://ex/s> <http://ex/p> ?x }",
            header,
        );
        assert_eq!(status, 200, "{text}");
    }
    drop(server.shutdown());
}

#[test]
fn conn_limit_refusal_carries_retry_after() {
    let server = boot_with(
        "connlimit",
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            threads: 1,
            max_conns: 1,
            retry_after_secs: 2,
            ..Default::default()
        },
        ReasoningConfig::Reformulation,
    );
    let addr = server.local_addr();
    // Hold the only slot open with a partial request.
    let mut holder = TcpStream::connect(addr).expect("holder connects");
    holder.write_all(b"GET /he").expect("partial writes");
    std::thread::sleep(Duration::from_millis(300));

    // The refusal is written at accept time, before any request bytes
    // are read — so connect and read without sending anything.
    let mut refused = TcpStream::connect(addr).expect("second conn connects");
    refused
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout sets");
    let mut text = String::new();
    refused.read_to_string(&mut text).expect("refusal reads");
    let status: u16 = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {text:?}"));
    assert_eq!(status, 503, "{text}");
    assert!(text.contains("Retry-After: 2"), "{text}");
    assert!(text.contains("\"retry_after_ms\":2000"), "{text}");
    assert!(text.contains("\"error\":\"overloaded\""), "{text}");
    drop(holder);
    drop(server.shutdown());
}

#[test]
fn error_bodies_are_uniform_across_classes() {
    for backend in [Backend::Reactor, Backend::Threaded] {
        let name = match backend {
            Backend::Reactor => "uniform-reactor",
            _ => "uniform-threaded",
        };
        let server = boot_with(
            name,
            ServerConfig {
                addr: "127.0.0.1:0".to_owned(),
                threads: 1,
                backend,
                ..Default::default()
            },
            ReasoningConfig::Reformulation,
        );
        let addr = server.local_addr();
        // 404, 405 and 400 all carry the same JSON shape with explicit
        // null retry/degraded fields.
        let (status, text) = get(addr, "/nope");
        assert_eq!(status, 404);
        assert!(text.contains("\"retry_after_ms\":null"), "{text}");
        assert!(text.contains("\"degraded\":null"), "{text}");
        let (status, text) = post(addr, "/update", "frobnicate <a> <b> <c> .");
        assert_eq!(status, 400);
        assert!(text.contains("\"retry_after_ms\":null"), "{text}");
        assert!(text.contains("\"degraded\":null"), "{text}");
        drop(server.shutdown());
    }
}

#[cfg(feature = "failpoints")]
mod degraded {
    use super::*;
    use std::sync::Mutex;
    use webreason_failpoints::configure;

    /// Failpoints are process-global: tests arming them are serialized,
    /// and each disarms on the way out.
    static SERIAL: Mutex<()> = Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn wait_ready(addr: SocketAddr, deadline: Duration) -> bool {
        let start = Instant::now();
        while start.elapsed() < deadline {
            if get(addr, "/ready").0 == 200 {
                return true;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        false
    }

    #[test]
    fn enospc_enters_read_only_degraded_mode_and_auto_recovers() {
        let _guard = serial();
        configure("");
        let server = boot_with(
            "enospc",
            ServerConfig {
                addr: "127.0.0.1:0".to_owned(),
                threads: 2,
                ..Default::default()
            },
            ReasoningConfig::Reformulation,
        );
        let addr = server.local_addr();
        let (status, _) = post(
            addr,
            "/update",
            "insert <http://ex/s> <http://ex/p> \"v\" .",
        );
        assert_eq!(status, 200);
        let entered_before = metric_or_zero(addr, "webreason_server_degraded_entered_total");
        let exited_before = metric_or_zero(addr, "webreason_server_degraded_exited_total");

        // The disk "fills": the next journal append fails with ENOSPC.
        configure("store.journal.append=err(ENOSPC)");
        let (status, text) = post(
            addr,
            "/update",
            "insert <http://ex/s2> <http://ex/p> \"w\" .",
        );
        assert_eq!(
            status, 500,
            "the write that hit the disk fails plainly: {text}"
        );
        assert!(text.contains("apply_failed"), "{text}");

        // Degraded: readiness fails with the reason, updates 503 with the
        // machine-readable reason + Retry-After, reads and liveness flow.
        let (status, text) = get(addr, "/ready");
        assert_eq!(status, 503, "{text}");
        assert!(text.contains("journal_enospc"), "{text}");
        let (status, text) = post(
            addr,
            "/update",
            "insert <http://ex/s3> <http://ex/p> \"x\" .",
        );
        assert_eq!(status, 503, "{text}");
        assert!(text.contains("\"degraded\":\"journal_enospc\""), "{text}");
        assert!(text.contains("Retry-After:"), "{text}");
        let (status, text) = post(
            addr,
            "/query",
            "SELECT ?x WHERE { <http://ex/s> <http://ex/p> ?x }",
        );
        assert_eq!(status, 200, "reads must keep serving: {text}");
        assert!(text.contains("\\\"v\\\""), "{text}");
        assert_eq!(get(addr, "/health").0, 200, "liveness is not readiness");
        assert_eq!(metric_or_zero(addr, "webreason_server_degraded"), 1);

        // The disk "heals": the supervisor's probe append succeeds and
        // the server exits degraded mode on its own.
        configure("");
        assert!(wait_ready(addr, Duration::from_secs(10)), "never recovered");
        let (status, text) = post(
            addr,
            "/update",
            "insert <http://ex/s4> <http://ex/p> \"y\" .",
        );
        assert_eq!(status, 200, "writes resume after recovery: {text}");
        assert_eq!(metric_or_zero(addr, "webreason_server_degraded"), 0);
        assert_eq!(
            metric_or_zero(addr, "webreason_server_degraded_entered_total"),
            entered_before + 1,
            "exactly one degraded entry"
        );
        assert_eq!(
            metric_or_zero(addr, "webreason_server_degraded_exited_total"),
            exited_before + 1,
            "exactly one degraded exit"
        );

        // The 500'd and 503'd writes were never applied; the acked ones
        // all were.
        let (status, text) = post(addr, "/query", "SELECT ?s ?o WHERE { ?s <http://ex/p> ?o }");
        assert_eq!(status, 200);
        assert!(!text.contains("ex/s2"), "failed write leaked: {text}");
        assert!(
            !text.contains("ex/s3"),
            "degraded-refused write leaked: {text}"
        );
        assert!(
            text.contains("ex/s4"),
            "post-recovery write missing: {text}"
        );
        drop(server.shutdown());
    }

    #[test]
    fn fsync_eio_degrades_with_its_own_reason() {
        let _guard = serial();
        configure("");
        let server = boot_fsync(
            "eio",
            ServerConfig {
                addr: "127.0.0.1:0".to_owned(),
                threads: 1,
                group_commit: true,
                ..Default::default()
            },
            ReasoningConfig::Reformulation,
            FsyncPolicy::Always,
        );
        let addr = server.local_addr();
        let (status, _) = post(
            addr,
            "/update",
            "insert <http://ex/a> <http://ex/p> \"1\" .",
        );
        assert_eq!(status, 200);

        configure("store.journal.fsync=err(EIO)");
        let (status, text) = post(
            addr,
            "/update",
            "insert <http://ex/b> <http://ex/p> \"2\" .",
        );
        assert_eq!(
            status, 500,
            "group-sync failure rejects the whole group: {text}"
        );
        let (status, text) = get(addr, "/ready");
        assert_eq!(status, 503, "{text}");
        assert!(text.contains("journal_eio"), "{text}");
        // Unsynced writes were not published: readers still see only `a`.
        let (status, text) = post(addr, "/query", "SELECT ?s WHERE { ?s <http://ex/p> ?o }");
        assert_eq!(status, 200);
        assert!(!text.contains("ex/b"), "unacked write visible: {text}");

        configure("");
        assert!(wait_ready(addr, Duration::from_secs(10)), "never recovered");
        let (status, text) = post(
            addr,
            "/update",
            "insert <http://ex/c> <http://ex/p> \"3\" .",
        );
        assert_eq!(status, 200, "{text}");
        drop(server.shutdown());
    }
}
