//! Seeded stress/soak: concurrent query clients and per-namespace update
//! clients hammer a real server over real sockets for a time budget
//! (default 2 s; set `WEBREASON_SOAK_SECS` to run longer) while the
//! writer checkpoints periodically. At the end:
//!
//! * the store the server hands back equals a cold journal replay of the
//!   same directory (base graph, answers) — durability under load;
//! * the recovered base graph equals the set computed by replaying each
//!   client's *acknowledged* ops in order (clients own disjoint subject
//!   namespaces, so the cross-client interleaving cannot matter);
//! * the obs request counters reconcile exactly with the client-side
//!   tallies — no request is double-counted or dropped.

use std::collections::BTreeSet;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use webreason_core::{DurableStore, FsyncPolicy, MaintenanceAlgorithm, ReasoningConfig, Store};
use webreason_server::{Backend, Server, ServerConfig};

/// The counter oracle reads the process-wide `obs::global()` registry, so
/// the per-backend soaks must not overlap inside this test binary.
static SOAK_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

const UPDATE_CLIENTS: usize = 3;
const QUERY_CLIENTS: usize = 3;

const MAMMALS: &str = "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x a ex:Mammal }";

fn soak_secs() -> u64 {
    std::env::var("WEBREASON_SOAK_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2)
}

/// Deterministic per-client PRNG.
struct Lcg(u64);

impl Lcg {
    fn below(&mut self, n: u64) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) % n
    }
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout sets");
    let raw = format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(raw.as_bytes()).expect("request writes");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("response reads");
    let status = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    (status, text)
}

#[derive(Default)]
struct UpdateTally {
    sent: u64,
    accepted: u64,
    rejected: u64,
    /// The triples present at the end of this client's acknowledged ops.
    live: BTreeSet<(String, String)>,
}

/// One update client: inserts and deletes class memberships inside its
/// own subject namespace, replaying the acknowledged outcome locally.
fn update_client(addr: SocketAddr, id: usize, stop: Arc<AtomicBool>) -> UpdateTally {
    let mut rng = Lcg(0x5EED + id as u64);
    let mut tally = UpdateTally::default();
    while !stop.load(Ordering::SeqCst) {
        let subject = format!("http://ex/c{id}s{}", rng.below(16));
        let class = if rng.below(2) == 0 { "Cat" } else { "Mammal" };
        let delete = rng.below(4) == 0 && !tally.live.is_empty();
        let body = if delete {
            let victim = tally
                .live
                .iter()
                .nth(rng.below(tally.live.len() as u64) as usize)
                .cloned()
                .expect("non-empty");
            format!(
                "delete <{}> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <{}> .\n",
                victim.0, victim.1
            )
        } else {
            format!(
                "insert <{subject}> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> \
                 <http://ex/{class}> .\n"
            )
        };
        tally.sent += 1;
        let (status, text) = post(addr, "/update", &body);
        match status {
            200 => {
                tally.accepted += 1;
                if delete {
                    // Re-derive the victim from the body we sent.
                    let s = body.split('<').nth(1).unwrap().split('>').next().unwrap();
                    let o = body.split('<').nth(3).unwrap().split('>').next().unwrap();
                    tally.live.remove(&(s.to_owned(), o.to_owned()));
                } else {
                    tally
                        .live
                        .insert((subject.clone(), format!("http://ex/{class}")));
                }
            }
            429 => tally.rejected += 1,
            other => panic!("update client {id}: unexpected {other}: {text}"),
        }
    }
    tally
}

/// One query client: counts every answered query.
fn query_client(addr: SocketAddr, stop: Arc<AtomicBool>) -> u64 {
    let mut answered = 0u64;
    while !stop.load(Ordering::SeqCst) {
        let (status, text) = post(addr, "/query", MAMMALS);
        assert_eq!(status, 200, "query client: {text}");
        answered += 1;
    }
    answered
}

fn run_soak(name: &str, backend: Backend) {
    let _guard = SOAK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = std::env::temp_dir().join(format!("webreason-soak-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    obs::global().reset();

    let mut store = DurableStore::create(
        &dir,
        ReasoningConfig::Saturation(MaintenanceAlgorithm::DRed),
        NonZeroUsize::MIN,
        FsyncPolicy::Never,
    )
    .expect("store creates");
    store
        .load_turtle(
            "@prefix ex: <http://ex/> .\n\
             @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n\
             ex:Cat rdfs:subClassOf ex:Mammal .\n",
        )
        .expect("schema loads");

    let server = Server::start(
        store,
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            threads: 4,
            checkpoint_every: 8, // checkpoints fire many times per second
            backend,
            ..Default::default()
        },
    )
    .expect("server boots");
    let addr = server.local_addr();

    let stop = Arc::new(AtomicBool::new(false));
    let updaters: Vec<_> = (0..UPDATE_CLIENTS)
        .map(|id| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || update_client(addr, id, stop))
        })
        .collect();
    let queriers: Vec<_> = (0..QUERY_CLIENTS)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || query_client(addr, stop))
        })
        .collect();

    std::thread::sleep(Duration::from_secs(soak_secs()));
    stop.store(true, Ordering::SeqCst);

    let tallies: Vec<UpdateTally> = updaters
        .into_iter()
        .map(|h| h.join().expect("update client"))
        .collect();
    let queries_answered: u64 = queriers
        .into_iter()
        .map(|h| h.join().expect("query client"))
        .sum();

    let returned = server.shutdown();

    // --- Oracle 1: counters reconcile with the client-side tallies -----
    let reg = obs::global();
    let sent: u64 = tallies.iter().map(|t| t.sent).sum();
    let accepted: u64 = tallies.iter().map(|t| t.accepted).sum();
    let rejected: u64 = tallies.iter().map(|t| t.rejected).sum();
    assert!(sent > 0 && queries_answered > 0, "the soak did some work");
    assert_eq!(reg.counter_value("server.query.requests"), queries_answered);
    assert_eq!(reg.counter_value("server.update.requests"), sent);
    assert_eq!(reg.counter_value("server.update.enqueued"), accepted);
    assert_eq!(reg.counter_value("server.update.applied"), accepted);
    assert_eq!(reg.counter_value("server.update.rejected"), rejected);
    let checkpoints = reg.counter_value("server.checkpoint.count");
    assert_eq!(checkpoints, accepted / 8, "periodic checkpoints fired");

    // --- Oracle 2: returned store == cold journal replay ---------------
    let replayed = Store::recover(&dir).expect("journal replays");
    assert_eq!(
        replayed.export_ntriples(),
        returned.store().export_ntriples(),
        "live store and journal replay disagree on the base graph"
    );
    let a = returned.answer_sparql(MAMMALS).expect("returned answers");
    let b = replayed.answer_sparql(MAMMALS).expect("replayed answers");
    assert_eq!(
        a.to_strings(&returned.store().dictionary()),
        b.to_strings(&replayed.dictionary()),
        "live store and journal replay disagree on answers"
    );

    // --- Oracle 3: base graph == union of acknowledged client ops ------
    let mut expected: BTreeSet<String> = tallies
        .iter()
        .flat_map(|t| t.live.iter())
        .map(|(s, class)| {
            format!("<{s}> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <{class}> .")
        })
        .collect();
    expected.insert(
        "<http://ex/Cat> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://ex/Mammal> ."
            .to_owned(),
    );
    let actual: BTreeSet<String> = returned
        .store()
        .export_ntriples()
        .lines()
        .map(str::to_owned)
        .collect();
    assert_eq!(
        actual, expected,
        "acknowledged ops replay to the base graph"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn soak_reactor_backend_reconciles() {
    run_soak("reactor", Backend::Reactor);
}

#[test]
fn soak_threaded_backend_reconciles() {
    run_soak("threaded", Backend::Threaded);
}
