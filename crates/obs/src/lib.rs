//! Observability for the webreason workspace: hierarchical spans,
//! monotonic counters and log2-bucketed histograms in a
//! global-but-resettable [`Registry`].
//!
//! The crate is dependency-free apart from the workspace's vendored
//! `serde` facade (used only to serialise [`MetricsSnapshot`]); it pulls
//! in no runtime, no channels, no background threads — instrumentation
//! sites pay an atomic-flag check plus (when enabled) a short
//! mutex-protected map update.
//!
//! # Metric naming
//!
//! Every metric name is `subsystem.operation.unit`:
//!
//! * `rdfs.saturate.rule_firings` — counter, rules fired during saturation
//! * `sparql.union.scan_cache_hits` — counter, memoized scans reused
//! * `durability.journal.append_bytes` — counter, bytes appended to the WAL
//! * `core.maintain.instance_insert_us` — histogram, per-update latency
//!
//! Span names drop the unit (`rdfs.saturate.run`, `sparql.union.eval`):
//! the unit of a span is always wall-clock microseconds. The first
//! segment is the subsystem; [`MetricsSnapshot::subsystems`] groups by it.
//!
//! # Clocks and determinism
//!
//! Every duration flows through the [`Clock`] trait. Production uses
//! [`MonotonicClock`]; tests inject a [`ManualClock`]
//! ([`Registry::install_manual_clock`]) and advance it explicitly, so all
//! timing assertions are exact — no sleeps.
//!
//! # Global use vs. tests
//!
//! Instrumented code records into [`global()`]. Tests either construct a
//! private [`Registry`], or serialise on the global one and call
//! [`Registry::reset`] between scenarios. [`Registry::disabled`] (or
//! `set_enabled(false)`) turns every operation into a no-op whose
//! counter reads return 0.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cancel;
pub mod clock;
pub mod histogram;
pub mod registry;
pub mod snapshot;

pub use cancel::CancelToken;
pub use clock::{Clock, ManualClock, MonotonicClock};
pub use histogram::{bucket_bounds, bucket_index, Histogram, BUCKETS};
pub use registry::{Counter, Registry, Span, SpanAgg};
pub use snapshot::{
    lint_prometheus_text, sanitize_metric_name, BucketSnapshot, CounterSnapshot, HistogramSnapshot,
    MetricsSnapshot, SpanSnapshot,
};

/// The process-wide registry (shorthand for [`Registry::global`]).
pub fn global() -> &'static Registry {
    Registry::global()
}
