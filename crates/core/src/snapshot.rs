//! Snapshot isolation for concurrent query answering.
//!
//! The paper's amortisation story (§III) presumes a live system: queries
//! keep arriving *while* updates trigger maintenance. This module turns
//! the single-threaded [`Store`](crate::Store) into a snapshot-publishing
//! design — the writer applies updates and incremental maintenance on its
//! private state, then publishes an immutable [`StoreSnapshot`] behind an
//! atomically-swapped `Arc` epoch; readers clone the `Arc` and evaluate
//! against that frozen view, never blocking behind maintenance.
//!
//! Three invariants make this safe without fine-grained locking:
//!
//! 1. **Graphs are frozen at publish time.** A snapshot owns its graphs
//!    (cloned from the writer's state at most once per epoch, lazily, on
//!    the first read after a change); nothing mutates them afterwards.
//! 2. **The dictionary is append-only and shared.** Term ids are never
//!    reassigned, so one `Arc<RwLock<Dictionary>>` serves the writer and
//!    every snapshot: readers interning query constants cannot invalidate
//!    any id a frozen graph was encoded against.
//! 3. **Derived caches are replaced, never cleared.** The schema closure,
//!    reformulation cache and adaptive winners ride along as `Arc`s that
//!    the writer *swaps* on schema-changing updates — a reader holding an
//!    old snapshot keeps the caches consistent with *its* graph.

use crate::backward::evaluate_backward;
use crate::store::{AnswerError, ReasoningConfig};
use datalog::rdf::saturate_via_datalog;
use obs::CancelToken;
use rdf_model::{Dictionary, Graph, IntervalDict, Vocab};
use rdfs::Schema;
use reformulation::{reformulate, reformulate_intervals};
use sparql::{
    evaluate, evaluate_union, parse_query, try_evaluate_interval_cancel, try_evaluate_union_cancel,
    EvalStats, IntervalQuery, Query, Solutions, UnionEvalError,
};
use std::num::NonZeroUsize;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Locks a `RwLock` for reading, recovering from poisoning: every shared
/// structure here is append-only or replace-only, so a reader that
/// panicked mid-read cannot have left it half-mutated.
pub(crate) fn read_lock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

/// Locks a `RwLock` for writing, recovering from poisoning (see
/// [`read_lock`]).
pub(crate) fn write_lock<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

/// Locks a `Mutex`, recovering from poisoning (see [`read_lock`]).
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// Maps a parallel-evaluator error onto the answer error surface,
/// counting cancellations.
fn map_union(reg: &obs::Registry, e: UnionEvalError) -> AnswerError {
    match e {
        UnionEvalError::Worker(w) => AnswerError::Worker(w),
        UnionEvalError::Cancelled => {
            reg.add("core.answer.cancelled", 1);
            AnswerError::Cancelled
        }
    }
}

/// Which path the adaptive strategy learned for a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AdaptiveChoice {
    Saturated,
    Reformulated,
}

/// Schema closure, computed at most once per schema version and shared by
/// every snapshot of that version (the writer swaps the `Arc` on
/// schema-changing updates).
pub(crate) type SchemaCell = Arc<OnceLock<Schema>>;

/// Per-query reformulation cache, keyed by the query's structural form.
/// Valid for one schema version; swapped with [`SchemaCell`].
pub(crate) type RefoCache = Arc<Mutex<rustc_hash::FxHashMap<String, Query>>>;

/// The LiteMat interval dictionary of the current schema version, built
/// lazily behind the first interval-strategy answer (the build *is* the
/// interval strategy's schema-update cost — spanned as
/// `core.interval.reencode`). Swapped with [`SchemaCell`].
pub(crate) type IntervalCell = Arc<OnceLock<Arc<IntervalDict>>>;

/// Per-query interval-rewrite cache; valid for one schema version,
/// swapped with [`SchemaCell`].
pub(crate) type IqCache = Arc<Mutex<rustc_hash::FxHashMap<String, Arc<IntervalQuery>>>>;

/// How a schema-based (non-materialising) snapshot answers queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SchemaMode {
    /// Per-atom backward chaining during join evaluation.
    Backward,
    /// Union reformulation: `q_ref(G)` through the union-aware evaluator.
    Reformulate,
    /// LiteMat interval rewriting: range-scan atoms over the interval
    /// dictionary instead of hierarchy unions.
    Interval,
}

/// Learned per-query winners of the adaptive strategy. Survives instance
/// updates, swapped on schema updates (costs may have shifted).
pub(crate) type Winners = Arc<Mutex<rustc_hash::FxHashMap<String, AdaptiveChoice>>>;

/// The structural cache key of a query (projection + patterns + DISTINCT).
pub(crate) fn query_key(q: &Query) -> String {
    format!("{:?}|{:?}|{}", q.projection, q.bgps, q.distinct)
}

/// Frozen per-strategy state: the graphs a snapshot answers against.
pub(crate) enum SnapState {
    /// Plain `q(G)`.
    Plain { graph: Graph },
    /// Maintained saturation: answer with `q(G∞)`.
    Saturated { saturated: Graph },
    /// Reformulation / interval rewriting / backward chaining over the
    /// explicit graph. All three share the schema closure; the per-query
    /// compile caches ride along so any mode is also servable as a
    /// per-query override (see [`StoreSnapshot::answer_with_strategy`]).
    Schema {
        graph: Graph,
        mode: SchemaMode,
        schema: SchemaCell,
        refo_cache: RefoCache,
        interval: IntervalCell,
        iq_cache: IqCache,
    },
    /// Datalog: explicit graph + per-epoch lazily materialised saturation.
    Datalog {
        graph: Graph,
        saturated: OnceLock<Graph>,
    },
    /// Adaptive hybrid: both graphs + shared learned winners. Carries the
    /// reformulation and interval caches too, so every strategy is
    /// servable per query against one snapshot.
    Adaptive {
        base: Graph,
        saturated: Graph,
        schema: SchemaCell,
        winners: Winners,
        refo_cache: RefoCache,
        interval: IntervalCell,
        iq_cache: IqCache,
    },
}

/// One published epoch of a [`Store`](crate::Store): an immutable view
/// that answers queries with `&self`, concurrently with the writer's
/// maintenance of the *next* epoch.
///
/// Cheap to share (`Arc`), safe to keep: a snapshot taken before an
/// update keeps answering from its frozen graphs.
pub struct StoreSnapshot {
    pub(crate) epoch: u64,
    pub(crate) config: ReasoningConfig,
    pub(crate) threads: NonZeroUsize,
    pub(crate) vocab: Vocab,
    pub(crate) dict: Arc<RwLock<Dictionary>>,
    pub(crate) state: SnapState,
}

impl StoreSnapshot {
    /// The epoch this snapshot publishes. Epochs increase monotonically
    /// with every effective update; two snapshots with the same epoch are
    /// views of identical data.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The reasoning strategy the snapshot answers with.
    pub fn config(&self) -> ReasoningConfig {
        self.config
    }

    /// Explicit triples in the frozen `G`.
    pub fn base_len(&self) -> usize {
        match &self.state {
            SnapState::Plain { graph }
            | SnapState::Schema { graph, .. }
            | SnapState::Datalog { graph, .. } => graph.len(),
            SnapState::Saturated { saturated } => saturated.len(),
            SnapState::Adaptive { base, .. } => base.len(),
        }
    }

    /// Triples in the frozen saturation, when this epoch materialised one.
    pub(crate) fn saturated_len(&self) -> Option<usize> {
        match &self.state {
            SnapState::Saturated { saturated } => Some(saturated.len()),
            SnapState::Datalog { saturated, .. } => saturated.get().map(|g| g.len()),
            SnapState::Adaptive { saturated, .. } => Some(saturated.len()),
            _ => None,
        }
    }

    /// A read guard on the shared dictionary (for decoding solutions).
    pub fn dictionary(&self) -> RwLockReadGuard<'_, Dictionary> {
        read_lock(&self.dict)
    }

    /// The frozen graph a registered incremental view's dataflow probes
    /// under this snapshot's strategy: `G∞` for the saturation strategies
    /// (their entailed delta streams), the explicit `G` for plain and
    /// reformulation answering. `None` for the strategies the subscription
    /// layer does not support (backward chaining, Datalog, adaptive —
    /// their answer processes have no delta form here).
    pub fn view_graph(&self) -> Option<&Graph> {
        match &self.state {
            SnapState::Plain { graph } => Some(graph),
            SnapState::Saturated { saturated } => Some(saturated),
            SnapState::Schema { graph, mode, .. } if *mode != SchemaMode::Backward => Some(graph),
            _ => None,
        }
    }

    /// For the reformulation and interval strategies: compiles `q` into
    /// its reformulated union `q_ref` against this snapshot's schema
    /// version, through the same per-version cache the answer path uses.
    /// (Interval-mode snapshots serve the *union* form here: the
    /// subscription layer's incremental dataflow is compiled from union
    /// branches, and both rewritings produce identical answers.)
    /// `Ok(None)` when this snapshot's strategy does not answer over the
    /// explicit graph with a rewriting.
    pub fn reformulated(&self, q: &Query) -> Result<Option<Query>, AnswerError> {
        match &self.state {
            SnapState::Schema {
                graph,
                mode,
                schema,
                refo_cache,
                ..
            } if *mode != SchemaMode::Backward => {
                let schema = schema.get_or_init(|| Schema::extract(graph, &self.vocab));
                let key = query_key(q);
                let mut cache = lock(refo_cache);
                if let Some(cached) = cache.get(&key) {
                    return Ok(Some(cached.clone()));
                }
                let r = reformulate(q, schema, &self.vocab)?;
                cache.insert(key, r.query.clone());
                Ok(Some(r.query))
            }
            _ => Ok(None),
        }
    }

    /// Parses a SPARQL query against the shared dictionary. New constants
    /// are interned (append-only), which never disturbs existing ids.
    pub fn prepare(&self, sparql: &str) -> Result<Query, AnswerError> {
        Ok(parse_query(sparql, &mut write_lock(&self.dict))?)
    }

    /// Parses and answers in one call.
    pub fn answer_sparql(
        &self,
        sparql: &str,
    ) -> Result<(Solutions, Option<EvalStats>), AnswerError> {
        let q = self.prepare(sparql)?;
        self.answer(&q)
    }

    /// Answers a prepared query against this frozen epoch with the active
    /// strategy, applying solution modifiers / aggregates uniformly at the
    /// end. Returns the union-evaluation stats when a reformulation path
    /// ran (`None` otherwise).
    ///
    /// `&self` end to end: lazily-derived state (schema closure, Datalog
    /// saturation) lives in per-epoch `OnceLock`s, the reformulation cache
    /// and adaptive winners behind shared mutexes — so any number of
    /// readers answer concurrently with each other and with the writer.
    pub fn answer(&self, q: &Query) -> Result<(Solutions, Option<EvalStats>), AnswerError> {
        self.answer_cancel(q, &CancelToken::none())
    }

    /// [`answer`](StoreSnapshot::answer) with cooperative cancellation:
    /// the token is polled on entry and threaded into the parallel union
    /// evaluator, which checks it at branch/chunk boundaries. On trip the
    /// query returns [`AnswerError::Cancelled`] and every worker's partial
    /// state is discarded — the snapshot (including its shared scan cache
    /// and reformulation cache) is untouched, so an identical re-run
    /// produces bit-identical answers.
    pub fn answer_cancel(
        &self,
        q: &Query,
        cancel: &CancelToken,
    ) -> Result<(Solutions, Option<EvalStats>), AnswerError> {
        self.answer_with_strategy(q, None, cancel)
    }

    /// The union-reformulation answer path: compile (or hit the cache),
    /// then the union-aware evaluator — shared-prefix trie + scan cache,
    /// parallel across the threads knob. A worker panic surfaces as
    /// `AnswerError::Worker`, a tripped token as `AnswerError::Cancelled`;
    /// the snapshot itself stays consistent either way.
    #[allow(clippy::too_many_arguments)]
    fn union_path(
        &self,
        graph: &Graph,
        schema: &Schema,
        refo_cache: &RefoCache,
        q: &Query,
        cancel: &CancelToken,
        reg: &obs::Registry,
    ) -> Result<(Solutions, EvalStats), AnswerError> {
        let key = query_key(q);
        let q_ref = {
            let mut cache = lock(refo_cache);
            match cache.get(&key) {
                Some(cached) => cached.clone(),
                None => {
                    // Spanned separately so observed-cost analysis can
                    // keep rewrite time out of evaluation time.
                    let _refo = reg.span("core.answer.reformulate");
                    let r = reformulate(q, schema, &self.vocab)?;
                    cache.insert(key, r.query.clone());
                    r.query
                }
            }
        };
        try_evaluate_union_cancel(graph, &q_ref, self.threads, cancel)
            .map_err(|e| map_union(reg, e))
    }

    /// The interval answer path: build the interval dictionary once per
    /// schema version (spanned `core.interval.reencode` — the interval
    /// strategy's schema-update cost), rewrite through the per-version
    /// cache, evaluate with the range-scan evaluator.
    #[allow(clippy::too_many_arguments)]
    fn interval_path(
        &self,
        graph: &Graph,
        schema: &Schema,
        interval: &IntervalCell,
        iq_cache: &IqCache,
        q: &Query,
        cancel: &CancelToken,
        reg: &obs::Registry,
    ) -> Result<(Solutions, EvalStats), AnswerError> {
        let idict = interval
            .get_or_init(|| {
                let _span = reg.span("core.interval.reencode");
                reg.add("core.interval.reencodes", 1);
                Arc::new(schema.interval_dict())
            })
            .clone();
        let key = query_key(q);
        let iq = {
            let mut cache = lock(iq_cache);
            match cache.get(&key) {
                Some(cached) => cached.clone(),
                None => {
                    let _refo = reg.span("core.answer.reformulate");
                    let iq = Arc::new(reformulate_intervals(q, schema, &self.vocab, idict)?);
                    cache.insert(key, iq.clone());
                    iq
                }
            }
        };
        try_evaluate_interval_cancel(graph, &iq, self.threads, cancel)
            .map_err(|e| map_union(reg, e))
    }

    /// [`answer_cancel`](StoreSnapshot::answer_cancel) with an optional
    /// per-query strategy override: `"saturation"`, `"reformulation"`,
    /// `"interval"` or `"backward-chaining"` (the server's `X-Strategy`
    /// header lands here). The override is honoured when this snapshot's
    /// state holds the graphs that path needs — any schema-based snapshot
    /// serves the three rewriting paths, adaptive snapshots additionally
    /// serve `saturation` — and rejected with
    /// [`AnswerError::StrategyUnsupported`] otherwise.
    pub fn answer_with_strategy(
        &self,
        q: &Query,
        strategy: Option<&str>,
        cancel: &CancelToken,
    ) -> Result<(Solutions, Option<EvalStats>), AnswerError> {
        let reg = obs::global();
        let _span = reg.span("core.answer.query");
        reg.add("core.answer.queries", 1);
        if cancel.is_cancelled() {
            reg.add("core.answer.cancelled", 1);
            return Err(AnswerError::Cancelled);
        }
        let unsupported = |s: &str| {
            AnswerError::StrategyUnsupported(format!(
                "strategy '{s}' is not servable under the '{}' configuration",
                self.config.name()
            ))
        };
        let mut eval_stats: Option<EvalStats> = None;
        let sols = match (&self.state, strategy) {
            (_, Some(s))
                if !matches!(
                    s,
                    "saturation" | "reformulation" | "interval" | "backward-chaining"
                ) =>
            {
                return Err(AnswerError::StrategyUnsupported(format!(
                    "unknown strategy '{s}' (expected saturation, reformulation, \
                     interval or backward-chaining)"
                )))
            }
            (SnapState::Plain { graph }, None) => evaluate(graph, q),
            (SnapState::Saturated { saturated }, None | Some("saturation")) => {
                evaluate(saturated, q)
            }
            (
                SnapState::Schema {
                    graph,
                    mode,
                    schema,
                    refo_cache,
                    interval,
                    iq_cache,
                },
                strategy,
            ) => {
                let schema = schema.get_or_init(|| Schema::extract(graph, &self.vocab));
                let mode = match strategy {
                    None => *mode,
                    Some("reformulation") => SchemaMode::Reformulate,
                    Some("interval") => SchemaMode::Interval,
                    Some("backward-chaining") => SchemaMode::Backward,
                    Some(s) => return Err(unsupported(s)),
                };
                match mode {
                    SchemaMode::Backward => evaluate_backward(graph, schema, &self.vocab, q),
                    SchemaMode::Reformulate => {
                        let (sols, stats) =
                            self.union_path(graph, schema, refo_cache, q, cancel, reg)?;
                        eval_stats = Some(stats);
                        sols
                    }
                    SchemaMode::Interval => {
                        let (sols, stats) =
                            self.interval_path(graph, schema, interval, iq_cache, q, cancel, reg)?;
                        eval_stats = Some(stats);
                        sols
                    }
                }
            }
            (SnapState::Datalog { graph, saturated }, None | Some("saturation")) => {
                let sat = saturated.get_or_init(|| saturate_via_datalog(graph, &self.vocab).0);
                evaluate(sat, q)
            }
            (
                SnapState::Adaptive {
                    base,
                    saturated,
                    schema,
                    refo_cache,
                    interval,
                    iq_cache,
                    ..
                },
                Some(s),
            ) => match s {
                "saturation" => evaluate(saturated, q),
                _ => {
                    let schema = schema.get_or_init(|| Schema::extract(base, &self.vocab));
                    match s {
                        "reformulation" => {
                            let (sols, stats) =
                                self.union_path(base, schema, refo_cache, q, cancel, reg)?;
                            eval_stats = Some(stats);
                            sols
                        }
                        "interval" => {
                            let (sols, stats) = self
                                .interval_path(base, schema, interval, iq_cache, q, cancel, reg)?;
                            eval_stats = Some(stats);
                            sols
                        }
                        _ => evaluate_backward(base, schema, &self.vocab, q),
                    }
                }
            },
            (_, Some(s)) => return Err(unsupported(s)),
            (
                SnapState::Adaptive {
                    base,
                    saturated,
                    schema,
                    winners,
                    ..
                },
                None,
            ) => {
                let key = query_key(q);
                let schema = schema.get_or_init(|| Schema::extract(base, &self.vocab));
                let choice = lock(winners).get(&key).copied();
                match choice {
                    Some(AdaptiveChoice::Saturated) => evaluate(saturated, q),
                    Some(AdaptiveChoice::Reformulated) => {
                        let r = {
                            let _refo = reg.span("core.answer.reformulate");
                            reformulate(q, schema, &self.vocab)?
                        };
                        let (sols, stats) =
                            try_evaluate_union_cancel(base, &r.query, self.threads, cancel)
                                .map_err(|e| map_union(reg, e))?;
                        eval_stats = Some(stats);
                        sols
                    }
                    None => {
                        // First sight of this query: learn the cheaper path.
                        // Non-DISTINCT queries pin to saturation (the
                        // reformulated union has answer-set semantics), as
                        // do queries outside the reformulation dialect.
                        if !q.distinct {
                            lock(winners).insert(key, AdaptiveChoice::Saturated);
                            evaluate(saturated, q)
                        } else {
                            match reformulate(q, schema, &self.vocab) {
                                Err(_) => {
                                    lock(winners).insert(key, AdaptiveChoice::Saturated);
                                    evaluate(saturated, q)
                                }
                                Ok(r) => {
                                    let start = std::time::Instant::now();
                                    let sat_sols = evaluate(saturated, q);
                                    let sat_time = start.elapsed();
                                    let start = std::time::Instant::now();
                                    // Measure the path the strategy would
                                    // actually take: the union-aware one.
                                    let _ = evaluate_union(base, &r.query, self.threads);
                                    let ref_time = start.elapsed();
                                    lock(winners).insert(
                                        key,
                                        if sat_time <= ref_time {
                                            AdaptiveChoice::Saturated
                                        } else {
                                            AdaptiveChoice::Reformulated
                                        },
                                    );
                                    sat_sols
                                }
                            }
                        }
                    }
                }
            }
        };
        let sols = sparql::finalize(sols, q, &mut write_lock(&self.dict));
        Ok((sols, eval_stats))
    }
}

/// The publication slot: one `RwLock`-guarded `Arc` the writer swaps and
/// readers clone. The lock is held only for the pointer copy, never
/// during evaluation or maintenance.
pub(crate) struct SnapshotCell {
    slot: RwLock<Arc<StoreSnapshot>>,
}

impl SnapshotCell {
    pub(crate) fn new(initial: Arc<StoreSnapshot>) -> Self {
        SnapshotCell {
            slot: RwLock::new(initial),
        }
    }

    /// The most recently published snapshot.
    pub(crate) fn current(&self) -> Arc<StoreSnapshot> {
        read_lock(&self.slot).clone()
    }

    /// Atomically replaces the published snapshot.
    pub(crate) fn publish(&self, snap: Arc<StoreSnapshot>) {
        *write_lock(&self.slot) = snap;
    }
}

/// A cloneable read handle onto a [`Store`](crate::Store): server worker
/// threads (and tests) hold one per thread and answer queries against
/// whatever epoch the writer last published, without any access to the
/// writer itself.
///
/// Obtained from [`Store::reader`](crate::Store::reader) or
/// [`DurableStore::reader`](crate::DurableStore::reader).
#[derive(Clone)]
pub struct StoreReader {
    pub(crate) cell: Arc<SnapshotCell>,
    pub(crate) dict: Arc<RwLock<Dictionary>>,
}

impl StoreReader {
    /// The most recently published epoch, frozen. Hold it to evaluate
    /// several queries against one consistent view.
    pub fn snapshot(&self) -> Arc<StoreSnapshot> {
        self.cell.current()
    }

    /// A read guard on the shared dictionary (decoding solutions).
    pub fn dictionary(&self) -> RwLockReadGuard<'_, Dictionary> {
        read_lock(&self.dict)
    }

    /// Parses a SPARQL query against the shared dictionary.
    pub fn prepare(&self, sparql: &str) -> Result<Query, AnswerError> {
        Ok(parse_query(sparql, &mut write_lock(&self.dict))?)
    }

    /// Parses and answers against the current published epoch. Returns
    /// the solutions, the union-evaluation stats when a reformulation
    /// path ran, and the epoch that was answered — so callers can assert
    /// monotonic reads.
    pub fn answer_sparql(
        &self,
        sparql: &str,
    ) -> Result<(Solutions, Option<EvalStats>, u64), AnswerError> {
        let snap = self.snapshot();
        let q = self.prepare(sparql)?;
        let (sols, stats) = snap.answer(&q)?;
        Ok((sols, stats, snap.epoch()))
    }

    /// Answers a prepared query against the current published epoch.
    pub fn answer(&self, q: &Query) -> Result<(Solutions, Option<EvalStats>, u64), AnswerError> {
        self.answer_cancel(q, &CancelToken::none())
    }

    /// [`answer`](StoreReader::answer) with cooperative cancellation (see
    /// [`StoreSnapshot::answer_cancel`]).
    pub fn answer_cancel(
        &self,
        q: &Query,
        cancel: &CancelToken,
    ) -> Result<(Solutions, Option<EvalStats>, u64), AnswerError> {
        let snap = self.snapshot();
        let (sols, stats) = snap.answer_cancel(q, cancel)?;
        Ok((sols, stats, snap.epoch()))
    }

    /// [`answer_sparql`](StoreReader::answer_sparql) with cooperative
    /// cancellation (see [`StoreSnapshot::answer_cancel`]).
    pub fn answer_sparql_cancel(
        &self,
        sparql: &str,
        cancel: &CancelToken,
    ) -> Result<(Solutions, Option<EvalStats>, u64), AnswerError> {
        self.answer_sparql_strategy_cancel(sparql, None, cancel)
    }

    /// [`answer_sparql_cancel`](StoreReader::answer_sparql_cancel) with an
    /// optional per-query strategy override (see
    /// [`StoreSnapshot::answer_with_strategy`]).
    pub fn answer_sparql_strategy_cancel(
        &self,
        sparql: &str,
        strategy: Option<&str>,
        cancel: &CancelToken,
    ) -> Result<(Solutions, Option<EvalStats>, u64), AnswerError> {
        let snap = self.snapshot();
        let q = self.prepare(sparql)?;
        let (sols, stats) = snap.answer_with_strategy(&q, strategy, cancel)?;
        Ok((sols, stats, snap.epoch()))
    }
}
