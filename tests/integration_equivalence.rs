//! Strategy equivalence on the LUBM workload: every reasoning strategy
//! must return the same answer sets on the reformulation dialect —
//! `q(G∞) = q_ref(G) = backward(G) = datalog(G)` — which is the semantic
//! backbone of the paper's performance comparison (the techniques compute
//! the *same* answers at different costs).

use rustc_hash::FxHashSet;
use webreason_core::{ReasoningConfig, Store};
use workload::lubm::{generate, queries, LubmConfig};

#[test]
fn all_strategies_agree_on_lubm_q1_to_q10() {
    let mut ds = generate(&LubmConfig::tiny());
    let named = queries(&mut ds);

    // Reference answers from recompute-saturation.
    let mut reference: Vec<FxHashSet<Vec<rdf_model::TermId>>> = Vec::new();
    {
        let mut store = Store::from_parts(
            ds.dict.clone(),
            ds.vocab,
            ds.graph.clone(),
            ReasoningConfig::Saturation(webreason_core::MaintenanceAlgorithm::Recompute),
        );
        for nq in &named {
            let mut q = nq.query.clone();
            q.distinct = true;
            reference.push(store.answer(&q).unwrap().as_set());
        }
    }

    for config in ReasoningConfig::ALL {
        if config == ReasoningConfig::None {
            continue;
        }
        let mut store = Store::from_parts(ds.dict.clone(), ds.vocab, ds.graph.clone(), config);
        for (nq, want) in named.iter().zip(&reference) {
            let mut q = nq.query.clone();
            q.distinct = true;
            let got = store.answer(&q).unwrap().as_set();
            assert_eq!(
                &got,
                want,
                "{} disagrees on {} ({})",
                config.name(),
                nq.name,
                nq.description
            );
            assert!(!got.is_empty(), "{} is non-trivial", nq.name);
        }
    }
}

#[test]
fn threaded_saturation_store_agrees_on_lubm() {
    // The sharded parallel engine must be invisible end to end: a store
    // saturating with 4 worker threads answers every LUBM query exactly
    // like the single-threaded one, before and after an update.
    let mut ds = generate(&LubmConfig::tiny());
    let named = queries(&mut ds);
    let config = ReasoningConfig::Saturation(webreason_core::MaintenanceAlgorithm::Recompute);
    let mut seq = Store::from_parts(ds.dict.clone(), ds.vocab, ds.graph.clone(), config);
    let mut par = Store::from_parts_with_threads(
        ds.dict.clone(),
        ds.vocab,
        ds.graph.clone(),
        config,
        std::num::NonZeroUsize::new(4).unwrap(),
    );
    assert_eq!(par.stats().threads, 4);

    let new_person = ds
        .dict
        .encode_iri("http://webreason.example/data/u0/d0/newhire");
    let head_of = ds
        .dict
        .encode_iri("http://webreason.example/univ-bench#headOf");
    let dept = ds.dict.encode_iri("http://webreason.example/data/u0/d0");
    let t = rdf_model::Triple::new(new_person, head_of, dept);

    for round in 0..2 {
        for nq in &named {
            let mut q = nq.query.clone();
            q.distinct = true;
            assert_eq!(
                par.answer(&q).unwrap().as_set(),
                seq.answer(&q).unwrap().as_set(),
                "4-thread store disagrees on {} (round {round})",
                nq.name
            );
        }
        seq.insert(t);
        par.insert(t);
    }
}

#[test]
fn plain_evaluation_misses_answers_on_lubm() {
    // The motivation for the whole paper: ignoring entailment loses answers.
    let mut ds = generate(&LubmConfig::tiny());
    let named = queries(&mut ds);
    let mut none = Store::from_parts(
        ds.dict.clone(),
        ds.vocab,
        ds.graph.clone(),
        ReasoningConfig::None,
    );
    let mut sat = Store::from_parts(
        ds.dict,
        ds.vocab,
        ds.graph,
        ReasoningConfig::Saturation(webreason_core::MaintenanceAlgorithm::Counting),
    );
    let mut lossy = 0;
    for nq in &named {
        let mut q = nq.query.clone();
        q.distinct = true;
        let incomplete = none.answer(&q).unwrap().len();
        let complete = sat.answer(&q).unwrap().len();
        assert!(incomplete <= complete, "{}", nq.name);
        if incomplete < complete {
            lossy += 1;
        }
    }
    assert!(
        lossy >= 6,
        "most LUBM queries need reasoning; only {lossy} did"
    );
}

#[test]
fn strategies_agree_after_updates() {
    let mut ds = generate(&LubmConfig::tiny());
    let named = queries(&mut ds);
    let q5 = named
        .iter()
        .find(|nq| nq.name == "Q5")
        .unwrap()
        .query
        .clone();

    // Pick an update: a new head of department d1 (headOf ⊑ worksFor ⊑ memberOf).
    let new_person = ds
        .dict
        .encode_iri("http://webreason.example/data/u0/d0/newhire");
    let head_of = ds
        .dict
        .encode_iri("http://webreason.example/univ-bench#headOf");
    let dept = ds.dict.encode_iri("http://webreason.example/data/u0/d0");
    let t = rdf_model::Triple::new(new_person, head_of, dept);

    let mut results = Vec::new();
    for config in ReasoningConfig::ALL {
        if config == ReasoningConfig::None {
            continue;
        }
        let mut store = Store::from_parts(ds.dict.clone(), ds.vocab, ds.graph.clone(), config);
        let mut q = q5.clone();
        q.distinct = true;
        let before = store.answer(&q).unwrap().len();
        store.insert(t);
        let after = store.answer(&q).unwrap().len();
        assert_eq!(after, before + 1, "{}: new member visible", config.name());
        store.delete(&t);
        let back = store.answer(&q).unwrap().as_set();
        results.push((config.name(), before, back));
    }
    let first = results[0].2.clone();
    for (name, _, set) in &results {
        assert_eq!(set, &first, "{name} diverged after update round-trip");
    }
}
