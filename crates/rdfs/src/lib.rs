//! # rdfs — RDFS entailment: saturation and its maintenance
//!
//! This crate implements the *forward-chaining* side of the paper
//! (§II-B "Graph saturation"):
//!
//! * [`Schema`]: the four RDFS constraints of Fig. 1 (subclass,
//!   subproperty, domain typing, range typing) extracted from a graph and
//!   *closed* under the schema-level entailment rules (rdfs5, rdfs11 and
//!   the domain/range propagation rules), with forward and inverse
//!   accessors — the inverse maps drive query reformulation one crate up;
//! * [`rules`]: the immediate entailment rules of Fig. 2 (rdfs2, rdfs3,
//!   rdfs7, rdfs9) together with the schema-level rules, each applicable
//!   one step at a time (`⊢ᵢ_RDF` in the paper) — the basis for the naive
//!   engine, semi-naive deltas, and DRed;
//! * [`saturate`]: the fix-point `G∞` of repeatedly applying immediate
//!   entailment, via a fast schema-closure-specialised single pass, with
//!   [`saturate_naive`] as the reference fix-point implementation;
//! * [`incremental`]: saturation maintenance under updates — the paper's
//!   central performance concern — with three interchangeable algorithms:
//!   full recomputation, **DRed** (delete-and-rederive, the OWLIM-style
//!   approach) and **counting** (Broekstra & Kampman's truth-maintenance
//!   approach, ref. \[11\] of the paper).
//!
//! ## Example: the paper's running example (§I)
//!
//! "If the database only holds that *Tom is a cat* and the axiom that
//! *any cat is a mammal*, one can add to the database the fact that *Tom is
//! a mammal*":
//!
//! ```
//! use rdf_model::{Dictionary, Graph, Triple, Vocab};
//! use rdfs::saturate;
//!
//! let mut dict = Dictionary::new();
//! let vocab = Vocab::intern(&mut dict);
//! let tom = dict.encode_iri("http://zoo.example/Tom");
//! let cat = dict.encode_iri("http://zoo.example/Cat");
//! let mammal = dict.encode_iri("http://zoo.example/Mammal");
//!
//! let mut g = Graph::new();
//! g.insert(Triple::new(tom, vocab.rdf_type, cat));       // Tom is a cat
//! g.insert(Triple::new(cat, vocab.sub_class_of, mammal)); // cats are mammals
//!
//! let sat = saturate(&g, &vocab);
//! assert!(sat.graph.contains(&Triple::new(tom, vocab.rdf_type, mammal)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explain;
pub mod incremental;
pub mod parallel;
pub mod plus;
pub mod rules;
mod saturation;
mod schema;

pub use parallel::{
    saturate_parallel, try_saturate_parallel, try_saturate_parallel_cancel, ParallelError,
};
pub use saturation::{saturate, saturate_full, saturate_naive, SaturationResult, SaturationStats};
pub use schema::Schema;
