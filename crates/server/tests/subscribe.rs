//! Socket-level subscription protocol suite: real `TcpStream` clients
//! against real ephemeral-port servers, covering the chunked-stream
//! framing, pull-side catch-up from an epoch, slow-consumer drops (the
//! writer never stalls behind a subscriber), the `--max-subscriptions`
//! cap, graceful-shutdown terminal events, and registration deadlines.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::num::NonZeroUsize;
use std::path::PathBuf;
use std::time::{Duration, Instant};
use webreason_core::{DurableStore, FsyncPolicy, MaintenanceAlgorithm, ReasoningConfig};
use webreason_server::{Backend, Server, ServerConfig};

fn tmpdir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("webreason-subscribe-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn boot_with(name: &str, config: ServerConfig, reasoning: ReasoningConfig) -> Server {
    let store = DurableStore::create(
        tmpdir(name),
        reasoning,
        NonZeroUsize::MIN,
        FsyncPolicy::Never,
    )
    .expect("store creates");
    Server::start(store, config).expect("server boots")
}

fn counting() -> ReasoningConfig {
    ReasoningConfig::Saturation(MaintenanceAlgorithm::Counting)
}

/// Sends raw bytes, reads to EOF, returns (status, whole response text).
fn raw_round_trip(addr: SocketAddr, raw: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .expect("timeout sets");
    stream.write_all(raw).expect("request writes");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("response reads");
    let status: u16 = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {text:?}"));
    (status, text)
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    post_with_headers(addr, path, body, &[])
}

fn post_with_headers(
    addr: SocketAddr,
    path: &str,
    body: &str,
    headers: &[(&str, &str)],
) -> (u16, String) {
    let mut raw = format!("POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n");
    for (n, v) in headers {
        raw.push_str(&format!("{n}: {v}\r\n"));
    }
    raw.push_str(&format!("Content-Length: {}\r\n\r\n{body}", body.len()));
    raw_round_trip(addr, raw.as_bytes())
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    let raw = format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    raw_round_trip(addr, raw.as_bytes())
}

fn delete(addr: SocketAddr, path: &str) -> (u16, String) {
    let raw = format!("DELETE {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    raw_round_trip(addr, raw.as_bytes())
}

/// Pulls one counter/gauge value out of a `/metrics` scrape (0 when the
/// counter has not been minted yet).
fn metric_or_zero(addr: SocketAddr, name: &str) -> u64 {
    let (status, text) = get(addr, "/metrics");
    assert_eq!(status, 200);
    text.lines()
        .find_map(|l| {
            let v = l.strip_prefix(name)?;
            if !v.starts_with(' ') {
                return None;
            }
            Some(v.trim().parse().expect("metric parses"))
        })
        .unwrap_or(0)
}

/// Extracts `"key":<u64>` from a JSON text without a parser.
fn json_u64(text: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let at = text.find(&pat).unwrap_or_else(|| panic!("{key} in {text}"));
    text[at + pat.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("{key} not a number in {text}"))
}

/// Decodes a complete `Transfer-Encoding: chunked` body into its frames.
fn decode_chunks(mut body: &[u8]) -> Vec<String> {
    let mut frames = Vec::new();
    loop {
        let line_end = body
            .windows(2)
            .position(|w| w == b"\r\n")
            .expect("chunk size line");
        let size = usize::from_str_radix(
            std::str::from_utf8(&body[..line_end]).expect("chunk size utf8"),
            16,
        )
        .expect("chunk size hex");
        body = &body[line_end + 2..];
        if size == 0 {
            return frames;
        }
        frames.push(String::from_utf8_lossy(&body[..size]).to_string());
        assert_eq!(&body[size..size + 2], b"\r\n", "chunk trailer");
        body = &body[size + 2..];
    }
}

/// One parsed event on a live subscribe stream.
#[derive(Debug)]
enum Frame {
    /// One chunk (= one JSON document).
    Data(String),
    /// The 0-chunk: the stream ended cleanly.
    End,
    /// The peer closed without a 0-chunk.
    Eof,
}

/// Incremental chunked-frame reader over a live streaming connection.
struct FrameReader {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl FrameReader {
    fn new(stream: TcpStream) -> FrameReader {
        stream
            .set_read_timeout(Some(Duration::from_secs(20)))
            .expect("timeout sets");
        FrameReader {
            stream,
            buf: Vec::new(),
        }
    }

    /// Reads until the response head is complete, returning it.
    fn read_head(&mut self) -> String {
        let mut tmp = [0u8; 4096];
        loop {
            if let Some(i) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                let head = String::from_utf8_lossy(&self.buf[..i + 4]).to_string();
                self.buf.drain(..i + 4);
                return head;
            }
            let n = self.stream.read(&mut tmp).expect("head reads");
            assert!(n > 0, "EOF before a full head");
            self.buf.extend_from_slice(&tmp[..n]);
        }
    }

    /// Blocks until the next whole frame (or stream end) is available.
    fn next_frame(&mut self) -> Frame {
        let mut tmp = [0u8; 65536];
        loop {
            if let Some(line_end) = self.buf.windows(2).position(|w| w == b"\r\n") {
                let size = usize::from_str_radix(
                    std::str::from_utf8(&self.buf[..line_end]).expect("chunk size utf8"),
                    16,
                )
                .expect("chunk size hex");
                if size == 0 {
                    return Frame::End;
                }
                if self.buf.len() >= line_end + 2 + size + 2 {
                    let payload =
                        String::from_utf8_lossy(&self.buf[line_end + 2..line_end + 2 + size])
                            .to_string();
                    self.buf.drain(..line_end + 2 + size + 2);
                    return Frame::Data(payload);
                }
            }
            match self.stream.read(&mut tmp) {
                Ok(0) => return Frame::Eof,
                Ok(n) => self.buf.extend_from_slice(&tmp[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    panic!("timed out waiting for a frame; buffered: {:?}", self.buf)
                }
                Err(e) => panic!("stream read failed: {e}"),
            }
        }
    }
}

/// Opens a live streaming subscription (threaded backend) and consumes
/// the registration header + initial snapshot frames.
fn open_stream(
    addr: SocketAddr,
    sparql: &str,
    headers: &[(&str, &str)],
) -> (FrameReader, u64, u64) {
    let mut stream = TcpStream::connect(addr).expect("connects");
    let mut raw = "POST /subscribe HTTP/1.1\r\nHost: t\r\n".to_string();
    for (n, v) in headers {
        raw.push_str(&format!("{n}: {v}\r\n"));
    }
    raw.push_str(&format!("Content-Length: {}\r\n\r\n{sparql}", sparql.len()));
    stream.write_all(raw.as_bytes()).expect("request writes");
    let mut reader = FrameReader::new(stream);
    let head = reader.read_head();
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(
        head.to_ascii_lowercase()
            .contains("transfer-encoding: chunked"),
        "{head}"
    );
    let Frame::Data(header) = reader.next_frame() else {
        panic!("missing registration header frame")
    };
    let id = json_u64(&header, "id");
    let epoch = json_u64(&header, "epoch");
    let Frame::Data(initial) = reader.next_frame() else {
        panic!("missing initial snapshot frame")
    };
    assert!(initial.contains("\"reset\":true"), "{initial}");
    (reader, id, epoch)
}

const MAMMALS: &str = "SELECT ?x WHERE { ?x a <http://ex/Mammal> }";
const SCHEMA: &str =
    "insert <http://ex/Cat> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://ex/Mammal> .";
const TOM_IS_CAT: &str =
    "<http://ex/Tom> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Cat> .";

#[test]
fn streaming_frames_round_trip_entailed_insert_and_delete() {
    let server = boot_with(
        "stream",
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            threads: 2,
            backend: Backend::Threaded,
            ..Default::default()
        },
        counting(),
    );
    let addr = server.local_addr();
    let (status, _) = post(addr, "/update", SCHEMA);
    assert_eq!(status, 200);

    let (mut reader, id, epoch0) = open_stream(addr, MAMMALS, &[]);
    assert!(id >= 1);
    assert_eq!(server.subscriptions_live(), 1);

    // Inserting `Tom a Cat` entails `Tom a Mammal`: the subscriber gets
    // the *entailed* delta, tagged with the publishing epoch.
    let (status, text) = post(addr, "/update", &format!("insert {TOM_IS_CAT}"));
    assert_eq!(status, 200, "{text}");
    let update_epoch = json_u64(&text, "epoch");
    assert!(update_epoch > epoch0);
    let Frame::Data(batch) = reader.next_frame() else {
        panic!("expected a delta frame")
    };
    assert_eq!(json_u64(&batch, "epoch"), update_epoch, "{batch}");
    assert!(batch.contains("\"reset\":false"), "{batch}");
    assert!(
        batch.contains("\"row\":[\"<http://ex/Tom>\"],\"delta\":1"),
        "{batch}"
    );

    // Deleting the explicit fact retracts the entailment: delta −1.
    let (status, text) = post(addr, "/update", &format!("delete {TOM_IS_CAT}"));
    assert_eq!(status, 200, "{text}");
    let Frame::Data(batch) = reader.next_frame() else {
        panic!("expected a retraction frame")
    };
    assert!(
        batch.contains("\"row\":[\"<http://ex/Tom>\"],\"delta\":-1"),
        "{batch}"
    );

    // Client-side cancellation from another connection ends the stream
    // without a terminal event (the subscription is simply gone).
    let (status, text) = delete(addr, &format!("/subscribe/{id}"));
    assert_eq!(status, 200, "{text}");
    assert!(matches!(reader.next_frame(), Frame::Eof | Frame::End));
    let (status, _) = delete(addr, &format!("/subscribe/{id}"));
    assert_eq!(status, 404, "double-cancel");

    drop(server.shutdown());
}

#[test]
fn reactor_window_then_catchup_from_epoch() {
    let server = boot_with(
        "catchup",
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            threads: 2,
            backend: Backend::Reactor,
            ..Default::default()
        },
        counting(),
    );
    let addr = server.local_addr();
    let (status, _) = post(addr, "/update", SCHEMA);
    assert_eq!(status, 200);

    // The reactor's bounded window: header, initial snapshot, `next`
    // link, then the 0-chunk — the response *ends* and the client polls.
    let (status, text) = post(addr, "/subscribe", MAMMALS);
    assert_eq!(status, 200, "{text}");
    let body_at = text.find("\r\n\r\n").expect("head ends") + 4;
    let frames = decode_chunks(&text.as_bytes()[body_at..]);
    assert_eq!(frames.len(), 3, "{frames:?}");
    let id = json_u64(&frames[0], "id");
    let epoch0 = json_u64(&frames[0], "epoch");
    assert!(frames[1].contains("\"reset\":true"), "{}", frames[1]);
    assert!(
        frames[2].contains(&format!("\"next\":\"/subscribe/{id}?from={epoch0}\"")),
        "{}",
        frames[2]
    );

    // Two published epochs while the client is away.
    let (status, text) = post(addr, "/update", &format!("insert {TOM_IS_CAT}"));
    assert_eq!(status, 200);
    let e1 = json_u64(&text, "epoch");
    let (status, text) = post(
        addr,
        "/update",
        "insert <http://ex/Jerry> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Mammal> .",
    );
    assert_eq!(status, 200);
    let e2 = json_u64(&text, "epoch");

    // Catch-up from the registration epoch: both batches, in order.
    let (status, text) = get(addr, &format!("/subscribe/{id}?from={epoch0}"));
    assert_eq!(status, 200, "{text}");
    assert!(text.contains("\"terminal\":null"), "{text}");
    let tom = text
        .find("<http://ex/Tom>")
        .unwrap_or_else(|| panic!("{text}"));
    let jerry = text
        .find("<http://ex/Jerry>")
        .unwrap_or_else(|| panic!("{text}"));
    assert!(tom < jerry, "publication order: {text}");
    assert!(text.contains(&format!("\"epoch\":{e1}")), "{text}");
    assert!(text.contains(&format!("\"epoch\":{e2}")), "{text}");

    // From the newer epoch: only the later batch.
    let (status, text) = get(addr, &format!("/subscribe/{id}?from={e1}"));
    assert_eq!(status, 200);
    assert!(!text.contains("<http://ex/Tom>"), "{text}");
    assert!(text.contains("<http://ex/Jerry>"), "{text}");

    // From before the log's anchor: one snapshot-reset batch carrying the
    // complete current answer.
    let (status, text) = get(addr, &format!("/subscribe/{id}?from=0"));
    assert_eq!(status, 200);
    assert!(text.contains("\"reset\":true"), "{text}");
    assert!(
        text.contains("<http://ex/Tom>") && text.contains("<http://ex/Jerry>"),
        "{text}"
    );

    // Unknown ids and non-numeric ids are clean errors.
    let (status, _) = get(addr, "/subscribe/999?from=0");
    assert_eq!(status, 404);
    let (status, _) = get(addr, "/subscribe/nope?from=0");
    assert_eq!(status, 400);

    let (status, _) = delete(addr, &format!("/subscribe/{id}"));
    assert_eq!(status, 200);
    let (status, _) = get(addr, &format!("/subscribe/{id}?from=0"));
    assert_eq!(status, 404, "catch-up after cancel");

    drop(server.shutdown());
}

#[test]
fn slow_consumer_is_dropped_lagged_and_the_writer_never_stalls() {
    let server = boot_with(
        "lagged",
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            threads: 2,
            backend: Backend::Threaded,
            subscribe_queue: 2,
            ..Default::default()
        },
        counting(),
    );
    let addr = server.local_addr();

    // Project the payload so every delta batch is ~256 KiB: the stalled
    // subscriber's TCP window fills quickly, then its 2-slot hub queue
    // overflows and the hub cuts it loose.
    let (mut reader, _, _) = open_stream(addr, "SELECT ?s ?v WHERE { ?s <http://ex/big> ?v }", &[]);
    let payload = "x".repeat(256 * 1024);

    // The subscriber stops reading here. The writer must keep absorbing
    // updates at full speed regardless.
    let mut dropped = false;
    let started = Instant::now();
    for i in 0..1000 {
        let body = format!("insert <http://ex/s{i}> <http://ex/big> \"{payload}\" .");
        let t0 = Instant::now();
        let (status, text) = post(addr, "/update", &body);
        assert_eq!(status, 200, "{text}");
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "update {i} stalled behind the slow subscriber"
        );
        if metric_or_zero(addr, "webreason_server_subscribe_dropped_total") >= 1 {
            dropped = true;
            break;
        }
    }
    assert!(
        dropped,
        "subscriber never dropped after {:?} of updates",
        started.elapsed()
    );

    // Draining the stream now ends with the in-stream `lagged` terminal.
    let mut saw_lagged = false;
    while let Frame::Data(f) = reader.next_frame() {
        if f.contains("\"terminal\":\"lagged\"") {
            saw_lagged = true;
        }
    }
    assert!(saw_lagged, "missing lagged terminal frame");
    assert_eq!(server.subscriptions_live(), 0);

    drop(server.shutdown());
}

#[test]
fn max_subscriptions_cap_refuses_then_admits_after_cancel() {
    let server = boot_with(
        "cap",
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            threads: 2,
            backend: Backend::Reactor,
            max_subscriptions: 1,
            ..Default::default()
        },
        counting(),
    );
    let addr = server.local_addr();

    let (status, text) = post(addr, "/subscribe", MAMMALS);
    assert_eq!(status, 200, "{text}");
    let body_at = text.find("\r\n\r\n").expect("head ends") + 4;
    let id = json_u64(&decode_chunks(&text.as_bytes()[body_at..])[0], "id");

    // Note a *different* query: the cap is on subscribers, not views.
    let (status, text) = post(
        addr,
        "/subscribe",
        "SELECT ?x WHERE { ?x a <http://ex/Cat> }",
    );
    assert_eq!(status, 503, "{text}");
    assert!(text.contains("subscription_limit"), "{text}");
    assert!(text.contains("Retry-After"), "{text}");

    let (status, _) = delete(addr, &format!("/subscribe/{id}"));
    assert_eq!(status, 200);
    let (status, text) = post(addr, "/subscribe", MAMMALS);
    assert_eq!(status, 200, "slot freed: {text}");

    drop(server.shutdown());
}

#[test]
fn threaded_shutdown_sends_shutdown_terminal_to_live_streams() {
    let server = boot_with(
        "shutdown-threaded",
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            threads: 2,
            backend: Backend::Threaded,
            ..Default::default()
        },
        counting(),
    );
    let addr = server.local_addr();
    let (mut reader, _, _) = open_stream(addr, MAMMALS, &[]);

    let drain = std::thread::spawn(move || {
        let mut saw_shutdown = false;
        while let Frame::Data(f) = reader.next_frame() {
            if f.contains("\"terminal\":\"shutdown\"") {
                saw_shutdown = true;
            }
        }
        saw_shutdown
    });
    drop(server.shutdown());
    assert!(
        drain.join().expect("drain thread"),
        "missing shutdown terminal frame"
    );
}

#[test]
fn reactor_shutdown_with_pull_subscribers_is_clean_and_registration_is_refused() {
    let server = boot_with(
        "shutdown-reactor",
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            threads: 2,
            backend: Backend::Reactor,
            ..Default::default()
        },
        counting(),
    );
    let addr = server.local_addr();
    let (status, _) = post(addr, "/subscribe", MAMMALS);
    assert_eq!(status, 200);
    // Shutdown with a registered pull subscriber must not hang; after it,
    // the port is gone (polling clients treat the refused connect as the
    // shutdown signal).
    let store = server.shutdown();
    assert!(TcpStream::connect(addr).is_err(), "port still open");
    drop(store);
}

#[test]
fn registration_deadline_expiry_is_a_504() {
    // Reformulation + a wide class hierarchy: the initial materialization
    // reformulates into hundreds of union branches, so a 1 ms deadline
    // deterministically expires inside registration.
    let server = boot_with(
        "deadline",
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            threads: 2,
            backend: Backend::Threaded,
            ..Default::default()
        },
        ReasoningConfig::Reformulation,
    );
    let addr = server.local_addr();
    const SUBCLASS: &str = "http://www.w3.org/2000/01/rdf-schema#subClassOf";
    const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
    let mut lines = Vec::new();
    for c in 0..363 {
        lines.push(format!(
            "insert <http://ex/C{c}> <{SUBCLASS}> <http://ex/Thing> ."
        ));
        for i in 0..10 {
            lines.push(format!(
                "insert <http://ex/i{c}x{i}> <{RDF_TYPE}> <http://ex/C{c}> ."
            ));
        }
    }
    for chunk in lines.chunks(1000) {
        let (status, text) = post(addr, "/update", &chunk.join("\n"));
        assert_eq!(status, 200, "fixture chunk failed: {text}");
    }

    let query = "SELECT ?x WHERE { ?x a <http://ex/Thing> }";
    let start = Instant::now();
    let (status, text) = post_with_headers(
        addr,
        "/subscribe",
        query,
        &[("X-Webreason-Deadline-Ms", "1")],
    );
    assert_eq!(status, 504, "{text}");
    assert!(text.contains("deadline_exceeded"), "{text}");
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "504 was not prompt"
    );
    assert_eq!(server.subscriptions_live(), 0, "nothing half-registered");

    // The identical registration without a deadline succeeds and streams.
    let (mut reader, _, _) = open_stream(addr, query, &[]);
    let (status, text) = post(
        addr,
        "/update",
        &format!("insert <http://ex/late> <{RDF_TYPE}> <http://ex/C0> ."),
    );
    assert_eq!(status, 200, "{text}");
    let Frame::Data(batch) = reader.next_frame() else {
        panic!("expected a delta frame")
    };
    assert!(batch.contains("<http://ex/late>"), "{batch}");

    drop(server.shutdown());
}
