//! Social network scenario — the paper's §II-A running example, scaled up.
//!
//! `hasFriend rdfs:domain Person` means every friendship edge *implies* its
//! subject is a Person ("if the triples hasFriend rdfs:domain Person and
//! Anne hasFriend Marie hold in the graph, then so does the triple Anne
//! rdf:type Person"). This example contrasts saturation and reformulation
//! on a dynamic friend graph and shows the reformulated SPARQL text.
//!
//! ```sh
//! cargo run --example social_network
//! ```

use rdfs::Schema;
use reformulation::reformulate;
use webreason_core::{MaintenanceAlgorithm, ReasoningConfig, Store};

const SCHEMA: &str = r#"
    @prefix sn:   <http://social.example/> .
    @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
    sn:hasFriend     rdfs:domain        sn:Person .
    sn:hasFriend     rdfs:range         sn:Person .
    sn:closeFriendOf rdfs:subPropertyOf sn:hasFriend .
    sn:Influencer    rdfs:subClassOf    sn:Person .
"#;

fn main() {
    let mut store = Store::new(ReasoningConfig::Saturation(MaintenanceAlgorithm::Counting));
    store.load_turtle(SCHEMA).unwrap();
    store
        .load_turtle(
            r#"
            @prefix sn: <http://social.example/> .
            sn:anne  sn:hasFriend     sn:marie .
            sn:marie sn:closeFriendOf sn:paul .
            sn:zoe   a                sn:Influencer .
        "#,
        )
        .unwrap();

    let persons = "PREFIX sn: <http://social.example/> SELECT DISTINCT ?x WHERE { ?x a sn:Person }";
    let friends = "PREFIX sn: <http://social.example/> SELECT ?x ?y WHERE { ?x sn:hasFriend ?y }";

    println!("== saturation-backed store ==");
    let sols = store.answer_sparql(persons).unwrap();
    println!("persons ({}):", sols.len());
    for line in sols.to_strings(&store.dictionary()) {
        println!("    {line}");
    }
    let sols = store.answer_sparql(friends).unwrap();
    println!("friendship edges incl. close friends ({}):", sols.len());
    for line in sols.to_strings(&store.dictionary()) {
        println!("    {line}");
    }

    // Show what reformulation turns the person query into.
    println!("\n== the reformulated query (q_ref) ==");
    let mut ref_store = Store::new(ReasoningConfig::Reformulation);
    ref_store.load_turtle(SCHEMA).unwrap();
    let q = ref_store.prepare(persons).unwrap();
    let schema = Schema::extract(ref_store.base_graph(), ref_store.vocab());
    let r = reformulate(&q, &schema, ref_store.vocab()).unwrap();
    println!("{} union branches:", r.branches);
    println!("{}", r.query.to_sparql(&ref_store.dictionary()));

    // The dynamic part: unfriending must retract inferred types.
    println!("\n== dynamic updates ==");
    let before = store.answer_sparql(persons).unwrap().len();
    store.delete_terms(
        &rdf_model::Term::iri("http://social.example/anne"),
        &rdf_model::Term::iri("http://social.example/hasFriend"),
        &rdf_model::Term::iri("http://social.example/marie"),
    );
    let after = store.answer_sparql(persons).unwrap().len();
    println!("persons before unfriending: {before}, after: {after}");
    println!("(anne is no longer derivably a Person; marie still is, via her own edge)");
}
