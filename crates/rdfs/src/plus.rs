//! RDFS-Plus: the "some of OWL's predicates" extension (§II-C).
//!
//! The paper's systems survey notes that AllegroGraph's RDFS++ "supports
//! all the RDFS predicates and some of OWL's", and Virtuoso's reasoning
//! "supports some of the RDFS and OWL predicates". This module implements
//! that extension class on top of the RDFS rules:
//!
//! * `owl:inverseOf` — `p1 owl:inverseOf p2 ∧ s p1 o ⊢ o p2 s` (and
//!   `owl:inverseOf` is itself symmetric);
//! * `owl:SymmetricProperty` — `p a owl:SymmetricProperty ∧ s p o ⊢ o p s`;
//! * `owl:TransitiveProperty` — `p a owl:TransitiveProperty ∧ s p o ∧
//!   o p z ⊢ s p z`.
//!
//! Because transitivity makes instance-level derivation chains unbounded,
//! the single-pass specialisation and the exact counting maintainer do
//! **not** extend here (their correctness rests on consequence sets being
//! computable from the closed schema alone). RDFS-Plus therefore ships
//! with the generic machinery that stays correct: a semi-naive fix-point
//! ([`saturate_plus`]) and a DRed maintainer ([`PlusMaintainer`]) —
//! property-tested equivalent to recomputation. `owl:sameAs` is out of
//! scope (it needs equivalence-class rewriting, a different mechanism;
//! documented in DESIGN.md).

use crate::incremental::{Maintainer, MaintenanceAlgorithm, UpdateKind, UpdateStats};
use crate::rules::{consequences_of, one_step_derivable};
use crate::saturation::{SaturationResult, SaturationStats};
use rdf_model::{Dictionary, Graph, Term, TermId, Triple, Vocab};
use rustc_hash::{FxHashMap, FxHashSet};

/// `owl:inverseOf`.
pub const OWL_INVERSE_OF: &str = "http://www.w3.org/2002/07/owl#inverseOf";
/// `owl:SymmetricProperty`.
pub const OWL_SYMMETRIC_PROPERTY: &str = "http://www.w3.org/2002/07/owl#SymmetricProperty";
/// `owl:TransitiveProperty`.
pub const OWL_TRANSITIVE_PROPERTY: &str = "http://www.w3.org/2002/07/owl#TransitiveProperty";

/// Pre-interned ids for the supported OWL vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OwlVocab {
    /// `owl:inverseOf`.
    pub inverse_of: TermId,
    /// `owl:SymmetricProperty`.
    pub symmetric_property: TermId,
    /// `owl:TransitiveProperty`.
    pub transitive_property: TermId,
}

impl OwlVocab {
    /// Interns the OWL vocabulary in `dict`.
    pub fn intern(dict: &mut Dictionary) -> Self {
        OwlVocab {
            inverse_of: dict.encode(&Term::iri(OWL_INVERSE_OF)),
            symmetric_property: dict.encode(&Term::iri(OWL_SYMMETRIC_PROPERTY)),
            transitive_property: dict.encode(&Term::iri(OWL_TRANSITIVE_PROPERTY)),
        }
    }
}

/// Immediate consequences of `t` under RDFS **plus** the OWL rules, with
/// the other premise drawn from `g` — the RDFS-Plus analogue of
/// [`crate::rules::consequences_of`].
pub fn consequences_of_plus(
    t: &Triple,
    g: &Graph,
    vocab: &Vocab,
    owl: &OwlVocab,
    mut emit: impl FnMut(Triple),
) {
    consequences_of(t, g, vocab, |_, c| emit(c));

    if t.p == owl.inverse_of {
        // owl:inverseOf is symmetric on the schema level…
        emit(Triple::new(t.o, owl.inverse_of, t.s));
        // …and flips instance edges in both directions.
        for (s, o) in g.pairs_with_property(t.s) {
            emit(Triple::new(o, t.o, s));
        }
        for (s, o) in g.pairs_with_property(t.o) {
            emit(Triple::new(o, t.s, s));
        }
    } else if t.p == vocab.rdf_type && t.o == owl.symmetric_property {
        for (s, o) in g.pairs_with_property(t.s) {
            emit(Triple::new(o, t.s, s));
        }
    } else if t.p == vocab.rdf_type && t.o == owl.transitive_property {
        // Seed one chaining step for every existing pair; the fix-point
        // completes the closure.
        for (s, o) in g.pairs_with_property(t.s) {
            if let Some(zs) = g.objects(o, t.s) {
                for &z in zs {
                    emit(Triple::new(s, t.s, z));
                }
            }
        }
    } else if !vocab.is_schema_property(t.p) && t.p != vocab.rdf_type {
        // t = (s p o), a plain instance edge.
        // inverse
        if let Some(inv) = g.objects(t.p, owl.inverse_of) {
            for &p2 in inv {
                emit(Triple::new(t.o, p2, t.s));
            }
        }
        if let Some(inv) = g.subjects_with(owl.inverse_of, t.p) {
            for &p1 in inv {
                emit(Triple::new(t.o, p1, t.s));
            }
        }
        // symmetric
        if g.contains(&Triple::new(t.p, vocab.rdf_type, owl.symmetric_property)) {
            emit(Triple::new(t.o, t.p, t.s));
        }
        // transitive (t as either instance premise)
        if g.contains(&Triple::new(t.p, vocab.rdf_type, owl.transitive_property)) {
            if let Some(zs) = g.objects(t.o, t.p) {
                for &z in zs {
                    emit(Triple::new(t.s, t.p, z));
                }
            }
            if let Some(xs) = g.subjects_with(t.p, t.s) {
                for &x in xs {
                    emit(Triple::new(x, t.p, t.o));
                }
            }
        }
    }
}

/// One-step derivability under RDFS-Plus — the DRed re-derivation test.
pub fn one_step_derivable_plus(d: &Triple, g: &Graph, vocab: &Vocab, owl: &OwlVocab) -> bool {
    if one_step_derivable(d, g, vocab) {
        return true;
    }
    if d.p == owl.inverse_of {
        return g.contains(&Triple::new(d.o, owl.inverse_of, d.s));
    }
    if vocab.is_schema_property(d.p) || d.p == vocab.rdf_type {
        return false;
    }
    // d = (a p b): inverse?
    let flipped = |q: TermId| g.contains(&Triple::new(d.o, q, d.s));
    if let Some(inv) = g.objects(d.p, owl.inverse_of) {
        if inv.iter().any(|&q| flipped(q)) {
            return true;
        }
    }
    if let Some(inv) = g.subjects_with(owl.inverse_of, d.p) {
        if inv.iter().any(|&q| flipped(q)) {
            return true;
        }
    }
    // symmetric?
    if g.contains(&Triple::new(d.p, vocab.rdf_type, owl.symmetric_property)) && flipped(d.p) {
        return true;
    }
    // transitive?
    if g.contains(&Triple::new(d.p, vocab.rdf_type, owl.transitive_property)) {
        if let Some(mids) = g.objects(d.s, d.p) {
            if mids
                .iter()
                .any(|&m| m != d.o && g.contains(&Triple::new(m, d.p, d.o)))
            {
                return true;
            }
        }
    }
    false
}

fn seminaive_plus(
    sat: &mut Graph,
    mut frontier: Vec<Triple>,
    vocab: &Vocab,
    owl: &OwlVocab,
) -> (usize, usize, usize) {
    let mut added = 0;
    let mut work = 0;
    let mut passes = 0;
    let mut buf: Vec<Triple> = Vec::new();
    while !frontier.is_empty() {
        passes += 1;
        buf.clear();
        for t in &frontier {
            consequences_of_plus(t, sat, vocab, owl, |c| buf.push(c));
        }
        work += buf.len();
        frontier.clear();
        for &c in &buf {
            if sat.insert(c) {
                added += 1;
                frontier.push(c);
            }
        }
    }
    (added, work, passes)
}

/// Computes the RDFS-Plus saturation of `g` (semi-naive fix-point).
pub fn saturate_plus(g: &Graph, vocab: &Vocab, owl: &OwlVocab) -> SaturationResult {
    let mut out = g.clone();
    let frontier: Vec<Triple> = g.iter().collect();
    let (added, work, passes) = seminaive_plus(&mut out, frontier, vocab, owl);
    let mut rule_firings: FxHashMap<&'static str, u64> = FxHashMap::default();
    rule_firings.insert("plus-new", added as u64);
    rule_firings.insert("plus-work", work as u64);
    let stats = SaturationStats {
        input_triples: g.len(),
        output_triples: out.len(),
        inferred: out.len() - g.len(),
        passes,
        rule_firings,
    };
    SaturationResult { graph: out, stats }
}

/// A DRed maintainer for the RDFS-Plus rule set.
///
/// Same algorithm as [`crate::incremental::DRedMaintainer`], over the
/// extended rules; correct under cycles and the unbounded derivation
/// chains transitivity introduces (which is why counting does not extend).
pub struct PlusMaintainer {
    vocab: Vocab,
    owl: OwlVocab,
    base: Graph,
    sat: Graph,
}

impl PlusMaintainer {
    /// Builds the maintainer, computing the initial RDFS-Plus saturation.
    pub fn new(base: Graph, vocab: Vocab, owl: OwlVocab) -> Self {
        let sat = saturate_plus(&base, &vocab, &owl).graph;
        PlusMaintainer {
            vocab,
            owl,
            base,
            sat,
        }
    }

    fn classify(&self, t: &Triple, insert: bool) -> UpdateKind {
        let schema = self.vocab.is_schema_property(t.p)
            || t.p == self.owl.inverse_of
            || (t.p == self.vocab.rdf_type
                && (t.o == self.owl.symmetric_property || t.o == self.owl.transitive_property));
        match (schema, insert) {
            (true, true) => UpdateKind::SchemaInsert,
            (true, false) => UpdateKind::SchemaDelete,
            (false, true) => UpdateKind::InstanceInsert,
            (false, false) => UpdateKind::InstanceDelete,
        }
    }
}

impl Maintainer for PlusMaintainer {
    fn base(&self) -> &Graph {
        &self.base
    }
    fn saturated(&self) -> &Graph {
        &self.sat
    }

    fn insert(&mut self, t: Triple) -> UpdateStats {
        if !self.base.insert(t) {
            return UpdateStats {
                kind: UpdateKind::Noop,
                added: 0,
                removed: 0,
                work: 0,
            };
        }
        let kind = self.classify(&t, true);
        if !self.sat.insert(t) {
            return UpdateStats {
                kind,
                added: 0,
                removed: 0,
                work: 0,
            };
        }
        let (added, work, _) = seminaive_plus(&mut self.sat, vec![t], &self.vocab, &self.owl);
        UpdateStats {
            kind,
            added: added + 1,
            removed: 0,
            work,
        }
    }

    fn delete(&mut self, t: &Triple) -> UpdateStats {
        if !self.base.remove(t) {
            return UpdateStats {
                kind: UpdateKind::Noop,
                added: 0,
                removed: 0,
                work: 0,
            };
        }
        let kind = self.classify(t, false);
        let mut work = 0;

        // over-delete
        let mut over: FxHashSet<Triple> = FxHashSet::default();
        over.insert(*t);
        let mut frontier = vec![*t];
        while let Some(d) = frontier.pop() {
            consequences_of_plus(&d, &self.sat, &self.vocab, &self.owl, |c| {
                work += 1;
                if self.sat.contains(&c) && over.insert(c) {
                    frontier.push(c);
                }
            });
        }
        for d in &over {
            self.sat.remove(d);
        }
        // re-derive
        let mut seeds = Vec::new();
        for d in &over {
            work += 1;
            if self.base.contains(d)
                || one_step_derivable_plus(d, &self.sat, &self.vocab, &self.owl)
            {
                self.sat.insert(*d);
                seeds.push(*d);
            }
        }
        let (_, w2, _) = seminaive_plus(&mut self.sat, seeds, &self.vocab, &self.owl);
        work += w2;

        let removed = over.iter().filter(|d| !self.sat.contains(d)).count();
        UpdateStats {
            kind,
            added: 0,
            removed,
            work,
        }
    }

    fn algorithm(&self) -> MaintenanceAlgorithm {
        MaintenanceAlgorithm::DRed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fx {
        dict: Dictionary,
        vocab: Vocab,
        owl: OwlVocab,
        g: Graph,
    }

    impl Fx {
        fn new() -> Self {
            let mut dict = Dictionary::new();
            let vocab = Vocab::intern(&mut dict);
            let owl = OwlVocab::intern(&mut dict);
            Fx {
                dict,
                vocab,
                owl,
                g: Graph::new(),
            }
        }
        fn id(&mut self, n: &str) -> TermId {
            self.dict.encode_iri(&format!("http://ex/{n}"))
        }
        fn add(&mut self, s: TermId, p: TermId, o: TermId) {
            self.g.insert(Triple::new(s, p, o));
        }
        fn sat(&self) -> Graph {
            saturate_plus(&self.g, &self.vocab, &self.owl).graph
        }
    }

    #[test]
    fn inverse_of_flips_edges_both_ways() {
        let mut f = Fx::new();
        let (has_child, has_parent, ann, bob) = (
            f.id("hasChild"),
            f.id("hasParent"),
            f.id("ann"),
            f.id("bob"),
        );
        let owl = f.owl;
        f.add(has_child, owl.inverse_of, has_parent);
        f.add(ann, has_child, bob);
        let carol = f.id("carol");
        f.add(carol, has_parent, ann);
        let sat = f.sat();
        assert!(
            sat.contains(&Triple::new(bob, has_parent, ann)),
            "forward inverse"
        );
        assert!(
            sat.contains(&Triple::new(ann, has_child, carol)),
            "backward inverse"
        );
        assert!(
            sat.contains(&Triple::new(has_parent, owl.inverse_of, has_child)),
            "symmetry of inverseOf"
        );
    }

    #[test]
    fn symmetric_property() {
        let mut f = Fx::new();
        let (knows, ann, bob) = (f.id("knows"), f.id("ann"), f.id("bob"));
        let (v, owl) = (f.vocab, f.owl);
        f.add(knows, v.rdf_type, owl.symmetric_property);
        f.add(ann, knows, bob);
        let sat = f.sat();
        assert!(sat.contains(&Triple::new(bob, knows, ann)));
    }

    #[test]
    fn transitive_property_closes_chains() {
        let mut f = Fx::new();
        let part_of = f.id("partOf");
        let (v, owl) = (f.vocab, f.owl);
        f.add(part_of, v.rdf_type, owl.transitive_property);
        let nodes: Vec<TermId> = (0..6).map(|i| f.id(&format!("n{i}"))).collect();
        for w in nodes.windows(2) {
            f.add(w[0], part_of, w[1]);
        }
        let sat = f.sat();
        // full transitive closure of the chain: 5+4+3+2+1 = 15 edges
        let mut count = 0;
        sat.for_each_match(&rdf_model::Pattern::new(None, Some(part_of), None), |_| {
            count += 1
        });
        assert_eq!(count, 15);
        assert!(sat.contains(&Triple::new(nodes[0], part_of, nodes[5])));
    }

    #[test]
    fn owl_composes_with_rdfs() {
        // inverse edge feeds rdfs2 domain typing.
        let mut f = Fx::new();
        let (employs, works_for, person, acme, ann) = (
            f.id("employs"),
            f.id("worksFor"),
            f.id("Person"),
            f.id("acme"),
            f.id("ann"),
        );
        let (v, owl) = (f.vocab, f.owl);
        f.add(employs, owl.inverse_of, works_for);
        f.add(works_for, v.domain, person);
        f.add(acme, employs, ann);
        let sat = f.sat();
        assert!(sat.contains(&Triple::new(ann, works_for, acme)));
        assert!(
            sat.contains(&Triple::new(ann, v.rdf_type, person)),
            "inverse then domain"
        );
    }

    #[test]
    fn transitive_plus_subproperty() {
        // ancestor is transitive; parent ⊑ ancestor.
        let mut f = Fx::new();
        let (parent, ancestor, a, b, c) = (
            f.id("parent"),
            f.id("ancestor"),
            f.id("a"),
            f.id("b"),
            f.id("c"),
        );
        let (v, owl) = (f.vocab, f.owl);
        f.add(parent, v.sub_property_of, ancestor);
        f.add(ancestor, v.rdf_type, owl.transitive_property);
        f.add(a, parent, b);
        f.add(b, parent, c);
        let sat = f.sat();
        assert!(
            sat.contains(&Triple::new(a, ancestor, c)),
            "lift then chain"
        );
    }

    #[test]
    fn plus_maintainer_tracks_recompute() {
        let mut f = Fx::new();
        let (rel, sym_rel, a, b, c) =
            (f.id("rel"), f.id("symRel"), f.id("a"), f.id("b"), f.id("c"));
        let (v, owl) = (f.vocab, f.owl);
        f.add(rel, v.rdf_type, owl.transitive_property);
        f.add(sym_rel, v.rdf_type, owl.symmetric_property);
        f.add(a, rel, b);
        f.add(a, sym_rel, c);

        let mut m = PlusMaintainer::new(f.g.clone(), v, owl);
        let check = |m: &PlusMaintainer, base: &Graph| {
            assert_eq!(m.saturated(), &saturate_plus(base, &v, &owl).graph);
        };
        let mut base = f.g.clone();
        let updates = [
            (Triple::new(b, rel, c), true),
            (Triple::new(c, rel, a), true), // creates a cycle in the transitive relation
            (Triple::new(a, rel, b), false),
            (Triple::new(rel, v.rdf_type, owl.transitive_property), false), // schema delete
            (Triple::new(a, sym_rel, c), false),
        ];
        for (t, insert) in updates {
            if insert {
                base.insert(t);
                m.insert(t);
            } else {
                base.remove(&t);
                m.delete(&t);
            }
            check(&m, &base);
        }
    }

    #[test]
    fn without_owl_triples_plus_equals_rdfs() {
        let mut f = Fx::new();
        let (cat, mammal, tom) = (f.id("Cat"), f.id("Mammal"), f.id("tom"));
        let v = f.vocab;
        f.add(cat, v.sub_class_of, mammal);
        f.add(tom, v.rdf_type, cat);
        assert_eq!(f.sat(), crate::saturate(&f.g, &v).graph);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        #[derive(Debug, Clone)]
        enum Op {
            Edge(u8, u8, u8, bool),
            MarkTransitive(u8, bool),
            MarkSymmetric(u8, bool),
            Inverse(u8, u8, bool),
        }

        fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
            proptest::collection::vec(
                prop_oneof![
                    (0u8..6, 0u8..3, 0u8..6, proptest::bool::ANY)
                        .prop_map(|(s, p, o, i)| Op::Edge(s, p, o, i)),
                    (0u8..3, proptest::bool::ANY).prop_map(|(p, i)| Op::MarkTransitive(p, i)),
                    (0u8..3, proptest::bool::ANY).prop_map(|(p, i)| Op::MarkSymmetric(p, i)),
                    (0u8..3, 0u8..3, proptest::bool::ANY)
                        .prop_map(|(p, q, i)| Op::Inverse(p, q, i)),
                ],
                0..25,
            )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]
            /// The Plus maintainer equals recomputation under random streams
            /// of edge / transitivity / symmetry / inverse updates.
            #[test]
            fn plus_maintainer_equals_recompute(ops in arb_ops()) {
                let mut dict = Dictionary::new();
                let vocab = Vocab::intern(&mut dict);
                let owl = OwlVocab::intern(&mut dict);
                let prop = |d: &mut Dictionary, i: u8| d.encode_iri(&format!("http://ex/p{i}"));
                let node = |d: &mut Dictionary, i: u8| d.encode_iri(&format!("http://ex/n{i}"));
                let mut m = PlusMaintainer::new(Graph::new(), vocab, owl);
                let mut base = Graph::new();
                for op in &ops {
                    let (t, insert) = match *op {
                        Op::Edge(s, p, o, i) => {
                            (Triple::new(node(&mut dict, s), prop(&mut dict, p), node(&mut dict, o)), i)
                        }
                        Op::MarkTransitive(p, i) => (
                            Triple::new(prop(&mut dict, p), vocab.rdf_type, owl.transitive_property),
                            i,
                        ),
                        Op::MarkSymmetric(p, i) => (
                            Triple::new(prop(&mut dict, p), vocab.rdf_type, owl.symmetric_property),
                            i,
                        ),
                        Op::Inverse(p, q, i) => (
                            Triple::new(prop(&mut dict, p), owl.inverse_of, prop(&mut dict, q)),
                            i,
                        ),
                    };
                    if insert {
                        base.insert(t);
                        m.insert(t);
                    } else {
                        base.remove(&t);
                        m.delete(&t);
                    }
                }
                let expect = saturate_plus(&base, &vocab, &owl).graph;
                prop_assert_eq!(m.saturated(), &expect);
                prop_assert_eq!(m.base(), &base);
            }
        }
    }
}
