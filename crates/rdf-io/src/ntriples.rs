//! N-Triples reader and writer.
//!
//! One triple per line, terms in full: `<iri>`, `_:label`, or a quoted
//! literal with optional `@lang` / `^^<datatype>`. Comment lines start with
//! `#`. This is the format the paper's "well-formed RDF triples" (§II-A)
//! are exchanged in between RDF endpoints.

use crate::error::ParseError;
use rdf_model::{Dictionary, Graph, Literal, Term, Triple};

/// A cursor over one line of N-Triples input.
struct Cursor<'a> {
    rest: &'a str,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn new(line_text: &'a str, line: usize) -> Self {
        Cursor {
            rest: line_text,
            line,
        }
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.line, msg)
    }

    fn skip_ws(&mut self) {
        self.rest = self.rest.trim_start_matches([' ', '\t']);
    }

    fn peek(&self) -> Option<char> {
        self.rest.chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.rest.chars().next()?;
        self.rest = &self.rest[c.len_utf8()..];
        Some(c)
    }

    fn expect(&mut self, c: char) -> Result<(), ParseError> {
        if self.bump() == Some(c) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{c}'")))
        }
    }

    /// Parses the body of an IRIREF after the opening `<`.
    fn iri_body(&mut self) -> Result<String, ParseError> {
        let mut out = String::new();
        loop {
            match self.bump() {
                Some('>') => return Ok(out),
                Some('\\') => out.push(self.unicode_escape()?),
                Some(c) if c == ' ' || c == '<' || c == '"' => {
                    return Err(self.err(format!("character '{c}' not allowed in IRI")));
                }
                Some(c) => out.push(c),
                None => return Err(self.err("unterminated IRI")),
            }
        }
    }

    /// Parses `\uXXXX` or `\UXXXXXXXX` after the backslash.
    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        let (kind, n) = match self.bump() {
            Some('u') => ('u', 4),
            Some('U') => ('U', 8),
            other => return Err(self.err(format!("invalid IRI escape {other:?}"))),
        };
        self.hex_char(kind, n)
    }

    fn hex_char(&mut self, kind: char, n: usize) -> Result<char, ParseError> {
        if self.rest.len() < n || !self.rest.is_char_boundary(n) {
            return Err(self.err(format!("truncated \\{kind} escape")));
        }
        let (hex, rest) = self.rest.split_at(n);
        let code = u32::from_str_radix(hex, 16)
            .map_err(|_| self.err(format!("invalid hex in \\{kind} escape: {hex:?}")))?;
        self.rest = rest;
        char::from_u32(code)
            .ok_or_else(|| self.err(format!("\\{kind} escape U+{code:X} is not a scalar value")))
    }

    /// Parses a blank node label after `_:`.
    fn blank_label(&mut self) -> Result<String, ParseError> {
        let end = self
            .rest
            .find(|c: char| !(c.is_alphanumeric() || c == '_' || c == '-' || c == '.'))
            .unwrap_or(self.rest.len());
        // A trailing '.' terminates the statement, not the label.
        let mut label = &self.rest[..end];
        while label.ends_with('.') {
            label = &label[..label.len() - 1];
        }
        if label.is_empty() {
            return Err(self.err("empty blank node label"));
        }
        self.rest = &self.rest[label.len()..];
        Ok(label.to_owned())
    }

    /// Parses the body of a quoted string after the opening `"`.
    fn string_body(&mut self) -> Result<String, ParseError> {
        let mut out = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('t') => out.push('\t'),
                    Some('b') => out.push('\u{8}'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('f') => out.push('\u{c}'),
                    Some('"') => out.push('"'),
                    Some('\'') => out.push('\''),
                    Some('\\') => out.push('\\'),
                    Some('u') => out.push(self.hex_char('u', 4)?),
                    Some('U') => out.push(self.hex_char('U', 8)?),
                    other => return Err(self.err(format!("invalid string escape {other:?}"))),
                },
                Some(c) => out.push(c),
                None => return Err(self.err("unterminated string literal")),
            }
        }
    }

    /// Parses a full term at the cursor.
    fn term(&mut self) -> Result<Term, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some('<') => {
                self.bump();
                Ok(Term::Iri(self.iri_body()?.into()))
            }
            Some('_') => {
                self.bump();
                self.expect(':')?;
                Ok(Term::BlankNode(self.blank_label()?.into()))
            }
            Some('"') => {
                self.bump();
                let lexical = self.string_body()?;
                match self.peek() {
                    Some('@') => {
                        self.bump();
                        let end = self
                            .rest
                            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '-'))
                            .unwrap_or(self.rest.len());
                        if end == 0 {
                            return Err(self.err("empty language tag"));
                        }
                        let tag = &self.rest[..end];
                        self.rest = &self.rest[end..];
                        Ok(Term::Literal(Literal::lang(lexical, tag)))
                    }
                    Some('^') => {
                        self.bump();
                        self.expect('^')?;
                        self.skip_ws();
                        self.expect('<')?;
                        let dt = self.iri_body()?;
                        Ok(Term::Literal(Literal::typed(lexical, dt)))
                    }
                    _ => Ok(Term::Literal(Literal::plain(lexical))),
                }
            }
            other => Err(self.err(format!("expected a term, found {other:?}"))),
        }
    }
}

/// Parses an N-Triples document, interning terms into `dict` and inserting
/// the triples into `graph`. Returns the number of triples parsed (including
/// any already present in `graph`).
pub fn parse_ntriples(
    input: &str,
    dict: &mut Dictionary,
    graph: &mut Graph,
) -> Result<usize, ParseError> {
    let mut parsed = 0;
    for (idx, raw) in input.lines().enumerate() {
        let line_no = idx + 1;
        let mut cur = Cursor::new(raw, line_no);
        cur.skip_ws();
        if cur.rest.is_empty() || cur.rest.starts_with('#') {
            continue;
        }
        let s = cur.term()?;
        if s.is_literal() {
            return Err(cur.err("literal not allowed in subject position"));
        }
        cur.skip_ws();
        let p = cur.term()?;
        if !p.is_iri() {
            return Err(cur.err("property must be an IRI"));
        }
        let o = cur.term()?;
        cur.skip_ws();
        cur.expect('.')?;
        cur.skip_ws();
        if !(cur.rest.is_empty() || cur.rest.starts_with('#')) {
            return Err(cur.err("trailing content after '.'"));
        }
        let t = Triple::new(dict.encode(&s), dict.encode(&p), dict.encode(&o));
        graph.insert(t);
        parsed += 1;
    }
    Ok(parsed)
}

/// Serialises `graph` as N-Triples, in the graph's internal iteration order.
pub fn write_ntriples(graph: &Graph, dict: &Dictionary) -> String {
    let mut out = String::new();
    for t in graph.iter() {
        push_line(&mut out, &t, dict);
    }
    out
}

/// Serialises `graph` as N-Triples with lines sorted lexicographically —
/// deterministic output for golden tests and diffing.
pub fn write_ntriples_sorted(graph: &Graph, dict: &Dictionary) -> String {
    let mut lines: Vec<String> = graph
        .iter()
        .map(|t| {
            let mut s = String::new();
            push_line(&mut s, &t, dict);
            s
        })
        .collect();
    lines.sort();
    lines.concat()
}

fn push_line(out: &mut String, t: &Triple, dict: &Dictionary) {
    use std::fmt::Write as _;
    let term = |id| dict.decode(id).expect("triple references unknown term id");
    let _ = writeln!(out, "{} {} {} .", term(t.s), term(t.p), term(t.o));
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::Pattern;

    fn parse(input: &str) -> Result<(Dictionary, Graph, usize), ParseError> {
        let mut d = Dictionary::new();
        let mut g = Graph::new();
        let n = parse_ntriples(input, &mut d, &mut g)?;
        Ok((d, g, n))
    }

    #[test]
    fn parses_basic_triples() {
        let (d, g, n) = parse(
            "<http://a> <http://p> <http://b> .\n\
             <http://a> <http://p> \"lit\" .\n",
        )
        .unwrap();
        assert_eq!(n, 2);
        assert_eq!(g.len(), 2);
        let a = d.get_iri_id("http://a").unwrap();
        assert_eq!(g.count(&Pattern::new(Some(a), None, None)), 2);
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let (_, g, n) =
            parse("# a comment\n\n   \n<http://a> <http://p> <http://b> . # trailing\n").unwrap();
        assert_eq!(n, 1);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn parses_blank_nodes() {
        let (d, g, _) = parse("_:x <http://p> _:y .\n").unwrap();
        let x = d.get_id(&Term::blank("x")).unwrap();
        let y = d.get_id(&Term::blank("y")).unwrap();
        assert_eq!(g.matches(&Pattern::new(Some(x), None, Some(y))).len(), 1);
    }

    #[test]
    fn parses_literal_forms() {
        let (d, _, _) = parse(
            "<http://a> <http://p> \"plain\" .\n\
             <http://a> <http://p> \"tagged\"@en-GB .\n\
             <http://a> <http://p> \"7\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n",
        )
        .unwrap();
        assert!(d.get_id(&Term::Literal(Literal::plain("plain"))).is_some());
        assert!(d
            .get_id(&Term::Literal(Literal::lang("tagged", "en-gb")))
            .is_some());
        assert!(d
            .get_id(&Term::Literal(Literal::typed(
                "7",
                "http://www.w3.org/2001/XMLSchema#integer"
            )))
            .is_some());
    }

    #[test]
    fn parses_string_escapes() {
        let (d, _, _) = parse(r#"<http://a> <http://p> "a\"b\\c\ndA\U0001F600" ."#).unwrap();
        assert!(d
            .get_id(&Term::Literal(Literal::plain("a\"b\\c\ndA\u{1F600}")))
            .is_some());
    }

    #[test]
    fn parses_iri_unicode_escapes() {
        let (d, _, _) = parse(r#"<http://a/é> <http://p> <http://b> ."#).unwrap();
        assert!(d.get_iri_id("http://a/é").is_some());
    }

    #[test]
    fn rejects_malformed_input() {
        let cases = [
            ("<http://a> <http://p> <http://b>", "missing dot"),
            ("<http://a> <http://p> .", "missing object"),
            ("\"lit\" <http://p> <http://b> .", "literal subject"),
            ("<http://a> _:p <http://b> .", "blank predicate"),
            ("<http://a> \"p\" <http://b> .", "literal predicate"),
            (
                "<http://a> <http://p> \"unterminated .",
                "unterminated string",
            ),
            ("<http://a> <http://p> <http://b> . extra", "trailing junk"),
            ("<http://a <http://p> <http://b> .", "bad iri"),
            (r#"<http://a> <http://p> "x"@ ."#, "empty lang tag"),
            (r#"<http://a> <http://p> "x"^^bad ."#, "bad datatype"),
        ];
        for (input, why) in cases {
            assert!(parse(input).is_err(), "should reject: {why}");
        }
    }

    #[test]
    fn error_reports_line_number() {
        let err = parse("<http://a> <http://p> <http://b> .\nbogus line\n").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn duplicate_triples_counted_but_stored_once() {
        let (_, g, n) =
            parse("<http://a> <http://p> <http://b> .\n<http://a> <http://p> <http://b> .\n")
                .unwrap();
        assert_eq!(n, 2);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn round_trip_write_then_parse() {
        let src = "<http://a> <http://p> <http://b> .\n\
                   _:n0 <http://p> \"l1\"@en .\n\
                   <http://a> <http://q> \"esc\\\"aped\\n\" .\n\
                   <http://b> <http://q> \"5\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n";
        let (d1, g1, _) = parse(src).unwrap();
        let out = write_ntriples_sorted(&g1, &d1);
        let (d2, g2, _) = parse(&out).unwrap();
        // Same triple set modulo re-encoding: compare decoded sorted dumps.
        assert_eq!(
            write_ntriples_sorted(&g1, &d1),
            write_ntriples_sorted(&g2, &d2)
        );
        assert_eq!(g1.len(), g2.len());
    }

    #[test]
    fn sorted_writer_is_deterministic() {
        let (d, g, _) =
            parse("<http://c> <http://p> <http://d> .\n<http://a> <http://p> <http://b> .\n")
                .unwrap();
        let out = write_ntriples_sorted(&g, &d);
        let lines: Vec<_> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0] < lines[1]);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_term() -> impl Strategy<Value = Term> {
            prop_oneof![
                "[a-z0-9:/#._-]{1,24}".prop_map(Term::iri),
                "\\PC{0,16}".prop_map(Term::literal),
                ("\\PC{0,12}", "[a-z]{1,4}").prop_map(|(l, t)| Term::Literal(Literal::lang(l, &t))),
                ("\\PC{0,12}", "[a-z:/#]{1,16}")
                    .prop_map(|(l, dt)| Term::Literal(Literal::typed(l, dt))),
                "[A-Za-z][A-Za-z0-9_]{0,8}".prop_map(Term::blank),
            ]
        }

        fn arb_subject() -> impl Strategy<Value = Term> {
            prop_oneof![
                "[a-z0-9:/#._-]{1,24}".prop_map(Term::iri),
                "[A-Za-z][A-Za-z0-9_]{0,8}".prop_map(Term::blank),
            ]
        }

        proptest! {
            /// The parser never panics, whatever bytes arrive.
            #[test]
            fn parser_total_on_arbitrary_input(input in "\\PC{0,200}") {
                let mut d = Dictionary::new();
                let mut g = Graph::new();
                let _ = parse_ntriples(&input, &mut d, &mut g);
            }

            /// …including inputs that start like valid triples.
            #[test]
            fn parser_total_on_triple_like_input(
                prefix in "<[a-z:/]{0,10}",
                middle in "\\PC{0,30}",
            ) {
                let mut d = Dictionary::new();
                let mut g = Graph::new();
                let _ = parse_ntriples(&format!("{prefix}> {middle} ."), &mut d, &mut g);
            }

            /// serialise ∘ parse = identity on the triple set.
            #[test]
            fn write_parse_round_trip(
                triples in proptest::collection::vec(
                    (arb_subject(), "[a-z0-9:/#._-]{1,24}".prop_map(Term::iri), arb_term()),
                    0..24,
                )
            ) {
                let mut d = Dictionary::new();
                let mut g = Graph::new();
                for (s, p, o) in &triples {
                    let t = Triple::new(d.encode(s), d.encode(p), d.encode(o));
                    g.insert(t);
                }
                let out = write_ntriples_sorted(&g, &d);
                let mut d2 = Dictionary::new();
                let mut g2 = Graph::new();
                parse_ntriples(&out, &mut d2, &mut g2).unwrap();
                prop_assert_eq!(g.len(), g2.len());
                prop_assert_eq!(out, write_ntriples_sorted(&g2, &d2));
            }
        }
    }
}
