//! Crash-equivalence suite (build with `--features failpoints`).
//!
//! The property under test: **killing the process at any fault-injection
//! site leaves a directory from which [`Store::recover`] rebuilds exactly
//! the store a never-crashed run of the committed operation prefix would
//! have produced** — same base graph, same converged saturation, same
//! query answers.
//!
//! Mechanics: each scenario re-executes this test binary, filtered to
//! [`crash_child_entry`], with `WEBREASON_FAILPOINTS` arming one site with
//! `abort@n`. The child runs a fixed durable workload and dies at the
//! armed site (no unwind, no destructors — a model power cut). The parent
//! then recovers the directory and checks it against the oracle: the
//! journal's record count determines the exact committed prefix, and a
//! fresh store fed the recovered base graph must converge on the same
//! derived state and answers.
//!
//! The same binary also exercises the panic-isolation contract of the
//! scoped-worker pools (`rdfs.parallel.worker`, `sparql.union.worker`):
//! an injected worker panic surfaces as a structured error or a clean
//! sequential fallback, never as a poisoned store or a process abort.

use durability::{FsyncPolicy, Journal};
use rdf_model::Term;
use rdfs::incremental::MaintenanceAlgorithm;
use std::num::NonZeroUsize;
use std::path::{Path, PathBuf};
use std::process::Command;
use webreason_core::durable::JOURNAL_FILE;
use webreason_core::{DurableStore, ReasoningConfig, ScriptOp, Store};

const ZOO: &str = r#"
    @prefix ex: <http://ex/> .
    @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
    ex:Cat rdfs:subClassOf ex:Mammal .
    ex:Mammal rdfs:subClassOf ex:Animal .
    ex:Tom a ex:Cat .
"#;
const MAMMALS: &str = "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x a ex:Mammal }";
const ANIMALS: &str = "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x a ex:Animal }";

/// The fixed child workload. Journal records, in order:
///
/// | # | record                      | MAMMALS after |
/// |---|-----------------------------|---------------|
/// | 1 | SetConfig(sat-dred)         | 0             |
/// | 2 | SetThreads(1)               | 0             |
/// | 3 | InsertBatch(ZOO)            | 1 (Tom)       |
/// | 4 | InsertBatch(Rex a Mammal)   | 2             |
/// | 5 | CheckpointMark              | 2             |
/// | 6 | InsertBatch(Ana a Cat)      | 3             |
/// | 7 | DeleteBatch(Tom a Cat)      | 2             |
/// | 8 | InsertBatch(Dog ⊑ Mammal)   | 2             |
/// | 9 | UpdateScript(Cleo; ±Tmp)    | 3             |
///
/// Record 9 is a three-op script (insert Cleo a Cat, insert Tmp a Cat,
/// delete Tmp a Cat) journaled as a *single* atomic record: a crash at
/// append hit 9 must lose all three ops together, never a prefix.
///
/// `EXPECTED_MAMMALS[k]` is the answer count after the first `k` records.
const EXPECTED_MAMMALS: [usize; 10] = [0, 0, 0, 1, 2, 2, 3, 2, 2, 3];

fn rdf_type() -> Term {
    Term::iri(rdf_model::vocab::RDF_TYPE)
}

fn run_workload(dir: &Path) {
    let mut ds = DurableStore::create(
        dir,
        ReasoningConfig::Saturation(MaintenanceAlgorithm::DRed),
        NonZeroUsize::MIN,
        FsyncPolicy::Always,
    )
    .expect("child creates the store");
    ds.load_turtle(ZOO).expect("zoo loads");
    // Force the first saturation so later updates run the incremental
    // maintenance engine (and hit its failpoint site).
    assert_eq!(ds.answer_sparql(MAMMALS).expect("answers").len(), 1);
    ds.insert_terms(
        &Term::iri("http://ex/Rex"),
        &rdf_type(),
        &Term::iri("http://ex/Mammal"),
    )
    .expect("insert Rex");
    ds.checkpoint().expect("checkpoint");
    ds.load_turtle("@prefix ex: <http://ex/> .\nex:Ana a ex:Cat .")
        .expect("insert Ana");
    ds.delete_terms(
        &Term::iri("http://ex/Tom"),
        &rdf_type(),
        &Term::iri("http://ex/Cat"),
    )
    .expect("delete Tom");
    ds.insert_terms(
        &Term::iri("http://ex/Dog"),
        &Term::iri(rdf_model::vocab::RDFS_SUB_CLASS_OF),
        &Term::iri("http://ex/Mammal"),
    )
    .expect("schema insert");
    let a = rdf_type();
    let cat = Term::iri("http://ex/Cat");
    ds.apply_script(&[
        ScriptOp::Insert([Term::iri("http://ex/Cleo"), a.clone(), cat.clone()]),
        ScriptOp::Insert([Term::iri("http://ex/Tmp"), a.clone(), cat.clone()]),
        ScriptOp::Delete([Term::iri("http://ex/Tmp"), a, cat]),
    ])
    .expect("update script");
    ds.sync().expect("sync");
    std::fs::write(dir.join("workload-done"), b"done").expect("marker");
}

/// The child half of every crash scenario: inert under a normal test run
/// (the driver env var is absent), otherwise runs the workload and dies
/// at whatever site `WEBREASON_FAILPOINTS` armed.
#[test]
fn crash_child_entry() {
    let Ok(dir) = std::env::var("WEBREASON_CRASH_DIR") else {
        return;
    };
    run_workload(Path::new(&dir));
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("webreason-crash-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Kills a child running [`run_workload`] at `failpoints`, recovers the
/// directory, and asserts crash equivalence. Returns the recovered store
/// for scenario-specific checks.
fn crash_and_recover(name: &str, failpoints: &str) -> (PathBuf, Store) {
    let dir = tmpdir(name);
    let exe = std::env::current_exe().expect("test binary path");
    let out = Command::new(&exe)
        .args(["--exact", "crash_child_entry", "--nocapture"])
        .env("WEBREASON_CRASH_DIR", &dir)
        .env("WEBREASON_FAILPOINTS", failpoints)
        .output()
        .expect("child spawns");
    assert!(
        !out.status.success(),
        "{name}: child survived {failpoints:?}\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    assert!(
        !dir.join("workload-done").exists(),
        "{name}: workload finished before {failpoints:?} fired"
    );

    let mut rec = Store::recover(&dir).unwrap_or_else(|e| panic!("{name}: recovery failed: {e}"));

    // Oracle 1 — the committed prefix: the journal's record count pins
    // down exactly which updates the crashed run acknowledged, and the
    // recovered store must answer accordingly (for records written but
    // not applied before the crash, write-ahead order means they count).
    let records = Journal::replay(dir.join(JOURNAL_FILE))
        .expect("journal replays")
        .records
        .len();
    assert_eq!(
        rec.answer_sparql(MAMMALS).expect("answers").len(),
        EXPECTED_MAMMALS[records],
        "{name}: wrong answers for a {records}-record journal"
    );

    // Oracle 2 — convergence: a fresh, never-crashed store fed the
    // recovered base graph must reach the same derived state and answers.
    let base = rec.export_ntriples();
    let mut fresh = Store::new_with_threads(rec.config(), rec.threads());
    fresh.load_ntriples(&base).expect("exported graph re-loads");
    assert_eq!(fresh.export_ntriples(), base, "{name}: base graph drifts");
    for query in [MAMMALS, ANIMALS] {
        let a = rec.answer_sparql(query).expect("recovered store answers");
        let b = fresh.answer_sparql(query).expect("fresh store answers");
        assert_eq!(
            a.to_strings(&rec.dictionary()),
            b.to_strings(&fresh.dictionary()),
            "{name}: recovered and never-crashed stores disagree on {query}"
        );
    }
    assert_eq!(
        rec.stats().saturated_triples,
        fresh.stats().saturated_triples,
        "{name}: saturations diverge"
    );

    // Oracle 3 — recovery is deterministic, and the directory stays
    // writable: open for append, add a triple, recover again.
    let rec2 = Store::recover(&dir).expect("second recovery");
    assert_eq!(
        rec2.export_ntriples(),
        base,
        "{name}: recovery not deterministic"
    );
    let mut resumed = DurableStore::open(&dir, FsyncPolicy::Always).expect("reopen for append");
    resumed
        .insert_terms(
            &Term::iri("http://ex/Post"),
            &rdf_type(),
            &Term::iri("http://ex/Mammal"),
        )
        .expect("post-crash insert");
    let mut rec3 = Store::recover(&dir).expect("recovery after resume");
    assert_eq!(
        rec3.answer_sparql(MAMMALS).expect("answers").len(),
        EXPECTED_MAMMALS[records] + 1,
        "{name}: post-crash append lost"
    );

    (dir, rec)
}

/// Crash at every journal append: the armed site fires *before* the frame
/// is written, so record `n` is exactly the first uncommitted operation.
#[test]
fn killed_at_each_journal_append_recovers_the_committed_prefix() {
    for hit in 1..=9u32 {
        let (_dir, _rec) = crash_and_recover(
            &format!("append-{hit}"),
            &format!("store.journal.append=abort@{hit}"),
        );
    }
}

/// Crash between a checkpoint's tmp-file write and its rename: the
/// half-made checkpoint must be invisible and recovery journal-only.
#[test]
fn killed_mid_checkpoint_falls_back_to_the_journal() {
    let (dir, mut rec) = crash_and_recover("mid-checkpoint", "store.checkpoint.write=abort@1");
    // The abort fired inside checkpoint(): 4 records committed, no
    // CheckpointMark, no visible checkpoint file — Tom and Rex survive.
    assert!(!dir
        .read_dir()
        .expect("dir lists")
        .filter_map(Result::ok)
        .any(|e| e.file_name().to_string_lossy().ends_with(".ckpt")));
    assert_eq!(rec.answer_sparql(MAMMALS).expect("answers").len(), 2);
}

/// Crash *after* the journal write but *during* the in-memory apply (the
/// incremental-maintenance engine): write-ahead order means the committed
/// record must be visible after recovery even though the crashed process
/// never finished applying it.
#[test]
fn killed_during_maintenance_still_recovers_the_journaled_update() {
    for hit in 1..=2u32 {
        let (_dir, _rec) = crash_and_recover(
            &format!("maintain-{hit}"),
            &format!("store.maintain.incremental=abort@{hit}"),
        );
    }
}

/// A crash plus a torn final frame (the classic power-cut-mid-write):
/// recovery drops the torn bytes and replays the intact prefix.
#[test]
fn torn_tail_on_top_of_a_crash_recovers() {
    let dir = tmpdir("torn");
    let exe = std::env::current_exe().expect("test binary path");
    let out = Command::new(&exe)
        .args(["--exact", "crash_child_entry", "--nocapture"])
        .env("WEBREASON_CRASH_DIR", &dir)
        .env("WEBREASON_FAILPOINTS", "store.maintain.incremental=abort@2")
        .output()
        .expect("child spawns");
    assert!(!out.status.success());

    let path = dir.join(JOURNAL_FILE);
    let intact = Journal::replay(&path)
        .expect("journal replays")
        .records
        .len();
    let bytes = std::fs::read(&path).expect("journal reads");
    std::fs::write(&path, &bytes[..bytes.len() - 3]).expect("tear the tail");

    let replay = Journal::replay(&path).expect("torn journal still replays");
    assert_eq!(replay.records.len(), intact - 1, "final record dropped");
    let mut rec = Store::recover(&dir).expect("recovery over a torn tail");
    assert_eq!(
        rec.answer_sparql(MAMMALS).expect("answers").len(),
        EXPECTED_MAMMALS[replay.records.len()],
    );
}

/// The failpoint registry is process-global; in-process tests that
/// reconfigure it (here and in [`err_faults`]) must not overlap.
fn fp_serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

mod panic_isolation {
    //! Worker panics must stay inside the pool that spawned them: the
    //! fallible APIs return a structured [`WorkerPanicked`], the
    //! infallible ones fall back to their sequential twin, and the store
    //! keeps answering afterwards.

    use super::*;
    use std::sync::MutexGuard;
    use webreason_core::AnswerError;

    fn serial() -> MutexGuard<'static, ()> {
        super::fp_serial()
    }

    #[test]
    fn union_worker_panic_surfaces_as_a_structured_error() {
        let _g = serial();
        let mut store = Store::new_with_threads(
            ReasoningConfig::Reformulation,
            NonZeroUsize::new(2).unwrap(),
        );
        store.load_turtle(ZOO).expect("zoo loads");

        webreason_failpoints::configure("sparql.union.worker=panic");
        match store.answer_sparql(MAMMALS) {
            Err(AnswerError::Worker(e)) => assert_eq!(e.site, "sparql.union.worker"),
            other => panic!("expected a worker panic, got {other:?}"),
        }

        // The store is not poisoned: disarmed, the same query answers.
        webreason_failpoints::configure("");
        assert_eq!(store.answer_sparql(MAMMALS).expect("answers").len(), 1);
    }

    #[test]
    fn parallel_saturation_worker_panic_falls_back_to_sequential() {
        let _g = serial();
        let mut store = Store::new(ReasoningConfig::None);
        store.load_turtle(ZOO).expect("zoo loads");
        let reference = rdfs::saturate(store.base_graph(), store.vocab());

        webreason_failpoints::configure("rdfs.parallel.worker=panic");
        let threads = NonZeroUsize::new(2).unwrap();
        let err = rdfs::parallel::try_saturate_parallel(store.base_graph(), store.vocab(), threads)
            .expect_err("armed worker must fail");
        assert_eq!(err.site, "rdfs.parallel.worker");

        // The infallible wrapper absorbs the panic and still saturates.
        webreason_failpoints::configure("rdfs.parallel.worker=panic");
        let fallback = rdfs::saturate_parallel(store.base_graph(), store.vocab(), threads);
        assert_eq!(fallback.graph, reference.graph);

        webreason_failpoints::configure("");
    }

    /// The batch-atomicity contract under a mid-script journal failure:
    /// a script whose single append dies leaves the journal bytes, the
    /// published epoch, and the reader-visible answers bit-identical to
    /// before the request, recovery equals the pre-script state, and the
    /// store stays usable afterwards.
    #[test]
    fn failed_script_append_leaves_state_bit_identical() {
        let _g = serial();
        let dir = tmpdir("script-atomic");
        let mut ds = DurableStore::create(
            &dir,
            ReasoningConfig::Saturation(MaintenanceAlgorithm::DRed),
            NonZeroUsize::MIN,
            FsyncPolicy::Always,
        )
        .expect("store creates");
        ds.load_turtle(ZOO).expect("zoo loads");

        let journal_path = dir.join(JOURNAL_FILE);
        let journal_before = std::fs::read(&journal_path).expect("journal reads");
        let epoch_before = ds.publish();
        let answers_before = ds.answer_sparql(MAMMALS).expect("answers").len();
        let export_before = ds.store().export_ntriples();

        let a = rdf_type();
        let cat = Term::iri("http://ex/Cat");
        webreason_failpoints::configure("store.journal.append=panic");
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ds.apply_script(&[
                ScriptOp::Insert([Term::iri("http://ex/Cleo"), a.clone(), cat.clone()]),
                ScriptOp::Insert([Term::iri("http://ex/Tmp"), a.clone(), cat.clone()]),
            ])
        }));
        webreason_failpoints::configure("");
        assert!(attempt.is_err(), "armed append must fail the script");

        // Nothing happened: same journal bytes, same epoch, same answers.
        assert_eq!(
            std::fs::read(&journal_path).expect("journal reads"),
            journal_before,
            "failed script must not touch the journal"
        );
        assert_eq!(ds.publish(), epoch_before, "no new epoch published");
        assert_eq!(
            ds.answer_sparql(MAMMALS).expect("answers").len(),
            answers_before,
            "failed script leaked into answers"
        );
        assert_eq!(ds.store().export_ntriples(), export_before);
        let rec = Store::recover(&dir).expect("recovers");
        assert_eq!(rec.export_ntriples(), export_before, "recovery drifted");

        // The store is not poisoned: the same script re-applies cleanly
        // (its record carries the orphaned dictionary delta from the
        // failed attempt), and replay agrees with the live store.
        let outcome = ds
            .apply_script(&[
                ScriptOp::Insert([Term::iri("http://ex/Cleo"), a.clone(), cat.clone()]),
                ScriptOp::Insert([Term::iri("http://ex/Tmp"), a.clone(), cat.clone()]),
                ScriptOp::Delete([Term::iri("http://ex/Tmp"), a, cat]),
            ])
            .expect("retry succeeds");
        assert!(outcome.added > 0);
        assert_eq!(
            ds.answer_sparql(MAMMALS).expect("answers").len(),
            answers_before + 1,
            "Cleo lands, Tmp nets to absent"
        );
        let rec = Store::recover(&dir).expect("recovers after retry");
        assert_eq!(rec.export_ntriples(), ds.store().export_ntriples());
    }
}

mod err_faults {
    //! Disk faults that *return* instead of killing the process — the
    //! `err(ENOSPC)` / `err(EIO)` failpoint actions. The contract at the
    //! store layer: every err site leaves the store answerable, leaves
    //! [`Store::recover`] bit-identical to the live state, and a retried
    //! write after the fault clears is durable **exactly once** (the
    //! journal gains exactly one record for it).

    use super::*;
    use webreason_failpoints::configure;

    fn answerable(ds: &mut DurableStore, expected: usize) {
        assert_eq!(ds.answer_sparql(MAMMALS).expect("answers").len(), expected);
    }

    fn recovery_matches_live(dir: &Path, ds: &DurableStore) {
        let rec = Store::recover(dir).expect("recovers");
        assert_eq!(
            rec.export_ntriples(),
            ds.store().export_ntriples(),
            "recovered store drifted from the live one"
        );
    }

    fn zoo_store(name: &str, fsync: FsyncPolicy) -> (PathBuf, DurableStore) {
        let dir = tmpdir(name);
        let mut ds = DurableStore::create(
            &dir,
            ReasoningConfig::Saturation(MaintenanceAlgorithm::DRed),
            NonZeroUsize::MIN,
            fsync,
        )
        .expect("store creates");
        ds.load_turtle(ZOO).expect("zoo loads");
        (dir, ds)
    }

    fn journal_records(dir: &Path) -> usize {
        Journal::replay(dir.join(JOURNAL_FILE))
            .expect("journal replays")
            .records
            .len()
    }

    fn rex() -> [Term; 3] {
        [
            Term::iri("http://ex/Rex"),
            rdf_type(),
            Term::iri("http://ex/Mammal"),
        ]
    }

    /// ENOSPC at the journal append: the write is rejected before any
    /// bytes land, nothing is applied, and the retried write lands once.
    #[test]
    fn enospc_on_append_rejects_cleanly_and_retry_is_durable_once() {
        let _g = fp_serial();
        configure("");
        let (dir, mut ds) = zoo_store("err-append", FsyncPolicy::Always);
        let records_before = journal_records(&dir);
        let bytes_before = std::fs::read(dir.join(JOURNAL_FILE)).expect("journal reads");

        configure("store.journal.append=err(ENOSPC)");
        let [s, p, o] = rex();
        let err = ds
            .insert_terms(&s, &p, &o)
            .expect_err("armed append must fail");
        assert!(err.to_string().contains("os error 28"), "{err}");
        // The err action is persistent: a second attempt fails too.
        ds.insert_terms(&s, &p, &o).expect_err("still armed");
        configure("");

        // Nothing happened: same journal bytes, same answers, recovery
        // equals the live state, and the store keeps answering.
        assert_eq!(
            std::fs::read(dir.join(JOURNAL_FILE)).expect("journal reads"),
            bytes_before,
            "failed append touched the journal"
        );
        answerable(&mut ds, 1);
        recovery_matches_live(&dir, &ds);

        // The disk "frees up": the retry lands exactly once.
        ds.insert_terms(&s, &p, &o).expect("retry succeeds");
        assert_eq!(
            journal_records(&dir),
            records_before + 1,
            "exactly one new record"
        );
        answerable(&mut ds, 2);
        recovery_matches_live(&dir, &ds);
    }

    /// EIO at the group fsync: the frames are in the file but their
    /// durability was never acknowledged. Re-syncing after the fault
    /// clears settles the same frames — no re-append, no duplicates.
    #[test]
    fn eio_on_group_fsync_settles_without_duplicates() {
        let _g = fp_serial();
        configure("");
        let (dir, mut ds) = zoo_store("err-fsync", FsyncPolicy::Always);
        let records_before = journal_records(&dir);

        let [s, p, o] = rex();
        configure("store.journal.fsync=err(EIO)");
        ds.apply_script_deferred(&[ScriptOp::Insert([s, p, o])])
            .expect("deferred append itself succeeds");
        let err = ds.sync_group().expect_err("armed group fsync must fail");
        assert!(err.to_string().contains("os error 5"), "{err}");
        configure("");

        // The store stays answerable and consistent with recovery even
        // mid-fault (the frame is written, just not yet acknowledged).
        answerable(&mut ds, 2);
        recovery_matches_live(&dir, &ds);

        // Retrying the *sync* (not the append) makes the write durable
        // exactly once.
        ds.sync_group().expect("retried sync succeeds");
        assert_eq!(
            journal_records(&dir),
            records_before + 1,
            "no duplicate record"
        );
        answerable(&mut ds, 2);
        recovery_matches_live(&dir, &ds);
    }

    /// ENOSPC between the checkpoint's tmp write and its rename: the
    /// half-made checkpoint stays invisible, recovery is journal-only,
    /// and a retried checkpoint completes.
    #[test]
    fn enospc_mid_checkpoint_leaves_journal_only_recovery() {
        let _g = fp_serial();
        configure("");
        let (dir, mut ds) = zoo_store("err-ckpt", FsyncPolicy::Always);
        let [s, p, o] = rex();
        ds.insert_terms(&s, &p, &o).expect("insert Rex");

        configure("store.checkpoint.write=err(ENOSPC)");
        let err = ds.checkpoint().expect_err("armed checkpoint must fail");
        assert!(err.to_string().contains("os error 28"), "{err}");
        configure("");

        let visible_ckpt = |dir: &Path| {
            dir.read_dir()
                .expect("dir lists")
                .filter_map(Result::ok)
                .any(|e| e.file_name().to_string_lossy().ends_with(".ckpt"))
        };
        assert!(!visible_ckpt(&dir), "half-made checkpoint became visible");
        answerable(&mut ds, 2);
        recovery_matches_live(&dir, &ds);

        // The retry completes and recovery (now checkpoint-based) still
        // equals the live state.
        ds.checkpoint().expect("retried checkpoint succeeds");
        assert!(visible_ckpt(&dir), "retried checkpoint missing");
        answerable(&mut ds, 2);
        recovery_matches_live(&dir, &ds);
    }
}
