//! Robustness of the server's wire layer against hostile bytes, in the
//! style of `rdf-io/tests/corrupt_inputs.rs`: whatever arrives on the
//! socket — truncations, garbage splices, oversized heads, broken chunked
//! framing — the HTTP parser and the update-body decoder return a value
//! (`Complete`/`Incomplete`/`Error`, `Ok`/`Err`); they never panic, and
//! `Complete` never claims more bytes than the buffer holds.

use proptest::prelude::*;
use webreason_server::http::{parse_request, Limits, ParseOutcome};
use webreason_server::proto::decode_update_body;

const VALID_POST: &[u8] =
    b"POST /query HTTP/1.1\r\nHost: x\r\nContent-Type: text/plain\r\nContent-Length: 12\r\n\r\nSELECT WHERE";
const VALID_CHUNKED: &[u8] =
    b"POST /update HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nwiki\r\n5\r\npedia\r\n0\r\n\r\n";
const VALID_UPDATE: &str = "# comment\n\
     insert <http://ex/a> <http://ex/p> \"caf\\u00E9\"@en .\n\
     delete <http://ex/a> <http://ex/p> \"3\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n";

/// Every outcome is fine; panicking or over-consuming is the only failure.
fn total(buf: &[u8], limits: &Limits) -> Result<(), String> {
    match parse_request(buf, limits) {
        ParseOutcome::Complete(_, consumed) if consumed > buf.len() => Err(format!(
            "consumed {consumed} of a {}-byte buffer",
            buf.len()
        )),
        _ => Ok(()),
    }
}

proptest! {
    /// Arbitrary bytes never panic the request parser.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255u8, 0..600)) {
        prop_assert!(total(&bytes, &Limits::default()).is_ok());
    }

    /// A valid request cut off at any byte is handled totally — and the
    /// untruncated document still parses as one complete request.
    #[test]
    fn truncated_requests_never_panic(at in 0usize..=120) {
        for doc in [VALID_POST, VALID_CHUNKED] {
            let cut = &doc[..at.min(doc.len())];
            prop_assert!(total(cut, &Limits::default()).is_ok());
            prop_assert!(matches!(
                parse_request(doc, &Limits::default()),
                ParseOutcome::Complete(_, n) if n == doc.len()
            ));
        }
    }

    /// Garbage spliced anywhere into a valid request never panics.
    #[test]
    fn garbage_splice_never_panics(
        at in 0usize..=120,
        garbage in proptest::collection::vec(0u8..=255u8, 0..40),
    ) {
        for doc in [VALID_POST, VALID_CHUNKED] {
            let cut = at.min(doc.len());
            let mut spliced = doc[..cut].to_vec();
            spliced.extend_from_slice(&garbage);
            spliced.extend_from_slice(&doc[cut..]);
            prop_assert!(total(&spliced, &Limits::default()).is_ok());
        }
    }

    /// Flipping any single byte of valid chunked framing is handled
    /// totally — corrupt sizes and missing CRLFs become `Error`s or
    /// `Incomplete`, not unwinds.
    #[test]
    fn corrupt_chunked_framing_never_panics(at in 0usize..90, flip in 1u8..=255) {
        let mut doc = VALID_CHUNKED.to_vec();
        let i = at % doc.len();
        doc[i] ^= flip;
        prop_assert!(total(&doc, &Limits::default()).is_ok());
    }

    /// Pathological head shapes stay bounded: unbounded header repetition
    /// and absurd request-line lengths are rejected via limits, never
    /// buffered forever or panicked on.
    #[test]
    fn oversized_heads_are_errors_not_panics(
        n_headers in 0usize..80,
        target_len in 1usize..4000,
    ) {
        let limits = Limits { max_head_bytes: 1024, max_body_bytes: 1024, max_headers: 16 };
        let mut doc = format!("GET /{} HTTP/1.1\r\n", "x".repeat(target_len)).into_bytes();
        for i in 0..n_headers {
            doc.extend_from_slice(format!("h{i}: v\r\n").as_bytes());
        }
        doc.extend_from_slice(b"\r\n");
        prop_assert!(total(&doc, &limits).is_ok());
        if target_len > 1024 {
            prop_assert!(matches!(
                parse_request(&doc, &limits),
                ParseOutcome::Error(e) if e.status() == 431
            ));
        }
    }

    /// A Content-Length body round-trips arbitrary bytes exactly.
    #[test]
    fn content_length_bodies_round_trip(
        body in proptest::collection::vec(0u8..=255u8, 0..200),
    ) {
        let mut doc = format!(
            "POST /update HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        doc.extend_from_slice(&body);
        match parse_request(&doc, &Limits::default()) {
            ParseOutcome::Complete(req, consumed) => {
                prop_assert_eq!(&req.body, &body);
                prop_assert_eq!(consumed, doc.len());
            }
            other => prop_assert!(false, "expected Complete, got {:?}", other),
        }
    }

    /// The update decoder is total over arbitrary text.
    #[test]
    fn arbitrary_update_bodies_never_panic(body in "\\PC{0,120}") {
        let _ = decode_update_body(&body);
    }

    /// Garbage spliced into a valid update script never panics the
    /// decoder — and the unspliced script still decodes.
    #[test]
    fn spliced_update_bodies_never_panic(at in 0usize..=120, garbage in "\\PC{0,40}") {
        let mut cut = at.min(VALID_UPDATE.len());
        while !VALID_UPDATE.is_char_boundary(cut) {
            cut -= 1;
        }
        let spliced = format!(
            "{}{garbage}{}",
            &VALID_UPDATE[..cut],
            &VALID_UPDATE[cut..]
        );
        let _ = decode_update_body(&spliced);
        prop_assert_eq!(decode_update_body(VALID_UPDATE).expect("valid script").len(), 2);
    }
}
