//! # webreason-core — the integrated store
//!
//! This crate ties every substrate together into the system the paper
//! describes: an RDF store whose *query answering* — "computing sound and
//! complete answers based on the data and the semantics" (§I) — can be
//! implemented by any of the techniques the tutorial classifies, behind
//! one [`Store`] API:
//!
//! * [`ReasoningConfig::Saturation`] — materialise `G∞` and evaluate
//!   `q(G∞)` (§II-B "Graph saturation"), with the maintenance algorithm
//!   (recompute / DRed / counting) chosen per
//!   [`rdfs::incremental::MaintenanceAlgorithm`];
//! * [`ReasoningConfig::Reformulation`] — leave `G` alone and evaluate
//!   `q_ref(G)` (§II-B "Query reformulation");
//! * [`ReasoningConfig::BackwardChaining`] — AllegroGraph-RDFS++-style
//!   run-time reasoning: per-atom entailment expansion during join
//!   evaluation, "not complete, but … predictable and fast" (§II-C);
//! * [`ReasoningConfig::Datalog`] — the §II-D open-issue alternative:
//!   translate to Datalog, saturate with the generic engine, evaluate;
//! * [`ReasoningConfig::None`] — plain evaluation over explicit triples,
//!   the "(i) ignore entailed triples" class of §II-C.
//!
//! On top sit the performance tools the tutorial argues for:
//! [`cost::profile`] measures a dataset × query-set cost profile,
//! [`threshold::compute_thresholds`] turns it into the amortisation
//! thresholds of **Fig. 3**, and [`advisor::advise`] automates "the choice
//! between these two techniques, based on a quantitative evaluation of the
//! application setting" (§II-D).
//!
//! ```
//! use webreason_core::{ReasoningConfig, Store};
//!
//! let mut store = Store::new(ReasoningConfig::Reformulation);
//! store.load_turtle(r#"
//!     @prefix ex: <http://example.org/> .
//!     @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
//!     ex:Cat rdfs:subClassOf ex:Mammal .
//!     ex:Tom a ex:Cat .
//! "#).unwrap();
//! let sols = store.answer_sparql(
//!     "PREFIX ex: <http://example.org/> SELECT ?x WHERE { ?x a ex:Mammal }"
//! ).unwrap();
//! assert_eq!(sols.len(), 1); // Tom, though never stated to be a mammal
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod advisor;
mod backward;
pub mod cost;
pub mod durable;
pub mod snapshot;
mod store;
pub mod threshold;

pub use advisor::{advise_from_snapshot, advise_observed, advise_three_way, ThreeWayAdvice};
pub use backward::evaluate_backward;
pub use cost::ObservedCosts;
pub use durable::{DurableError, DurableStore, ScriptOp, ScriptOutcome};
pub use snapshot::{StoreReader, StoreSnapshot};
pub use store::{AnswerError, ReasoningConfig, Store, StoreDelta, StoreStats};
pub use threshold::{
    interval_thresholds, observed_thresholds, IntervalThresholds, ObservedThresholds,
};

// Re-export the pieces callers compose with.
pub use durability::{DurabilityError, FsyncPolicy};
pub use rdfs::incremental::MaintenanceAlgorithm;
pub use sparql::Solutions;
