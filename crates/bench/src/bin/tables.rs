//! Regenerates the evaluation tables (DESIGN.md §3): T-SAT, T-REF, T-QA,
//! T-MAINT, A-DATALOG, A-ADVISOR, A-PAR, A-REF, T-INT, A-SERVE.
//!
//! ```sh
//! cargo run --release -p bench --bin tables            # all tables, small scale
//! cargo run --release -p bench --bin tables -- --table sat --scale default
//! ```

use bench::{
    assert_same_answers, emit_json, fmt_secs, journal_append_cost, lubm_workload, render_table,
    saturated, time, Scale,
};
use durability::FsyncPolicy;
use rdfs::incremental::MaintenanceAlgorithm;
use rdfs::{saturate, saturate_naive, saturate_parallel, Schema};
use reformulation::{reformulate, reformulate_intervals};
use serde::Serialize;
use sparql::{evaluate, evaluate_interval, evaluate_union, Query};
use std::num::NonZeroUsize;
use std::sync::Arc;
use webreason_core::advisor::{advise, Recommendation, UpdateMix, WorkloadMix};
use webreason_core::cost::profile;
use webreason_core::evaluate_backward;
use workload::lubm::{generate, LubmConfig};
use workload::synth::{generate as synth_generate, SynthConfig};
use workload::Dataset;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let scale = match get("--scale") {
        None => Scale::Small,
        Some(s) => match Scale::parse(&s) {
            Some(scale) => scale,
            None => {
                eprintln!("error: unknown scale {s:?} (expected tiny|small|default|large)");
                std::process::exit(2);
            }
        },
    };
    let which = get("--table").unwrap_or_else(|| "all".to_owned());

    let run = |name: &str| which == "all" || which == name;
    let mut reports_ok = true;
    if run("sat") {
        reports_ok &= table_sat();
    }
    if run("ref") {
        reports_ok &= table_ref(scale);
    }
    if run("qa") {
        reports_ok &= table_qa(scale);
    }
    if run("maint") {
        reports_ok &= table_maint(scale);
    }
    if run("datalog") {
        table_datalog(scale);
    }
    if run("advisor") {
        table_advisor(scale);
    }
    if run("par") {
        table_parallel();
    }
    if run("aref") {
        reports_ok &= table_aref(scale);
    }
    if run("interval") {
        reports_ok &= table_interval(scale);
    }
    if run("fed") {
        table_federation();
    }
    if run("soc") {
        table_social();
    }
    if run("serve") {
        reports_ok &= table_aserve();
    }
    if !reports_ok {
        std::process::exit(1);
    }
}

/// T-SOC: the social-network workload (the §II-A example scaled) —
/// rdfs7-heavy where LUBM is rdfs9-heavy, contrasting the two saturation
/// profiles and the per-query winners on a different workload shape.
fn table_social() {
    use workload::social::{generate, queries, SocialConfig};

    println!("== T-SOC: social-network workload (the §II-A example, scaled) ==");
    let mut ds = generate(&SocialConfig::default());
    let named = queries(&mut ds);

    let sat = saturate_naive(&ds.graph, &ds.vocab);
    let fired = |r: &str| sat.stats.rule_firings.get(r).copied().unwrap_or(0);
    println!(
        "{} base → {} saturated (×{:.2}); rule mix: rdfs7 {} / rdfs9 {} / rdfs2 {} / rdfs3 {}\n",
        sat.stats.input_triples,
        sat.stats.output_triples,
        sat.stats.output_triples as f64 / sat.stats.input_triples as f64,
        fired("rdfs7"),
        fired("rdfs9"),
        fired("rdfs2"),
        fired("rdfs3"),
    );

    let schema = Schema::extract(&ds.graph, &ds.vocab);
    let mut rows = Vec::new();
    for nq in &named {
        let mut q = nq.query.clone();
        q.distinct = true;
        if q.aggregate.is_some() {
            continue; // aggregates are store-level; skip in the raw sweep
        }
        let r = reformulate(&q, &schema, &ds.vocab).expect("dialect ok");
        let (a, t_sat) = time(|| evaluate(&sat.graph, &q));
        let (b, t_ref) = time(|| evaluate(&ds.graph, &r.query));
        bench::assert_same_answers(&a, &b, nq.name);
        rows.push(vec![
            nq.name.to_owned(),
            a.len().to_string(),
            r.branches.to_string(),
            fmt_secs(t_sat),
            fmt_secs(t_ref),
            if t_sat <= t_ref {
                "saturation"
            } else {
                "reformulation"
            }
            .to_owned(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["query", "answers", "branches", "q(G∞)", "q_ref(G)", "winner"],
            &rows
        )
    );
    println!(
        "(contrast with T-QA: a property-lattice workload derives via rdfs7/rdfs2\n\
         where LUBM's class tree derives via rdfs9 — the RDF-fragment axis of §II-B)\n"
    );
}

/// A-FED: endpoint churn at a mediator — the §I integration scenario.
/// Compares a reformulation-based mediator (no global saturation) against
/// a naive saturating mediator (re-saturates the merged graph after every
/// membership change), across query-per-churn rates.
fn table_federation() {
    use federation::Federation;
    use workload::lubm::generate;

    println!("== A-FED: endpoint churn vs query rate at the mediator ==");
    // Each "endpoint" publishes one university's worth of data.
    let datasets: Vec<String> = (0..4)
        .map(|i| {
            let cfg = workload::lubm::LubmConfig {
                departments: 3,
                students_per_department: 40,
                seed: 100 + i,
                ..Default::default()
            };
            let ds = generate(&cfg);
            rdf_io::write_ntriples(&ds.graph, &ds.dict)
        })
        .collect();

    let query = "PREFIX ub: <http://webreason.example/univ-bench#> \
                 SELECT DISTINCT ?x WHERE { ?x a ub:Student }";

    let mut rows = Vec::new();
    for queries_per_churn in [1usize, 10, 100] {
        let run = |saturating: bool| -> (f64, usize) {
            let mut fed = Federation::new();
            let ids: Vec<_> = (0..datasets.len())
                .map(|i| fed.add_endpoint(&format!("uni{i}")))
                .collect();
            for (id, data) in ids.iter().zip(&datasets) {
                fed.load_ntriples(*id, data).expect("endpoint data loads");
            }
            let mut q = fed.prepare(query).expect("query parses");
            q.distinct = true;
            let mut answers = 0;
            let (_, secs) = time(|| {
                // churn: each round one endpoint leaves and rejoins, then
                // `queries_per_churn` queries run.
                for round in 0..4 {
                    let victim = ids[round % ids.len()];
                    fed.remove_endpoint(victim);
                    let reborn = fed.add_endpoint("rejoined");
                    fed.load_ntriples(reborn, &datasets[round % datasets.len()])
                        .expect("endpoint data loads");
                    for _ in 0..queries_per_churn {
                        let sols = if saturating {
                            fed.answer_via_saturation(&q).expect("answers")
                        } else {
                            fed.answer(&q).expect("answers")
                        };
                        answers = sols.len();
                    }
                }
            });
            (secs, answers)
        };
        let (refo_s, refo_answers) = run(false);
        let (sat_s, sat_answers) = run(true);
        assert_eq!(refo_answers, sat_answers, "mediators agree");
        rows.push(vec![
            queries_per_churn.to_string(),
            fmt_secs(refo_s),
            fmt_secs(sat_s),
            if refo_s <= sat_s {
                "reformulation"
            } else {
                "saturation"
            }
            .to_owned(),
            refo_answers.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "queries/churn",
                "reformulating mediator",
                "saturating mediator",
                "winner",
                "answers"
            ],
            &rows
        )
    );
    println!(
        "\"computing prior to query answering all the consequences of facts from any\n\
         endpoint and constraints from any (other) endpoint is not feasible\" (§I) —\n\
         under churn the saturating mediator re-pays materialisation every round.\n"
    );
}

/// A-PAR: parallel saturation thread sweep (§II-D open issue, ref. \[29\]).
fn table_parallel() {
    println!("== A-PAR: parallel saturation (thread sweep) ==");
    let ds = workload::lubm::generate(&Scale::Large.config());
    // Warm-up pass so the first timed run does not pay page-fault costs.
    let _ = saturate(&ds.graph, &ds.vocab);
    let (reference, base_s) = time(|| saturate(&ds.graph, &ds.vocab));
    let mut rows = vec![vec![
        "sequential".into(),
        fmt_secs(base_s),
        "—".into(),
        "—".into(),
        "1.00×".into(),
    ]];
    for threads in [1usize, 2, 4, 8] {
        let n = NonZeroUsize::new(threads).unwrap();
        let (par, secs) = time(|| saturate_parallel(&ds.graph, &ds.vocab, n));
        assert_eq!(par.graph, reference.graph, "parallel result must match");
        let phase = |key: &str| par.stats.rule_firings.get(key).copied().unwrap_or(0) as f64 / 1e6;
        rows.push(vec![
            format!("{threads} thread(s)"),
            fmt_secs(secs),
            fmt_secs(phase("derive-us")),
            fmt_secs(phase("merge-us")),
            format!("{:.2}×", base_s / secs),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "engine",
                "wall-clock",
                "derive phase",
                "merge phase",
                "speedup"
            ],
            &rows
        )
    );
    println!(
        "Both phases run across the thread pool: workers derive into per-shard\n\
         buckets, then one merge task per (index, shard) writes its shard with no\n\
         cross-shard contention — the lock-free index insertion the paper's\n\
         ref. [29] (parallel materialisation) calls for. Speedups require real\n\
         cores; a single-CPU host shows thread overhead instead.\n"
    );
}

/// The union-stress workload shared by A-REF and T-INT: LUBM Q1–Q10 plus
/// two subclass-heavy synthetic cases over a depth-4 × fanout-3 class
/// tree (121 classes) — the root type query (single-atom branches — pure
/// planning/merge stress, no sharing) and a join query
/// `?x <p> ?y . ?y a <root>` whose >100 branches all keep the selective
/// `?x <p> ?y` atom first, so the trie shares its scan.
struct UnionCases {
    /// `[0]` = LUBM, `[1]` = SYNTH, each with its extracted schema.
    datasets: Vec<(Dataset, Schema)>,
    /// `(name, dataset index, query)`.
    cases: Vec<(String, usize, Query)>,
}

fn union_stress_cases(scale: Scale) -> UnionCases {
    let (ds, qs) = lubm_workload(scale);
    let lubm_schema = Schema::extract(&ds.graph, &ds.vocab);
    let mut w = synth_generate(&SynthConfig {
        class_depth: 4,
        class_fanout: 3,
        individuals: 2_000,
        edges: 6_000,
        typings: 80_000,
        // No domain/range constraints: with them, a range inside the tree
        // lets core minimisation collapse `{?x p ?y . ?y a C}` branches to
        // `{?x p ?y}`, deflating the union these tables are stressing.
        domain_range_density: 0.0,
        ..Default::default()
    });
    let synth_schema = Schema::extract(&w.dataset.graph, &w.dataset.vocab);
    let root = w.root_class;
    let synth_root_q = w.type_query(root);
    let root_iri = w
        .dataset
        .dict
        .decode(root)
        .and_then(|t| t.as_iri())
        .expect("root class is an IRI")
        .to_owned();
    let p = w.top_properties[0];
    let p_iri = w
        .dataset
        .dict
        .decode(p)
        .and_then(|t| t.as_iri())
        .expect("property is an IRI")
        .to_owned();
    let synth_join_q = sparql::parse_query(
        &format!("SELECT ?x WHERE {{ ?x <{p_iri}> ?y . ?y a <{root_iri}> }}"),
        &mut w.dataset.dict,
    )
    .expect("join query parses");

    let mut cases: Vec<(String, usize, Query)> =
        qs.into_iter().map(|(name, q)| (name, 0, q)).collect();
    cases.push(("SYNTH-root".to_owned(), 1, synth_root_q));
    cases.push(("SYNTH-join".to_owned(), 1, synth_join_q));
    UnionCases {
        datasets: vec![(ds, lubm_schema), (w.dataset, synth_schema)],
        cases,
    }
}

/// A-REF: union-aware evaluation of reformulated queries — the per-branch
/// baseline vs the shared-prefix trie evaluator (1 thread) vs the same
/// evaluator across 4 workers. The subclass-heavy synthetic query (a
/// depth-4 × fanout-3 class tree, >100 union branches) is the stress case
/// for the §II-D open issue of evaluating large reformulated unions.
fn table_aref(scale: Scale) -> bool {
    println!("== A-REF: union-aware evaluation of q_ref (sequential / shared / parallel) ==");
    const SAMPLES: usize = 3;

    // The union evaluator is instrumented; reset the registry so the
    // embedded snapshot covers exactly this table's evaluations.
    let reg = obs::global();
    reg.reset();

    #[derive(Serialize)]
    struct Row {
        query: String,
        branches: usize,
        sequential_s: f64,
        shared_s: f64,
        parallel_s: f64,
        shared_prefix_scans: usize,
        scan_cache_hits: u64,
        answers: usize,
    }

    let UnionCases { datasets, cases } = union_stress_cases(scale);

    let mut report = Vec::new();
    let mut rows = Vec::new();
    for (name, di, q) in cases {
        let (data, schema) = &datasets[di];
        let r = reformulate(&q, schema, &data.vocab).expect("dialect ok");
        let g = &data.graph;

        let mut sequential_s = f64::INFINITY;
        let mut shared_s = f64::INFINITY;
        let mut parallel_s = f64::INFINITY;
        let mut stats = sparql::EvalStats::default();
        let mut answers = 0;
        for _ in 0..SAMPLES {
            let (base, secs) = time(|| evaluate(g, &r.query));
            sequential_s = sequential_s.min(secs);
            answers = base.len();
            let ((shared, s1), secs) =
                time(|| evaluate_union(g, &r.query, NonZeroUsize::new(1).unwrap()));
            shared_s = shared_s.min(secs);
            let ((parallel, s4), secs) =
                time(|| evaluate_union(g, &r.query, NonZeroUsize::new(4).unwrap()));
            parallel_s = parallel_s.min(secs);
            assert_same_answers(&base, &shared, &name);
            assert_same_answers(&base, &parallel, &name);
            let hits = s1.scan_cache_hits.max(s4.scan_cache_hits);
            stats = s4;
            stats.scan_cache_hits = hits;
        }
        rows.push(vec![
            name.clone(),
            r.branches.to_string(),
            fmt_secs(sequential_s),
            fmt_secs(shared_s),
            fmt_secs(parallel_s),
            stats.shared_prefix_scans().to_string(),
            stats.scan_cache_hits.to_string(),
            format!("{:.2}×", sequential_s / parallel_s),
        ]);
        report.push(Row {
            query: name,
            branches: r.branches,
            sequential_s,
            shared_s,
            parallel_s,
            shared_prefix_scans: stats.shared_prefix_scans(),
            scan_cache_hits: stats.scan_cache_hits,
            answers,
        });
    }
    println!(
        "{}",
        render_table(
            &[
                "query",
                "branches",
                "sequential",
                "shared (1 thr)",
                "parallel (4 thr)",
                "scans saved",
                "cache hits",
                "speedup",
            ],
            &rows
        )
    );
    println!(
        "\"sequential\" is the legacy per-branch evaluator (re-plans and re-scans\n\
         every branch); \"shared\" plans once, folds branches into a prefix trie\n\
         and memoizes repeated index scans; \"parallel\" splits the sorted branch\n\
         list across 4 workers with sharded disjoint-write merging. All three\n\
         are asserted to return the same answer set.\n"
    );

    #[derive(Serialize)]
    struct ArefReport {
        rows: Vec<Row>,
        metrics: obs::MetricsSnapshot,
    }
    emit_json(
        "table_aref",
        &ArefReport {
            rows: report,
            metrics: reg.snapshot(),
        },
    )
}

/// T-INT: the interval (LiteMat-style) strategy against union
/// reformulation and saturation on the A-REF workload, plus the
/// strategy's own schema-update cost — rebuilding the interval dictionary
/// — next to full saturation (what a schema change costs each side).
fn table_interval(scale: Scale) -> bool {
    println!("== T-INT: interval encoding vs reformulation vs saturation ==");
    const SAMPLES: usize = 3;

    // The range evaluator is instrumented; reset the registry so the
    // embedded snapshot covers exactly this table's evaluations.
    let reg = obs::global();
    reg.reset();

    let UnionCases { datasets, cases } = union_stress_cases(scale);

    // Per dataset: the interval re-encode cost (the interval strategy's
    // analogue of a schema-update maintenance step) vs full saturation.
    #[derive(Serialize)]
    struct EncodeRow {
        dataset: String,
        encoded_terms: usize,
        fallback_terms: usize,
        reencode_s: f64,
        saturation_s: f64,
    }
    let mut encodings = Vec::new();
    let mut encode_report = Vec::new();
    let mut encode_rows = Vec::new();
    for (label, (ds, schema)) in ["LUBM", "SYNTH"].iter().zip(&datasets) {
        let mut reencode_s = f64::INFINITY;
        let mut idict = None;
        for _ in 0..SAMPLES {
            let (d, secs) = time(|| schema.interval_dict());
            reencode_s = reencode_s.min(secs);
            idict = Some(d);
        }
        let idict = Arc::new(idict.expect("at least one sample"));
        let (sat, saturation_s) = time(|| saturate(&ds.graph, &ds.vocab).graph);
        encode_rows.push(vec![
            (*label).to_owned(),
            idict.len().to_string(),
            idict.fallback_terms().to_string(),
            fmt_secs(reencode_s),
            fmt_secs(saturation_s),
        ]);
        encode_report.push(EncodeRow {
            dataset: (*label).to_owned(),
            encoded_terms: idict.len(),
            fallback_terms: idict.fallback_terms(),
            reencode_s,
            saturation_s,
        });
        encodings.push((idict, sat));
    }
    println!(
        "{}",
        render_table(
            &[
                "dataset",
                "encoded terms",
                "fallback terms",
                "re-encode",
                "saturation"
            ],
            &encode_rows
        )
    );

    #[derive(Serialize)]
    struct Row {
        query: String,
        union_branches: usize,
        interval_branches: usize,
        branches_collapsed: usize,
        collapsed_fraction: f64,
        range_scans: u64,
        saturated_s: f64,
        union_s: f64,
        interval_s: f64,
        speedup_vs_union: f64,
        answers: usize,
    }

    let one = NonZeroUsize::MIN;
    let mut report = Vec::new();
    let mut rows = Vec::new();
    for (name, di, q) in &cases {
        let (ds, schema) = &datasets[*di];
        let (idict, sat) = &encodings[*di];
        let r = reformulate(q, schema, &ds.vocab).expect("dialect ok");
        let iq = reformulate_intervals(q, schema, &ds.vocab, idict.clone()).expect("dialect ok");
        let mut distinct_q = q.clone();
        distinct_q.distinct = true;

        let mut union_s = f64::INFINITY;
        let mut interval_s = f64::INFINITY;
        let mut saturated_s = f64::INFINITY;
        let mut stats = sparql::EvalStats::default();
        let mut answers = 0;
        for _ in 0..SAMPLES {
            let ((u_sols, _), secs) = time(|| evaluate_union(&ds.graph, &r.query, one));
            union_s = union_s.min(secs);
            let ((i_sols, s), secs) = time(|| evaluate_interval(&ds.graph, &iq, one));
            interval_s = interval_s.min(secs);
            let (s_sols, secs) = time(|| evaluate(sat, &distinct_q));
            saturated_s = saturated_s.min(secs);
            assert_same_answers(&u_sols, &i_sols, name);
            assert_same_answers(&s_sols, &i_sols, name);
            answers = i_sols.len();
            stats = s;
        }

        let collapsed_fraction = if iq.union_branches > 0 {
            iq.branches_collapsed as f64 / iq.union_branches as f64
        } else {
            0.0
        };
        // The headline acceptance bar: on the subclass-heavy synthetic
        // cases, interval encoding must replace ≥90% of the hierarchy
        // union branches with range scans.
        if name.starts_with("SYNTH") {
            assert!(
                collapsed_fraction >= 0.9,
                "{name}: only {:.0}% of {} union branches collapsed",
                collapsed_fraction * 100.0,
                iq.union_branches,
            );
        }
        rows.push(vec![
            name.clone(),
            iq.union_branches.to_string(),
            iq.branches.len().to_string(),
            format!(
                "{} ({:.0}%)",
                iq.branches_collapsed,
                collapsed_fraction * 100.0
            ),
            stats.range_scans.to_string(),
            fmt_secs(saturated_s),
            fmt_secs(union_s),
            fmt_secs(interval_s),
            format!("{:.2}×", union_s / interval_s),
        ]);
        report.push(Row {
            query: name.clone(),
            union_branches: iq.union_branches,
            interval_branches: iq.branches.len(),
            branches_collapsed: iq.branches_collapsed,
            collapsed_fraction,
            range_scans: stats.range_scans,
            saturated_s,
            union_s,
            interval_s,
            speedup_vs_union: union_s / interval_s,
            answers,
        });
    }
    println!(
        "{}",
        render_table(
            &[
                "query",
                "union br.",
                "interval br.",
                "collapsed",
                "range scans",
                "saturated",
                "union",
                "interval",
                "speedup",
            ],
            &rows
        )
    );
    println!(
        "All three strategies are asserted to return the same answer set.\n\
         \"collapsed\" counts hierarchy union branches replaced by interval\n\
         range scans; \"speedup\" is union / interval (1 thread, best of {SAMPLES}).\n"
    );

    #[derive(Serialize)]
    struct IntervalReport {
        reencode: Vec<EncodeRow>,
        rows: Vec<Row>,
        metrics: obs::MetricsSnapshot,
    }
    emit_json(
        "table_interval",
        &IntervalReport {
            reencode: encode_report,
            rows: report,
            metrics: reg.snapshot(),
        },
    )
}

/// A-SERVE: closed-loop throughput of the embedded query server over real
/// sockets — concurrent readers against one live update client, exercising
/// the snapshot-publication path (DESIGN.md §6) end to end. Readers never
/// block on the writer; throughput should scale with the reader count.
fn table_aserve() -> bool {
    use std::io::{Read as _, Write as _};
    use std::net::{SocketAddr, TcpStream};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};
    use webreason_core::{DurableStore, ReasoningConfig};
    use webreason_server::{Server, ServerConfig};

    println!("== A-SERVE: embedded server, closed-loop socket clients ==");
    const QUERY: &str = "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x a ex:Mammal }";
    const CELL_MILLIS: u64 = 400;

    fn post(addr: SocketAddr, path: &str, body: &str) -> u16 {
        let mut stream = TcpStream::connect(addr).expect("connects");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout sets");
        let raw = format!(
            "POST {path} HTTP/1.1\r\nHost: b\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(raw.as_bytes()).expect("request writes");
        let mut text = String::new();
        stream.read_to_string(&mut text).expect("response reads");
        text.split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status line")
    }

    #[derive(Serialize)]
    struct Row {
        readers: usize,
        queries: u64,
        queries_per_s: f64,
        mean_query_ms: f64,
        updates_applied: u64,
        updates_per_s: f64,
        updates_rejected: u64,
    }

    // Seed: a small zoo — a subclass chain plus typed individuals, so every
    // query pays for real entailed answers rather than an empty scan.
    let mut seed = String::from(
        "@prefix ex: <http://ex/> .\n\
         @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n\
         ex:Cat rdfs:subClassOf ex:Mammal .\n\
         ex:Dog rdfs:subClassOf ex:Mammal .\n",
    );
    for i in 0..200 {
        let class = if i % 2 == 0 { "Cat" } else { "Dog" };
        seed.push_str(&format!("ex:ind{i} a ex:{class} .\n"));
    }

    let mut rows = Vec::new();
    let mut report = Vec::new();
    for readers in [1usize, 2, 4] {
        let dir =
            std::env::temp_dir().join(format!("webreason-aserve-{readers}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = DurableStore::create(
            &dir,
            ReasoningConfig::Saturation(MaintenanceAlgorithm::DRed),
            NonZeroUsize::MIN,
            FsyncPolicy::Never,
        )
        .expect("store creates");
        store.load_turtle(&seed).expect("seed loads");
        let server = Server::start(
            store,
            ServerConfig {
                addr: "127.0.0.1:0".to_owned(),
                threads: readers + 1,
                ..Default::default()
            },
        )
        .expect("server boots");
        let addr = server.local_addr();

        let stop = Arc::new(AtomicBool::new(false));
        let started = Instant::now();
        let query_threads: Vec<_> = (0..readers)
            .map(|_| {
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let (mut n, mut total_us) = (0u64, 0u64);
                    while !stop.load(Ordering::Relaxed) {
                        let t = Instant::now();
                        assert_eq!(post(addr, "/query", QUERY), 200);
                        total_us += t.elapsed().as_micros() as u64;
                        n += 1;
                    }
                    (n, total_us)
                })
            })
            .collect();
        let update_thread = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let (mut applied, mut rejected, mut i) = (0u64, 0u64, 0u64);
                while !stop.load(Ordering::Relaxed) {
                    let body = if i % 2 == 0 {
                        format!(
                            "insert <http://ex/live{}> \
                             <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> \
                             <http://ex/Cat> .\n",
                            i / 2
                        )
                    } else {
                        format!(
                            "delete <http://ex/live{}> \
                             <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> \
                             <http://ex/Cat> .\n",
                            i / 2
                        )
                    };
                    match post(addr, "/update", &body) {
                        200 => applied += 1,
                        429 => rejected += 1,
                        other => panic!("update client: unexpected {other}"),
                    }
                    i += 1;
                }
                (applied, rejected)
            })
        };

        std::thread::sleep(Duration::from_millis(CELL_MILLIS));
        stop.store(true, Ordering::Relaxed);
        let mut queries = 0u64;
        let mut total_us = 0u64;
        for h in query_threads {
            let (n, us) = h.join().expect("query client");
            queries += n;
            total_us += us;
        }
        let (updates_applied, updates_rejected) = update_thread.join().expect("update client");
        let elapsed = started.elapsed().as_secs_f64();
        drop(server.shutdown());
        let _ = std::fs::remove_dir_all(&dir);

        let queries_per_s = queries as f64 / elapsed;
        let updates_per_s = updates_applied as f64 / elapsed;
        let mean_query_ms = total_us as f64 / 1_000.0 / queries.max(1) as f64;
        rows.push(vec![
            readers.to_string(),
            queries.to_string(),
            format!("{queries_per_s:.0}"),
            format!("{mean_query_ms:.2}"),
            updates_applied.to_string(),
            format!("{updates_per_s:.0}"),
            updates_rejected.to_string(),
        ]);
        report.push(Row {
            readers,
            queries,
            queries_per_s,
            mean_query_ms,
            updates_applied,
            updates_per_s,
            updates_rejected,
        });
    }
    println!(
        "{}",
        render_table(
            &[
                "readers",
                "queries",
                "queries/s",
                "mean query (ms)",
                "updates applied",
                "updates/s",
                "updates 429d",
            ],
            &rows
        )
    );
    println!(
        "Closed-loop clients over real sockets against a seeded store (402\n\
         base triples), one continuous update client alongside; each cell\n\
         runs {CELL_MILLIS} ms. Readers answer from published snapshots and\n\
         never wait on the writer.\n"
    );
    emit_json("table_aserve", &report)
}

/// T-SAT: saturation time and size blow-up across dataset scales, for the
/// specialised single-pass engine vs the naive fix-point vs the Datalog
/// translation (the engine-specialisation ablation).
fn table_sat() -> bool {
    println!("== T-SAT: graph saturation across scales ==");
    #[derive(Serialize)]
    struct Row {
        universities: usize,
        base: usize,
        saturated: usize,
        blowup: f64,
        specialised_s: f64,
        naive_s: f64,
        datalog_s: f64,
    }
    let mut report = Vec::new();
    let mut rows = Vec::new();
    for unis in [1usize] {
        for cfg in [
            LubmConfig::tiny(),
            Scale::Small.config(),
            LubmConfig {
                universities: unis,
                ..LubmConfig::default()
            },
        ] {
            let ds = generate(&cfg);
            let (fast, specialised_s) = time(|| saturate(&ds.graph, &ds.vocab));
            let (naive, naive_s) = time(|| saturate_naive(&ds.graph, &ds.vocab));
            let (dl, datalog_s) = time(|| datalog::saturate_via_datalog(&ds.graph, &ds.vocab));
            assert_eq!(fast.graph, naive.graph, "engines must agree");
            assert_eq!(fast.graph, dl.0, "datalog must agree");
            let blowup = fast.graph.len() as f64 / ds.graph.len() as f64;
            rows.push(vec![
                ds.graph.len().to_string(),
                fast.graph.len().to_string(),
                format!("{blowup:.2}×"),
                fmt_secs(specialised_s),
                fmt_secs(naive_s),
                fmt_secs(datalog_s),
                format!("{:.1}×", naive_s / specialised_s),
            ]);
            report.push(Row {
                universities: cfg.universities,
                base: ds.graph.len(),
                saturated: fast.graph.len(),
                blowup,
                specialised_s,
                naive_s,
                datalog_s,
            });
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "base |G|",
                "|G∞|",
                "blow-up",
                "specialised",
                "naive",
                "datalog",
                "naive/spec"
            ],
            &rows
        )
    );
    emit_json("table_sat", &report)
}

/// T-REF: reformulated query size (union branches) and reformulation time,
/// on LUBM Q1–Q10 and on a synthetic class-tree depth sweep.
fn table_ref(scale: Scale) -> bool {
    println!("== T-REF: reformulation size and time (LUBM) ==");
    let (ds, qs) = lubm_workload(scale);
    let schema = Schema::extract(&ds.graph, &ds.vocab);
    #[derive(Serialize)]
    struct Row {
        query: String,
        atoms: usize,
        raw_branches: usize,
        branches: usize,
        total_atoms: usize,
        rewrite_steps: usize,
        seconds: f64,
    }
    let mut report = Vec::new();
    let mut rows = Vec::new();
    for (name, q) in &qs {
        let raw =
            reformulation::reformulate_with(q, &schema, &ds.vocab, reformulation::Options::raw())
                .expect("dialect ok");
        let (r, secs) = time(|| reformulate(q, &schema, &ds.vocab).expect("dialect ok"));
        rows.push(vec![
            name.clone(),
            q.pattern_count().to_string(),
            raw.branches.to_string(),
            r.branches.to_string(),
            r.query.pattern_count().to_string(),
            r.rewrite_steps.to_string(),
            fmt_secs(secs),
        ]);
        report.push(Row {
            query: name.clone(),
            atoms: q.pattern_count(),
            raw_branches: raw.branches,
            branches: r.branches,
            total_atoms: r.query.pattern_count(),
            rewrite_steps: r.rewrite_steps,
            seconds: secs,
        });
    }
    println!(
        "{}",
        render_table(
            &[
                "query",
                "atoms",
                "raw branches",
                "pruned branches",
                "total atoms",
                "rewrites",
                "time"
            ],
            &rows
        )
    );
    println!(
        "(\"pruned\" = after core minimisation + subsumption pruning — the\n\
         §II-D open issue of evaluating large reformulated queries)\n"
    );

    println!("== T-REF: branches vs class-tree shape (synthetic sweep) ==");
    let mut rows = Vec::new();
    for (depth, fanout) in [(1usize, 2usize), (2, 2), (3, 2), (2, 4), (3, 3), (4, 2)] {
        let mut w = synth_generate(&SynthConfig {
            class_depth: depth,
            class_fanout: fanout,
            individuals: 10,
            edges: 20,
            typings: 10,
            domain_range_density: 0.3,
            ..Default::default()
        });
        let schema = Schema::extract(&w.dataset.graph, &w.dataset.vocab);
        let root = w.root_class;
        let q = w.type_query(root);
        let (r, secs) = time(|| reformulate(&q, &schema, &w.dataset.vocab).unwrap());
        rows.push(vec![
            format!("depth {depth} × fanout {fanout}"),
            w.classes.len().to_string(),
            r.branches.to_string(),
            fmt_secs(secs),
        ]);
    }
    println!(
        "{}",
        render_table(&["tree", "classes", "branches(root query)", "time"], &rows)
    );
    emit_json("table_ref", &report)
}

/// T-QA: per-query evaluation time — q(G∞) vs q_ref(G) vs backward
/// chaining — with the winner column ("who wins, where").
fn table_qa(scale: Scale) -> bool {
    println!("== T-QA: query answering, saturation vs reformulation vs backward ==");
    let (ds, qs) = lubm_workload(scale);
    let sat = saturated(&ds);
    let schema = Schema::extract(&ds.graph, &ds.vocab);
    #[derive(Serialize)]
    struct Row {
        query: String,
        answers: usize,
        eval_saturated_s: f64,
        eval_reformulated_s: f64,
        eval_backward_s: f64,
        winner: String,
    }
    let mut report = Vec::new();
    let mut rows = Vec::new();
    for (name, q) in &qs {
        let r = reformulate(q, &schema, &ds.vocab).expect("dialect ok");
        // best-of-3 to suppress noise
        let mut t_sat = f64::INFINITY;
        let mut t_ref = f64::INFINITY;
        let mut t_bwd = f64::INFINITY;
        let mut answers = 0;
        for _ in 0..3 {
            let (a, s) = time(|| evaluate(&sat, q));
            t_sat = t_sat.min(s);
            answers = a.len();
            let (b, s) = time(|| evaluate(&ds.graph, &r.query));
            t_ref = t_ref.min(s);
            let (c, s) = time(|| evaluate_backward(&ds.graph, &schema, &ds.vocab, q));
            t_bwd = t_bwd.min(s);
            bench::assert_same_answers(&a, &b, name);
            bench::assert_same_answers(&a, &c, name);
        }
        let winner = if t_sat <= t_ref && t_sat <= t_bwd {
            "saturation"
        } else if t_ref <= t_bwd {
            "reformulation"
        } else {
            "backward"
        };
        rows.push(vec![
            name.clone(),
            answers.to_string(),
            fmt_secs(t_sat),
            fmt_secs(t_ref),
            fmt_secs(t_bwd),
            winner.to_string(),
        ]);
        report.push(Row {
            query: name.clone(),
            answers,
            eval_saturated_s: t_sat,
            eval_reformulated_s: t_ref,
            eval_backward_s: t_bwd,
            winner: winner.to_string(),
        });
    }
    println!(
        "{}",
        render_table(
            &["query", "answers", "q(G∞)", "q_ref(G)", "backward", "winner"],
            &rows
        )
    );
    emit_json("table_qa", &report)
}

/// T-MAINT: maintenance cost per update kind, per algorithm, next to the
/// write-ahead-journal append a durable (`--journal`) store pays before
/// any maintenance runs.
fn table_maint(scale: Scale) -> bool {
    println!("== T-MAINT: saturation maintenance per update kind ==");
    let (ds, qs) = lubm_workload(scale);
    // The WAL append is algorithm-independent: every durable update pays
    // it once, before maintenance. Measured under both fsync policies.
    let wal = |fsync| match journal_append_cost(fsync, 200) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("could not measure journal overhead ({e}); reporting 0");
            0.0
        }
    };
    let wal_always_s = wal(FsyncPolicy::Always);
    let wal_never_s = wal(FsyncPolicy::Never);
    #[derive(Serialize)]
    struct Row {
        algorithm: String,
        instance_insert_s: f64,
        instance_delete_s: f64,
        schema_insert_s: f64,
        schema_delete_s: f64,
        wal_append_s: f64,
    }
    let mut report = Vec::new();
    let mut rows = Vec::new();
    for algo in MaintenanceAlgorithm::ALL {
        let p = profile(&ds.graph, &ds.vocab, &qs[..1], algo, 5);
        rows.push(vec![
            algo.name().to_owned(),
            fmt_secs(p.maintenance.instance_insert),
            fmt_secs(p.maintenance.instance_delete),
            fmt_secs(p.maintenance.schema_insert),
            fmt_secs(p.maintenance.schema_delete),
            fmt_secs(wal_always_s),
        ]);
        report.push(Row {
            algorithm: algo.name().to_owned(),
            instance_insert_s: p.maintenance.instance_insert,
            instance_delete_s: p.maintenance.instance_delete,
            schema_insert_s: p.maintenance.schema_insert,
            schema_delete_s: p.maintenance.schema_delete,
            wal_append_s: wal_always_s,
        });
    }
    println!(
        "{}",
        render_table(
            &[
                "algorithm",
                "inst-insert",
                "inst-delete",
                "schema-insert",
                "schema-delete",
                "wal-append"
            ],
            &rows
        )
    );
    println!(
        "(recompute pays the full saturation on every update; counting/DRed are\n\
         incremental. wal-append is the journal write a --journal store adds to\n\
         every update, fsync always; with fsync never it costs {}.)\n",
        fmt_secs(wal_never_s),
    );
    emit_json("table_maint", &report)
}

/// A-DATALOG: the §II-D translation — equivalence and relative speed.
fn table_datalog(scale: Scale) {
    println!("== A-DATALOG: RDF→Datalog translation (§II-D open issue) ==");
    let (ds, qs) = lubm_workload(scale);
    let (native, native_s) = time(|| saturate(&ds.graph, &ds.vocab));
    let ((dl_graph, stats), dl_s) = time(|| datalog::saturate_via_datalog(&ds.graph, &ds.vocab));
    assert_eq!(native.graph, dl_graph, "translation must be equivalent");
    let mut rows = vec![
        vec![
            "saturated triples".into(),
            native.graph.len().to_string(),
            dl_graph.len().to_string(),
        ],
        vec!["wall-clock".into(), fmt_secs(native_s), fmt_secs(dl_s)],
        vec![
            "passes / rounds".into(),
            native.stats.passes.to_string(),
            stats.rounds.to_string(),
        ],
    ];
    // answers over the datalog-saturated graph match too
    let mut agree = 0;
    for (name, q) in &qs {
        let a = evaluate(&native.graph, q);
        let b = evaluate(&dl_graph, q);
        bench::assert_same_answers(&a, &b, name);
        agree += 1;
    }
    rows.push(vec![
        "queries agreeing".into(),
        agree.to_string(),
        agree.to_string(),
    ]);
    println!(
        "{}",
        render_table(&["metric", "native (specialised)", "datalog engine"], &rows)
    );
    println!(
        "generality costs {:.1}× on saturation — the \"RDF-specific Datalog optimization\"\n\
         gap the paper flags as an open issue.\n",
        dl_s / native_s
    );
}

/// A-ADVISOR: recommendation across a (query-rate × update-mix) grid.
fn table_advisor(scale: Scale) {
    println!("== A-ADVISOR: automatic technique choice across workload mixes ==");
    let (ds, qs) = lubm_workload(scale);
    // Use the recompute maintainer: the conservative upper bound on
    // maintenance cost (what a system without incremental maintenance pays).
    let prof = profile(
        &ds.graph,
        &ds.vocab,
        &qs,
        MaintenanceAlgorithm::Recompute,
        3,
    );
    let prof_inc = profile(&ds.graph, &ds.vocab, &qs, MaintenanceAlgorithm::Counting, 3);

    let mut rows = Vec::new();
    for (mix_name, updates) in [
        ("append-mostly", UpdateMix::append_mostly()),
        ("schema-churn", UpdateMix::schema_churn()),
    ] {
        for k in [0.1, 1.0, 10.0, 100.0, 1000.0] {
            let w = WorkloadMix {
                queries_per_update: k,
                updates,
            };
            let rec = |p| match advise(p, &w).recommendation {
                Recommendation::Saturation => "saturation",
                Recommendation::Reformulation => "reformulation",
                Recommendation::Interval => "interval",
            };
            rows.push(vec![
                mix_name.to_owned(),
                format!("{k}"),
                rec(&prof).to_owned(),
                rec(&prof_inc).to_owned(),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "update mix",
                "queries/update",
                "recommend (recompute maint.)",
                "recommend (counting maint.)"
            ],
            &rows
        )
    );
    println!(
        "With naive recomputation, reformulation wins until queries dominate;\n\
         incremental maintenance moves the crossover — the finer-grained analysis\n\
         the paper calls for.\n"
    );
}
