//! Graph saturation: computing `G∞` (§II-B "Graph saturation").
//!
//! Two engines compute the same fix-point:
//!
//! * [`saturate`] — the production path: close the schema once (rdfs5,
//!   rdfs11 + domain/range propagation), then derive all instance
//!   consequences in a **single pass** over the instance triples. With a
//!   closed schema, every chain of rdfs7 / rdfs2 / rdfs3 / rdfs9
//!   applications starting from a base triple collapses to one lookup in
//!   the closed maps, so no fix-point iteration over the (large) instance
//!   part is needed. This is the rule-specialisation OWLIM-class engines
//!   perform (§II-C).
//! * [`saturate_naive`] — the reference engine: generic semi-naive
//!   iteration of the immediate-entailment rules until no new triple is
//!   derived, exactly the definition of `G∞` in the paper. Used to
//!   cross-check the fast path (unit + property tests) and as the
//!   "unspecialised" arm of the ablation benchmark.
//!
//! Both assume the RDF database fragment (see [`crate::rules`]): RDFS
//! built-ins are not used as regular data.

use crate::rules::{consequences_of, Rule};
use crate::schema::Schema;
use rdf_model::{Graph, Triple, Vocab};
use rustc_hash::FxHashMap;

/// Maps a rule name onto its static registry counter
/// (`rdfs.saturate.fired_<rule>`), for the rules the engines report.
/// Registry counter names are `&'static str`, so the mapping is a match.
pub(crate) fn rule_counter(rule: &str) -> Option<&'static str> {
    Some(match rule {
        "rdfs2" => "rdfs.saturate.fired_rdfs2",
        "rdfs3" => "rdfs.saturate.fired_rdfs3",
        "rdfs7" => "rdfs.saturate.fired_rdfs7",
        "rdfs9" => "rdfs.saturate.fired_rdfs9",
        "schema-closure" => "rdfs.saturate.fired_schema_closure",
        "structural" => "rdfs.saturate.fired_structural",
        _ => return None,
    })
}

/// Publishes a finished saturation run into the metrics registry: the run
/// counter, total/per-rule firings and the inferred-triples counter. The
/// `SaturationStats` struct stays the caller-facing façade; this only
/// mirrors it into `obs`.
pub(crate) fn publish_stats(stats: &SaturationStats) {
    let reg = obs::global();
    if !reg.is_enabled() {
        return;
    }
    reg.add("rdfs.saturate.runs", 1);
    reg.add("rdfs.saturate.inferred", stats.inferred as u64);
    reg.add("rdfs.saturate.input_triples", stats.input_triples as u64);
    reg.add("rdfs.saturate.passes", stats.passes as u64);
    for (rule, n) in &stats.rule_firings {
        // Phase timings ride in rule_firings for the bench split; they are
        // not firings, so keep them out of the aggregate counter.
        if rule.ends_with("-us") {
            continue;
        }
        reg.add("rdfs.saturate.rule_firings", *n);
        if let Some(counter) = rule_counter(rule) {
            reg.add(counter, *n);
        }
    }
}

/// Statistics of a saturation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SaturationStats {
    /// Triples in the input graph `G`.
    pub input_triples: usize,
    /// Triples in the saturated graph `G∞`.
    pub output_triples: usize,
    /// Newly derived (implicit) triples: `output - input`.
    pub inferred: usize,
    /// Fix-point passes (1 for the specialised single-pass engine).
    pub passes: usize,
    /// New triples contributed per rule (naive engine only; the
    /// specialised engine reports per-category counts under the Fig. 2
    /// rule names it specialises).
    pub rule_firings: FxHashMap<&'static str, u64>,
}

/// The saturated graph together with run statistics.
#[derive(Debug, Clone)]
pub struct SaturationResult {
    /// `G∞`: the input plus every entailed triple.
    pub graph: Graph,
    /// Statistics of the run.
    pub stats: SaturationStats,
}

/// Computes `G∞` with the schema-closure-specialised single-pass engine.
pub fn saturate(g: &Graph, vocab: &Vocab) -> SaturationResult {
    let schema = Schema::extract(g, vocab);
    saturate_with_schema(g, vocab, &schema)
}

/// Like [`saturate`], but reuses an already-extracted (and closed) schema —
/// the incremental maintainers call this to avoid re-extracting.
pub fn saturate_with_schema(g: &Graph, vocab: &Vocab, schema: &Schema) -> SaturationResult {
    let _span = obs::global().span("rdfs.saturate.run");
    let mut out = g.clone();
    let mut firings: FxHashMap<&'static str, u64> = FxHashMap::default();

    // 1. The closed schema is part of G∞.
    let mut schema_new = 0u64;
    for t in schema.closed_triples(vocab) {
        if out.insert(t) {
            schema_new += 1;
        }
    }
    if schema_new > 0 {
        firings.insert("schema-closure", schema_new);
    }

    // 2. Single pass over the *base* instance triples. Consequences are
    // deduplicated inline against `out` (a clone of `g`, so iteration over
    // `g` is unaffected) instead of buffering every raw emission in an
    // unbounded Vec; emission order is unchanged, so per-rule firing
    // counts are identical to the buffered formulation.
    for t in g.iter() {
        derive_instance_consequences(&t, vocab, schema, |rule, c| {
            if out.insert(c) {
                *firings.entry(rule).or_insert(0) += 1;
            }
        });
    }

    let stats = SaturationStats {
        input_triples: g.len(),
        output_triples: out.len(),
        inferred: out.len() - g.len(),
        passes: 1,
        rule_firings: firings,
    };
    publish_stats(&stats);
    SaturationResult { graph: out, stats }
}

/// Emits every instance-level consequence of base triple `t` under the
/// closed `schema`. This is the complete consequence set `cons(t)`: the
/// counting maintainer's bookkeeping is built on it too.
pub(crate) fn derive_instance_consequences(
    t: &Triple,
    vocab: &Vocab,
    schema: &Schema,
    mut emit: impl FnMut(&'static str, Triple),
) {
    if t.p == vocab.rdf_type {
        for &c in schema.super_classes(t.o) {
            emit("rdfs9", Triple::new(t.s, vocab.rdf_type, c));
        }
    } else if !vocab.is_schema_property(t.p) {
        for &p2 in schema.super_properties(t.p) {
            emit("rdfs7", Triple::new(t.s, p2, t.o));
        }
        for &c in schema.domains(t.p) {
            emit("rdfs2", Triple::new(t.s, vocab.rdf_type, c));
        }
        for &c in schema.ranges(t.p) {
            emit("rdfs3", Triple::new(t.o, vocab.rdf_type, c));
        }
    }
    // Schema triples need no per-triple work: their closure was added wholesale.
}

/// Computes the *full-RDFS* saturation: the database-fragment closure of
/// [`saturate`] **plus** the structural rules of the RDF(S) standard that
/// the fragment omits — "one first chooses an RDF fragment and saturates
/// the RDF graph accordingly" (§II-B). Added on top of `G∞`:
///
/// * rdf1 — every property used in a triple is typed `rdf:Property`;
/// * rdfs4a/4b — every subject and object is typed `rdfs:Resource` (the
///   graph layer is id-opaque, so literal objects get the generalised
///   `rdfs:Resource` typing too; callers with a dictionary can
///   post-filter);
/// * rdfs6/rdfs10 — reflexivity: every used property is its own
///   subproperty, every known class its own subclass and a subclass of
///   `rdfs:Resource`;
/// * everything used as a class (object of `rdf:type`, endpoint of
///   `subClassOf`, domain/range target) is typed `rdfs:Class`.
///
/// The structural pass iterates to its own fix-point (new triples mention
/// `rdf:type`, `rdfs:Class`, … which are themselves resources/properties).
/// These rules inflate the output heavily — that is the point: the
/// fragment choice is a *performance* choice — so they are opt-in.
///
/// The fix-point is **frontier-driven**: every structural rule depends on
/// a single triple (or a single class occurrence), so each pass only needs
/// to examine the triples added by the previous pass, never a fresh
/// snapshot of the whole graph. Classes are tracked in a seen-set so their
/// per-class triples are emitted once. The test suite asserts this
/// computes exactly the same closure as the snapshot-per-pass formulation.
pub fn saturate_full(g: &Graph, vocab: &Vocab) -> SaturationResult {
    let base = saturate(g, vocab);
    let mut out = base.graph;
    let mut structural = 0u64;
    let mut passes = base.stats.passes;

    let mut frontier: Vec<Triple> = out.iter().collect();
    let mut classes_seen: rustc_hash::FxHashSet<rdf_model::TermId> =
        rustc_hash::FxHashSet::default();
    while !frontier.is_empty() {
        passes += 1;
        let mut pending: Vec<Triple> = Vec::new();
        for t in &frontier {
            // rdf1
            pending.push(Triple::new(t.p, vocab.rdf_type, vocab.rdf_property));
            // rdfs6 (reflexive subproperty for used properties)
            pending.push(Triple::new(t.p, vocab.sub_property_of, t.p));
            // rdfs4a/4b
            pending.push(Triple::new(t.s, vocab.rdf_type, vocab.rdfs_resource));
            pending.push(Triple::new(t.o, vocab.rdf_type, vocab.rdfs_resource));
            // class positions — each class's triples are emitted the first
            // time it is seen in class position (inserts are idempotent,
            // so once is enough)
            let mut class = |c: rdf_model::TermId, pending: &mut Vec<Triple>| {
                if classes_seen.insert(c) {
                    pending.push(Triple::new(c, vocab.rdf_type, vocab.rdfs_class));
                    // rdfs10 (reflexive subclass for known classes)
                    pending.push(Triple::new(c, vocab.sub_class_of, c));
                    pending.push(Triple::new(c, vocab.sub_class_of, vocab.rdfs_resource));
                }
            };
            if t.p == vocab.rdf_type {
                class(t.o, &mut pending);
            } else if t.p == vocab.sub_class_of {
                class(t.s, &mut pending);
                class(t.o, &mut pending);
            } else if t.p == vocab.domain || t.p == vocab.range {
                class(t.o, &mut pending);
            }
        }
        frontier.clear();
        for t in pending {
            if out.insert(t) {
                structural += 1;
                frontier.push(t);
            }
        }
    }

    // The base pass already published its own stats; mirror only the
    // structural delta so firings are not double-counted.
    let reg = obs::global();
    reg.add("rdfs.saturate.rule_firings", structural);
    reg.add("rdfs.saturate.fired_structural", structural);

    let mut rule_firings = base.stats.rule_firings;
    rule_firings.insert("structural", structural);
    let stats = SaturationStats {
        input_triples: g.len(),
        output_triples: out.len(),
        inferred: out.len() - g.len(),
        passes,
        rule_firings,
    };
    SaturationResult { graph: out, stats }
}

/// Computes `G∞` by generic semi-naive fix-point iteration of the
/// immediate entailment rules — the literal definition of saturation.
pub fn saturate_naive(g: &Graph, vocab: &Vocab) -> SaturationResult {
    let _span = obs::global().span("rdfs.saturate.naive");
    let mut out = g.clone();
    let mut frontier: Vec<Triple> = g.iter().collect();
    let mut firings: FxHashMap<&'static str, u64> = FxHashMap::default();
    let mut passes = 0;
    let mut buf: Vec<(Rule, Triple)> = Vec::new();

    while !frontier.is_empty() {
        passes += 1;
        buf.clear();
        for t in &frontier {
            consequences_of(t, &out, vocab, |rule, c| buf.push((rule, c)));
        }
        frontier.clear();
        for &(rule, c) in &buf {
            if out.insert(c) {
                *firings.entry(rule.name()).or_insert(0) += 1;
                frontier.push(c);
            }
        }
    }

    let stats = SaturationStats {
        input_triples: g.len(),
        output_triples: out.len(),
        inferred: out.len() - g.len(),
        passes,
        rule_firings: firings,
    };
    SaturationResult { graph: out, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::{Dictionary, Pattern, TermId};

    struct Fx {
        dict: Dictionary,
        vocab: Vocab,
        g: Graph,
    }

    impl Fx {
        fn new() -> Self {
            let mut dict = Dictionary::new();
            let vocab = Vocab::intern(&mut dict);
            Fx {
                dict,
                vocab,
                g: Graph::new(),
            }
        }
        fn id(&mut self, n: &str) -> TermId {
            self.dict.encode_iri(&format!("http://ex/{n}"))
        }
        fn add(&mut self, s: TermId, p: TermId, o: TermId) {
            self.g.insert(Triple::new(s, p, o));
        }
    }

    /// The paper's §II-A example: domain typing entails `Anne rdf:type Person`.
    #[test]
    fn paper_domain_example() {
        let mut f = Fx::new();
        let (hf, person, anne, marie) = (
            f.id("hasFriend"),
            f.id("Person"),
            f.id("Anne"),
            f.id("Marie"),
        );
        let v = f.vocab;
        f.add(hf, v.domain, person);
        f.add(anne, hf, marie);
        for sat in [saturate(&f.g, &v), saturate_naive(&f.g, &v)] {
            assert!(sat.graph.contains(&Triple::new(anne, v.rdf_type, person)));
            assert_eq!(sat.stats.inferred, 1);
        }
    }

    /// A multi-hop chain: subproperty → domain → subclass.
    #[test]
    fn chained_inference() {
        let mut f = Fx::new();
        let (teaches, worksfor, prof, person, bob, uni) = (
            f.id("teaches"),
            f.id("worksFor"),
            f.id("Professor"),
            f.id("Person"),
            f.id("Bob"),
            f.id("Uni"),
        );
        let v = f.vocab;
        f.add(teaches, v.sub_property_of, worksfor);
        f.add(worksfor, v.domain, prof);
        f.add(prof, v.sub_class_of, person);
        f.add(bob, teaches, uni);

        let sat = saturate(&f.g, &v);
        // bob teaches uni ⊢ bob worksFor uni ⊢ bob type Professor ⊢ bob type Person
        assert!(sat.graph.contains(&Triple::new(bob, worksfor, uni)));
        assert!(sat.graph.contains(&Triple::new(bob, v.rdf_type, prof)));
        assert!(sat.graph.contains(&Triple::new(bob, v.rdf_type, person)));
        // and the schema closure: teaches domain Professor (and Person)
        assert!(sat.graph.contains(&Triple::new(teaches, v.domain, prof)));
        assert!(sat.graph.contains(&Triple::new(teaches, v.domain, person)));
        assert!(sat.graph.contains(&Triple::new(worksfor, v.domain, person)));
    }

    #[test]
    fn specialised_equals_naive_on_fixtures() {
        let mut f = Fx::new();
        let ids: Vec<TermId> = (0..8).map(|i| f.id(&format!("c{i}"))).collect();
        let props: Vec<TermId> = (0..4).map(|i| f.id(&format!("p{i}"))).collect();
        let inst: Vec<TermId> = (0..10).map(|i| f.id(&format!("x{i}"))).collect();
        let v = f.vocab;
        // class chain + a diamond
        for w in ids.windows(2) {
            f.add(w[0], v.sub_class_of, w[1]);
        }
        f.add(ids[0], v.sub_class_of, ids[3]);
        // property chain with domain/range
        f.add(props[0], v.sub_property_of, props[1]);
        f.add(props[1], v.sub_property_of, props[2]);
        f.add(props[1], v.domain, ids[2]);
        f.add(props[2], v.range, ids[4]);
        // instance data
        for (i, &x) in inst.iter().enumerate() {
            f.add(x, props[i % 3], inst[(i + 1) % inst.len()]);
            if i % 2 == 0 {
                f.add(x, v.rdf_type, ids[i % 4]);
            }
        }
        let fast = saturate(&f.g, &v);
        let naive = saturate_naive(&f.g, &v);
        assert_eq!(fast.graph, naive.graph);
        assert_eq!(fast.stats.inferred, naive.stats.inferred);
        assert!(
            naive.stats.passes > 1,
            "fixture exercises multi-pass fix-point"
        );
    }

    #[test]
    fn saturation_is_idempotent() {
        let mut f = Fx::new();
        let (a, b, c, x) = (f.id("A"), f.id("B"), f.id("C"), f.id("x"));
        let v = f.vocab;
        f.add(a, v.sub_class_of, b);
        f.add(b, v.sub_class_of, c);
        f.add(x, v.rdf_type, a);
        let once = saturate(&f.g, &v);
        let twice = saturate(&once.graph, &v);
        assert_eq!(once.graph, twice.graph);
        assert_eq!(twice.stats.inferred, 0);
    }

    #[test]
    fn saturation_contains_input() {
        let mut f = Fx::new();
        let (a, p, b) = (f.id("a"), f.id("p"), f.id("b"));
        let v = f.vocab;
        f.add(a, p, b);
        let sat = saturate(&f.g, &v);
        assert!(f.g.is_subgraph_of(&sat.graph));
    }

    #[test]
    fn empty_graph_saturates_to_empty() {
        let mut d = Dictionary::new();
        let v = Vocab::intern(&mut d);
        let sat = saturate(&Graph::new(), &v);
        assert!(sat.graph.is_empty());
        assert_eq!(sat.stats.passes, 1);
        assert_eq!(sat.stats.inferred, 0);
    }

    #[test]
    fn schema_only_graph_closes_schema() {
        let mut f = Fx::new();
        let (a, b, c) = (f.id("A"), f.id("B"), f.id("C"));
        let v = f.vocab;
        f.add(a, v.sub_class_of, b);
        f.add(b, v.sub_class_of, c);
        let sat = saturate(&f.g, &v);
        assert!(sat.graph.contains(&Triple::new(a, v.sub_class_of, c)));
        assert_eq!(sat.stats.inferred, 1);
    }

    #[test]
    fn cyclic_schema_terminates() {
        let mut f = Fx::new();
        let (a, b, x) = (f.id("A"), f.id("B"), f.id("x"));
        let v = f.vocab;
        f.add(a, v.sub_class_of, b);
        f.add(b, v.sub_class_of, a);
        f.add(x, v.rdf_type, a);
        let fast = saturate(&f.g, &v);
        let naive = saturate_naive(&f.g, &v);
        assert_eq!(fast.graph, naive.graph);
        assert!(fast.graph.contains(&Triple::new(x, v.rdf_type, b)));
        assert!(
            fast.graph.contains(&Triple::new(a, v.sub_class_of, a)),
            "cycle self-edges"
        );
        // The parallel engine handles schema cycles identically.
        for threads in [2usize, 4] {
            let par = crate::parallel::saturate_parallel(
                &f.g,
                &v,
                std::num::NonZeroUsize::new(threads).unwrap(),
            );
            assert_eq!(par.graph, naive.graph, "{threads} threads");
        }
    }

    /// Reference implementation of the structural fix-point that
    /// re-snapshots the whole graph on every pass — the formulation
    /// [`saturate_full`]'s frontier-driven loop replaced. Kept here so the
    /// tests can assert the two closures are identical.
    fn saturate_full_snapshot(g: &Graph, vocab: &Vocab) -> Graph {
        let mut out = saturate(g, vocab).graph;
        loop {
            let snapshot: Vec<Triple> = out.iter().collect();
            let mut pending: Vec<Triple> = Vec::new();
            let mut classes: rustc_hash::FxHashSet<TermId> = rustc_hash::FxHashSet::default();
            for t in &snapshot {
                pending.push(Triple::new(t.p, vocab.rdf_type, vocab.rdf_property));
                pending.push(Triple::new(t.p, vocab.sub_property_of, t.p));
                pending.push(Triple::new(t.s, vocab.rdf_type, vocab.rdfs_resource));
                pending.push(Triple::new(t.o, vocab.rdf_type, vocab.rdfs_resource));
                if t.p == vocab.rdf_type {
                    classes.insert(t.o);
                } else if t.p == vocab.sub_class_of {
                    classes.insert(t.s);
                    classes.insert(t.o);
                } else if t.p == vocab.domain || t.p == vocab.range {
                    classes.insert(t.o);
                }
            }
            for c in classes {
                pending.push(Triple::new(c, vocab.rdf_type, vocab.rdfs_class));
                pending.push(Triple::new(c, vocab.sub_class_of, c));
                pending.push(Triple::new(c, vocab.sub_class_of, vocab.rdfs_resource));
            }
            let mut added = 0u64;
            for t in pending {
                if out.insert(t) {
                    added += 1;
                }
            }
            if added == 0 {
                return out;
            }
        }
    }

    #[test]
    fn frontier_full_saturation_matches_snapshot_reference() {
        let mut f = Fx::new();
        let (cat, mammal, tom, likes, ada, p) = (
            f.id("Cat"),
            f.id("Mammal"),
            f.id("tom"),
            f.id("likes"),
            f.id("ada"),
            f.id("p"),
        );
        let v = f.vocab;
        f.add(cat, v.sub_class_of, mammal);
        f.add(tom, v.rdf_type, cat);
        f.add(tom, likes, ada);
        f.add(p, v.domain, cat);
        f.add(ada, p, tom);
        assert_eq!(
            saturate_full(&f.g, &v).graph,
            saturate_full_snapshot(&f.g, &v)
        );
        // Empty graph too.
        assert_eq!(
            saturate_full(&Graph::new(), &v).graph,
            saturate_full_snapshot(&Graph::new(), &v)
        );
    }

    #[test]
    fn stats_rule_firings_cover_figure2_rules() {
        let mut f = Fx::new();
        let (p, q, c, d, x, y) = (
            f.id("p"),
            f.id("q"),
            f.id("C"),
            f.id("D"),
            f.id("x"),
            f.id("y"),
        );
        let v = f.vocab;
        f.add(p, v.sub_property_of, q);
        f.add(q, v.domain, c);
        f.add(q, v.range, d);
        f.add(x, p, y);
        let sat = saturate(&f.g, &v);
        for rule in ["rdfs2", "rdfs3", "rdfs7"] {
            assert!(
                sat.stats.rule_firings.get(rule).copied().unwrap_or(0) > 0,
                "{rule} should fire"
            );
        }
        // Check derived triples concretely.
        assert!(sat.graph.contains(&Triple::new(x, q, y)));
        assert!(sat.graph.contains(&Triple::new(x, v.rdf_type, c)));
        assert!(sat.graph.contains(&Triple::new(y, v.rdf_type, d)));
    }

    #[test]
    fn full_rdfs_adds_structural_triples_and_terminates() {
        let mut f = Fx::new();
        let (cat, mammal, tom, likes, ada) = (
            f.id("Cat"),
            f.id("Mammal"),
            f.id("tom"),
            f.id("likes"),
            f.id("ada"),
        );
        let v = f.vocab;
        f.add(cat, v.sub_class_of, mammal);
        f.add(tom, v.rdf_type, cat);
        f.add(tom, likes, ada);

        let full = saturate_full(&f.g, &v);
        let fragment = saturate(&f.g, &v);
        assert!(
            fragment.graph.is_subgraph_of(&full.graph),
            "full ⊇ fragment"
        );
        // rdf1: likes is a Property
        assert!(full
            .graph
            .contains(&Triple::new(likes, v.rdf_type, v.rdf_property)));
        // rdfs4: tom and ada are Resources
        assert!(full
            .graph
            .contains(&Triple::new(tom, v.rdf_type, v.rdfs_resource)));
        assert!(full
            .graph
            .contains(&Triple::new(ada, v.rdf_type, v.rdfs_resource)));
        // class machinery
        assert!(full
            .graph
            .contains(&Triple::new(cat, v.rdf_type, v.rdfs_class)));
        assert!(full.graph.contains(&Triple::new(cat, v.sub_class_of, cat)));
        assert!(full
            .graph
            .contains(&Triple::new(cat, v.sub_class_of, v.rdfs_resource)));
        // meta-closure reached a fix-point: rdf:type itself is a Property
        assert!(full
            .graph
            .contains(&Triple::new(v.rdf_type, v.rdf_type, v.rdf_property)));
        // and the blow-up is substantially larger than the fragment's
        assert!(full.graph.len() > fragment.graph.len() + 10);
        // idempotent
        let twice = saturate_full(&full.graph, &v);
        assert_eq!(twice.graph, full.graph);
    }

    #[test]
    fn literal_style_objects_flow_through_range_rule() {
        // The engine is id-opaque: range typing applies to whatever the
        // object id denotes (generalised-triple semantics, documented).
        let mut f = Fx::new();
        let (p, c, x) = (f.id("p"), f.id("C"), f.id("x"));
        let lit = f.dict.encode(&rdf_model::Term::literal("42"));
        let v = f.vocab;
        f.add(p, v.range, c);
        f.add(x, p, lit);
        let sat = saturate(&f.g, &v);
        assert!(sat.graph.contains(&Triple::new(lit, v.rdf_type, c)));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// (subclass, subproperty, domain, range, facts, typings) pairs.
        type GraphParts = (
            Vec<(u8, u8)>,
            Vec<(u8, u8)>,
            Vec<(u8, u8)>,
            Vec<(u8, u8)>,
            Vec<(u8, u8, u8)>,
            Vec<(u8, u8)>,
        );

        /// Random graphs within the database fragment: schema triples over a
        /// small class/property universe plus instance triples.
        fn arb_graph() -> impl Strategy<Value = GraphParts> {
            (
                proptest::collection::vec((0u8..6, 0u8..6), 0..8), // subclass pairs
                proptest::collection::vec((0u8..5, 0u8..5), 0..6), // subproperty pairs
                proptest::collection::vec((0u8..5, 0u8..6), 0..5), // domain pairs
                proptest::collection::vec((0u8..5, 0u8..6), 0..5), // range pairs
                proptest::collection::vec((0u8..8, 0u8..5, 0u8..8), 0..20), // s p o
                proptest::collection::vec((0u8..8, 0u8..6), 0..10), // typing
            )
        }

        fn build(parts: &GraphParts) -> (Graph, Vocab) {
            let mut dict = Dictionary::new();
            let vocab = Vocab::intern(&mut dict);
            let class = |d: &mut Dictionary, i: u8| d.encode_iri(&format!("http://ex/C{i}"));
            let prop = |d: &mut Dictionary, i: u8| d.encode_iri(&format!("http://ex/p{i}"));
            let node = |d: &mut Dictionary, i: u8| d.encode_iri(&format!("http://ex/n{i}"));
            let mut g = Graph::new();
            for &(a, b) in &parts.0 {
                let (a, b) = (class(&mut dict, a), class(&mut dict, b));
                g.insert(Triple::new(a, vocab.sub_class_of, b));
            }
            for &(a, b) in &parts.1 {
                let (a, b) = (prop(&mut dict, a), prop(&mut dict, b));
                g.insert(Triple::new(a, vocab.sub_property_of, b));
            }
            for &(p, c) in &parts.2 {
                let (p, c) = (prop(&mut dict, p), class(&mut dict, c));
                g.insert(Triple::new(p, vocab.domain, c));
            }
            for &(p, c) in &parts.3 {
                let (p, c) = (prop(&mut dict, p), class(&mut dict, c));
                g.insert(Triple::new(p, vocab.range, c));
            }
            for &(s, p, o) in &parts.4 {
                let (s, p, o) = (node(&mut dict, s), prop(&mut dict, p), node(&mut dict, o));
                g.insert(Triple::new(s, p, o));
            }
            for &(s, c) in &parts.5 {
                let (s, c) = (node(&mut dict, s), class(&mut dict, c));
                g.insert(Triple::new(s, vocab.rdf_type, c));
            }
            (g, vocab)
        }

        proptest! {
            /// The specialised single-pass engine — and the sharded
            /// parallel engine at 2 and 4 threads — compute exactly the
            /// naive fix-point, on arbitrary fragment graphs (the
            /// generator covers cyclic schemas, since subclass/subproperty
            /// pairs are drawn freely, and the empty graph, since every
            /// part may be empty).
            #[test]
            fn specialised_equals_naive(parts in arb_graph()) {
                let (g, vocab) = build(&parts);
                let fast = saturate(&g, &vocab);
                let naive = saturate_naive(&g, &vocab);
                prop_assert_eq!(&fast.graph, &naive.graph);
                for threads in [2usize, 4] {
                    let par = crate::parallel::saturate_parallel(
                        &g,
                        &vocab,
                        std::num::NonZeroUsize::new(threads).unwrap(),
                    );
                    prop_assert_eq!(&par.graph, &naive.graph, "{} threads", threads);
                }
            }

            /// Frontier-driven full-RDFS saturation equals the
            /// snapshot-per-pass reference on arbitrary fragment graphs.
            #[test]
            fn frontier_full_equals_snapshot_full(parts in arb_graph()) {
                let (g, vocab) = build(&parts);
                prop_assert_eq!(
                    saturate_full(&g, &vocab).graph,
                    super::saturate_full_snapshot(&g, &vocab)
                );
            }

            /// Saturation is monotone: G ⊆ H implies G∞ ⊆ H∞.
            #[test]
            fn saturation_is_monotone(parts in arb_graph(), drop in 0usize..10) {
                let (h, vocab) = build(&parts);
                let mut g = h.clone();
                // remove up to `drop` arbitrary triples to get a subgraph
                let victims: Vec<_> = g.iter().take(drop).collect();
                for t in victims { g.remove(&t); }
                let sat_g = saturate(&g, &vocab);
                let sat_h = saturate(&h, &vocab);
                prop_assert!(sat_g.graph.is_subgraph_of(&sat_h.graph));
            }

            /// Idempotence on random graphs: (G∞)∞ = G∞.
            #[test]
            fn saturation_idempotent(parts in arb_graph()) {
                let (g, vocab) = build(&parts);
                let once = saturate(&g, &vocab);
                let twice = saturate(&once.graph, &vocab);
                prop_assert_eq!(&once.graph, &twice.graph);
            }

            /// `rdf_model::Pattern` sanity on the saturated output: every
            /// type assertion entailed for a subclass instance also holds
            /// for its superclasses.
            #[test]
            fn superclass_typing_complete(parts in arb_graph()) {
                let (g, vocab) = build(&parts);
                let sat = saturate(&g, &vocab).graph;
                let schema = Schema::extract(&sat, &vocab);
                let mut ok = true;
                sat.for_each_match(&Pattern::new(None, Some(vocab.rdf_type), None), |t| {
                    for &sup in schema.super_classes(t.o) {
                        if !sat.contains(&Triple::new(t.s, vocab.rdf_type, sup)) {
                            ok = false;
                        }
                    }
                });
                prop_assert!(ok);
            }
        }
    }
}
