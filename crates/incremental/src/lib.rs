//! # webreason-incremental — materialized views with delta subscriptions
//!
//! The paper's amortisation argument (§III) prices *queries* against
//! *updates*: saturation makes updates expensive so queries stay cheap.
//! This crate closes the loop for standing queries — instead of
//! re-answering a registered query after every update, the store
//! maintains its answer **incrementally** and streams the changes:
//!
//! 1. A subscriber registers a SPARQL BGP (union) query. The query is
//!    compiled once into a [`sparql::dataflow::DeltaProgram`] against the
//!    active reasoning strategy:
//!    * **Saturation** — the dataflow probes `G∞` and consumes the
//!      *entailed* delta the maintenance layer (DRed / counting /
//!      recompute) already computes; the view pays nothing extra for
//!      reasoning.
//!    * **Reformulation** — the query is reformulated into `q_ref` and the
//!      dataflow probes the explicit `G`, consuming the base delta.
//!    * **None** — plain evaluation over the explicit graph.
//! 2. After every writer group-commit, [`SubscriptionHub::publish`] runs
//!    each view's delta program over the consolidated triple delta —
//!    `O(|Δ|)` join work — updates the view's multiplicity counts, and
//!    fans epoch-tagged [`DeltaBatch`]es out to subscribers.
//! 3. Consumers accumulate batches; at any published epoch the
//!    accumulated state equals the from-scratch answer at that epoch
//!    (the *epoch-replay* invariant the integration oracle enforces).
//!
//! Multiplicities, not sets: each view keeps a signed count per projected
//! row. A `DISTINCT` view emits only `0 ↔ positive` transitions, so a row
//! derived twice (two union branches, two join derivations) survives the
//! deletion of one derivation — collapsing to a set any earlier is the
//! classic incorrect-view bug.
//!
//! Backpressure: streaming subscribers get a bounded queue; the writer
//! only ever *try-pushes*. A consumer that falls behind is cut loose with
//! a terminal [`Terminal::Lagged`] event — the writer never blocks on a
//! socket. Pull (catch-up) consumers read the view's bounded epoch log;
//! when they fall off its tail they receive a full snapshot-reset batch
//! instead of a gap.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rustc_hash::FxHashMap;
use serde::Serialize;
use sparql::dataflow::{compile_delta, consolidate_delta, DeltaProgram};
use sparql::Query;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;
use webreason_core::{AnswerError, ReasoningConfig, StoreDelta, StoreReader, StoreSnapshot};
use webreason_failpoints::fail_point;

/// Tuning knobs for a [`SubscriptionHub`].
#[derive(Debug, Clone, Copy)]
pub struct HubConfig {
    /// Maximum live subscriptions; further registrations are refused.
    pub max_subscriptions: usize,
    /// Per-streaming-subscriber queue bound; overflow drops the
    /// subscriber with [`Terminal::Lagged`].
    pub queue_capacity: usize,
    /// Per-view epoch-log bound for catch-up; older epochs fall back to a
    /// snapshot reset.
    pub log_capacity: usize,
}

impl Default for HubConfig {
    fn default() -> Self {
        HubConfig {
            max_subscriptions: 64,
            queue_capacity: 256,
            log_capacity: 128,
        }
    }
}

/// One signed change to a view's answer: `row` holds the projected terms
/// in N-Triples syntax, `delta` the multiplicity change (`±n`; for
/// `DISTINCT` views always `±1`, meaning the row entered / left the
/// answer set).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct DeltaEvent {
    /// Projected terms, N-Triples rendered, in SELECT order.
    pub row: Vec<String>,
    /// Signed multiplicity change.
    pub delta: i64,
}

/// A batch of view changes published at one store epoch.
///
/// When `reset` is true the consumer must discard all accumulated state
/// first: `events` then carry the complete answer at `epoch` (used for
/// the initial batch, schema-change rebuilds, and catch-up requests that
/// fell off the epoch log).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct DeltaBatch {
    /// The store epoch whose publication produced this batch.
    pub epoch: u64,
    /// Discard accumulated state before applying `events`.
    pub reset: bool,
    /// The row changes (consolidated: one event per row).
    pub events: Vec<DeltaEvent>,
}

/// Why a subscription's stream ended. Terminal events are delivered
/// in-stream so a consumer can distinguish "drop me, re-subscribe"
/// ([`Terminal::Lagged`]) from "server going away" ([`Terminal::Shutdown`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Terminal {
    /// The subscriber's queue overflowed — it consumed slower than the
    /// writer published and was cut loose to protect the write path.
    Lagged,
    /// The server is shutting down.
    Shutdown,
}

impl Terminal {
    /// Wire name of the terminal condition.
    pub fn as_str(self) -> &'static str {
        match self {
            Terminal::Lagged => "lagged",
            Terminal::Shutdown => "shutdown",
        }
    }
}

/// Why a subscription could not be registered.
#[derive(Debug)]
pub enum SubscribeError {
    /// The active reasoning strategy or a query feature has no delta form.
    Unsupported(String),
    /// Parsing / reformulation / evaluation failed (including
    /// [`AnswerError::Cancelled`] when a registration deadline expired).
    Query(AnswerError),
    /// The `--max-subscriptions` limit is reached.
    AtCapacity(usize),
    /// The hub has shut down.
    ShuttingDown,
}

impl std::fmt::Display for SubscribeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubscribeError::Unsupported(why) => write!(f, "{why}"),
            SubscribeError::Query(e) => write!(f, "{e}"),
            SubscribeError::AtCapacity(max) => {
                write!(f, "subscription limit reached ({max})")
            }
            SubscribeError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for SubscribeError {}

/// A successful registration.
#[derive(Debug)]
pub struct SubscribeOk {
    /// Subscription id — the handle for streaming / catch-up / cancel.
    pub id: u64,
    /// Epoch of the initial state.
    pub epoch: u64,
    /// Projected variable names, in SELECT order.
    pub vars: Vec<String>,
    /// Whether the view has set (`DISTINCT`) or bag semantics.
    pub distinct: bool,
    /// The initial snapshot: a `reset` batch holding the complete answer
    /// at `epoch`.
    pub initial: DeltaBatch,
}

/// Result of waiting for a streaming subscriber's next deliverable.
#[derive(Debug)]
pub enum NextWake {
    /// Queued batches, in publication order.
    Batches(Vec<std::sync::Arc<DeltaBatch>>),
    /// The stream ended; no further batches will arrive. The subscription
    /// has been removed.
    Terminal(Terminal),
    /// The wait timed out with nothing to deliver.
    Idle,
    /// Unknown subscription id (never registered, cancelled, or already
    /// terminated).
    Gone,
}

/// Result of a catch-up (pull) request.
#[derive(Debug)]
pub struct CatchUp {
    /// Batches with `epoch > from`, in order — or a single snapshot-reset
    /// batch when `from` fell off the epoch log.
    pub batches: Vec<std::sync::Arc<DeltaBatch>>,
    /// Set when the stream has ended (shutdown).
    pub terminal: Option<Terminal>,
}

use std::sync::Arc;

/// How a view evaluates under the strategy it was registered against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Plain evaluation over the explicit graph; consumes the base delta.
    Direct,
    /// Evaluation over maintained `G∞`; consumes the entailed delta.
    Saturated,
    /// Reformulated union over the explicit graph; consumes the base
    /// delta, recompiles on schema change.
    Reformulated,
}

struct View {
    key: String,
    mode: Mode,
    distinct: bool,
    vars: Vec<String>,
    /// The original query as registered (recompiled on schema change).
    query: Query,
    program: DeltaProgram,
    /// Signed multiplicity per projected row (decoded) — the view's
    /// materialized state. Rows with count 0 are removed.
    counts: FxHashMap<Vec<String>, i64>,
    /// Bounded log of published batches for pull/catch-up consumers.
    log: VecDeque<Arc<DeltaBatch>>,
    /// Catch-up from any epoch `>= log_anchor` is replayable from `log`;
    /// older requests get a snapshot reset.
    log_anchor: u64,
    /// Latest epoch published to this view (even if it produced no batch).
    last_epoch: u64,
    subscribers: Vec<u64>,
}

struct Sub {
    view: usize,
    /// Streaming subscribers get pushed batches; pull subscribers read
    /// the view log via catch-up and have no queue.
    streaming: bool,
    queue: VecDeque<Arc<DeltaBatch>>,
    terminal: Option<Terminal>,
}

struct Inner {
    views: Vec<View>,
    subs: FxHashMap<u64, Sub>,
    next_id: u64,
    /// Highest epoch `publish` has seen — guards the registration race.
    last_epoch: u64,
    shutdown: bool,
}

/// The subscription hub: owns every registered view and subscriber, sits
/// between the single writer (which calls [`publish`](Self::publish) after
/// each group commit) and the server connections (which register, stream,
/// catch up and cancel).
pub struct SubscriptionHub {
    cfg: HubConfig,
    inner: Mutex<Inner>,
    wake: Condvar,
}

fn lock(m: &Mutex<Inner>) -> MutexGuard<'_, Inner> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl SubscriptionHub {
    /// Creates an empty hub.
    pub fn new(cfg: HubConfig) -> Self {
        SubscriptionHub {
            cfg,
            inner: Mutex::new(Inner {
                views: Vec::new(),
                subs: FxHashMap::default(),
                next_id: 1,
                last_epoch: 0,
                shutdown: false,
            }),
            wake: Condvar::new(),
        }
    }

    /// Live subscriber count (the metrics gauge).
    pub fn live_subscribers(&self) -> usize {
        lock(&self.inner).subs.len()
    }

    /// Number of registered views (may be shared by several subscribers).
    pub fn view_count(&self) -> usize {
        lock(&self.inner).views.len()
    }

    /// Registers a subscription for `sparql`.
    ///
    /// The initial answer is evaluated against a reader snapshot *without*
    /// holding the hub lock (the writer keeps publishing meanwhile); the
    /// commit step detects a concurrent epoch advance and re-evaluates, so
    /// the returned initial state and the first streamed batch are always
    /// gap-free. `cancel` is the request's deadline token: expiry aborts
    /// registration with [`SubscribeError::Query`]([`AnswerError::Cancelled`]).
    pub fn subscribe(
        &self,
        reader: &StoreReader,
        sparql: &str,
        streaming: bool,
        cancel: &obs::CancelToken,
    ) -> Result<SubscribeOk, SubscribeError> {
        let reg = obs::global();
        loop {
            let snap = reader.snapshot();
            let q = snap.prepare(sparql).map_err(SubscribeError::Query)?;
            let key = view_key(&q);

            // Fast path: the view already exists — attach and hand the
            // subscriber the view's current state (no re-evaluation).
            {
                let mut inner = lock(&self.inner);
                if inner.shutdown {
                    return Err(SubscribeError::ShuttingDown);
                }
                if inner.subs.len() >= self.cfg.max_subscriptions {
                    return Err(SubscribeError::AtCapacity(self.cfg.max_subscriptions));
                }
                if let Some(vi) = inner.views.iter().position(|v| v.key == key) {
                    return Ok(self.attach(&mut inner, vi, streaming));
                }
            }

            if cancel.is_cancelled() {
                return Err(SubscribeError::Query(AnswerError::Cancelled));
            }

            // Slow path: build the view off-lock against the frozen
            // snapshot.
            let (mode, program) = compile_for(&snap, &q)?;
            let graph = snap.view_graph().ok_or_else(|| {
                SubscribeError::Unsupported(format!(
                    "strategy {} does not support subscriptions",
                    snap.config().name()
                ))
            })?;
            let mut counts: FxHashMap<Vec<String>, i64> = FxHashMap::default();
            {
                let dict = snap.dictionary();
                program.eval_full(graph, &dict, |row, m| {
                    let decoded = decode_row(&dict, &row);
                    *counts.entry(decoded).or_insert(0) += m;
                });
            }
            counts.retain(|_, m| *m != 0);
            if cancel.is_cancelled() {
                return Err(SubscribeError::Query(AnswerError::Cancelled));
            }

            // Commit: only if no epoch was published past our snapshot
            // while we evaluated (else retry against a fresh one).
            let mut inner = lock(&self.inner);
            if inner.shutdown {
                return Err(SubscribeError::ShuttingDown);
            }
            if inner.subs.len() >= self.cfg.max_subscriptions {
                return Err(SubscribeError::AtCapacity(self.cfg.max_subscriptions));
            }
            if let Some(vi) = inner.views.iter().position(|v| v.key == key) {
                // Another registrant won the race to create this view.
                return Ok(self.attach(&mut inner, vi, streaming));
            }
            if inner.last_epoch > snap.epoch() {
                drop(inner);
                reg.add("server.subscribe.register_retries", 1);
                continue;
            }
            let vars: Vec<String> = q.var_names.clone();
            let view = View {
                key,
                mode,
                distinct: q.distinct,
                vars,
                query: q,
                program,
                counts,
                log: VecDeque::new(),
                log_anchor: snap.epoch(),
                last_epoch: snap.epoch(),
                subscribers: Vec::new(),
            };
            inner.views.push(view);
            let vi = inner.views.len() - 1;
            return Ok(self.attach(&mut inner, vi, streaming));
        }
    }

    /// Attaches a new subscriber to an existing view and builds its
    /// initial reset batch from the view's current counts.
    fn attach(&self, inner: &mut Inner, vi: usize, streaming: bool) -> SubscribeOk {
        let id = inner.next_id;
        inner.next_id += 1;
        inner.subs.insert(
            id,
            Sub {
                view: vi,
                streaming,
                queue: VecDeque::new(),
                terminal: None,
            },
        );
        let view = &mut inner.views[vi];
        view.subscribers.push(id);
        let reg = obs::global();
        reg.add("server.subscribe.registered", 1);
        SubscribeOk {
            id,
            epoch: view.last_epoch,
            vars: view.vars.clone(),
            distinct: view.distinct,
            initial: reset_batch(view),
        }
    }

    /// Publishes one epoch to every view: runs each delta program over the
    /// consolidated triple delta, updates view counts, appends to epoch
    /// logs and fans out to streaming queues. Called by the single writer
    /// after group commit — `old`/`new` are the snapshots around the
    /// group, `delta` the drained [`StoreDelta`].
    ///
    /// The writer never blocks here: queue pushes are try-pushes and a
    /// full queue drops its subscriber with [`Terminal::Lagged`].
    pub fn publish(&self, old: &StoreSnapshot, new: &StoreSnapshot, delta: &StoreDelta) {
        fail_point!("store.subscribe.publish");
        let reg = obs::global();
        let epoch = new.epoch();
        let mut inner = lock(&self.inner);
        inner.last_epoch = inner.last_epoch.max(epoch);
        if inner.views.is_empty() || (delta.is_empty() && !delta.schema_changed) {
            for view in &mut inner.views {
                view.last_epoch = epoch;
            }
            return;
        }
        let _span = reg.span("server.subscribe.publish");
        let base_net = consolidate_delta(&delta.base);
        let entailed_net = consolidate_delta(&delta.entailed);
        let dict = new.dictionary();
        let mut delivered = false;
        let mut dead_views: Vec<usize> = Vec::new();
        let mut drops: Vec<u64> = Vec::new();
        let Inner { views, subs, .. } = &mut *inner;
        for (vi, view) in views.iter_mut().enumerate() {
            let batch = if delta.schema_changed {
                // Derived state was swapped wholesale (schema mutation or
                // strategy/thread rebuild): recompile where needed and
                // rebuild the view from scratch, publishing a reset.
                match rebuild_view(view, new, &dict) {
                    Ok(batch) => Some(batch),
                    Err(_) => {
                        dead_views.push(vi);
                        continue;
                    }
                }
            } else {
                let net = match view.mode {
                    Mode::Saturated => &entailed_net,
                    Mode::Direct | Mode::Reformulated => &base_net,
                };
                step_view(view, old, new, net, &dict)
            };
            view.last_epoch = epoch;
            let Some(batch) = batch else { continue };
            let batch = Arc::new(batch);
            push_log(view, batch.clone(), self.cfg.log_capacity);
            reg.add("server.subscribe.delta_batches", 1);
            for &sid in &view.subscribers {
                let Some(sub) = subs.get_mut(&sid) else {
                    continue;
                };
                if !sub.streaming || sub.terminal.is_some() {
                    continue;
                }
                if sub.queue.len() >= self.cfg.queue_capacity {
                    sub.queue.clear();
                    sub.terminal = Some(Terminal::Lagged);
                    drops.push(sid);
                    reg.add("server.subscribe.dropped", 1);
                } else {
                    sub.queue.push_back(batch.clone());
                }
                delivered = true;
            }
        }
        // Views whose strategy stopped supporting subscriptions: cut their
        // subscribers loose (they must re-subscribe) and remove the view.
        for vi in dead_views.into_iter().rev() {
            let view = views.remove(vi);
            for sid in view.subscribers {
                if let Some(sub) = subs.get_mut(&sid) {
                    sub.queue.clear();
                    sub.terminal = Some(Terminal::Shutdown);
                    delivered = true;
                }
            }
            // Reindex subscribers of the views shifted down.
            for sub in subs.values_mut() {
                if sub.view > vi {
                    sub.view -= 1;
                }
            }
        }
        let _ = drops;
        drop(dict);
        drop(inner);
        if delivered {
            self.wake.notify_all();
        }
    }

    /// Blocks until the streaming subscriber `id` has batches, a terminal
    /// event, or `timeout` elapses. Draining is destructive; a terminal
    /// result removes the subscription.
    pub fn next_wake(&self, id: u64, timeout: Duration) -> NextWake {
        let mut inner = lock(&self.inner);
        let deadline = std::time::Instant::now() + timeout;
        loop {
            match inner.subs.get_mut(&id) {
                None => return NextWake::Gone,
                Some(sub) => {
                    if !sub.queue.is_empty() {
                        let batches: Vec<Arc<DeltaBatch>> = sub.queue.drain(..).collect();
                        return NextWake::Batches(batches);
                    }
                    if let Some(t) = sub.terminal {
                        self.remove_sub(&mut inner, id);
                        return NextWake::Terminal(t);
                    }
                    if inner.shutdown {
                        self.remove_sub(&mut inner, id);
                        return NextWake::Terminal(Terminal::Shutdown);
                    }
                }
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return NextWake::Idle;
            }
            let (guard, res) = self
                .wake
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
            if res.timed_out() {
                // Re-check once after the timeout before reporting idle.
                continue;
            }
        }
    }

    /// Pull-side catch-up: returns every batch published to `id`'s view
    /// after epoch `from`, or a single snapshot-reset batch when `from`
    /// has fallen off the bounded epoch log.
    pub fn catch_up(&self, id: u64, from: u64) -> Option<CatchUp> {
        let mut inner = lock(&self.inner);
        let shutdown = inner.shutdown;
        let sub = inner.subs.get(&id)?;
        let terminal = sub.terminal.or(if shutdown {
            Some(Terminal::Shutdown)
        } else {
            None
        });
        let vi = sub.view;
        let view = &mut inner.views[vi];
        let batches = if from >= view.log_anchor {
            view.log
                .iter()
                .filter(|b| b.epoch > from)
                .cloned()
                .collect()
        } else {
            vec![Arc::new(reset_batch(view))]
        };
        Some(CatchUp { batches, terminal })
    }

    /// Removes a subscription (client cancel or connection close). The
    /// backing view is dropped with its last subscriber, so the writer
    /// stops paying for it.
    pub fn unsubscribe(&self, id: u64) -> bool {
        let mut inner = lock(&self.inner);
        let existed = inner.subs.contains_key(&id);
        if existed {
            self.remove_sub(&mut inner, id);
        }
        existed
    }

    fn remove_sub(&self, inner: &mut Inner, id: u64) {
        let Some(sub) = inner.subs.remove(&id) else {
            return;
        };
        obs::global().add("server.subscribe.closed", 1);
        let vi = sub.view;
        if let Some(view) = inner.views.get_mut(vi) {
            view.subscribers.retain(|&s| s != id);
            if view.subscribers.is_empty() {
                inner.views.remove(vi);
                for s in inner.subs.values_mut() {
                    if s.view > vi {
                        s.view -= 1;
                    }
                }
            }
        }
    }

    /// Initiates shutdown: every streamer wakes with
    /// [`Terminal::Shutdown`]; new registrations are refused.
    pub fn shutdown(&self) {
        let mut inner = lock(&self.inner);
        inner.shutdown = true;
        drop(inner);
        self.wake.notify_all();
    }
}

/// Stable identity of a registered query (structural, dictionary-id
/// based — two textually different queries interning to the same AST
/// share a view).
fn view_key(q: &Query) -> String {
    format!(
        "{:?}|{:?}|{:?}|{}|{:?}",
        q.projection, q.bgps, q.filters, q.distinct, q.var_names
    )
}

fn decode_row(dict: &rdf_model::Dictionary, row: &[rdf_model::TermId]) -> Vec<String> {
    row.iter()
        .map(|id| {
            dict.decode(*id)
                .map_or_else(|| format!("{id:?}"), |t| t.to_string())
        })
        .collect()
}

/// Chooses the view mode for the snapshot's strategy and compiles the
/// delta program ( reformulating first when the strategy answers by
/// reformulation).
fn compile_for(snap: &StoreSnapshot, q: &Query) -> Result<(Mode, DeltaProgram), SubscribeError> {
    let unsupported = |what: &str| SubscribeError::Unsupported(what.to_string());
    let (mode, effective) = match snap.config() {
        ReasoningConfig::None => (Mode::Direct, None),
        ReasoningConfig::Saturation(_) => (Mode::Saturated, None),
        // Interval stores stream like reformulation ones: the view's
        // dataflow compiles from the union reformulation over the base
        // graph (the interval encoding only accelerates the answer path),
        // so a schema re-encode never touches a live view.
        ReasoningConfig::Reformulation | ReasoningConfig::Interval => {
            let q_ref = snap
                .reformulated(q)
                .map_err(SubscribeError::Query)?
                .ok_or_else(|| unsupported("reformulation unavailable"))?;
            (Mode::Reformulated, Some(q_ref))
        }
        other => {
            return Err(unsupported(&format!(
                "strategy {} does not support subscriptions",
                other.name()
            )))
        }
    };
    let program = compile_delta(effective.as_ref().unwrap_or(q))
        .map_err(|e| SubscribeError::Unsupported(e.to_string()))?;
    Ok((mode, program))
}

/// The complete current answer of a view as a reset batch at its last
/// published epoch.
fn reset_batch(view: &View) -> DeltaBatch {
    let mut events: Vec<DeltaEvent> = view
        .counts
        .iter()
        .filter(|(_, &m)| m > 0)
        .map(|(row, &m)| DeltaEvent {
            row: row.clone(),
            delta: if view.distinct { 1 } else { m },
        })
        .collect();
    events.sort_by(|a, b| a.row.cmp(&b.row));
    DeltaBatch {
        epoch: view.last_epoch,
        reset: true,
        events,
    }
}

/// Applies one consolidated triple delta to a view: runs the delta
/// program, folds the row changes into the multiplicity counts and
/// derives the events to publish (raw signed deltas for bag views,
/// `0 ↔ positive` transitions for `DISTINCT` views). Returns `None` when
/// the answer did not change.
fn step_view(
    view: &mut View,
    old: &StoreSnapshot,
    new: &StoreSnapshot,
    net: &[(rdf_model::Triple, i64)],
    dict: &rdf_model::Dictionary,
) -> Option<DeltaBatch> {
    if net.is_empty() {
        return None;
    }
    let (Some(old_g), Some(new_g)) = (old.view_graph(), new.view_graph()) else {
        return None;
    };
    let mut raw: FxHashMap<Vec<String>, i64> = FxHashMap::default();
    view.program.eval_delta(old_g, new_g, net, dict, |row, m| {
        *raw.entry(decode_row(dict, &row)).or_insert(0) += m;
    });
    raw.retain(|_, m| *m != 0);
    if raw.is_empty() {
        return None;
    }
    let mut events = Vec::with_capacity(raw.len());
    for (row, m) in raw {
        let before = view.counts.get(&row).copied().unwrap_or(0);
        let after = before + m;
        if after == 0 {
            view.counts.remove(&row);
        } else {
            view.counts.insert(row.clone(), after);
        }
        if view.distinct {
            match (before > 0, after > 0) {
                (false, true) => events.push(DeltaEvent { row, delta: 1 }),
                (true, false) => events.push(DeltaEvent { row, delta: -1 }),
                _ => {}
            }
        } else {
            events.push(DeltaEvent { row, delta: m });
        }
    }
    if events.is_empty() {
        return None;
    }
    events.sort_by(|a, b| a.row.cmp(&b.row));
    Some(DeltaBatch {
        epoch: new.epoch(),
        reset: false,
        events,
    })
}

/// Rebuilds a view after a schema change / strategy rebuild: recompiles
/// the program (reformulation changes with the schema) and recomputes the
/// counts from scratch, publishing a reset batch. Errors mean the new
/// strategy cannot host the view.
fn rebuild_view(
    view: &mut View,
    new: &StoreSnapshot,
    dict: &rdf_model::Dictionary,
) -> Result<DeltaBatch, ()> {
    let (mode, program) = compile_for(new, &view.query).map_err(|_| ())?;
    let graph = new.view_graph().ok_or(())?;
    let mut counts: FxHashMap<Vec<String>, i64> = FxHashMap::default();
    program.eval_full(graph, dict, |row, m| {
        *counts.entry(decode_row(dict, &row)).or_insert(0) += m;
    });
    counts.retain(|_, m| *m != 0);
    view.mode = mode;
    view.program = program;
    view.counts = counts;
    view.last_epoch = new.epoch();
    // A reset supersedes history: any catch-up can replay from it.
    view.log.clear();
    view.log_anchor = 0;
    Ok(reset_batch(view))
}

fn push_log(view: &mut View, batch: Arc<DeltaBatch>, cap: usize) {
    if batch.reset {
        view.log.clear();
        view.log_anchor = 0;
    }
    view.log.push_back(batch);
    while view.log.len() > cap {
        if let Some(evicted) = view.log.pop_front() {
            // Everything up to the evicted epoch is no longer replayable.
            view.log_anchor = view.log_anchor.max(evicted.epoch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::CancelToken;
    use webreason_core::{MaintenanceAlgorithm, ReasoningConfig, Store};

    const SCHEMA: &str = r#"
        @prefix ex: <http://ex/> .
        @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
        ex:Cat rdfs:subClassOf ex:Mammal .
        ex:hasPet rdfs:domain ex:Owner .
    "#;

    fn store_with(config: ReasoningConfig) -> Store {
        let mut store = Store::new(config);
        store.load_turtle(SCHEMA).unwrap();
        store
    }

    const TYPE: &str = rdf_model::vocab::RDF_TYPE;
    const SUBCLASS: &str = rdf_model::vocab::RDFS_SUB_CLASS_OF;

    /// Applies inserts/deletes of IRI triples, drains the store delta and
    /// publishes it through the hub, returning the new epoch.
    fn apply_and_publish(
        store: &mut Store,
        hub: &SubscriptionHub,
        ops: &[[&str; 3]],
        insert: bool,
    ) -> u64 {
        use rdf_model::Term;
        let old = store.snapshot();
        for [s, p, o] in ops {
            let (s, p, o) = (Term::iri(*s), Term::iri(*p), Term::iri(*o));
            if insert {
                store.insert_terms(&s, &p, &o);
            } else {
                store.delete_terms(&s, &p, &o);
            }
        }
        let delta = store.take_delta();
        let new = store.snapshot();
        hub.publish(&old, &new, &delta);
        new.epoch()
    }

    /// Accumulates a subscriber's batches into row → count state.
    fn apply_batch(state: &mut FxHashMap<Vec<String>, i64>, batch: &DeltaBatch) {
        if batch.reset {
            state.clear();
        }
        for ev in &batch.events {
            *state.entry(ev.row.clone()).or_insert(0) += ev.delta;
        }
        state.retain(|_, m| *m != 0);
    }

    /// From-scratch answer (distinct) decoded like the hub decodes.
    fn oracle_rows(store: &Store, sparql: &str) -> FxHashMap<Vec<String>, i64> {
        let reader = store.reader();
        let snap = reader.snapshot();
        let q = snap.prepare(sparql).unwrap();
        let (sols, _) = snap.answer(&q).unwrap();
        let dict = snap.dictionary();
        let mut out = FxHashMap::default();
        for row in sols.as_set() {
            let decoded: Vec<String> = row
                .iter()
                .map(|id| dict.decode(*id).unwrap().to_string())
                .collect();
            out.insert(decoded, 1);
        }
        out
    }

    fn distinct_keys(state: &FxHashMap<Vec<String>, i64>) -> FxHashMap<Vec<String>, i64> {
        state
            .iter()
            .filter(|(_, &m)| m > 0)
            .map(|(k, _)| (k.clone(), 1))
            .collect()
    }

    const Q_MAMMALS: &str = "PREFIX ex: <http://ex/> SELECT DISTINCT ?x WHERE { ?x a ex:Mammal }";

    #[test]
    fn saturation_stream_replays_entailed_changes() {
        for algo in [
            MaintenanceAlgorithm::Recompute,
            MaintenanceAlgorithm::DRed,
            MaintenanceAlgorithm::Counting,
        ] {
            let mut store = store_with(ReasoningConfig::Saturation(algo));
            store.set_delta_tracking(true);
            let hub = SubscriptionHub::new(HubConfig::default());
            let reader = store.reader();
            let ok = hub
                .subscribe(&reader, Q_MAMMALS, true, &CancelToken::none())
                .unwrap();
            let mut state = FxHashMap::default();
            apply_batch(&mut state, &ok.initial);
            assert!(state.is_empty());

            apply_and_publish(
                &mut store,
                &hub,
                &[["http://ex/tom", TYPE, "http://ex/Cat"]],
                true,
            );
            match hub.next_wake(ok.id, Duration::from_millis(10)) {
                NextWake::Batches(batches) => {
                    for b in &batches {
                        apply_batch(&mut state, b);
                    }
                }
                other => panic!("expected batches, got {other:?} ({algo:?})"),
            }
            assert_eq!(distinct_keys(&state), oracle_rows(&store, Q_MAMMALS));

            apply_and_publish(
                &mut store,
                &hub,
                &[["http://ex/tom", TYPE, "http://ex/Cat"]],
                false,
            );
            if let NextWake::Batches(batches) = hub.next_wake(ok.id, Duration::from_millis(10)) {
                for b in &batches {
                    apply_batch(&mut state, b);
                }
            }
            assert_eq!(distinct_keys(&state), oracle_rows(&store, Q_MAMMALS));
            assert!(state.is_empty(), "tom retracted from the view ({algo:?})");
        }
    }

    #[test]
    fn reformulation_stream_consumes_base_delta() {
        let mut store = store_with(ReasoningConfig::Reformulation);
        store.set_delta_tracking(true);
        let hub = SubscriptionHub::new(HubConfig::default());
        let reader = store.reader();
        let ok = hub
            .subscribe(&reader, Q_MAMMALS, true, &CancelToken::none())
            .unwrap();
        let mut state = FxHashMap::default();
        apply_batch(&mut state, &ok.initial);

        apply_and_publish(
            &mut store,
            &hub,
            &[
                ["http://ex/tom", TYPE, "http://ex/Cat"],
                ["http://ex/rex", TYPE, "http://ex/Mammal"],
            ],
            true,
        );
        if let NextWake::Batches(batches) = hub.next_wake(ok.id, Duration::from_millis(10)) {
            for b in &batches {
                apply_batch(&mut state, b);
            }
        }
        assert_eq!(state.len(), 2, "tom (entailed) and rex (explicit)");
        assert_eq!(distinct_keys(&state), oracle_rows(&store, Q_MAMMALS));
    }

    #[test]
    fn schema_change_triggers_reset_rebuild() {
        let mut store = store_with(ReasoningConfig::Reformulation);
        store.set_delta_tracking(true);
        let hub = SubscriptionHub::new(HubConfig::default());
        let reader = store.reader();
        let ok = hub
            .subscribe(&reader, Q_MAMMALS, true, &CancelToken::none())
            .unwrap();
        apply_and_publish(
            &mut store,
            &hub,
            &[["http://ex/fido", TYPE, "http://ex/Dog"]],
            true,
        );
        // New subclass axiom: Dog ⊑ Mammal — changes q_ref itself.
        apply_and_publish(
            &mut store,
            &hub,
            &[["http://ex/Dog", SUBCLASS, "http://ex/Mammal"]],
            true,
        );
        let mut state = FxHashMap::default();
        apply_batch(&mut state, &ok.initial);
        while let NextWake::Batches(batches) = hub.next_wake(ok.id, Duration::from_millis(10)) {
            for b in &batches {
                apply_batch(&mut state, b);
            }
        }
        assert_eq!(distinct_keys(&state), oracle_rows(&store, Q_MAMMALS));
        assert_eq!(state.len(), 1, "fido now a mammal via the new axiom");
    }

    #[test]
    fn slow_consumer_is_dropped_with_terminal() {
        let mut store = store_with(ReasoningConfig::None);
        store.set_delta_tracking(true);
        let hub = SubscriptionHub::new(HubConfig {
            queue_capacity: 2,
            ..HubConfig::default()
        });
        let reader = store.reader();
        let q = "PREFIX ex: <http://ex/> SELECT ?s WHERE { ?s ex:p ex:o }";
        let ok = hub
            .subscribe(&reader, q, true, &CancelToken::none())
            .unwrap();
        for i in 0..4 {
            let s = format!("http://ex/s{i}");
            apply_and_publish(
                &mut store,
                &hub,
                &[[&s, "http://ex/p", "http://ex/o"]],
                true,
            );
        }
        // Queue bound 2: the 3rd push drops the subscriber.
        match hub.next_wake(ok.id, Duration::from_millis(10)) {
            NextWake::Terminal(Terminal::Lagged) => {}
            other => panic!("expected lagged terminal, got {other:?}"),
        }
        assert_eq!(hub.live_subscribers(), 0);
        assert!(matches!(
            hub.next_wake(ok.id, Duration::from_millis(1)),
            NextWake::Gone
        ));
    }

    #[test]
    fn catch_up_replays_or_resets() {
        let mut store = store_with(ReasoningConfig::None);
        store.set_delta_tracking(true);
        let hub = SubscriptionHub::new(HubConfig {
            log_capacity: 2,
            ..HubConfig::default()
        });
        let reader = store.reader();
        let q = "PREFIX ex: <http://ex/> SELECT ?s WHERE { ?s ex:p ex:o }";
        let ok = hub
            .subscribe(&reader, q, false, &CancelToken::none())
            .unwrap();
        let e0 = ok.epoch;
        let mut epochs = Vec::new();
        for i in 0..4 {
            let s = format!("http://ex/s{i}");
            epochs.push(apply_and_publish(
                &mut store,
                &hub,
                &[[&s, "http://ex/p", "http://ex/o"]],
                true,
            ));
        }
        // Recent epoch: exact replay of the retained tail.
        let cu = hub.catch_up(ok.id, epochs[2]).unwrap();
        assert_eq!(cu.batches.len(), 1);
        assert!(!cu.batches[0].reset);
        assert_eq!(cu.batches[0].epoch, epochs[3]);
        // Ancient epoch (fell off the 2-deep log): snapshot reset.
        let cu = hub.catch_up(ok.id, e0).unwrap();
        assert_eq!(cu.batches.len(), 1);
        assert!(cu.batches[0].reset);
        assert_eq!(cu.batches[0].events.len(), 4);
        // Replaying the reset converges to the oracle.
        let mut state = FxHashMap::default();
        apply_batch(&mut state, &cu.batches[0]);
        assert_eq!(distinct_keys(&state), oracle_rows(&store, q));
    }

    #[test]
    fn capacity_limit_refuses_registration() {
        let store = store_with(ReasoningConfig::None);
        let hub = SubscriptionHub::new(HubConfig {
            max_subscriptions: 1,
            ..HubConfig::default()
        });
        let reader = store.reader();
        let q = "PREFIX ex: <http://ex/> SELECT ?s WHERE { ?s ex:p ex:o }";
        hub.subscribe(&reader, q, true, &CancelToken::none())
            .unwrap();
        match hub.subscribe(&reader, q, true, &CancelToken::none()) {
            Err(SubscribeError::AtCapacity(1)) => {}
            other => panic!("expected capacity refusal, got {other:?}"),
        }
    }

    #[test]
    fn cancelled_registration_is_rejected() {
        let store = store_with(ReasoningConfig::None);
        let hub = SubscriptionHub::new(HubConfig::default());
        let reader = store.reader();
        let token = CancelToken::new();
        token.cancel();
        match hub.subscribe(
            &reader,
            "PREFIX ex: <http://ex/> SELECT ?s WHERE { ?s ex:p ex:o }",
            true,
            &token,
        ) {
            Err(SubscribeError::Query(AnswerError::Cancelled)) => {}
            other => panic!("expected cancelled, got {other:?}"),
        }
    }

    #[test]
    fn unsupported_strategies_and_queries_are_refused() {
        let store = store_with(ReasoningConfig::BackwardChaining);
        let hub = SubscriptionHub::new(HubConfig::default());
        let reader = store.reader();
        match hub.subscribe(
            &reader,
            "PREFIX ex: <http://ex/> SELECT ?s WHERE { ?s ex:p ex:o }",
            true,
            &CancelToken::none(),
        ) {
            Err(SubscribeError::Unsupported(_)) => {}
            other => panic!("expected unsupported, got {other:?}"),
        }
        let store = store_with(ReasoningConfig::None);
        let reader = store.reader();
        match hub.subscribe(
            &reader,
            "PREFIX ex: <http://ex/> SELECT ?s WHERE { ?s ex:p ex:o } LIMIT 3",
            true,
            &CancelToken::none(),
        ) {
            Err(SubscribeError::Unsupported(_)) => {}
            other => panic!("expected unsupported query, got {other:?}"),
        }
    }

    #[test]
    fn shutdown_wakes_streamers_with_terminal() {
        let store = store_with(ReasoningConfig::None);
        let hub = std::sync::Arc::new(SubscriptionHub::new(HubConfig::default()));
        let reader = store.reader();
        let ok = hub
            .subscribe(
                &reader,
                "PREFIX ex: <http://ex/> SELECT ?s WHERE { ?s ex:p ex:o }",
                true,
                &CancelToken::none(),
            )
            .unwrap();
        let h2 = hub.clone();
        let waiter = std::thread::spawn(move || h2.next_wake(ok.id, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        hub.shutdown();
        match waiter.join().unwrap() {
            NextWake::Terminal(Terminal::Shutdown) => {}
            other => panic!("expected shutdown terminal, got {other:?}"),
        }
        assert!(matches!(
            hub.subscribe(
                &reader,
                "PREFIX ex: <http://ex/> SELECT ?s WHERE { ?s ex:p ex:o }",
                true,
                &CancelToken::none(),
            ),
            Err(SubscribeError::ShuttingDown)
        ));
    }

    /// The distinct-multiplicity regression (bag-vs-set bug class): a row
    /// with two derivations through overlapping union branches must NOT
    /// be retracted when one derivation is deleted.
    #[test]
    fn distinct_survives_losing_one_of_two_derivations() {
        let mut store = store_with(ReasoningConfig::Reformulation);
        store.set_delta_tracking(true);
        let hub = SubscriptionHub::new(HubConfig::default());
        let reader = store.reader();
        // tom is a Mammal twice over: explicitly, and entailed via Cat.
        store
            .load_turtle("@prefix ex: <http://ex/> . ex:tom a ex:Cat . ex:tom a ex:Mammal .")
            .unwrap();
        store.take_delta(); // not yet subscribed; discard
        store.snapshot(); // publish, so registration sees the load
        let ok = hub
            .subscribe(&reader, Q_MAMMALS, true, &CancelToken::none())
            .unwrap();
        let mut state = FxHashMap::default();
        apply_batch(&mut state, &ok.initial);
        assert_eq!(state.len(), 1);

        // Delete the explicit assertion: the entailed derivation remains.
        apply_and_publish(
            &mut store,
            &hub,
            &[["http://ex/tom", TYPE, "http://ex/Mammal"]],
            false,
        );
        match hub.next_wake(ok.id, Duration::from_millis(10)) {
            NextWake::Idle => {} // correctly NO retraction event
            NextWake::Batches(batches) => {
                for b in &batches {
                    apply_batch(&mut state, b);
                }
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(state.len(), 1, "tom still a mammal via ex:Cat");
        assert_eq!(distinct_keys(&state), oracle_rows(&store, Q_MAMMALS));

        // Delete the remaining derivation: now it must retract.
        apply_and_publish(
            &mut store,
            &hub,
            &[["http://ex/tom", TYPE, "http://ex/Cat"]],
            false,
        );
        if let NextWake::Batches(batches) = hub.next_wake(ok.id, Duration::from_millis(10)) {
            for b in &batches {
                apply_batch(&mut state, b);
            }
        }
        assert!(state.is_empty(), "no derivations left");
    }
}
