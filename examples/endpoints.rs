//! Federation walk-through — the paper's §I motivation, live.
//!
//! "Typical Semantic Web scenarios involve integrating data from several
//! RDF repositories, also called 'RDF endpoints'. Since such repositories
//! are often authored independently, they have their own sets of semantic
//! constraints…". This example runs a mediator over three independently-
//! authored endpoints whose constraints apply to each other's facts, then
//! lets one endpoint leave — with nothing to maintain.
//!
//! ```sh
//! cargo run --example endpoints
//! ```

use federation::Federation;

fn main() {
    let mut fed = Federation::new();

    // A museum catalogue publishes artefact facts with its own vocabulary.
    let museum = fed.add_endpoint("museum");
    fed.load_turtle(
        museum,
        r#"
        @prefix m: <http://museum.example/> .
        m:venus  m:exhibitedIn m:louvre .
        m:david  m:exhibitedIn m:galleria .
        m:sunflowers m:paintedBy m:vangogh .
    "#,
    )
    .unwrap();

    // A tourism aggregator contributes constraints over the museum's terms.
    let tourism = fed.add_endpoint("tourism");
    fed.load_turtle(
        tourism,
        r#"
        @prefix m: <http://museum.example/> .
        @prefix t: <http://tourism.example/> .
        @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
        m:exhibitedIn rdfs:range t:Attraction .
        m:exhibitedIn rdfs:domain t:Artwork .
    "#,
    )
    .unwrap();

    // An art-history endpoint adds its own hierarchy.
    let art = fed.add_endpoint("art-history");
    fed.load_turtle(
        art,
        r#"
        @prefix m: <http://museum.example/> .
        @prefix t: <http://tourism.example/> .
        @prefix a: <http://art.example/> .
        @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
        m:paintedBy rdfs:domain a:Painting .
        a:Painting rdfs:subClassOf t:Artwork .
    "#,
    )
    .unwrap();

    let merged = fed.triple_count();
    println!(
        "endpoints: {:?}, merged triples: {merged}",
        fed.endpoint_names()
    );

    let artworks =
        "PREFIX t: <http://tourism.example/> SELECT DISTINCT ?x WHERE { ?x a t:Artwork }";
    let sols = fed.answer_sparql(artworks).unwrap();
    println!("\nartworks (cross-endpoint entailment, no global saturation):");
    for line in sols.to_strings(fed.dictionary()) {
        println!("    {line}");
    }

    let attractions =
        "PREFIX t: <http://tourism.example/> SELECT DISTINCT ?x WHERE { ?x a t:Attraction }";
    let sols = fed.answer_sparql(attractions).unwrap();
    println!("\nattractions (range typing from the tourism endpoint):");
    for line in sols.to_strings(fed.dictionary()) {
        println!("    {line}");
    }

    // The art-history endpoint goes offline: its constraints leave with it,
    // and the reformulating mediator has nothing to recompute.
    fed.remove_endpoint(art);
    let sols = fed.answer_sparql(artworks).unwrap();
    println!(
        "\nafter the art-history endpoint leaves: {} artworks \
         (the painting-derived ones are gone, instantly)",
        sols.len()
    );
}
