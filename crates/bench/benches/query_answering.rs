//! Criterion bench behind T-QA: evaluating each LUBM query on the
//! saturated graph vs its reformulation on the base graph vs backward
//! chaining — plus the planner ablation (greedy vs textual join order).

use bench::{lubm_workload, saturated, Scale};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdfs::Schema;
use reformulation::reformulate;
use sparql::plan::{plan_bgp, plan_textual};
use sparql::{evaluate, evaluate_bgp_with_plan};
use std::hint::black_box;
use webreason_core::evaluate_backward;

fn bench_strategies(c: &mut Criterion) {
    let (ds, qs) = lubm_workload(Scale::Small);
    let sat = saturated(&ds);
    let schema = Schema::extract(&ds.graph, &ds.vocab);
    let mut group = c.benchmark_group("query");
    for (name, q) in &qs {
        let r = reformulate(q, &schema, &ds.vocab).unwrap();
        group.bench_function(BenchmarkId::new("saturated", name), |b| {
            b.iter(|| black_box(evaluate(&sat, q)))
        });
        group.bench_function(BenchmarkId::new("reformulated", name), |b| {
            b.iter(|| black_box(evaluate(&ds.graph, &r.query)))
        });
        group.bench_function(BenchmarkId::new("backward", name), |b| {
            b.iter(|| black_box(evaluate_backward(&ds.graph, &schema, &ds.vocab, q)))
        });
    }
    group.finish();
}

/// Ablation: greedy planner vs textual order on the join-heavy Q9.
fn bench_planner_ablation(c: &mut Criterion) {
    let (ds, qs) = lubm_workload(Scale::Small);
    let sat = saturated(&ds);
    let (_, q9) = qs.iter().find(|(n, _)| n == "Q9").expect("Q9 exists");
    let bgp = &q9.bgps[0];
    let n_vars = q9.var_names.len();
    let mut group = c.benchmark_group("planner");
    group.bench_function("greedy", |b| {
        b.iter(|| {
            let plan = plan_bgp(&sat, bgp);
            let mut n = 0usize;
            evaluate_bgp_with_plan(&sat, bgp, &plan, n_vars, |_| n += 1);
            black_box(n)
        })
    });
    group.bench_function("textual", |b| {
        b.iter(|| {
            let plan = plan_textual(bgp);
            let mut n = 0usize;
            evaluate_bgp_with_plan(&sat, bgp, &plan, n_vars, |_| n += 1);
            black_box(n)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_strategies, bench_planner_ablation);
criterion_main!(benches);
