//! Cooperative cancellation for request-scoped work.
//!
//! A [`CancelToken`] is created at the edge (the HTTP server stamps one
//! per request from the client's deadline header or the configured
//! default) and threaded down through `Store::answer` into the parallel
//! union evaluator and the RDFS saturation workers, which poll it at
//! branch/chunk boundaries. Cancellation is *cooperative*: nothing is
//! interrupted mid-step, so a worker observes the token only between
//! units of work and can discard its partial state cleanly — no shared
//! structure is ever left half-written.
//!
//! The token lives in `obs` because it is the one crate every evaluation
//! layer (sparql, rdfs, durability, core, server) already depends on; a
//! deadline is observability-adjacent anyway — it is the request's time
//! budget.
//!
//! Three flavours:
//!
//! * [`CancelToken::none`] — never cancels, zero allocation; the default
//!   for call sites without a request context (CLI, tests, the writer's
//!   maintenance path, which must run to completion for atomicity).
//! * [`CancelToken::with_deadline`] — cancels once the wall-clock budget
//!   is exhausted, or when [`CancelToken::cancel`] is called (client
//!   disconnect).
//! * [`CancelToken::trip_after_checks`] — deterministic test mode:
//!   cancels on the *n*-th [`is_cancelled`](CancelToken::is_cancelled)
//!   poll, independent of timing, so cancellation-correctness tests can
//!   hit every poll site exactly without sleeps.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Disables the deterministic trip-after-checks test mode.
const TRIP_DISABLED: u64 = u64::MAX;

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
    /// Test hook: poll index (1-based) on which the token trips.
    trip_at_check: u64,
    checks: AtomicU64,
}

/// A cloneable, thread-safe cancellation handle. Clones share state:
/// cancelling any clone cancels them all.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Option<Arc<Inner>>,
}

impl CancelToken {
    /// A token that never cancels. Zero allocation; every poll is a
    /// single `Option` check.
    pub fn none() -> CancelToken {
        CancelToken { inner: None }
    }

    /// A token with no deadline that cancels only via
    /// [`cancel`](CancelToken::cancel) (e.g. on client disconnect).
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Some(Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
                trip_at_check: TRIP_DISABLED,
                checks: AtomicU64::new(0),
            })),
        }
    }

    /// A token that cancels once `budget` has elapsed (measured from this
    /// call), or earlier via [`cancel`](CancelToken::cancel).
    pub fn with_deadline(budget: Duration) -> CancelToken {
        CancelToken {
            inner: Some(Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Instant::now().checked_add(budget),
                trip_at_check: TRIP_DISABLED,
                checks: AtomicU64::new(0),
            })),
        }
    }

    /// Deterministic test mode: the token trips on its `n`-th
    /// [`is_cancelled`](CancelToken::is_cancelled) poll (1-based; `0`
    /// trips on the first poll). Checks are counted across all clones.
    pub fn trip_after_checks(n: u64) -> CancelToken {
        CancelToken {
            inner: Some(Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
                trip_at_check: n.max(1),
                checks: AtomicU64::new(0),
            })),
        }
    }

    /// Cancels the token (and every clone). Idempotent.
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancelled.store(true, Ordering::SeqCst);
        }
    }

    /// Polls the token. `true` once cancelled — explicitly, past the
    /// deadline, or (test mode) past the configured poll count. Sticky:
    /// once `true`, always `true`.
    pub fn is_cancelled(&self) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        if inner.cancelled.load(Ordering::SeqCst) {
            return true;
        }
        if inner.trip_at_check != TRIP_DISABLED {
            let check = inner.checks.fetch_add(1, Ordering::SeqCst) + 1;
            if check >= inner.trip_at_check {
                inner.cancelled.store(true, Ordering::SeqCst);
                return true;
            }
            return false;
        }
        if let Some(d) = inner.deadline {
            if Instant::now() >= d {
                inner.cancelled.store(true, Ordering::SeqCst);
                return true;
            }
        }
        false
    }

    /// Whether the token can ever cancel (false only for
    /// [`CancelToken::none`]). Lets admission control skip shedding
    /// requests that never declared a budget.
    pub fn can_cancel(&self) -> bool {
        self.inner.is_some()
    }

    /// Time left before the deadline. `None` when the token has no
    /// deadline; `Some(ZERO)` once it has passed.
    pub fn remaining(&self) -> Option<Duration> {
        let inner = self.inner.as_ref()?;
        let d = inner.deadline?;
        Some(d.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_cancels() {
        let t = CancelToken::none();
        assert!(!t.is_cancelled());
        t.cancel(); // no-op
        assert!(!t.is_cancelled());
        assert!(!t.can_cancel());
        assert_eq!(t.remaining(), None);
    }

    #[test]
    fn explicit_cancel_is_shared_and_sticky() {
        let t = CancelToken::new();
        let clone = t.clone();
        assert!(!clone.is_cancelled());
        t.cancel();
        assert!(clone.is_cancelled(), "clones share the flag");
        assert!(t.is_cancelled(), "sticky");
    }

    #[test]
    fn deadline_trips_after_budget() {
        let t = CancelToken::with_deadline(Duration::from_millis(5));
        assert!(t.remaining().is_some());
        std::thread::sleep(Duration::from_millis(10));
        assert!(t.is_cancelled());
        assert_eq!(t.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn zero_budget_is_immediately_expired() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert!(t.is_cancelled());
    }

    #[test]
    fn trip_after_checks_is_deterministic() {
        let t = CancelToken::trip_after_checks(3);
        assert!(!t.is_cancelled(), "check 1");
        assert!(!t.is_cancelled(), "check 2");
        assert!(t.is_cancelled(), "check 3 trips");
        assert!(t.is_cancelled(), "sticky after tripping");
    }
}
