//! Cross-crate property tests: the system-level invariants, randomised.

use proptest::prelude::*;
use rdf_model::{Dictionary, Graph, Triple, Vocab};
use rdfs::incremental::MaintenanceAlgorithm;
use rustc_hash::FxHashSet;
use webreason_core::{ReasoningConfig, Store};

/// Random database-fragment graphs plus a random type/property query mix.
#[derive(Debug, Clone)]
struct Scenario {
    sub_class: Vec<(u8, u8)>,
    sub_prop: Vec<(u8, u8)>,
    domain: Vec<(u8, u8)>,
    range: Vec<(u8, u8)>,
    facts: Vec<(u8, u8, u8)>,
    types: Vec<(u8, u8)>,
    query_class: u8,
    query_prop: u8,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        proptest::collection::vec((0u8..5, 0u8..5), 0..6),
        proptest::collection::vec((0u8..4, 0u8..4), 0..4),
        proptest::collection::vec((0u8..4, 0u8..5), 0..4),
        proptest::collection::vec((0u8..4, 0u8..5), 0..4),
        proptest::collection::vec((0u8..8, 0u8..4, 0u8..8), 0..20),
        proptest::collection::vec((0u8..8, 0u8..5), 0..10),
        0u8..5,
        0u8..4,
    )
        .prop_map(
            |(sub_class, sub_prop, domain, range, facts, types, query_class, query_prop)| {
                Scenario {
                    sub_class,
                    sub_prop,
                    domain,
                    range,
                    facts,
                    types,
                    query_class,
                    query_prop,
                }
            },
        )
}

fn build_graph(s: &Scenario) -> (Dictionary, Vocab, Graph) {
    let mut dict = Dictionary::new();
    let vocab = Vocab::intern(&mut dict);
    let class = |d: &mut Dictionary, i: u8| d.encode_iri(&format!("http://ex/C{i}"));
    let prop = |d: &mut Dictionary, i: u8| d.encode_iri(&format!("http://ex/p{i}"));
    let node = |d: &mut Dictionary, i: u8| d.encode_iri(&format!("http://ex/n{i}"));
    let mut g = Graph::new();
    for &(a, b) in &s.sub_class {
        let t = Triple::new(class(&mut dict, a), vocab.sub_class_of, class(&mut dict, b));
        g.insert(t);
    }
    for &(a, b) in &s.sub_prop {
        let t = Triple::new(
            prop(&mut dict, a),
            vocab.sub_property_of,
            prop(&mut dict, b),
        );
        g.insert(t);
    }
    for &(p, c) in &s.domain {
        let t = Triple::new(prop(&mut dict, p), vocab.domain, class(&mut dict, c));
        g.insert(t);
    }
    for &(p, c) in &s.range {
        let t = Triple::new(prop(&mut dict, p), vocab.range, class(&mut dict, c));
        g.insert(t);
    }
    for &(a, p, b) in &s.facts {
        let t = Triple::new(node(&mut dict, a), prop(&mut dict, p), node(&mut dict, b));
        g.insert(t);
    }
    for &(a, c) in &s.types {
        let t = Triple::new(node(&mut dict, a), vocab.rdf_type, class(&mut dict, c));
        g.insert(t);
    }
    (dict, vocab, g)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All five reasoning strategies return identical answer sets for both
    /// a type query and a property query, on random fragment graphs.
    #[test]
    fn five_strategies_agree(s in arb_scenario()) {
        let (dict, vocab, g) = build_graph(&s);
        let type_q = format!(
            "SELECT DISTINCT ?x WHERE {{ ?x <{}> <http://ex/C{}> }}",
            rdf_model::vocab::RDF_TYPE,
            s.query_class
        );
        let prop_q = format!(
            "SELECT DISTINCT ?x ?y WHERE {{ ?x <http://ex/p{}> ?y }}",
            s.query_prop
        );
        type AnswerSet = FxHashSet<Vec<rdf_model::TermId>>;
        let mut reference: Option<(AnswerSet, AnswerSet)> = None;
        for config in ReasoningConfig::ALL {
            if config == ReasoningConfig::None {
                continue;
            }
            let store = Store::from_parts(dict.clone(), vocab, g.clone(), config);
            let a = store.answer_sparql(&type_q).unwrap().as_set();
            let b = store.answer_sparql(&prop_q).unwrap().as_set();
            match &reference {
                None => reference = Some((a, b)),
                Some((ra, rb)) => {
                    prop_assert_eq!(&a, ra, "{} type query", config.name());
                    prop_assert_eq!(&b, rb, "{} property query", config.name());
                }
            }
        }
    }

    /// Plain evaluation is always a subset of reasoned answering
    /// (soundness of the explicit graph, completeness of reasoning).
    #[test]
    fn reasoning_only_adds_answers(s in arb_scenario()) {
        let (dict, vocab, g) = build_graph(&s);
        let q = format!(
            "SELECT DISTINCT ?x WHERE {{ ?x <{}> <http://ex/C{}> }}",
            rdf_model::vocab::RDF_TYPE,
            s.query_class
        );
        let plain = Store::from_parts(dict.clone(), vocab, g.clone(), ReasoningConfig::None);
        let reasoned = Store::from_parts(dict, vocab, g, ReasoningConfig::Reformulation);
        let incomplete = plain.answer_sparql(&q).unwrap().as_set();
        let complete = reasoned.answer_sparql(&q).unwrap().as_set();
        prop_assert!(incomplete.is_subset(&complete));
    }

    /// Store-level updates keep saturation strategies consistent with a
    /// freshly-built store over the same base graph.
    #[test]
    fn live_updates_match_rebuild(s in arb_scenario(), drops in proptest::collection::vec(0usize..30, 0..6)) {
        let (dict, vocab, g) = build_graph(&s);
        let all: Vec<Triple> = g.iter().collect();
        for algo in [MaintenanceAlgorithm::DRed, MaintenanceAlgorithm::Counting] {
            let mut live = Store::from_parts(dict.clone(), vocab, g.clone(), ReasoningConfig::Saturation(algo));
            let mut base = g.clone();
            for &i in &drops {
                if let Some(t) = all.get(i % all.len().max(1)) {
                    live.delete(t);
                    base.remove(t);
                }
            }
            let rebuilt = Store::from_parts(dict.clone(), vocab, base, ReasoningConfig::Saturation(MaintenanceAlgorithm::Recompute));
            let q = format!(
                "SELECT DISTINCT ?x WHERE {{ ?x <{}> <http://ex/C{}> }}",
                rdf_model::vocab::RDF_TYPE,
                s.query_class
            );
            prop_assert_eq!(
                live.answer_sparql(&q).unwrap().as_set(),
                rebuilt.answer_sparql(&q).unwrap().as_set(),
                "{}", algo.name()
            );
        }
    }
}
